"""Pytest bootstrap: make ``src/`` importable without an installed package.

The library is normally installed with ``pip install -e .``; this fallback
keeps the test and benchmark suites runnable in sandboxes where editable
installs are unavailable (e.g. offline build environments).
"""

import sys
from pathlib import Path

_SRC = Path(__file__).resolve().parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))
