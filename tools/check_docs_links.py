"""CI link checker for the repository's Markdown documentation.

Usage::

    python tools/check_docs_links.py README.md docs [more files or dirs...]

Collects every Markdown file named on the command line (directories are
walked for ``*.md``), extracts relative links — inline ``[text](target)``
and reference-style ``[label]: target`` definitions — and fails when any
target does not exist on disk, relative to the file containing the link.

External links (``http(s)://``, ``mailto:``) and pure in-page anchors
(``#section``) are skipped: this gate is about keeping the docs tree
self-consistent as files move, not about probing the network.  A
``path#anchor`` target is checked for the path part only.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path
from typing import Iterable, List, Tuple

#: Inline links, ignoring images' leading ``!`` (image targets are checked
#: the same way) and reference-style definitions at line start.
_INLINE = re.compile(r"\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
_REFERENCE = re.compile(r"^\s*\[[^\]]+\]:\s+(\S+)", re.MULTILINE)
_SKIP_PREFIXES = ("http://", "https://", "mailto:", "#")


def markdown_files(arguments: Iterable[str]) -> List[Path]:
    files: List[Path] = []
    for argument in arguments:
        path = Path(argument)
        if path.is_dir():
            files.extend(sorted(path.rglob("*.md")))
        elif path.exists():
            files.append(path)
        else:
            raise SystemExit(f"no such file or directory: {argument}")
    return files


def relative_links(text: str) -> List[str]:
    targets = _INLINE.findall(text) + _REFERENCE.findall(text)
    return [
        target
        for target in targets
        if not target.startswith(_SKIP_PREFIXES) and "://" not in target
    ]


def check(files: Iterable[Path]) -> List[Tuple[Path, str]]:
    broken: List[Tuple[Path, str]] = []
    for file in files:
        for target in relative_links(file.read_text(encoding="utf-8")):
            path_part = target.split("#", 1)[0]
            if not path_part:
                continue
            if not (file.parent / path_part).exists():
                broken.append((file, target))
    return broken


def main(argv: List[str]) -> int:
    if not argv:
        print(__doc__.strip().splitlines()[0])
        print("usage: python tools/check_docs_links.py FILE_OR_DIR [...]")
        return 2
    files = markdown_files(argv)
    broken = check(files)
    for file, target in broken:
        print(f"BROKEN  {file}: {target}")
    checked = len(files)
    if broken:
        print(f"\n{len(broken)} broken relative link(s) across {checked} file(s).")
        return 1
    print(f"All relative links resolve ({checked} Markdown file(s) checked).")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
