"""Ablation benchmarks for the design choices called out in DESIGN.md.

* observation model: Student-t (paper) vs plain Gaussian;
* schedule: overlap-aware (paper) vs round-robin;
* temporal chaining: with vs without the §3 cross-slice intensity chain.
"""

import pytest

from repro.baselines import LinuxScaling
from repro.core.engine import BayesPerfEngine
from repro.events import catalog_for
from repro.events.profiles import standard_profiling_events
from repro.metrics import trace_error
from repro.pmu import MultiplexedSampler, PollingReader
from repro.scheduling import overlap_schedule, round_robin_schedule
from repro.uarch import Machine, MachineConfig
from repro.workloads import get_workload


def _pipeline(schedule_builder, n_ticks=110, seed=2):
    catalog = catalog_for("x86")
    events = standard_profiling_events(catalog)
    schedule = schedule_builder(catalog, events)
    trace = Machine(MachineConfig(), get_workload("KMeans"), seed=seed).run(n_ticks)
    sampled = MultiplexedSampler(catalog, schedule, seed=seed + 1).sample(trace)
    polled = PollingReader(catalog, sampled.events, seed=seed + 2).read(trace)
    return catalog, events, schedule, sampled, polled


def _error(catalog, events, schedule, sampled, polled, **engine_kwargs):
    engine = BayesPerfEngine(catalog, events, **engine_kwargs)
    estimates = engine.correct(sampled)
    report = trace_error(
        estimates, polled, events=events, skip_ticks=schedule.rotation_ticks, aggregate_ticks=8
    )
    return report.mean_error_percent


@pytest.mark.benchmark(group="ablation")
def test_bench_ablation_observation_model(benchmark):
    catalog, events, schedule, sampled, polled = _pipeline(overlap_schedule)

    def run():
        student = _error(catalog, events, schedule, sampled, polled, observation_model="student_t")
        gaussian = _error(catalog, events, schedule, sampled, polled, observation_model="gaussian")
        return student, gaussian

    student, gaussian = benchmark.pedantic(run, iterations=1, rounds=1)
    print(f"\nAblation — observation model: Student-t {student:.1f}% vs Gaussian {gaussian:.1f}%")
    assert student < 15.0 and gaussian < 20.0


@pytest.mark.benchmark(group="ablation")
def test_bench_ablation_schedule_and_chaining(benchmark):
    def run():
        results = {}
        for label, builder in (("overlap", overlap_schedule), ("round-robin", round_robin_schedule)):
            catalog, events, schedule, sampled, polled = _pipeline(builder)
            results[label] = _error(catalog, events, schedule, sampled, polled)
        catalog, events, schedule, sampled, polled = _pipeline(overlap_schedule)
        results["no-chaining"] = _error(
            catalog, events, schedule, sampled, polled, use_intensity_chain=False
        )
        results["linux"] = trace_error(
            LinuxScaling().correct(sampled),
            polled,
            events=events,
            skip_ticks=schedule.rotation_ticks,
            aggregate_ticks=8,
        ).mean_error_percent
        return results

    results = benchmark.pedantic(run, iterations=1, rounds=1)
    print("\nAblation — scheduling and temporal chaining (mean error %):")
    for label, value in results.items():
        print(f"  {label:12s} {value:.1f}%")
    # The full BayesPerf configuration is the most accurate; disabling the
    # cross-slice chain costs accuracy, and every variant beats plain Linux.
    assert results["overlap"] <= results["no-chaining"]
    assert results["overlap"] < results["linux"]
