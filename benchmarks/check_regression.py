"""CI perf-regression gate over ``BENCH_ep.json`` trajectories.

Usage::

    python benchmarks/check_regression.py BASELINE FRESH [--threshold 0.30]

Compares every throughput key (any ``slices_per_second`` or
``lines_per_second`` leaf, at any nesting depth) present in the *baseline* file against the freshly measured
file and exits non-zero when any of them slowed down by more than the
threshold (default 30%).  Keys that exist only in the fresh file are new
benchmarks and are allowed; keys that *disappeared* fail the gate — a
silently dropped benchmark must not evade it.

The CI bench job snapshots the committed ``BENCH_ep.json`` before the
benchmarks merge their fresh measurements into it, then runs this gate on
the pair.

Caveat: the gate compares absolute throughput, so the committed baseline
must be refreshed from the same class of machine CI runs on; a baseline
recorded on much faster hardware will trip the gate on runner speed rather
than on a code regression.  When that happens, re-record the baseline in
the same PR (and say so) rather than widening the threshold.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Dict


#: Leaf dicts holding gated throughput rates (higher is better for all).
_RATE_KEYS = ("slices_per_second", "lines_per_second")


def throughput_keys(payload, prefix: str = "") -> Dict[str, float]:
    """Flatten every rate leaf (``slices_per_second`` /
    ``lines_per_second``) into ``path -> rate``."""
    rates: Dict[str, float] = {}
    if not isinstance(payload, dict):
        return rates
    for key, value in payload.items():
        path = f"{prefix}.{key}" if prefix else key
        if key in _RATE_KEYS and isinstance(value, dict):
            for mode, rate in value.items():
                if isinstance(rate, (int, float)):
                    rates[f"{path}.{mode}"] = float(rate)
        elif isinstance(value, dict):
            rates.update(throughput_keys(value, path))
    return rates


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", type=Path, help="committed BENCH_ep.json snapshot")
    parser.add_argument("fresh", type=Path, help="freshly measured BENCH_ep.json")
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.30,
        help="maximum tolerated fractional slowdown (default: 0.30)",
    )
    args = parser.parse_args(argv)

    baseline = throughput_keys(json.loads(args.baseline.read_text()))
    fresh = throughput_keys(json.loads(args.fresh.read_text()))
    if not baseline:
        print("no throughput keys in the baseline; nothing to gate")
        return 0

    failures = []
    width = max(len(key) for key in baseline)
    for key, base_rate in sorted(baseline.items()):
        if key not in fresh:
            failures.append(f"{key}: disappeared (baseline {base_rate:.2f} slices/s)")
            print(f"  {key:{width}s}  {base_rate:10.2f} -> MISSING      FAIL")
            continue
        fresh_rate = fresh[key]
        change = (fresh_rate - base_rate) / base_rate if base_rate else 0.0
        regressed = base_rate > 0 and fresh_rate < (1.0 - args.threshold) * base_rate
        status = "FAIL" if regressed else "ok"
        print(
            f"  {key:{width}s}  {base_rate:10.2f} -> {fresh_rate:10.2f} "
            f"({change:+7.1%})  {status}"
        )
        if regressed:
            failures.append(
                f"{key}: {base_rate:.2f} -> {fresh_rate:.2f} slices/s ({change:+.1%})"
            )

    for key in sorted(set(fresh) - set(baseline)):
        print(f"  {key:{width}s}  (new)       -> {fresh[key]:10.2f}            ok")

    if failures:
        print(
            f"\nPerformance regression gate FAILED "
            f"(>{args.threshold:.0%} slowdown on {len(failures)} key(s)):"
        )
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print(f"\nPerformance regression gate passed (threshold {args.threshold:.0%}).")
    return 0


if __name__ == "__main__":
    sys.exit(main())
