"""Shared I/O for the benchmark suite's perf-trajectory file.

``BENCH_ep.json`` is co-owned by several benchmarks (the EP-kernel bench
writes the top-level trajectory, the MCMC bench its ``mcmc`` entry); every
writer must merge its own keys into the existing payload rather than
overwrite the file, so the single merge protocol lives here.
"""

import json
from pathlib import Path
from typing import Dict

#: The perf trajectory file in the repo root (uploaded as a CI artifact).
BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_ep.json"


def merge_bench_entries(entries: Dict, path: Path = BENCH_PATH) -> None:
    """Merge top-level *entries* into the JSON trajectory file at *path*.

    Existing keys owned by other benchmarks are preserved; an unreadable or
    corrupt file is replaced rather than crashing the benchmark.
    """
    payload = {}
    if path.exists():
        try:
            payload = json.loads(path.read_text())
        except (json.JSONDecodeError, OSError):
            payload = {}
    payload.update(entries)
    path.write_text(json.dumps(payload, indent=2) + "\n")
