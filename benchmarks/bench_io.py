"""Shared I/O for the benchmark suite's perf-trajectory file.

``BENCH_ep.json`` is co-owned by several benchmarks (the EP-kernel bench
writes the top-level trajectory, the MCMC bench its ``mcmc`` entry); every
writer must merge its own keys into the existing payload rather than
overwrite the file, so the single merge protocol lives here.
"""

import json
from pathlib import Path
from typing import Dict

#: The perf trajectory file in the repo root (uploaded as a CI artifact).
BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_ep.json"


def deep_merge(base: Dict, entries: Dict) -> Dict:
    """Recursively merge *entries* into *base* (in place) and return it.

    Nested dicts merge key-by-key; every other value type replaces.  The
    recursion is what lets benchmarks with *different* workload metadata
    co-own one file: a writer whose section carries its own ``workload``
    block no longer clobbers another section's block, because only the
    leaves it actually measured are replaced.
    """
    for key, value in entries.items():
        if isinstance(value, dict) and isinstance(base.get(key), dict):
            deep_merge(base[key], value)
        else:
            base[key] = value
    return base


def merge_bench_entries(entries: Dict, path: Path = BENCH_PATH) -> None:
    """Deep-merge *entries* into the JSON trajectory file at *path*.

    Existing keys owned by other benchmarks are preserved — including
    nested per-section ``workload`` blocks (see :func:`deep_merge`); an
    unreadable or corrupt file is replaced rather than crashing the
    benchmark.
    """
    payload = {}
    if path.exists():
        try:
            payload = json.loads(path.read_text())
        except (json.JSONDecodeError, OSError):
            payload = {}
    deep_merge(payload, entries)
    path.write_text(json.dumps(payload, indent=2) + "\n")
