"""Benchmark: real-trace ingestion throughput (lines/second).

Synthesises a large ``perf stat -I -x,`` capture and an equivalent JSONL
counter dump (deterministic content, written to tmp), then times the full
:class:`repro.perfio.PerfTraceSource` construction — read, parse, schema
mapping, lowering to :class:`SamplingRecord`s.  The best-of-rounds
``lines_per_second`` rates merge into ``BENCH_ep.json`` under ``ingest``
and are gated by ``check_regression.py`` exactly like the engine's
``slices_per_second`` keys.
"""

import json
import os
import random
import time

import pytest

from bench_io import merge_bench_entries
from repro.perfio import PerfTraceSource

_FULL = bool(os.environ.get("REPRO_FULL", ""))

N_INTERVALS = 4000 if _FULL else 1500
EVENTS = (
    "cycles",
    "instructions",
    "branches",
    "branch-misses",
    "cache-references",
    "cache-misses",
    "L1-dcache-loads",
    "L1-dcache-load-misses",
)
ROUNDS = 3

_BASE = {
    "cycles": 2.5e6,
    "instructions": 1.8e6,
    "branches": 3.2e5,
    "branch-misses": 9e3,
    "cache-references": 4.5e4,
    "cache-misses": 1.1e4,
    "L1-dcache-loads": 5.9e5,
    "L1-dcache-load-misses": 2.3e4,
}


def _readings():
    rng = random.Random(20260808)
    for interval in range(N_INTERVALS):
        ts = 0.100 * (interval + 1)
        for event in EVENTS:
            value = int(_BASE[event] * (1.0 + 0.08 * rng.uniform(-1, 1)))
            pct = 50.0 + rng.uniform(-2.5, 2.5)
            yield ts, event, value, pct


def _write_stat_csv(path):
    with open(path, "w", encoding="utf-8") as handle:
        handle.write("# started on Thu Aug  6 09:14:02 2026\n")
        for ts, event, value, pct in _readings():
            run_ns = int(1e8 * pct / 100.0)
            handle.write(f"{ts:.6f},{value},,{event},{run_ns},{pct:.2f},,\n")


def _write_jsonl(path):
    with open(path, "w", encoding="utf-8") as handle:
        for ts, event, value, pct in _readings():
            handle.write(
                json.dumps(
                    {
                        "ts": ts,
                        "event": event,
                        "value": value,
                        "enabled": 100000000,
                        "running": int(1e8 * pct / 100.0),
                    }
                )
                + "\n"
            )


def _ingest_rate(path, fmt):
    """Best-of-ROUNDS full-ingestion throughput in source lines/second."""
    best = 0.0
    for _ in range(ROUNDS):
        started = time.perf_counter()
        source = PerfTraceSource("bench", path, format=fmt)
        elapsed = time.perf_counter() - started
        assert source.n_ticks == N_INTERVALS
        assert source.stats.skipped_lines == 0
        rate = source.stats.total_lines / elapsed if elapsed > 0 else 0.0
        best = max(best, rate)
    return best


@pytest.mark.benchmark(group="ingest")
def test_bench_ingest_lines_per_second(benchmark, tmp_path):
    csv_path = tmp_path / "capture.csv"
    jsonl_path = tmp_path / "capture.jsonl"
    _write_stat_csv(csv_path)
    _write_jsonl(jsonl_path)

    rates = {}

    def run():
        rates["stat-csv"] = _ingest_rate(csv_path, "stat-csv")
        rates["jsonl"] = _ingest_rate(jsonl_path, "jsonl")
        return rates

    benchmark.pedantic(run, iterations=1, rounds=1)

    total_lines = N_INTERVALS * len(EVENTS)
    print(f"\nIngest throughput — {N_INTERVALS} intervals x {len(EVENTS)} events")
    for fmt, rate in rates.items():
        print(f"  {fmt:8s}: {rate:10.0f} lines/s (best of {ROUNDS} rounds)")

    merge_bench_entries(
        {
            "ingest": {
                "benchmark": "perfio-ingest",
                "workload": {
                    "n_intervals": N_INTERVALS,
                    "n_events": len(EVENTS),
                    "total_lines": total_lines,
                },
                "lines_per_second": {
                    fmt: round(rate, 2) for fmt, rate in rates.items()
                },
            }
        }
    )
