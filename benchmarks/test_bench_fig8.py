"""Benchmark regenerating Fig. 8: error scaling with the number of events."""

import os

import pytest

from repro.experiments import fig8_scaling

_FULL = bool(os.environ.get("REPRO_FULL", ""))


@pytest.mark.benchmark(group="fig8")
def test_bench_fig8_scaling(benchmark):
    counter_counts = (10, 15, 20, 25, 30, 35) if _FULL else (10, 20, 35)
    arches = ("x86", "ppc64") if _FULL else ("x86",)
    result = benchmark.pedantic(
        lambda: fig8_scaling.run(
            arches=arches, counter_counts=counter_counts, n_ticks=100, seed=0
        ),
        iterations=1,
        rounds=1,
    )
    print(f"\nFig. 8 — scaling errors with the number of events ({result.workload})")
    print(result.to_table())
    for arch in result.error_percent:
        series = result.error_percent[arch]
        largest = max(counter_counts)
        # BayesPerf is the most accurate method at the largest sweep point and
        # grows much more slowly than the Linux baseline.
        assert series["bayesperf"][largest] == min(m[largest] for m in series.values())
        assert result.error_growth(arch, "bayesperf") < result.error_growth(arch, "linux")
