"""Benchmark: scenario-grid pipeline throughput and comparison accuracy.

Runs one grid cell per scheduling policy — the same small KMeans fleet
multiplexed under the paper's overlap-aware scheduler and under round-robin
(the Linux perf behaviour) — through the spec-driven pipeline with the
``linux`` scaling baseline in ``RunSpec.baselines``.  Two things land in
``BENCH_ep.json`` under a ``scenario_grid`` section:

* ``slices_per_second`` per policy — the full pipeline including the
  comparison stage (ground-truth reconstruction + baseline correction), so
  a regression in the comparison layer shows up in the gated throughput.
* fleet-mean error per method per policy — metadata, not gated; it
  documents the accuracy ordering (BayesPerf well under the scaling
  baseline in every cell) the grid exists to demonstrate.
"""

import time

import pytest

from bench_io import merge_bench_entries
from repro.api import EstimatorSpec, Pipeline, RunSpec, SchedulerSpec

N_HOSTS = 2
TICKS = 24
POLICIES = ("overlap", "round-robin")
BASELINES = ("linux",)
ROUNDS = 2  # initial timed rounds per policy; best-of is reported
MAX_ROUNDS = 5


def _grid_spec(policy):
    return RunSpec.fleet(
        N_HOSTS,
        "KMeans",
        n_ticks=TICKS,
        estimator=EstimatorSpec("analytic"),
        scheduler=SchedulerSpec(policy=policy),
        baselines=BASELINES,
        n_workers=2,
    )


def _run_cell(policy):
    start = time.perf_counter()
    result = Pipeline.from_spec(_grid_spec(policy)).run()
    return time.perf_counter() - start, result


@pytest.mark.benchmark(group="scenario-grid")
def test_bench_scenario_grid(benchmark):
    total_slices = N_HOSTS * TICKS
    timings = {policy: [] for policy in POLICIES}
    reports = {}

    def compare():
        rounds = ROUNDS
        while True:
            for policy in POLICIES:
                elapsed, result = _run_cell(policy)
                timings[policy].append(elapsed)
                reports[policy] = result.comparison
            if len(timings[POLICIES[0]]) >= rounds:
                # Escalate only while timings straddle a 2x spread (noisy box).
                spreads = [
                    max(timings[p]) / min(timings[p]) for p in POLICIES
                ]
                if max(spreads) < 2.0 or len(timings[POLICIES[0]]) >= MAX_ROUNDS:
                    return timings
                rounds += 1

    benchmark.pedantic(compare, iterations=1, rounds=1)

    throughput = {
        policy: total_slices / min(timings[policy]) for policy in POLICIES
    }
    errors = {
        policy: {
            method: round(reports[policy].mean_error_percent(method), 2)
            for method in reports[policy].methods
        }
        for policy in POLICIES
    }

    print(f"\nscenario grid — {N_HOSTS} hosts x {TICKS} ticks, baselines={BASELINES}")
    for policy in POLICIES:
        print(
            f"  {policy:12s}: {throughput[policy]:7.1f} slices/s, "
            f"errors {errors[policy]}"
        )

    merge_bench_entries(
        {
            "scenario_grid": {
                "benchmark": "scenario-grid",
                "workload": {
                    "arch": "x86",
                    "n_hosts": N_HOSTS,
                    "ticks_per_host": TICKS,
                    "workload": "KMeans",
                    "baselines": list(BASELINES),
                },
                "slices_per_second": {
                    policy: round(throughput[policy], 2) for policy in POLICIES
                },
                "fleet_mean_error_percent": errors,
                "rounds": {policy: len(timings[policy]) for policy in POLICIES},
            }
        }
    )

    # The grid's raison d'être: the engine beats the scaling baseline in
    # every cell, under both multiplexing policies.
    for policy in POLICIES:
        assert errors[policy]["bayesperf"] < errors[policy]["linux"], (
            f"BayesPerf did not beat the linux baseline under {policy}: "
            f"{errors[policy]}"
        )
