"""Benchmarks regenerating Fig. 3 (read latency) and Table 1 (area/power)."""

import pytest

from repro.experiments import fig3_read_latency, table1_area_power


@pytest.mark.benchmark(group="fig3")
def test_bench_fig3_read_latency(benchmark):
    result = benchmark(fig3_read_latency.run)
    print("\nFig. 3 — counter read latency (host cycles)")
    print(result.to_table())
    assert result.overhead_vs_linux("ppc64", "bayesperf-accelerator") < 0.02
    ratio = result.cycles["x86"]["bayesperf-cpu"] / result.cycles["x86"]["linux"]
    assert 6.0 < ratio < 12.0


@pytest.mark.benchmark(group="table1")
def test_bench_table1_area_power(benchmark):
    result = benchmark(table1_area_power.run)
    print("\nTable 1 — area & power of the BayesPerf FPGA")
    print(result.to_table())
    efficiency = result.power_efficiency()
    print(f"power efficiency vs host CPU TDP: {efficiency}")
    assert efficiency["ppc64-CAPI"] > efficiency["x86-PCIe"] > 4.0
