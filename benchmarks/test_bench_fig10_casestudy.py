"""Benchmarks regenerating Fig. 10 (training time) and the §6.3 decision-quality study."""

import os

import pytest

from repro.experiments import casestudy, fig10_training

_FULL = bool(os.environ.get("REPRO_FULL", ""))


@pytest.mark.benchmark(group="fig10")
def test_bench_fig10_training_time(benchmark):
    iterations = 2500 if _FULL else 1500
    result = benchmark.pedantic(
        lambda: fig10_training.run(iterations=iterations, seed=1), iterations=1, rounds=1
    )
    print("\nFig. 10 — decrease in training time due to BayesPerf")
    print(result.to_table())
    # Better (and fresher) inputs never converge later than the Linux baseline.
    assert result.reduction_vs_linux("bayesperf-acc") >= -0.05
    assert all(len(curve) == iterations for curve in result.curves.values())


@pytest.mark.benchmark(group="casestudy")
def test_bench_casestudy_decision_quality(benchmark):
    result = benchmark.pedantic(
        lambda: casestudy.run(
            train_iterations=800 if _FULL else 500,
            cf_observations=400 if _FULL else 250,
            episodes=200 if _FULL else 120,
            seed=1,
        ),
        iterations=1,
        rounds=1,
    )
    print("\n§6.3 — decision quality of the ML-based IO schedulers")
    print(result.to_table())
    # The RL scheduler beats random NIC placement when fed BayesPerf-corrected
    # counters, and BayesPerf inputs never make its decisions worse than
    # Linux-scaled inputs.
    rl = result.results["reinforcement-learning"]
    assert result.scheduler_improvement("reinforcement-learning") > 0.0
    assert rl.mean_regret["bayesperf-acc"] <= rl.mean_regret["linux"] + 1e-9
    # The collaborative-filtering scheduler is evaluated at the paper's 75%
    # sparsity; at this reduced scale it only has to stay within a few points
    # of random placement (see EXPERIMENTS.md).
    assert result.scheduler_improvement("collaborative-filtering") > -0.15
