"""Benchmark: reference EP loop vs. the compiled vectorized EP kernel.

Replays the 64-host fleet workload (same shape as the fleet throughput
bench) through three inference configurations sharing one engine each:

* ``reference`` — dict-keyed :class:`ExpectationPropagation` per slice
  (``use_compiled_kernel=False``), the pre-kernel status quo;
* ``compiled``  — the index-compiled kernel, one record per call;
* ``batched``   — the kernel's multi-record entry point, one call per
  (signature, slot) batch across all hosts via ``process_batch``.

Acceptance: the batched kernel reaches >= 3x the reference slices/sec and
its posterior means agree with the reference within 1e-8 (relative).  The
measured trajectory is written to ``BENCH_ep.json`` in the repo root.
"""

import os
import time

import pytest

from bench_io import merge_bench_entries
from repro.core.engine import BayesPerfEngine
from repro.events.profiles import standard_profiling_events
from repro.events.registry import catalog_for
from repro.pmu.sampling import MultiplexedSampler
from repro.scheduling.cache import cached_schedule
from repro.uarch.machine import Machine, MachineConfig
from repro.workloads.registry import get_workload

_FULL = bool(os.environ.get("REPRO_FULL", ""))

N_HOSTS = 96 if _FULL else 64
TICKS_PER_HOST = 3 if _FULL else 2
ROUNDS = 2  # initial timed rounds per mode; best-of is compared
MAX_ROUNDS = 6  # escalation ceiling when a loaded machine makes timing noisy
MODES = ("reference", "compiled", "batched")


def _fleet_records():
    """Per-host sampled records for the 64-host fleet workload."""
    catalog = catalog_for("x86")
    events = standard_profiling_events(catalog)
    schedule = cached_schedule(catalog, events, kind="overlap")
    spec = get_workload("steady")
    hosts = []
    for host in range(N_HOSTS):
        trace = Machine(MachineConfig(), spec, seed=host).run(TICKS_PER_HOST)
        sampled = MultiplexedSampler(catalog, schedule, seed=host + 1, samples_per_tick=4)
        hosts.append(sampled.sample(trace).records)
    return catalog, events, hosts


def _run_mode(mode, engines, hosts):
    """Solve every host's slices in the given mode; returns (elapsed, estimates).

    ``estimates[h][tick]`` maps event -> posterior mean for host ``h``.
    """
    engine = engines[mode]
    estimates = [[] for _ in hosts]
    start = time.perf_counter()
    if mode == "batched":
        states = [None] * len(hosts)
        for slot in range(TICKS_PER_HOST):
            items = [(states[h], records[slot]) for h, records in enumerate(hosts)]
            for h, (report, state) in enumerate(engine.process_batch(items)):
                states[h] = state
                estimates[h].append(report.means())
    else:
        for h, records in enumerate(hosts):
            engine.reset()
            for record in records:
                estimates[h].append(engine.process_record(record).means())
    return time.perf_counter() - start, estimates


@pytest.mark.benchmark(group="ep-kernel")
def test_bench_ep_kernel_vs_reference(benchmark):
    catalog, events, hosts = _fleet_records()
    engines = {
        "reference": BayesPerfEngine(catalog, events, use_compiled_kernel=False),
        "compiled": BayesPerfEngine(catalog, events, use_compiled_kernel=True),
        "batched": BayesPerfEngine(catalog, events, use_compiled_kernel=True),
    }
    total_slices = sum(len(records) for records in hosts)
    timings = {mode: [] for mode in MODES}
    estimates = {}

    def _best(mode):
        return min(timings[mode])

    def compare():
        # Interleave rounds so machine-load drift hits every mode equally,
        # and escalate with further interleaved rounds if noise inverts the
        # expected margin (same protocol as the fleet throughput bench).
        for _ in range(ROUNDS):
            for mode in MODES:
                elapsed, estimates[mode] = _run_mode(mode, engines, hosts)
                timings[mode].append(elapsed)
        while (
            _best("reference") / _best("batched") <= 3.0
            and len(timings["batched"]) < MAX_ROUNDS
        ):
            for mode in MODES:
                elapsed, estimates[mode] = _run_mode(mode, engines, hosts)
                timings[mode].append(elapsed)
        return timings

    benchmark.pedantic(compare, iterations=1, rounds=1)

    throughput = {mode: total_slices / _best(mode) for mode in MODES}
    speedup = {mode: throughput[mode] / throughput["reference"] for mode in MODES}

    # Correctness: compiled/batched posterior means track the reference.
    max_gap = 0.0
    for mode in ("compiled", "batched"):
        for want_host, got_host in zip(estimates["reference"], estimates[mode]):
            for want, got in zip(want_host, got_host):
                for event, value in want.items():
                    gap = abs(got[event] - value) / max(abs(value), abs(got[event]), 1e-12)
                    max_gap = max(max_gap, gap)
    assert max_gap < 1e-8, f"compiled kernel diverged from reference ({max_gap:.3e})"

    print(f"\nEP kernel — {N_HOSTS} hosts x {TICKS_PER_HOST} quanta ({total_slices} slices)")
    for mode in MODES:
        print(
            f"  {mode:9s}: {throughput[mode]:8.1f} slices/s "
            f"(best of {len(timings[mode])} rounds, {speedup[mode]:.2f}x reference)"
        )
    print(f"  max relative posterior-mean gap vs reference: {max_gap:.3e}")

    # Merge into the existing trajectory file rather than overwrite it, so
    # entries owned by other benchmarks (e.g. the batched-MCMC bench's
    # ``mcmc`` section) survive a re-run of this one.
    merge_bench_entries(
        {
            "benchmark": "ep-kernel",
            "workload": {
                "arch": "x86",
                "n_hosts": N_HOSTS,
                "ticks_per_host": TICKS_PER_HOST,
                "total_slices": total_slices,
                "n_events": len(events),
            },
            "slices_per_second": {m: round(throughput[m], 2) for m in MODES},
            "speedup_vs_reference": {m: round(speedup[m], 2) for m in MODES},
            "max_relative_posterior_gap": max_gap,
            "rounds": {m: len(timings[m]) for m in MODES},
        }
    )

    # The point of the kernel: batched vectorized solves crush the
    # dict-keyed reference loop, and single-record solves already win.
    assert speedup["compiled"] > 1.0
    assert speedup["batched"] >= 3.0, (
        f"batched kernel only {speedup['batched']:.2f}x reference (need >= 3x)"
    )
