"""The bench trajectory file's merge protocol and its CI regression gate.

``BENCH_ep.json`` is co-owned by benchmarks with *different* workload
metadata, so the merge must be a deep merge: a section that carries its own
``workload`` block must not clobber another section's block (the historical
shallow ``dict.update`` did exactly that once heterogeneous keys appeared).
``check_regression.py`` then gates every ``slices_per_second`` leaf — at
any nesting depth — against the committed baseline.
"""

import json

import check_regression
from bench_io import deep_merge, merge_bench_entries


def _homogeneous_payload():
    return {
        "benchmark": "ep-kernel",
        "workload": {"arch": "x86", "n_hosts": 64, "n_events": 44},
        "slices_per_second": {"reference": 137.3, "batched": 896.24},
    }


def _hetero_entries():
    return {
        "megabatch": {
            "workload": {"n_hosts": 64, "distinct_signatures": 148},
            "solve": {
                "workload": {"ep_damping": 0.6},
                "slices_per_second": {"fragmented": 234.5, "megabatch": 831.8},
            },
        }
    }


class TestDeepMerge:
    def test_heterogeneous_keys_do_not_clobber_the_64_host_block(self):
        payload = _homogeneous_payload()
        deep_merge(payload, _hetero_entries())
        # The homogeneous bench's workload metadata survives intact...
        assert payload["workload"] == {"arch": "x86", "n_hosts": 64, "n_events": 44}
        assert payload["slices_per_second"]["batched"] == 896.24
        # ...and the heterogeneous section landed beside it.
        assert payload["megabatch"]["solve"]["slices_per_second"]["megabatch"] == 831.8

    def test_sections_merge_key_by_key(self):
        payload = _homogeneous_payload()
        deep_merge(payload, _hetero_entries())
        # A later writer adding a sibling subsection keeps the earlier one.
        deep_merge(
            payload,
            {"megabatch": {"fleet": {"slices_per_second": {"megabatch": 854.4}}}},
        )
        assert payload["megabatch"]["solve"]["workload"] == {"ep_damping": 0.6}
        assert payload["megabatch"]["fleet"]["slices_per_second"] == {
            "megabatch": 854.4
        }

    def test_leaves_replace_rather_than_merge(self):
        payload = {"slices_per_second": {"batched": 1.0}, "rounds": {"batched": 2}}
        deep_merge(payload, {"slices_per_second": {"batched": 2.0}})
        assert payload["slices_per_second"]["batched"] == 2.0
        assert payload["rounds"] == {"batched": 2}


class TestMergeBenchEntries:
    def test_merge_into_existing_file_preserves_other_sections(self, tmp_path):
        path = tmp_path / "BENCH.json"
        path.write_text(json.dumps(_homogeneous_payload()))
        merge_bench_entries(_hetero_entries(), path=path)
        payload = json.loads(path.read_text())
        assert payload["workload"]["n_events"] == 44
        assert payload["megabatch"]["workload"]["distinct_signatures"] == 148

    def test_corrupt_file_is_replaced(self, tmp_path):
        path = tmp_path / "BENCH.json"
        path.write_text("{not json")
        merge_bench_entries({"a": 1}, path=path)
        assert json.loads(path.read_text()) == {"a": 1}


class TestRegressionGate:
    def test_throughput_keys_flatten_nested_sections(self):
        payload = _homogeneous_payload()
        deep_merge(payload, _hetero_entries())
        rates = check_regression.throughput_keys(payload)
        assert rates["slices_per_second.batched"] == 896.24
        assert rates["megabatch.solve.slices_per_second.fragmented"] == 234.5
        assert rates["megabatch.solve.slices_per_second.megabatch"] == 831.8

    def test_ingest_lines_per_second_is_a_gated_rate(self):
        payload = _homogeneous_payload()
        deep_merge(
            payload,
            {
                "ingest": {
                    "workload": {"n_intervals": 1500},
                    "lines_per_second": {"stat-csv": 51000.0, "jsonl": 38000.0},
                }
            },
        )
        rates = check_regression.throughput_keys(payload)
        assert rates["ingest.lines_per_second.stat-csv"] == 51000.0
        assert rates["ingest.lines_per_second.jsonl"] == 38000.0
        # ...and it is gated like any other throughput key.
        assert rates["slices_per_second.batched"] == 896.24

    def test_ingest_regression_trips_the_gate(self, tmp_path):
        baseline = _homogeneous_payload()
        deep_merge(
            baseline, {"ingest": {"lines_per_second": {"stat-csv": 51000.0}}}
        )
        fresh = json.loads(json.dumps(baseline))
        fresh["ingest"]["lines_per_second"]["stat-csv"] = 10000.0
        assert self._gate(tmp_path, baseline, fresh) == 1

    def _gate(self, tmp_path, baseline, fresh, threshold=0.30):
        base = tmp_path / "baseline.json"
        new = tmp_path / "fresh.json"
        base.write_text(json.dumps(baseline))
        new.write_text(json.dumps(fresh))
        return check_regression.main(
            [str(base), str(new), "--threshold", str(threshold)]
        )

    def test_within_threshold_passes(self, tmp_path):
        baseline = _homogeneous_payload()
        fresh = json.loads(json.dumps(baseline))
        fresh["slices_per_second"]["batched"] *= 0.8  # -20% < 30% threshold
        assert self._gate(tmp_path, baseline, fresh) == 0

    def test_nested_heterogeneous_key_is_gated(self, tmp_path):
        baseline = _homogeneous_payload()
        deep_merge(baseline, _hetero_entries())
        fresh = json.loads(json.dumps(baseline))
        fresh["megabatch"]["solve"]["slices_per_second"]["megabatch"] = 100.0
        assert self._gate(tmp_path, baseline, fresh) == 1

    def test_disappeared_key_fails(self, tmp_path):
        baseline = _homogeneous_payload()
        deep_merge(baseline, _hetero_entries())
        fresh = json.loads(json.dumps(baseline))
        del fresh["megabatch"]
        assert self._gate(tmp_path, baseline, fresh) == 1

    def test_new_keys_are_allowed(self, tmp_path):
        baseline = _homogeneous_payload()
        fresh = json.loads(json.dumps(baseline))
        deep_merge(fresh, _hetero_entries())
        assert self._gate(tmp_path, baseline, fresh) == 0
