"""Benchmark: batched per-site tilted MCMC vs. its object-based twin.

Replays the 64-host fleet workload (same shape as the EP-kernel bench)
through the ``"mcmc"`` moment estimator — per-site tilted-moment sampling
inside the EP loop, the accelerator's actual inner loop — in its two
configurations:

* ``object``  — :class:`~repro.fg.ep.ReferenceSiteMCMC`, the reference twin
  walking Python factor objects per chain step, one record at a time
  (``use_compiled_kernel=False``);
* ``batched`` — :class:`~repro.fg.mcmc.BatchedSiteMCMC` driving the
  compiled kernel's buffers, every (signature, slot) group advancing all of
  its records' site chains in lock-step via ``process_batch``.

Both paths draw each record's chains from the same per-record seed, so
their estimates must agree to floating-point noise — the throughput
comparison is estimator-for-estimator.  Acceptance: the batched sampler
reaches >= 2x the object-based slices/sec.  The measured numbers are
*appended* to ``BENCH_ep.json`` as a ``tilted-mcmc`` entry (existing
entries are preserved).
"""

import os
import time

import pytest

from bench_io import merge_bench_entries
from repro.core.engine import BayesPerfEngine
from repro.events.profiles import standard_profiling_events
from repro.events.registry import catalog_for
from repro.pmu.sampling import MultiplexedSampler
from repro.scheduling.cache import cached_schedule
from repro.uarch.machine import Machine, MachineConfig
from repro.workloads.registry import get_workload

_FULL = bool(os.environ.get("REPRO_FULL", ""))

N_HOSTS = 96 if _FULL else 64
TICKS_PER_HOST = 2
MCMC_SAMPLES = 40
MCMC_BURN_IN = 60
EP_ITERATIONS = 3
ROUNDS = 1  # the object twin is slow; escalate only if noise inverts the margin
MAX_ROUNDS = 3
MODES = ("object", "batched")


def _fleet_records():
    catalog = catalog_for("x86")
    events = standard_profiling_events(catalog)
    schedule = cached_schedule(catalog, events, kind="overlap")
    spec = get_workload("steady")
    hosts = []
    for host in range(N_HOSTS):
        trace = Machine(MachineConfig(), spec, seed=host).run(TICKS_PER_HOST)
        sampled = MultiplexedSampler(catalog, schedule, seed=host + 1, samples_per_tick=4)
        hosts.append(sampled.sample(trace).records)
    return catalog, events, hosts


def _run_mode(mode, engines, hosts):
    """Solve every host's slices in the given mode; returns (elapsed, estimates)."""
    engine = engines[mode]
    estimates = [[] for _ in hosts]
    start = time.perf_counter()
    if mode == "batched":
        states = [None] * len(hosts)
        for slot in range(TICKS_PER_HOST):
            items = [(states[h], records[slot]) for h, records in enumerate(hosts)]
            for h, (report, state) in enumerate(engine.process_batch(items)):
                states[h] = state
                estimates[h].append(report.means())
    else:
        for h, records in enumerate(hosts):
            engine.reset()
            for record in records:
                estimates[h].append(engine.process_record(record).means())
    return time.perf_counter() - start, estimates


@pytest.mark.benchmark(group="tilted-mcmc")
def test_bench_batched_site_mcmc_vs_object_twin(benchmark):
    catalog, events, hosts = _fleet_records()
    kwargs = dict(
        moment_estimator="mcmc",
        mcmc_samples=MCMC_SAMPLES,
        mcmc_burn_in=MCMC_BURN_IN,
        ep_max_iterations=EP_ITERATIONS,
    )
    engines = {
        "object": BayesPerfEngine(catalog, events, use_compiled_kernel=False, **kwargs),
        "batched": BayesPerfEngine(catalog, events, use_compiled_kernel=True, **kwargs),
    }
    total_slices = sum(len(records) for records in hosts)
    timings = {mode: [] for mode in MODES}
    estimates = {}

    def _best(mode):
        return min(timings[mode])

    def compare():
        for _ in range(ROUNDS):
            for mode in MODES:
                elapsed, estimates[mode] = _run_mode(mode, engines, hosts)
                timings[mode].append(elapsed)
        while (
            _best("object") / _best("batched") <= 2.0
            and len(timings["batched"]) < MAX_ROUNDS
        ):
            for mode in MODES:
                elapsed, estimates[mode] = _run_mode(mode, engines, hosts)
                timings[mode].append(elapsed)
        return timings

    benchmark.pedantic(compare, iterations=1, rounds=1)

    throughput = {mode: total_slices / _best(mode) for mode in MODES}
    speedup = throughput["batched"] / throughput["object"]

    # Correctness: both paths run the same per-record, per-site chains.
    max_gap = 0.0
    for want_host, got_host in zip(estimates["object"], estimates["batched"]):
        for want, got in zip(want_host, got_host):
            for event, value in want.items():
                gap = abs(got[event] - value) / max(abs(value), abs(got[event]), 1e-12)
                max_gap = max(max_gap, gap)
    assert max_gap < 1e-6, f"batched site MCMC diverged from the object twin ({max_gap:.3e})"

    print(
        f"\ntilted-MCMC estimator — {N_HOSTS} hosts x {TICKS_PER_HOST} quanta "
        f"({total_slices} slices, {EP_ITERATIONS} EP iterations, "
        f"{MCMC_SAMPLES}+{MCMC_BURN_IN} steps/site chain)"
    )
    for mode in MODES:
        print(
            f"  {mode:8s}: {throughput[mode]:8.1f} slices/s "
            f"(best of {len(timings[mode])} rounds)"
        )
    print(f"  batched speedup: {speedup:.2f}x object sampler")
    print(f"  max relative posterior-mean gap: {max_gap:.3e}")

    merge_bench_entries(
        {
            "tilted-mcmc": {
                "workload": {
                    "arch": "x86",
                    "n_hosts": N_HOSTS,
                    "ticks_per_host": TICKS_PER_HOST,
                    "total_slices": total_slices,
                    "ep_iterations": EP_ITERATIONS,
                    "mcmc_samples": MCMC_SAMPLES,
                    "mcmc_burn_in": MCMC_BURN_IN,
                },
                "slices_per_second": {m: round(throughput[m], 2) for m in MODES},
                "speedup_batched_vs_object": round(speedup, 2),
                "max_relative_posterior_gap": max_gap,
                "rounds": {m: len(timings[m]) for m in MODES},
            }
        }
    )

    assert speedup >= 2.0, (
        f"batched site MCMC only {speedup:.2f}x the object twin (need >= 2x)"
    )
