"""Benchmark bootstrap: make ``src/`` (and this directory) importable
without an installed package."""

import sys
from pathlib import Path

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

# The benchmarks share helpers (bench_io) as sibling modules.
_HERE = Path(__file__).resolve().parent
if str(_HERE) not in sys.path:
    sys.path.insert(0, str(_HERE))
