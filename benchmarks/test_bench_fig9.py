"""Benchmark regenerating Fig. 9: PCIe bandwidth under isolation vs contention."""

import pytest

from repro.experiments import fig9_pcie_contention


@pytest.mark.benchmark(group="fig9")
def test_bench_fig9_pcie_contention(benchmark):
    result = benchmark(fig9_pcie_contention.run)
    print("\nFig. 9 — PCIe bandwidth: isolated vs contention")
    print(result.to_table())
    # Contention hurts large transfers (up to ~1.8x in the paper) and barely
    # affects small, latency-bound ones.
    assert result.max_slowdown() > 0.8
    assert result.slowdown(256) < 0.2
    assert result.isolated_gbps[2**22] > 10.0
