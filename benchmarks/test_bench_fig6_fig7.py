"""Benchmark regenerating Fig. 6 / Fig. 7 and the §6.2 headline numbers.

By default a representative per-category subset of the HiBench suite is used
so the benchmark completes in a few minutes; set ``REPRO_FULL=1`` to sweep all
28 workloads as the paper does.
"""

import os

import pytest

from repro.experiments import fig6_hibench_error, fig7_improvement

_FULL = bool(os.environ.get("REPRO_FULL", ""))


@pytest.mark.benchmark(group="fig6")
def test_bench_fig6_hibench_error(benchmark):
    result = benchmark.pedantic(
        lambda: fig6_hibench_error.run(quick=not _FULL, n_ticks=110, seed=0),
        iterations=1,
        rounds=1,
    )
    print("\nFig. 6 — error in performance counter measurements across HiBench")
    print(result.to_table())
    for arch in result.error_percent:
        linux = result.average(arch, "linux")
        bayes = result.average(arch, "bayesperf")
        reduction = result.reduction_factor(arch)
        print(f"{arch}: Linux {linux:.1f}% -> BayesPerf {bayes:.1f}% ({reduction:.2f}x reduction)")
        # Headline claim: BayesPerf reduces the average multiplexing error by
        # a large factor (5.28x in the paper) and lands below ~12%.
        assert reduction > 2.0
        assert bayes < linux
        assert bayes < 15.0

    fig7 = fig7_improvement.from_fig6(result)
    print("\nFig. 7 — normalized improvement of BayesPerf")
    print(fig7.to_table())
    for arch in fig7.improvement:
        assert fig7.average(arch, "linux") > 2.0
