"""Benchmark: fleet throughput — per-host serial construction vs. worker pool.

Runs the same ≥64-host fleet twice: once in ``serial`` mode (a single worker
that builds a dedicated engine and overlap schedule for every host — the
pre-fleet status quo) and once in ``pool`` mode (hosts sharded across
workers, one engine + cached catalog/schedule per (arch, event-set) key).
Both modes produce identical estimates; the pool must win on throughput by
amortising per-host construction.
"""

import os

import pytest

from repro.fleet.service import FleetService

_FULL = bool(os.environ.get("REPRO_FULL", ""))

N_HOSTS = 96 if _FULL else 64
TICKS_PER_HOST = 3 if _FULL else 2
N_WORKERS = 4
ROUNDS = 2  # initial timed rounds per mode; best-of is compared
MAX_ROUNDS = 6  # escalation ceiling when a loaded machine makes timing noisy


def _run_fleet(mode: str) -> "FleetResult":
    service = FleetService("x86", n_workers=N_WORKERS, batch_size=8)
    for index in range(N_HOSTS):
        service.add_host("steady", seed=index, n_ticks=TICKS_PER_HOST)
    return service.run(mode=mode)


@pytest.mark.benchmark(group="fleet")
def test_bench_fleet_pool_vs_serial(benchmark):
    results = {"serial": [], "pool": []}

    def _best(mode):
        return max(results[mode], key=lambda r: r.slices_per_second)

    def compare():
        # Interleave rounds so machine-load drift hits both modes equally.
        # On a noisy shared runner a single bad round can invert the ~1.1x
        # margin, so escalate with further round pairs (still interleaved,
        # still best-of for BOTH modes) before concluding anything.
        for _ in range(ROUNDS):
            for mode in ("serial", "pool"):
                results[mode].append(_run_fleet(mode))
        while (
            _best("pool").slices_per_second <= _best("serial").slices_per_second
            and len(results["pool"]) < MAX_ROUNDS
        ):
            for mode in ("serial", "pool"):
                results[mode].append(_run_fleet(mode))
        return results

    benchmark.pedantic(compare, iterations=1, rounds=1)

    best = {mode: _best(mode) for mode in results}
    serial, pool = best["serial"], best["pool"]
    speedup = pool.slices_per_second / serial.slices_per_second

    print(f"\nFleet throughput — {N_HOSTS} hosts x {TICKS_PER_HOST} quanta, {N_WORKERS} workers")
    for mode, result in best.items():
        cache = result.engine_cache
        print(
            f"  {mode:6s}: {result.slices_per_second:8.1f} slices/s "
            f"({result.total_slices} slices in {result.elapsed_seconds:.2f}s, "
            f"engines built: {cache['engines_built']}, cache hits: {cache['hits']})"
        )
    print(f"  pool speedup over per-host serial construction: {speedup:.2f}x")

    # Every host completed end-to-end in both modes.
    for result in (serial, pool):
        assert result.n_hosts == N_HOSTS
        assert result.total_slices == N_HOSTS * TICKS_PER_HOST
        assert result.metrics["hosts_completed"] == N_HOSTS
        assert result.total_dropped == 0
    # Sharing really happened: the pool builds one engine per worker, the
    # serial baseline one per host.
    assert pool.engine_cache["engines_built"] <= N_WORKERS
    assert pool.engine_cache["hits"] >= N_HOSTS - N_WORKERS
    assert serial.engine_cache["engines_built"] == N_HOSTS
    # Same computation, same answers.
    host = next(iter(pool.estimates))
    assert pool.estimates[host].values_equal(serial.estimates[host])
    # The point of the subsystem: shared cached engines beat per-host
    # construction on throughput.
    assert speedup > 1.0, f"worker pool not faster than serial ({speedup:.2f}x)"
