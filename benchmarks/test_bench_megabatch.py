"""Benchmark: cross-signature mega-batching on a heterogeneous 64-host fleet.

Every host monitors its own random subset of the 44-event profiling union,
and the schedule rotation is phase-shifted per host, so a fleet round
fragments into ~50 distinct measured-event signatures per tick (~150 over
three ticks, churning every tick).  Two measurements:

* ``solve`` — the solve stage cold, the path mega-batching rewrites: a
  fresh engine per timed round (signature churn means per-signature kernels
  are *not* amortisable across a realistic fleet round), with slice
  preparation hoisted out of the timed region since both modes share it
  byte-for-byte.  ``fragmented`` compiles + solves one per-signature batch
  per group; ``megabatch`` compiles one canonical full-width structure and
  solves the whole round in one kernel call per tick.  Acceptance: >= 3x.
* ``fleet`` — the same fleet end-to-end through ``process_batch`` with warm
  engines and default EP settings; the shared per-record prepare/finalize
  Python bounds this ratio far below the solve-stage win (Amdahl), so the
  acceptance bar is an honest >= 1.2x.

Both modes must agree **exactly** (padded lanes are bit-exact no-ops) —
the differential suite in ``tests/test_megabatch.py`` pins that property
broadly; this bench re-asserts it on every measured round.

Results merge into ``BENCH_ep.json`` under a ``megabatch`` section with
its own nested workload blocks (the regression gate flattens every
``slices_per_second`` leaf, so these keys ride the same >30% gate as the
homogeneous ones without clobbering their metadata).
"""

import time

import numpy as np
import pytest

from bench_io import merge_bench_entries
from repro.core.engine import BayesPerfEngine
from repro.events.profiles import standard_profiling_events
from repro.events.registry import catalog_for
from repro.pmu.sampling import MultiplexedSampler
from repro.scheduling.cache import cached_schedule
from repro.uarch.machine import Machine, MachineConfig
from repro.workloads.registry import get_workload

N_HOSTS = 64
TICKS = 3
#: Damped EP converges geometrically (delta ~ (1-eta)^k), reaching the 1e-6
#: tolerance at 16 sweeps — a realistic robustness setting that also keeps
#: every record converging rather than stopping after one sweep.
EP_DAMPING = 0.6
EP_ITERATIONS = 16
ROUNDS = 2  # initial timed rounds per mode; best-of is compared
MAX_ROUNDS = 6  # escalation ceiling when a loaded machine makes timing noisy


def _hetero_fleet():
    """Sampled records for a fleet of heterogeneous event subsets.

    Host ``h`` monitors a seeded random subset (12-44 events) of the
    44-event union and starts ``h mod R`` positions into its schedule
    rotation, so signatures churn across hosts *and* ticks.
    """
    catalog = catalog_for("x86")
    union = standard_profiling_events(catalog, n_events=44)
    spec = get_workload("steady")
    hosts = []
    for host in range(N_HOSTS):
        rng = np.random.default_rng(1000 + host)
        size = int(rng.integers(12, 45))
        subset = tuple(
            union[i] for i in sorted(rng.choice(len(union), size=size, replace=False))
        )
        schedule = cached_schedule(catalog, subset)
        offset = host % len(schedule.configurations)
        trace = Machine(MachineConfig(), spec, seed=host).run(offset + TICKS)
        sampled = MultiplexedSampler(
            catalog, schedule, seed=host + 1, samples_per_tick=4
        )
        hosts.append((subset, sampled.sample(trace).records[offset : offset + TICKS]))
    return catalog, union, hosts


def _prepare_rounds(catalog, union, hosts):
    """Prepared slices grouped by (tick, signature) — both modes' shared input."""
    scratch = BayesPerfEngine(
        catalog, union, ep_damping=EP_DAMPING, ep_max_iterations=EP_ITERATIONS
    )
    prepared = []
    rounds = []  # per tick: {signature: [prepared indices]}
    for tick in range(TICKS):
        groups = {}
        for _, records in hosts:
            scratch.reset()
            slice_ = scratch._prepare_slice(records[tick])
            groups.setdefault(slice_.measured, []).append(len(prepared))
            prepared.append(slice_)
        rounds.append(groups)
    return prepared, rounds


def _solve_fragmented(catalog, union, prepared, rounds):
    """Cold per-signature solve: one kernel compile + batch per group."""
    engine = BayesPerfEngine(
        catalog, union, ep_damping=EP_DAMPING, ep_max_iterations=EP_ITERATIONS
    )
    start = time.perf_counter()
    results = []
    for groups in rounds:
        for signature, indices in groups.items():
            kernel, binder = engine._compiled_kernel(prepared[indices[0]])
            solved = engine._solve_group_arrays(
                [prepared[i] for i in indices], kernel, binder
            )
            results.extend(
                (signature, index, solved[slot][0])
                for slot, index in enumerate(indices)
            )
    return time.perf_counter() - start, results


def _solve_megabatch(catalog, union, prepared, rounds):
    """Cold mega-batched solve: one canonical structure, one call per tick."""
    engine = BayesPerfEngine(
        catalog,
        union,
        ep_damping=EP_DAMPING,
        ep_max_iterations=EP_ITERATIONS,
        megabatch=True,
    )
    start = time.perf_counter()
    results = []
    for groups in rounds:
        merged = [
            (signature, [prepared[i] for i in indices])
            for signature, indices in groups.items()
        ]
        solved = engine._solve_megabatch(merged)
        position = 0
        for signature, indices in groups.items():
            for index in indices:
                results.append((signature, index, solved[position][0]))
                position += 1
    return time.perf_counter() - start, results


def _run_fleet(engine, hosts):
    """End-to-end heterogeneous fleet round via ``process_batch``."""
    states = [None] * len(hosts)
    estimates = [[] for _ in hosts]
    start = time.perf_counter()
    for slot in range(TICKS):
        items = [(states[h], records[slot]) for h, (_, records) in enumerate(hosts)]
        for h, (report, state) in enumerate(engine.process_batch(items)):
            states[h] = state
            estimates[h].append(report.means())
    return time.perf_counter() - start, estimates


@pytest.mark.benchmark(group="megabatch")
def test_bench_megabatch_solve_stage(benchmark):
    catalog, union, hosts = _hetero_fleet()
    prepared, rounds = _prepare_rounds(catalog, union, hosts)
    signatures = {signature for groups in rounds for signature in groups}
    total_slices = len(prepared)
    timings = {"fragmented": [], "megabatch": []}
    results = {}

    def _best(mode):
        return min(timings[mode])

    def compare():
        for _ in range(ROUNDS):
            for mode, solver in (
                ("fragmented", _solve_fragmented),
                ("megabatch", _solve_megabatch),
            ):
                elapsed, results[mode] = solver(catalog, union, prepared, rounds)
                timings[mode].append(elapsed)
        while (
            _best("fragmented") / _best("megabatch") <= 3.0
            and len(timings["megabatch"]) < MAX_ROUNDS
        ):
            for mode, solver in (
                ("fragmented", _solve_fragmented),
                ("megabatch", _solve_megabatch),
            ):
                elapsed, results[mode] = solver(catalog, union, prepared, rounds)
                timings[mode].append(elapsed)
        return timings

    benchmark.pedantic(compare, iterations=1, rounds=1)

    # Bit-identity: the mega-batched posterior means equal the fragmented
    # per-signature ones exactly, record for record.
    assert sorted(r[:2] for r in results["fragmented"]) == sorted(
        r[:2] for r in results["megabatch"]
    )
    frag = {r[:2]: r[2] for r in results["fragmented"]}
    mega = {r[:2]: r[2] for r in results["megabatch"]}
    assert frag == mega, "mega-batched solve drifted from per-signature solve"

    throughput = {mode: total_slices / _best(mode) for mode in timings}
    speedup = throughput["megabatch"] / throughput["fragmented"]

    print(
        f"\nmega-batch solve — {N_HOSTS} hetero hosts x {TICKS} ticks "
        f"({total_slices} slices, {len(signatures)} signatures)"
    )
    for mode in timings:
        print(
            f"  {mode:10s}: {throughput[mode]:8.1f} slices/s "
            f"(best of {len(timings[mode])} rounds)"
        )
    print(f"  megabatch speedup vs fragmented: {speedup:.2f}x")

    merge_bench_entries(
        {
            "megabatch": {
                "benchmark": "megabatch-hetero",
                "workload": {
                    "arch": "x86",
                    "n_hosts": N_HOSTS,
                    "ticks_per_host": TICKS,
                    "total_slices": total_slices,
                    "union_events": len(union),
                    "distinct_signatures": len(signatures),
                },
                "solve": {
                    "workload": {
                        "ep_damping": EP_DAMPING,
                        "ep_iterations": EP_ITERATIONS,
                        "cold_engines": True,
                    },
                    "slices_per_second": {
                        mode: round(throughput[mode], 2) for mode in timings
                    },
                    "speedup_megabatch_vs_fragmented": round(speedup, 2),
                    "rounds": {mode: len(timings[mode]) for mode in timings},
                },
            }
        }
    )

    assert speedup >= 3.0, (
        f"mega-batched solve only {speedup:.2f}x the fragmented baseline (need >= 3x)"
    )


@pytest.mark.benchmark(group="megabatch")
def test_bench_megabatch_fleet_end_to_end(benchmark):
    catalog, union, hosts = _hetero_fleet()
    engines = {
        "fragmented": BayesPerfEngine(catalog, union),
        "megabatch": BayesPerfEngine(catalog, union, megabatch=True),
    }
    total_slices = N_HOSTS * TICKS
    timings = {mode: [] for mode in engines}
    estimates = {}

    def _best(mode):
        return min(timings[mode])

    def compare():
        for _ in range(ROUNDS):
            for mode, engine in engines.items():
                elapsed, estimates[mode] = _run_fleet(engine, hosts)
                timings[mode].append(elapsed)
        while (
            _best("fragmented") / _best("megabatch") <= 1.2
            and len(timings["megabatch"]) < MAX_ROUNDS
        ):
            for mode, engine in engines.items():
                elapsed, estimates[mode] = _run_fleet(engine, hosts)
                timings[mode].append(elapsed)
        return timings

    benchmark.pedantic(compare, iterations=1, rounds=1)

    # End-to-end bit-identity between the two engine modes.
    assert estimates["fragmented"] == estimates["megabatch"]

    throughput = {mode: total_slices / _best(mode) for mode in engines}
    speedup = throughput["megabatch"] / throughput["fragmented"]

    print(
        f"\nmega-batch fleet — {N_HOSTS} hetero hosts x {TICKS} ticks "
        f"({total_slices} slices end-to-end)"
    )
    for mode in engines:
        print(
            f"  {mode:10s}: {throughput[mode]:8.1f} slices/s "
            f"(best of {len(timings[mode])} rounds)"
        )
    print(f"  megabatch speedup vs fragmented: {speedup:.2f}x")

    merge_bench_entries(
        {
            "megabatch": {
                "fleet": {
                    "workload": {"engine_defaults": True, "warm_engines": True},
                    "slices_per_second": {
                        mode: round(throughput[mode], 2) for mode in engines
                    },
                    "speedup_megabatch_vs_fragmented": round(speedup, 2),
                    "rounds": {mode: len(timings[mode]) for mode in engines},
                }
            }
        }
    )

    # The end-to-end ratio is Amdahl-bounded by the shared per-record
    # prepare/finalize Python; the solve-stage bench carries the 3x bar.
    assert speedup >= 1.2, (
        f"end-to-end mega-batching only {speedup:.2f}x fragmented (need >= 1.2x)"
    )
