"""Benchmark regenerating Fig. 1: error versus number of multiplexed events."""

import pytest

from repro.experiments import fig1_multiplexing_error


@pytest.mark.benchmark(group="fig1")
def test_bench_fig1_multiplexing_error(benchmark):
    result = benchmark.pedantic(
        lambda: fig1_multiplexing_error.run(
            counter_counts=(10, 15, 20, 25, 30, 35), n_ticks=100, n_runs=2
        ),
        iterations=1,
        rounds=1,
    )
    print("\nFig. 1 — errors due to event multiplexing")
    print(result.to_table())
    assert result.is_monotonically_increasing()
    assert result.error_percent[35] > result.error_percent[10]
