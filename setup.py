"""Setuptools entry point.

Kept alongside ``pyproject.toml`` so that the package can be installed in
environments without network access to build backends (``pip install -e .
--no-use-pep517 --no-build-isolation`` or ``python setup.py develop``).
"""

from setuptools import setup

setup()
