"""Streaming monitoring through the perf-like shim, with uncertainty.

Uses the ``perf_event_open``-style API of the BayesPerf shim (§5): register
events, attach to a workload, step the target forward and poll posterior
estimates with credible intervals — the interface a userspace monitoring tool
would use in place of the Linux perf syscalls.

Run with:  python examples/uncertainty_monitoring.py
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core import BayesPerfShim


def main() -> None:
    shim = BayesPerfShim("x86", seed=3)

    # Register the events a memory-subsystem monitor would care about.
    handles = {
        name: shim.perf_event_open(name)
        for name in (
            "LONGEST_LAT_CACHE.MISS",
            "LONGEST_LAT_CACHE.REFERENCE",
            "L2_RQSTS.MISS",
            "UNC_IIO_DMA_TXN.ALL",
            "CYCLE_ACTIVITY.STALLS_MEM_ANY",
        )
    }

    shim.attach("TeraSort", n_ticks=60)
    shim.enable()
    print("tick  event                              estimate        95% credible interval")
    print("-" * 86)

    tick = 0
    while shim.remaining_ticks > 0:
        processed = shim.step(10)
        tick += processed
        estimate = shim.read(handles["LONGEST_LAT_CACHE.MISS"])
        low, high = estimate.interval(0.95)
        print(
            f"{tick:4d}  LONGEST_LAT_CACHE.MISS            {estimate.mean:12.0f}"
            f"    [{low:12.0f}, {high:12.0f}]"
        )

    print("\nFinal posterior for every registered event:")
    for name, handle in handles.items():
        estimate = shim.read(handle)
        print(
            f"  {name:35s} {estimate.mean:14.1f}  "
            f"+/- {100 * estimate.relative_uncertainty:4.1f}%"
        )

    dropped = shim.user_buffer.dropped
    print(f"\nRing-buffer statistics: {shim.user_buffer.total_pushed} reports pushed, {dropped} dropped")
    shim.close()


if __name__ == "__main__":
    main()
