"""HiBench error sweep: reproduce a slice of Fig. 6 from the public API.

Runs one representative workload per HiBench category on both simulated
microarchitectures and prints the per-workload error of each correction
method, plus the aggregate reduction factor (the paper's headline result).

Run with:  python examples/hibench_error_sweep.py
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.experiments import fig6_hibench_error, fig7_improvement


def main() -> None:
    result = fig6_hibench_error.run(
        arches=("x86", "ppc64"),
        workloads=("Sort", "KMeans", "Join", "PageRank", "NWeight", "FixWindow"),
        n_ticks=110,
        seed=11,
    )
    print("Per-workload measurement error (percent):\n")
    print(result.to_table())

    print()
    for arch in result.error_percent:
        print(
            f"{arch}: Linux {result.average(arch, 'linux'):.1f}% -> "
            f"BayesPerf {result.average(arch, 'bayesperf'):.1f}%  "
            f"({result.reduction_factor(arch):.2f}x error reduction)"
        )

    improvement = fig7_improvement.from_fig6(result)
    print("\nNormalized improvement of BayesPerf (Fig. 7 style):\n")
    print(improvement.to_table())


if __name__ == "__main__":
    main()
