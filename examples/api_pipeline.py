"""Unified API demo: spec-driven runs, streaming results, bounded memory.

Declares a 64-host fleet estimation as a frozen :class:`repro.api.RunSpec`
(per-site tilted MCMC through the estimator registry, chain capture with a
tracefile sink), then consumes it through ``Pipeline.stream()``: per-slice
results arrive while the fleet runs, and the chain recorder is flushed to
the sink after every inference round, so its in-memory buffer stays bounded
by one round instead of growing for the whole run.  The flushed file is then
read back and replayed through the accelerator co-simulation — including the
per-window burn-in acceptance trajectories that price the adaptation
hardware.

Run with:  python examples/api_pipeline.py
"""

import sys
import tempfile
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.accelerator import AcceleratorModel
from repro.api import EstimatorSpec, HostSpec, Pipeline, RecorderSpec, RunSpec
from repro.fleet import read_trace

N_HOSTS = 64
TICKS = 2
#: Burn-in spans one adaptation window, so chains record their trajectory.
SAMPLES, BURN_IN = 40, 60


def main() -> None:
    print(f"Unified API demo: {N_HOSTS} hosts x {TICKS} quanta\n")
    with tempfile.TemporaryDirectory() as tmp:
        sink = str(Path(tmp) / "fleet_chains.jsonl")
        spec = RunSpec(
            hosts=tuple(
                HostSpec(
                    workload="KMeans" if index % 2 == 0 else "steady",
                    seed=index,
                    n_ticks=TICKS,
                )
                for index in range(N_HOSTS)
            ),
            estimator=EstimatorSpec("mcmc", samples=SAMPLES, burn_in=BURN_IN, ep_iterations=2),
            recorder=RecorderSpec(
                sink=sink, params=(("n_samples", SAMPLES), ("burn_in", BURN_IN))
            ),
            n_workers=4,
            batch_size=1,  # one tick per host per round -> several flush rounds
        )
        print(f"spec: {spec.estimator}\n")

        pipeline = Pipeline.from_spec(spec)
        recorder = pipeline.service.chain_recorder
        streamed = 0
        for result in pipeline.stream():
            streamed += 1
            if streamed <= 3:
                head = ", ".join(
                    f"{k}={v:.3g}" for k, v in list(result.values.items())[:3]
                )
                print(f"  slice {result.host}@t{result.tick}: {head}")
        fleet = pipeline.fleet_result
        print(
            f"\nstreamed {streamed} slices at {fleet.slices_per_second:.1f} slices/s; "
            f"chain recorder: {recorder.total_recorded} visits recorded, "
            f"peak buffered {recorder.peak_buffered} "
            f"({recorder.n_visits} still in memory after the final flush)"
        )
        if recorder.peak_buffered >= recorder.total_recorded:
            raise SystemExit("BUG: streaming did not bound the recorder's memory")

        replayed = read_trace(sink).chain
        if replayed.n_visits != recorder.total_recorded:
            raise SystemExit("BUG: the sink lost chain records")
        report = AcceleratorModel().cosimulate(replayed)
        print(
            f"\nco-simulation from the flushed file: {report.n_visits} visits, "
            f"{report.adaptation_windows} burn-in adaptation windows priced, "
            f"{report.microseconds_per_slice:.1f} us/slice, "
            f"EP-engine occupancy {report.occupancy['ep_engine']:.0%}"
        )


if __name__ == "__main__":
    main()
