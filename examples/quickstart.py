"""Quickstart: correct multiplexed counter measurements for one workload.

Runs the KMeans workload on the simulated x86 machine, multiplexes the
standard profiling event set over the counters, and compares the measurement
error of Linux's built-in scaling against BayesPerf.

Run with:  python examples/quickstart.py
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core import PerfSession


def main() -> None:
    workload = "KMeans"
    print(f"Monitoring workload {workload!r} on the simulated x86 machine\n")

    results = {}
    for method in ("linux", "counterminer", "bayesperf"):
        session = PerfSession("x86", method=method)
        result = session.run(workload, n_ticks=120, seed=7)
        results[method] = result
        print(
            f"{method:13s} schedule={len(result.schedule)} configurations, "
            f"mean error = {result.mean_error_percent:5.1f}%  "
            f"(derived metrics: {result.derived_error.mean_error_percent:5.1f}%)"
        )

    linux = results["linux"].mean_error_percent
    bayes = results["bayesperf"].mean_error_percent
    print(f"\nBayesPerf reduces the measurement error by {linux / bayes:.1f}x on this run.")

    # The BayesPerf estimates also carry uncertainty: show the three most
    # uncertain events of the last time slice.
    bayes_result = results["bayesperf"]
    last_tick = len(bayes_result.estimates) - 1
    uncertainties = bayes_result.estimates.uncertainties[last_tick]
    means = bayes_result.estimates.estimates[last_tick]
    ranked = sorted(
        uncertainties.items(), key=lambda kv: kv[1] / max(abs(means[kv[0]]), 1e-9), reverse=True
    )[:3]
    print("\nMost uncertain events in the final time slice:")
    for event, sigma in ranked:
        relative = 100.0 * sigma / max(abs(means[event]), 1e-9)
        print(f"  {event:35s} {means[event]:14.1f}  +/- {relative:4.1f}%")


if __name__ == "__main__":
    main()
