"""Scenario grid demo: BayesPerf vs baselines across scheduling policies.

Runs one small grid cell per scheduling policy: the same two-host KMeans
fleet is multiplexed under the paper's overlap-aware scheduler and under
plain round-robin (the Linux perf behaviour), and in each cell the engine's
estimates are scored against the Linux ``t_enabled/t_running`` scaling
baseline on the host's noise-free ground truth.  Everything is selected
through frozen specs — ``SchedulerSpec`` picks the multiplexing policy,
``RunSpec.baselines`` names the comparison methods — so the grid is just a
loop over ``RunSpec`` values; no estimator or fleet internals are touched.

See docs/scenario-grid.md for how to read the tables and how to add a
baseline to the registry.

Run with:  python examples/scenario_grid.py
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.api import EstimatorSpec, Pipeline, RunSpec, SchedulerSpec

N_HOSTS = 2
TICKS = 24
POLICIES = ("overlap", "round-robin")
BASELINES = ("linux",)


def main() -> None:
    for policy in POLICIES:
        spec = RunSpec.fleet(
            N_HOSTS,
            "KMeans",
            n_ticks=TICKS,
            estimator=EstimatorSpec("analytic"),
            scheduler=SchedulerSpec(policy=policy),
            baselines=BASELINES,
            n_workers=2,
        )
        result = Pipeline.from_spec(spec).run()
        report = result.comparison
        print(f"\n=== scheduler={policy} ===")
        print(report.render())
    print(
        "\nLower is better; 'bayesperf err%' is the engine, the other columns"
        "\nare the registered baseline correction methods on the same samples."
    )


if __name__ == "__main__":
    main()
