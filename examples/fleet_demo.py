"""Fleet demo: correct multiplexed counters for 64 hosts as a service.

Simulates a 64-host fleet (half running KMeans, half the phase-rich
mux-stress workload), streams every host's PMI samples through bounded ring
buffers into a sharded worker pool, and compares the pool's throughput
against the per-host serial construction baseline.  Also records one host's
run to a JSONL trace file and replays it, verifying the round-trip exactly.

Run with:  python examples/fleet_demo.py
"""

import sys
import tempfile
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.fleet import EventLog, FleetService, record_session_trace

N_HOSTS = 64
TICKS = 3
#: Derived metrics monitored on the recorded/replayed host.
METRICS = ("ipc", "l1d_mpki", "llc_miss_rate")


def build_fleet(n_workers: int, processors=()) -> FleetService:
    # Fleet hosts monitor the standard profiling event set (the paper's §6.2
    # configuration), where per-host schedule construction is substantial.
    service = FleetService("x86", n_workers=n_workers, processors=processors)
    for index in range(N_HOSTS):
        workload = "KMeans" if index % 2 == 0 else "mux-stress"
        service.add_host(workload, seed=index, n_ticks=TICKS)
    return service


def main() -> None:
    print(f"Fleet telemetry demo: {N_HOSTS} hosts x {TICKS} quanta\n")

    log = EventLog()
    runs = {"serial": [], "pool": []}
    # Two interleaved rounds per mode so load drift hits both modes equally;
    # the faster round is reported.
    for round_index in range(2):
        for mode, workers in (("serial", 1), ("pool", 4)):
            processors = (log,) if (mode == "pool" and round_index == 0) else ()
            service = build_fleet(workers, processors)
            runs[mode].append(service.run(mode=mode))
    results = {
        mode: max(mode_runs, key=lambda r: r.slices_per_second)
        for mode, mode_runs in runs.items()
    }
    for mode, result in results.items():
        cache = result.engine_cache
        print(
            f"{mode:6s}: {result.total_slices} slices at "
            f"{result.slices_per_second:7.1f} slices/s "
            f"(engines built: {cache['engines_built']}, cache hits: {cache['hits']})"
        )
    speedup = results["pool"].slices_per_second / results["serial"].slices_per_second
    print(f"worker pool speedup over per-host construction: {speedup:.2f}x")

    kinds = {}
    for event in log.iter():
        kinds[type(event).__name__] = kinds.get(type(event).__name__, 0) + 1
    print("\nObservability event stream (pool run):")
    for kind, count in sorted(kinds.items()):
        print(f"  {kind:22s} x{count}")

    # Record one host's session and replay it through the service.
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "host.jsonl"
        recorded = record_session_trace(path, "KMeans", metrics=METRICS, n_ticks=TICKS, seed=0)
        replay = FleetService("x86", n_workers=1)
        host = replay.add_trace(path)
        replayed = replay.run().estimates[host]
        exact = replayed.values_equal(recorded.estimates)
        print(
            f"\nTrace record/replay: {recorded.n_ticks} quanta -> {path.name}, "
            f"replay {'matches the recording exactly' if exact else 'DIFFERS (bug!)'}"
        )


if __name__ == "__main__":
    main()
