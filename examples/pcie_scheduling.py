"""PCIe-aware shuffle scheduling (the §6.3 case study).

Trains the actor-critic IO scheduler with HPC features supplied at two
quality levels — Linux-scaled counters and BayesPerf-corrected counters — and
compares convergence speed and decision quality, then shows the underlying
PCIe contention effect the scheduler is learning to avoid (Fig. 9).

Run with:  python examples/pcie_scheduling.py
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.experiments import fig9_pcie_contention
from repro.mlsched import (
    ActorCriticScheduler,
    HPCFeatureExtractor,
    MONITORING_PROFILES,
    ShuffleSchedulingEnv,
)


def main() -> None:
    print("PCIe contention the scheduler must avoid (Fig. 9):\n")
    contention = fig9_pcie_contention.run(message_sizes=tuple(2**k for k in range(10, 23, 4)))
    print(contention.to_table())
    print(f"maximum slowdown: {contention.max_slowdown():.2f}x\n")

    print("Training the actor-critic NIC scheduler under two monitoring pipelines:\n")
    outcomes = {}
    for profile in MONITORING_PROFILES:
        if profile.name not in ("linux", "bayesperf-acc"):
            continue
        extractor = HPCFeatureExtractor(
            error_level=profile.error_level, staleness_ticks=profile.staleness_ticks, seed=5
        )
        env = ShuffleSchedulingEnv(extractor, seed=5)
        scheduler = ActorCriticScheduler(
            n_features=env.feature_spec.size, n_actions=env.n_actions, learning_rate=0.05, seed=5
        )
        curve = scheduler.train(env, 1200, label=profile.name)
        evaluation = scheduler.evaluate(env, episodes=150)
        outcomes[profile.name] = (curve, evaluation)
        print(
            f"  {profile.name:15s} error level {100 * profile.error_level:4.1f}%  "
            f"convergence iteration ~{curve.convergence_iteration():4d}  "
            f"final loss {curve.final_loss:.3f}  "
            f"eval regret {100 * evaluation['mean_regret']:.1f}%"
        )

    linux_curve, linux_eval = outcomes["linux"]
    bayes_curve, bayes_eval = outcomes["bayesperf-acc"]
    speedup = 1.0 - bayes_curve.convergence_iteration() / max(linux_curve.convergence_iteration(), 1)
    print(
        f"\nWith BayesPerf-corrected inputs the scheduler converges "
        f"{100 * speedup:.0f}% sooner and its scheduling regret is "
        f"{100 * (linux_eval['mean_regret'] - bayes_eval['mean_regret']):.1f} points lower."
    )


if __name__ == "__main__":
    main()
