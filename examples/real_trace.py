"""Real-trace ingestion demo: a machine's perf capture through the pipeline.

The committed fixture ``tests/fixtures/perf_stat_interval.csv`` is genuine
``perf stat -I 100 -x,`` interval output: 8 generic events time-sliced over
4 counters (~50% multiplexed), two ``<not counted>`` intervals, and one
torn interleaved line.  The demo ingests it as a fleet host
(``HostSpec(perf=...)``), runs the corrected-estimate pipeline over the
real samples, verifies the replay is deterministic (two runs bit-identical),
and fans the capture through the ``linux`` time-scaling baseline — scored
as divergence from the BayesPerf posterior, since a real capture carries no
noise-free ground truth (see docs/real-traces.md).

Run with:  python examples/real_trace.py
"""

import math
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.api import HostSpec, Pipeline, RunSpec
from repro.perfio import PerfTraceSource

CAPTURE = Path(__file__).resolve().parent.parent / "tests" / "fixtures" / "perf_stat_interval.csv"


def build_spec() -> RunSpec:
    return RunSpec(
        hosts=(HostSpec(perf=str(CAPTURE), host_id="metal-00"),),
        baselines=("linux",),
    )


def slice_key(result):
    return [(s.host, s.tick, s.values, s.sigma) for s in result.slices]


def main() -> int:
    print(f"Ingesting {CAPTURE.name} as fleet host metal-00")
    source = PerfTraceSource("metal-00", CAPTURE)
    stats = source.stats
    print(
        f"  {stats.format}: {stats.n_ticks} quanta over {len(source.events)} "
        f"events, {stats.parsed_samples} readings parsed"
    )
    print(
        f"  skip-and-account: {stats.skipped_lines} malformed line(s), "
        f"{stats.not_counted} <not counted> reading(s)"
    )
    mux = next(source.records()).mux_fraction
    lo, hi = min(mux.values()), max(mux.values())
    print(f"  multiplexing fractions on quantum 0: {lo:.0%}..{hi:.0%}\n")

    result = Pipeline.from_spec(build_spec()).run()

    print(f"Corrected estimates: {len(result.slices)} slices")
    final = result.slices[-1]
    for event, value in list(final.values.items())[:4]:
        sigma = final.sigma[event]
        print(f"  {event:32s} {value:14.1f}  (sigma {sigma:.3g})")
    print()

    print("Determinism: re-running the same spec")
    second = Pipeline.from_spec(build_spec()).run()
    identical = slice_key(result) == slice_key(second)
    print(f"  two runs bit-identical: {identical}\n")

    report = result.comparison
    print("Baseline comparison (divergence from the BayesPerf posterior):")
    print("\n".join(f"  {line}" for line in report.render().splitlines()))
    (host,) = report.hosts
    linux_ok = math.isfinite(host.reports["linux"].mean_error_percent)

    if not (identical and linux_ok and len(result.slices) == stats.n_ticks):
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
