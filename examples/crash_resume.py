"""Crash-resume demo: a SIGKILLed fleet run resumed to bit-identical results.

The run is declared once as a frozen :class:`repro.api.RunSpec` with a
:class:`~repro.api.CheckpointSpec`: every completed slice streams into a
write-ahead log (tracefile format version 4), and every inference round
each host's engine snapshot + ingest position is checkpointed and sealed
with an fsynced commit marker.

The demo then kills the run for real: a child process executes the spec
with a :class:`~repro.fleet.chaos.CrashingStream` wrapped around the log's
file object in ``hard`` mode, which SIGKILLs the process mid-write after a
scheduled number of writes — no cleanup code runs, the log is left with a
torn final line, exactly like a machine losing power.  The parent then
resumes from the mutilated file alone (``Pipeline.resume(path)`` — the
header carries the full serialized spec) and verifies the final estimates
are bit-identical with an uninterrupted reference run.

Run with:  python examples/crash_resume.py
"""

import subprocess
import sys
import tempfile
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.api import CheckpointSpec, Pipeline, RunSpec
from repro.fleet import read_trace

N_HOSTS = 6
TICKS = 8
#: Kill the child at the start of its (N+1)-th log write — mid-run, after
#: at least one committed checkpoint round.
CRASH_AFTER_WRITES = 40

#: The child re-executes this file with the WAL path appended.
CHILD_FLAG = "--child"


def build_spec(wal_path: str) -> RunSpec:
    return RunSpec.fleet(
        N_HOSTS,
        "mux-stress",
        n_ticks=TICKS,
        metrics=("ipc", "l1d_mpki"),
        n_workers=2,
        pump_records=2,  # several rounds => several commit points
        checkpoint=CheckpointSpec(path=wal_path),
    )


def run_child(wal_path: str) -> None:
    """Executed in the child process: run until the injected SIGKILL."""
    from repro.fleet.chaos import FaultInjector

    chaos = FaultInjector(
        (), crash_after_writes=CRASH_AFTER_WRITES, crash_hard=True
    )
    Pipeline.from_spec(build_spec(wal_path), chaos=chaos).run_fleet()
    raise SystemExit("the injected crash never fired")  # pragma: no cover


def main() -> int:
    workdir = Path(tempfile.mkdtemp(prefix="crash-resume-"))
    wal_path = workdir / "run.wal.jsonl"

    print(f"Reference run: {N_HOSTS} hosts x {TICKS} quanta, no interruptions")
    reference = Pipeline.from_spec(
        build_spec(str(workdir / "reference.wal.jsonl"))
    ).run_fleet()
    print(f"  {reference.total_slices} slices completed\n")

    print(f"Killing a child run mid-write (SIGKILL after {CRASH_AFTER_WRITES} log writes)")
    child = subprocess.run(
        [sys.executable, __file__, CHILD_FLAG, str(wal_path)],
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )
    if child.returncode >= 0:
        raise SystemExit(
            f"child exited with {child.returncode}, expected a signal death"
        )
    print(f"  child died with signal {-child.returncode} (SIGKILL = 9)")

    damaged = read_trace(wal_path, strict=False)
    print(
        f"  log after the kill: {damaged.checkpoints} checkpoint(s), "
        f"last commit round {damaged.last_commit_round}, "
        f"torn tail: {damaged.torn_tail}\n"
    )

    print("Resuming from the write-ahead log alone")
    resumed = Pipeline.resume(wal_path).run_fleet()
    print(f"  {resumed.total_slices} slices re-executed after the recovery point")

    identical = all(
        reference.estimates[host].values_equal(resumed.estimates[host])
        for host in reference.estimates
    )
    total = sum(len(trace) for trace in reference.estimates.values())
    print(f"  final estimates bit-identical with the uninterrupted run: {identical}")
    log = read_trace(wal_path)
    logged = sum(len(trace) for trace in log.host_estimates.values())
    print(f"  the log now holds the complete run: {logged}/{total} slices, "
          f"{log.resumes} resume marker(s)")
    if not identical or logged != total:
        return 1
    return 0


if __name__ == "__main__":
    if len(sys.argv) == 3 and sys.argv[1] == CHILD_FLAG:
        run_child(sys.argv[2])
    sys.exit(main())
