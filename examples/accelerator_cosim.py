"""Accelerator co-simulation demo: from measured chains to device figures.

Runs the paper's accelerator workload in software — per-site tilted MCMC
inside EP (``moment_estimator="mcmc"``), batched over a 64-host fleet —
while a :class:`~repro.fg.mcmc.ChainTrace` records every site chain the
sampler executes.  The recorded trace is serialised through the fleet
tracefile format, read back, and replayed through the accelerator device
model: latency, occupancy, energy and read-path figures all derive from the
*measured* site-visit schedule and acceptance rates, and replaying the same
trace reproduces them exactly.

Run with:  python examples/accelerator_cosim.py
"""

import sys
import tempfile
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.accelerator import (
    AcceleratorConfig,
    AcceleratorModel,
    FPGAResourceModel,
    ReadLatencyModel,
    ReadPath,
)
from repro.fg.mcmc import ChainTrace
from repro.fleet import FleetService, chain_trace_file, read_trace, write_trace

N_HOSTS = 64
TICKS = 2
#: Chain effort per site visit (burn-in spans two adaptation windows).
MCMC_SAMPLES = 60
MCMC_BURN_IN = 120
EP_ITERATIONS = 3
#: Host-CPU TDPs the paper compares board power against (x86 / Power9).
CPU_TDP_W = {"pcie": 100.0, "capi": 190.0}


def record_fleet_chains() -> ChainTrace:
    """Run the 64-host fleet on the per-site MCMC estimator, recording chains."""
    recorder = ChainTrace(
        params={
            "n_samples": MCMC_SAMPLES,
            "burn_in": MCMC_BURN_IN,
            "ep_iterations": EP_ITERATIONS,
            "adapt": True,
        }
    )
    service = FleetService(
        "x86",
        n_workers=4,
        engine_kwargs={
            "moment_estimator": "mcmc",
            "mcmc_samples": MCMC_SAMPLES,
            "mcmc_burn_in": MCMC_BURN_IN,
            "ep_max_iterations": EP_ITERATIONS,
        },
        recorder=recorder,
    )
    for index in range(N_HOSTS):
        workload = "KMeans" if index % 2 == 0 else "steady"
        service.add_host(workload, seed=index, n_ticks=TICKS)
    result = service.run()
    print(
        f"software run: {result.total_slices} slices at "
        f"{result.slices_per_second:.1f} slices/s (batched per-site tilted MCMC)"
    )
    print(
        f"chain trace:  {recorder.n_visits} site visits over {recorder.n_slices} "
        f"slices, {recorder.total_steps} chain steps, "
        f"mean acceptance {recorder.acceptance_rate():.1%}"
    )
    return recorder


def main() -> None:
    print(f"Accelerator co-simulation: {N_HOSTS} hosts x {TICKS} quanta\n")
    recorder = record_fleet_chains()

    # Round-trip the trace through the versioned tracefile format; the
    # co-simulation must be reproducible from the file alone.
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "fleet_chains.jsonl"
        write_trace(
            path,
            chain_trace_file(
                recorder, arch="x86", workload="fleet-mcmc", metadata={"hosts": N_HOSTS}
            ),
        )
        replayed = read_trace(path).chain
        print(f"trace file:   {recorder.n_visits} visits -> {path.name} -> replayed\n")

    reports = {}
    for transport in ("capi", "pcie"):
        model = AcceleratorModel(AcceleratorConfig(transport=transport))
        cosim = model.cosimulate(recorder)
        if model.cosimulate(replayed) != cosim:
            raise SystemExit("BUG: replayed trace produced different estimates")
        energy = FPGAResourceModel(model.config).energy_report(cosim, name=transport)
        reports[transport] = (model, cosim, energy)

    print("trace-driven device estimates (identical from the replayed file):")
    for transport, (model, cosim, energy) in reports.items():
        occupancy = ", ".join(f"{k} {v:.0%}" for k, v in cosim.occupancy.items())
        print(f"  {transport}:")
        print(
            f"    latency : {cosim.makespan_cycles:,.0f} cycles for the workload "
            f"({cosim.microseconds_per_slice:.1f} us/slice, "
            f"{cosim.slices_per_second:,.0f} slices/s)"
        )
        print(f"    occupancy: {occupancy}")
        print(
            f"    energy  : {energy.total_joules * 1e3:.2f} mJ "
            f"({energy.millijoules_per_slice:.3f} mJ/slice, "
            f"board avg {energy.measured_average_power_w:.1f} W, "
            f"{energy.power_efficiency_vs(CPU_TDP_W[transport]):.1f}x less than the "
            f"{CPU_TDP_W[transport]:.0f} W host CPU)"
        )

    # Fig. 3, grounded: the read-path model's workload shape comes from the
    # measured trace instead of nominal constants.
    model, cosim, _ = reports["capi"]
    latency = ReadLatencyModel.from_chain_trace(recorder, accelerator=model)
    print("\nper-read latency (host cycles, model shape from the measured trace):")
    for name, cycles in latency.all_paths().items():
        print(f"  {name:22s} {cycles:9,.0f}")
    overhead = latency.overhead_vs_linux(ReadPath.BAYESPERF_ACCELERATOR)
    print(f"  accelerator overhead vs native read: {overhead:.1%}")


if __name__ == "__main__":
    main()
