"""Tests for the PMU substrate: constraints, registers, noise and sampling."""

import numpy as np
import pytest

from repro.events import catalog_for
from repro.events import semantics as sem
from repro.events.profiles import standard_profiling_events
from repro.pmu import (
    ConfigurationError,
    CounterConfiguration,
    EstimateTrace,
    MultiplexedSampler,
    NoiseModel,
    PMURegisterFile,
    PollingReader,
    ValidityChecker,
)
from repro.scheduling import round_robin_schedule
from repro.uarch import Machine, MachineConfig
from repro.workloads import steady_workload


@pytest.fixture
def catalog():
    return catalog_for("x86")


@pytest.fixture
def machine_trace():
    return Machine(MachineConfig(), steady_workload(), seed=0).run(12)


class TestCounterConfiguration:
    def test_rejects_duplicates(self):
        with pytest.raises(ValueError):
            CounterConfiguration(events=("A", "A"))

    def test_assignment_must_cover_events(self):
        with pytest.raises(ValueError):
            CounterConfiguration(events=("A", "B"), assignment={"A": 0})

    def test_overlap(self):
        a = CounterConfiguration(events=("A", "B"))
        b = CounterConfiguration(events=("B", "C"))
        assert a.overlap(b) == ("B",)


class TestValidityChecker:
    def test_assigns_unconstrained_events(self, catalog):
        checker = ValidityChecker(catalog)
        events = ["L2_RQSTS.MISS", "L2_RQSTS.REFERENCES", "L1D.REPLACEMENT"]
        assignment = checker.assign(events)
        assert set(assignment) == set(events)
        assert len(set(assignment.values())) == 3

    def test_respects_counter_mask(self, catalog):
        checker = ValidityChecker(catalog)
        configuration = checker.build_configuration(["L1D_PEND_MISS.PENDING", "L2_RQSTS.MISS"])
        assert configuration.assignment["L1D_PEND_MISS.PENDING"] == 2
        assert checker.is_valid(configuration)

    def test_rejects_over_budget(self, catalog):
        checker = ValidityChecker(catalog)
        too_many = [spec.name for spec in catalog.programmable_events[:6]]
        with pytest.raises(ConfigurationError):
            checker.assign(too_many)

    def test_rejects_fixed_event(self, catalog):
        checker = ValidityChecker(catalog)
        with pytest.raises(ConfigurationError):
            checker.assign(["INST_RETIRED.ANY"])

    def test_msr_budget(self, catalog):
        checker = ValidityChecker(catalog, max_msr_events=1)
        with pytest.raises(ConfigurationError):
            checker.assign(["OFFCORE_RESPONSE.DEMAND_DATA_RD", "OFFCORE_RESPONSE.WRITEBACKS"])

    def test_violations_listed(self, catalog):
        checker = ValidityChecker(catalog)
        bad = CounterConfiguration(events=("L1D_PEND_MISS.PENDING",), assignment={"L1D_PEND_MISS.PENDING": 0})
        problems = checker.violations(bad)
        assert problems and "counter 0" in problems[0]

    def test_split_events(self, catalog):
        checker = ValidityChecker(catalog)
        fixed, programmable = checker.split_events(["INST_RETIRED.ANY", "L2_RQSTS.MISS"])
        assert fixed == ("INST_RETIRED.ANY",)
        assert programmable == ("L2_RQSTS.MISS",)


class TestRegisterFile:
    def test_program_and_read(self, catalog):
        checker = ValidityChecker(catalog)
        register_file = PMURegisterFile(catalog)
        configuration = checker.build_configuration(["L2_RQSTS.MISS", "L2_RQSTS.REFERENCES"])
        register_file.program(configuration)
        register_file.accumulate_tick({"L2_RQSTS.MISS": 10.0, "L2_RQSTS.REFERENCES": 30.0, "INST_RETIRED.ANY": 100.0})
        values = register_file.read_all()
        assert values["L2_RQSTS.MISS"] == pytest.approx(10.0)
        assert values["INST_RETIRED.ANY"] == pytest.approx(100.0)
        register_file.reset()
        assert register_file.read_all()["INST_RETIRED.ANY"] == 0.0

    def test_fixed_register_cannot_be_reprogrammed(self, catalog):
        register_file = PMURegisterFile(catalog)
        with pytest.raises(ValueError):
            register_file.fixed[0].program("SOMETHING")


class TestNoiseModel:
    def test_noiseless_is_identity(self):
        noise = NoiseModel.noiseless()
        rng = np.random.default_rng(0)
        assert noise.perturb_sample(123.0, rng) == pytest.approx(123.0)
        assert noise.perturb_polled(123.0, rng) == pytest.approx(123.0)

    def test_perturbation_is_bounded_below(self):
        noise = NoiseModel(read_noise=0.5, os_spike_probability=1.0, os_spike_magnitude=2.0)
        rng = np.random.default_rng(0)
        assert all(noise.perturb_sample(10.0, rng) >= 0.0 for _ in range(50))

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            NoiseModel(read_noise=-0.1)
        with pytest.raises(ValueError):
            NoiseModel(os_spike_probability=1.5)


class TestSampling:
    def test_polling_reader_close_to_truth(self, catalog, machine_trace):
        events = standard_profiling_events(catalog, n_events=12)
        reader = PollingReader(catalog, events, noise=NoiseModel.noiseless(), seed=0)
        polled = reader.read(machine_trace)
        assert len(polled) == len(machine_trace)
        truth = catalog.ground_truth_for(events, machine_trace.ticks[0])
        assert polled.at(0)[events[0]] == pytest.approx(truth[events[0]])

    def test_multiplexed_sampler_respects_schedule(self, catalog, machine_trace):
        events = standard_profiling_events(catalog, n_events=12)
        schedule = round_robin_schedule(catalog, events)
        sampler = MultiplexedSampler(catalog, schedule, noise=NoiseModel.noiseless(), seed=0)
        sampled = sampler.sample(machine_trace)
        assert len(sampled) == len(machine_trace)
        for record in sampled.records:
            scheduled = set(record.configuration.events)
            fixed = {spec.name for spec in catalog.fixed_events}
            assert set(record.samples) == scheduled | fixed

    def test_samples_sum_to_truth_without_noise(self, catalog, machine_trace):
        events = standard_profiling_events(catalog, n_events=8)
        schedule = round_robin_schedule(catalog, events)
        sampler = MultiplexedSampler(catalog, schedule, noise=NoiseModel.noiseless(), seed=0)
        sampled = sampler.sample(machine_trace)
        record = sampled.records[0]
        event = record.configuration.events[0]
        truth = catalog.ground_truth_for([event], machine_trace.ticks[0])[event]
        assert record.total(event) == pytest.approx(truth, rel=1e-9)

    def test_enabled_fraction(self, catalog, machine_trace):
        events = standard_profiling_events(catalog, n_events=12)
        schedule = round_robin_schedule(catalog, events)
        sampler = MultiplexedSampler(catalog, schedule, seed=0)
        sampled = sampler.sample(machine_trace)
        programmable = [e for e in events if not catalog.get(e).is_fixed]
        fraction = sampled.enabled_fraction(programmable[0])
        assert 0.0 < fraction < 1.0
        fixed = catalog.fixed_events[0].name
        assert sampled.enabled_fraction(fixed) == pytest.approx(1.0)


class TestEstimateTrace:
    def test_series_and_uncertainty(self):
        trace = EstimateTrace(method="m")
        trace.append({"a": 1.0}, {"a": 0.1})
        trace.append({"a": 2.0})
        assert trace.series("a").tolist() == [1.0, 2.0]
        assert np.isnan(trace.uncertainty_series("a")[1])
        assert trace.events() == ("a",)
