"""Tests for the invariant library and its catalog instantiation."""

import pytest

from repro.events import catalog_for
from repro.events import semantics as sem
from repro.invariants import LinearRelation, standard_invariants
from repro.uarch.profile import PhaseProfile
from repro.uarch.synthesis import synthesize_semantics


class TestLinearRelation:
    def test_requires_two_terms(self):
        with pytest.raises(ValueError):
            LinearRelation(name="bad", terms={sem.CYCLES: 1.0})

    def test_rejects_unknown_semantic(self):
        with pytest.raises(ValueError):
            LinearRelation(name="bad", terms={"nope": 1.0, sem.CYCLES: -1.0})

    def test_rejects_zero_coefficient(self):
        with pytest.raises(ValueError):
            LinearRelation(name="bad", terms={sem.CYCLES: 0.0, sem.ACTIVE_CYCLES: 1.0})

    def test_residual_and_satisfaction(self):
        relation = LinearRelation(
            name="r", terms={sem.BRANCHES: 1.0, sem.BRANCH_TAKEN: -1.0, sem.BRANCH_NOT_TAKEN: -1.0}
        )
        values = {sem.BRANCHES: 10.0, sem.BRANCH_TAKEN: 6.0, sem.BRANCH_NOT_TAKEN: 4.0}
        assert relation.residual(values) == pytest.approx(0.0)
        assert relation.is_satisfied(values)
        values[sem.BRANCH_TAKEN] = 9.0
        assert not relation.is_satisfied(values)
        assert relation.relative_residual(values) > 0.1

    def test_instantiation_maps_to_event_names(self):
        catalog = catalog_for("x86")
        relation = standard_invariants().get("llc_split")
        event_relation = relation.instantiate(catalog)
        assert set(event_relation.events) == {
            catalog.event_for_semantic(sem.LLC_ACCESS).name,
            catalog.event_for_semantic(sem.LLC_HIT).name,
            catalog.event_for_semantic(sem.LLC_MISS).name,
        }


class TestStandardInvariants:
    @pytest.fixture
    def library(self):
        return standard_invariants()

    def test_library_size(self, library):
        assert len(library) >= 25

    def test_unique_names(self, library):
        names = library.names()
        assert len(names) == len(set(names))

    def test_key_relations_present(self, library):
        for name in ("cycle_decomposition", "l2_source", "dram_bytes_identity", "uops_split"):
            assert library.get(name) is not None

    def test_relations_for_semantic(self, library):
        relations = library.relations_for(sem.LLC_MISS)
        assert len(relations) >= 2

    @pytest.mark.parametrize("arch", ["x86", "ppc64"])
    def test_instantiation_on_catalogs(self, library, arch):
        catalog = catalog_for(arch)
        relations = library.for_catalog(catalog)
        assert len(relations) == len(library)  # every relation resolvable
        for relation in relations:
            for event in relation.events:
                assert event in catalog

    def test_restriction_to_event_subset(self, library):
        catalog = catalog_for("x86")
        events = (
            catalog.event_for_semantic(sem.LLC_ACCESS).name,
            catalog.event_for_semantic(sem.L2_MISS).name,
        )
        relations = library.for_catalog(catalog, events=events)
        assert all(set(r.events) <= set(events) for r in relations)
        assert any(r.name == "llc_source" for r in relations)

    @pytest.mark.parametrize("intensity", [0.5, 1.0, 2.5])
    def test_machine_ground_truth_satisfies_all_invariants(self, library, intensity):
        values = synthesize_semantics(PhaseProfile(), intensity=intensity)
        violated = library.violated(values, rtol=1e-9)
        # The *_model relations are calibrated (5% tolerance) rather than
        # structural, but the default profile satisfies them exactly too.
        assert violated == ()

    def test_verify_reports_every_relation(self, library):
        values = synthesize_semantics(PhaseProfile())
        report = library.verify(values)
        assert set(report) == set(library.names())

    def test_violation_detected_when_value_corrupted(self, library):
        values = synthesize_semantics(PhaseProfile())
        values[sem.LLC_MISS] *= 2.0
        assert "llc_split" in library.violated(values, rtol=1e-3)
