"""Public-API snapshot: `repro.api` names and spec fields are pinned.

The unified API is the repository's outermost contract — downstream code
holds references to these names and constructs the frozen specs by keyword.
Renaming or removing anything here is a breaking change and must be done
deliberately (update this snapshot in the same commit and say so in the PR).
Additive changes (new names, new fields with defaults) extend the pins.
"""

import dataclasses

import pytest

import repro.api as api
from repro.fg.registry import baseline_names, engine_estimator_names


def _field_names(spec_cls):
    return tuple(f.name for f in dataclasses.fields(spec_cls))


def test_api_all_is_pinned():
    assert set(api.__all__) == {
        "CheckpointSpec",
        "ComparisonReport",
        "ContentionSpec",
        "EstimatorSpec",
        "FaultPolicySpec",
        "HostComparison",
        "HostSpec",
        "KernelExecSpec",
        "ObserverSpec",
        "Pipeline",
        "PipelineResult",
        "RecorderSpec",
        "RunSpec",
        "SchedulerSpec",
        "SliceResult",
        "baseline_names",
    }
    for name in api.__all__:
        assert hasattr(api, name), f"repro.api.__all__ names missing symbol {name}"


def test_estimator_spec_fields_are_pinned():
    assert _field_names(api.EstimatorSpec) == (
        "name",
        "samples",
        "burn_in",
        "adapt",
        "ep_iterations",
        "use_compiled_kernel",
        "megabatch",
        "kernel_exec",
    )


def test_kernel_exec_spec_fields_are_pinned():
    assert _field_names(api.KernelExecSpec) == ("threads", "partition")


def test_estimator_spec_coerces_kernel_exec_mapping():
    spec = api.EstimatorSpec(kernel_exec={"threads": 4, "partition": "lane"})
    assert spec.kernel_exec == api.KernelExecSpec(threads=4, partition="lane")
    kwargs = spec.engine_kwargs()
    assert kwargs["kernel_exec"] == api.KernelExecSpec(threads=4)
    # Defaults stay defaults: no megabatch/kernel_exec keys unless set.
    assert "megabatch" not in api.EstimatorSpec().engine_kwargs()
    assert "kernel_exec" not in api.EstimatorSpec().engine_kwargs()


def test_run_spec_kernel_exec_round_trips_through_dict():
    spec = api.RunSpec.fleet(
        2,
        "steady",
        n_ticks=2,
        estimator=api.EstimatorSpec(
            megabatch=True, kernel_exec=api.KernelExecSpec(threads=4)
        ),
    )
    rebuilt = api.RunSpec.from_dict(spec.to_dict())
    assert rebuilt == spec
    assert rebuilt.estimator.kernel_exec == api.KernelExecSpec(threads=4)


def test_recorder_spec_fields_are_pinned():
    assert _field_names(api.RecorderSpec) == ("sink", "params")


def test_observer_spec_fields_are_pinned():
    assert _field_names(api.ObserverSpec) == (
        "trace",
        "metrics",
        "estimates",
        "mixing",
        "spans_in_memory",
    )


def test_host_spec_fields_are_pinned():
    assert _field_names(api.HostSpec) == (
        "workload",
        "seed",
        "n_ticks",
        "arch",
        "events",
        "host_id",
        "trace",
        "perf",
        "format",
        "on_unknown",
    )


def test_run_spec_fields_are_pinned():
    assert _field_names(api.RunSpec) == (
        "arch",
        "events",
        "metrics",
        "hosts",
        "estimator",
        "recorder",
        "observer",
        "mode",
        "n_workers",
        "batch_size",
        "buffer_capacity",
        "pump_records",
        "samples_per_tick",
        "engine_overrides",
        "fault_policy",
        "checkpoint",
        "scheduler",
        "contention",
        "baselines",
    )


def test_scheduler_spec_fields_are_pinned():
    assert _field_names(api.SchedulerSpec) == ("policy", "seed")


def test_contention_spec_fields_are_pinned():
    assert _field_names(api.ContentionSpec) == ("background", "size_mb")


def test_checkpoint_spec_fields_are_pinned():
    assert _field_names(api.CheckpointSpec) == ("path", "every", "fsync")


def test_fault_policy_spec_fields_are_pinned():
    assert _field_names(api.FaultPolicySpec) == (
        "max_attempts",
        "timeout_seconds",
        "backoff_base",
        "backoff_factor",
        "backoff_max",
        "jitter",
        "seed",
        "on_exhausted",
    )


def test_slice_result_fields_are_pinned():
    assert _field_names(api.SliceResult) == (
        "host",
        "tick",
        "values",
        "sigma",
        "ep_iterations",
        "ep_converged",
    )


def test_specs_are_frozen_and_hashable():
    spec = api.RunSpec.fleet(2, "steady", n_ticks=3)
    assert hash(spec) == hash(api.RunSpec.fleet(2, "steady", n_ticks=3))
    try:
        spec.arch = "ppc64"
    except dataclasses.FrozenInstanceError:
        pass
    else:  # pragma: no cover
        raise AssertionError("RunSpec must be frozen")


def test_builtin_estimators_are_registered():
    names = engine_estimator_names()
    assert {"analytic", "mcmc", "batched-mcmc"} <= set(names)
    # The spec layer resolves through the same registry.
    for name in names:
        assert api.EstimatorSpec(name).engine_kwargs()["moment_estimator"] == name


def test_baselines_are_registered_but_rejected_as_engines():
    names = baseline_names()
    assert {"linux", "counterminer", "wm+pin"} <= set(names)
    # Baselines share the registry but are not moment estimators: the spec
    # layer routes them to RunSpec.baselines instead.
    for name in names:
        with pytest.raises(ValueError, match="baseline correction method"):
            api.EstimatorSpec(name).engine_kwargs()
