"""Fault tolerance and crash-resume: the recovery paths, exercised on purpose.

Every test here drives a real fleet run through the deterministic
fault-injection harness (:mod:`repro.fleet.chaos`) and audits the outcome
against the injected schedule exactly — retries, skips, quarantines, torn
tails and resumed write-ahead logs are all checked for both *behaviour*
(the run completes, or resumes bit-identically) and *accounting* (every
injected fault shows up in the event stream and metrics).

The module is marked ``chaos``: CI additionally runs it as a dedicated
fault-matrix job (``pytest -m chaos``).
"""

import json

import pytest

from repro.api import (
    CheckpointSpec,
    FaultPolicySpec,
    HostSpec,
    Pipeline,
    RunSpec,
)
from repro.fleet import (
    EventLog,
    FleetService,
    HostQuarantined,
    MalformedRecordSkipped,
    SliceAttemptFailed,
    SliceRetried,
    SliceSkipped,
)
from repro.fleet.chaos import CrashingStream, Fault, FaultInjector, InjectedCrash
from repro.fleet.faults import SliceFailed
from repro.fleet.tracefile import read_trace, record_session_trace
from repro.fleet.wal import load_wal, truncate_to_commit

pytestmark = pytest.mark.chaos

METRICS = ("ipc", "l1d_mpki")

#: A policy whose retries are immediate — tests should not sleep.
FAST_RETRY = dict(backoff_base=0.0, jitter=0.0)


def fleet_spec(n_hosts=3, *, n_ticks=5, **kwargs):
    return RunSpec.fleet(
        n_hosts,
        "mux-stress",
        n_ticks=n_ticks,
        metrics=METRICS,
        n_workers=2,
        **kwargs,
    )


def host_ids(n_hosts):
    return ["host-%03d" % index for index in range(n_hosts)]


def run_fleet(spec, chaos=None):
    return Pipeline.from_spec(spec, chaos=chaos).run_fleet()


def assert_estimates_equal(result_a, result_b, *, exclude=()):
    assert set(result_a.estimates) == set(result_b.estimates)
    for host, trace in result_a.estimates.items():
        if host in exclude:
            continue
        assert trace.values_equal(result_b.estimates[host]), host


# -- retry / skip / quarantine / raise dispositions -------------------------


def test_transient_fault_retries_to_bit_identical_result():
    """A retried slice is indistinguishable from one that never failed."""
    clean = run_fleet(fleet_spec())
    chaos = FaultInjector([Fault("raise", "host-001", 2, attempts=2)])
    policy = FaultPolicySpec(max_attempts=3, **FAST_RETRY)
    faulty = run_fleet(fleet_spec(fault_policy=policy), chaos)
    assert chaos.injected["raise"] == 2
    assert faulty.quarantined == ()
    assert_estimates_equal(clean, faulty)


def test_skip_policy_drops_only_the_corrupt_slices():
    """Corrupt records fail every attempt; ``skip`` drops them, nothing else."""
    clean = run_fleet(fleet_spec())
    chaos = FaultInjector(
        [Fault("corrupt", "host-000", 1), Fault("corrupt", "host-002", 3)]
    )
    policy = FaultPolicySpec(max_attempts=2, on_exhausted="skip", **FAST_RETRY)
    faulty = run_fleet(fleet_spec(fault_policy=policy), chaos)
    assert faulty.total_slices == clean.total_slices - 2
    assert faulty.metrics["slice_skips"] == 2
    # Untouched hosts are bit-identical; damaged hosts lose one tick each.
    assert_estimates_equal(clean, faulty, exclude=("host-000", "host-002"))
    assert len(faulty.estimates["host-000"]) == len(clean.estimates["host-000"]) - 1


def test_quarantine_excises_the_host_not_the_fleet():
    clean = run_fleet(fleet_spec())
    chaos = FaultInjector([Fault("raise", "host-001", 0, attempts=99)])
    policy = FaultPolicySpec(max_attempts=2, on_exhausted="quarantine", **FAST_RETRY)
    faulty = run_fleet(fleet_spec(fault_policy=policy), chaos)
    assert faulty.quarantined == ("host-001",)
    assert len(faulty.estimates["host-001"]) == 0
    # The survivors never notice: their estimates are the clean run's.
    assert_estimates_equal(clean, faulty, exclude=("host-001",))


def test_raise_policy_aborts_with_slice_coordinates():
    chaos = FaultInjector([Fault("raise", "host-000", 1, attempts=99)])
    policy = FaultPolicySpec(max_attempts=2, **FAST_RETRY)
    with pytest.raises(SliceFailed) as excinfo:
        run_fleet(fleet_spec(fault_policy=policy), chaos)
    assert excinfo.value.host == "host-000"
    assert excinfo.value.tick == 1
    assert excinfo.value.attempts == 2


def test_timeout_discards_the_hung_attempt_and_retries():
    """A hang past the deadline is flagged; the retry is bit-identical."""
    clean = run_fleet(fleet_spec(n_hosts=2, n_ticks=3))
    chaos = FaultInjector([Fault("hang", "host-000", 1, attempts=1, duration=0.05)])
    policy = FaultPolicySpec(max_attempts=2, timeout_seconds=0.01, **FAST_RETRY)
    faulty = run_fleet(fleet_spec(n_hosts=2, n_ticks=3, fault_policy=policy), chaos)
    assert chaos.injected["hang"] == 1
    assert faulty.metrics["slice_retries"] == 1
    assert_estimates_equal(clean, faulty)


def test_no_policy_means_no_retries_and_fault_propagates():
    """Without a policy the injector's fault aborts the run outright."""
    chaos = FaultInjector([Fault("corrupt", "host-000", 0)])
    with pytest.raises(Exception):
        run_fleet(fleet_spec(), chaos)


# -- accounting: the event stream audits the schedule exactly ----------------


def test_fault_accounting_matches_injected_schedule():
    """retries + skips + quarantines add up to the schedule, event by event."""
    n_hosts, n_ticks = 4, 6
    chaos = FaultInjector.seeded(
        11, host_ids(n_hosts), n_ticks, n_raise=3, n_corrupt=2, attempts=1
    )
    log = EventLog(maxlen=None)
    service = FleetService(
        "x86",
        metrics=METRICS,
        n_workers=2,
        processors=(log,),
        fault_policy=FaultPolicySpec(max_attempts=2, on_exhausted="skip", **FAST_RETRY),
        chaos=chaos,
    )
    for index in range(n_hosts):
        service.add_host("mux-stress", seed=index, n_ticks=n_ticks)
    result = service.run()

    events = list(log.iter())
    failures = [e for e in events if isinstance(e, SliceAttemptFailed)]
    retries = [e for e in events if isinstance(e, SliceRetried)]
    skips = [e for e in events if isinstance(e, SliceSkipped)]
    # Each transient raise fails once then succeeds on retry; each corrupt
    # record fails both attempts then is skipped.
    assert len(retries) == len(chaos.solve_faults) + len(chaos.corrupt_faults)
    assert len(skips) == len(chaos.corrupt_faults)
    assert len(failures) == len(chaos.solve_faults) + 2 * len(chaos.corrupt_faults)
    assert result.total_slices == n_hosts * n_ticks - len(skips)
    assert result.metrics["slice_retries"] == len(retries)
    assert result.metrics["slice_skips"] == len(skips)
    # The failed slices' coordinates are exactly the scheduled cells.
    failed_cells = {(e.host, e.tick) for e in failures}
    assert failed_cells == set(chaos.solve_faults) | set(chaos.corrupt_faults)


def test_quarantine_accounting_and_event():
    log = EventLog(maxlen=None)
    chaos = FaultInjector([Fault("raise", "host-001", 2, attempts=99)])
    service = FleetService(
        "x86",
        metrics=METRICS,
        n_workers=2,
        processors=(log,),
        fault_policy=FaultPolicySpec(
            max_attempts=2, on_exhausted="quarantine", **FAST_RETRY
        ),
        chaos=chaos,
    )
    for index in range(3):
        service.add_host("mux-stress", seed=index, n_ticks=5)
    result = service.run()
    quarantines = [e for e in log.iter() if isinstance(e, HostQuarantined)]
    assert [e.host for e in quarantines] == ["host-001"]
    assert result.quarantined == ("host-001",)
    assert result.metrics["hosts_quarantined"] == 1


def test_backoff_delay_is_deterministic_and_bounded():
    policy = FaultPolicySpec(
        max_attempts=5, backoff_base=0.01, backoff_factor=2.0, backoff_max=0.05
    )
    delays = [policy.backoff_delay("host-007", 3, attempt) for attempt in (1, 2, 3, 4)]
    assert delays == [
        policy.backoff_delay("host-007", 3, attempt) for attempt in (1, 2, 3, 4)
    ]
    # Exponential growth under the cap, jitter stretches by at most 10%.
    assert 0.01 <= delays[0] <= 0.011
    assert 0.02 <= delays[1] <= 0.022
    assert all(delay <= 0.05 * 1.1 for delay in delays)
    # Different coordinates draw different jitter.
    assert policy.backoff_delay("host-008", 3, 1) != delays[0]


# -- write-ahead log: crash, recover, resume ---------------------------------


def wal_spec(path, *, n_hosts=3, n_ticks=8, every=1):
    return fleet_spec(
        n_hosts,
        n_ticks=n_ticks,
        checkpoint=CheckpointSpec(path=str(path), every=every),
        pump_records=2,  # several rounds, so mid-run commits exist
    )


@pytest.mark.parametrize("crash_after_writes", [10, 23, 41])
def test_killed_run_resumes_bit_identical(tmp_path, crash_after_writes):
    """The acceptance gate: kill at round k, resume, estimates identical."""
    ref = run_fleet(wal_spec(tmp_path / "ref.jsonl"))
    crash_path = tmp_path / "crash.jsonl"
    chaos = FaultInjector((), crash_after_writes=crash_after_writes)
    with pytest.raises(InjectedCrash):
        run_fleet(wal_spec(crash_path), chaos)

    resumed = Pipeline.resume(crash_path).run_fleet()
    assert_estimates_equal(ref, resumed)
    # The log now holds the complete run: every host, every tick, plus the
    # resume marker — one file tells the whole story.
    trace = read_trace(crash_path)
    assert trace.resumes == 1
    assert sum(len(t) for t in trace.host_estimates.values()) == ref.total_slices
    for host, estimates in ref.estimates.items():
        assert trace.host_estimates[host].values_equal(estimates)


def test_resume_tolerates_torn_tail(tmp_path):
    """A crash mid-line leaves a torn tail; recovery truncates, not raises."""
    crash_path = tmp_path / "crash.jsonl"
    chaos = FaultInjector((), crash_after_writes=15, crash_partial_line=True)
    with pytest.raises(InjectedCrash):
        run_fleet(wal_spec(crash_path), chaos)
    damaged = read_trace(crash_path, strict=False)
    assert damaged.torn_tail
    state = load_wal(crash_path)
    assert state.torn_tail
    assert state.last_commit_round is not None
    discarded = truncate_to_commit(state)
    assert discarded > 0
    # After rollback the file is a clean committed prefix.
    clean = read_trace(crash_path)
    assert not clean.torn_tail
    assert clean.last_commit_round == state.last_commit_round


def test_resume_before_first_commit_restarts_from_scratch(tmp_path):
    """Nothing durable beyond the header: the run restarts, bit-identical."""
    path = tmp_path / "early.jsonl"
    chaos = FaultInjector((), crash_after_writes=1)
    with pytest.raises(InjectedCrash):
        run_fleet(wal_spec(path), chaos)
    resumed = Pipeline.resume(path).run_fleet()
    ref = run_fleet(wal_spec(tmp_path / "ref.jsonl"))
    assert_estimates_equal(ref, resumed)
    trace = read_trace(path)
    assert trace.resumes == 1
    assert sum(len(t) for t in trace.host_estimates.values()) == ref.total_slices


def test_resume_requires_a_wal_header(tmp_path):
    path = tmp_path / "v1.jsonl"
    record_session_trace(path, "steady", n_ticks=2)
    with pytest.raises(Exception, match="version|write-ahead"):
        Pipeline.resume(path)


def test_checkpoint_cadence_thins_the_commits(tmp_path):
    dense = wal_spec(tmp_path / "dense.jsonl", every=1)
    sparse = wal_spec(tmp_path / "sparse.jsonl", every=3)
    run_fleet(dense)
    run_fleet(sparse)
    dense_trace = read_trace(tmp_path / "dense.jsonl")
    sparse_trace = read_trace(tmp_path / "sparse.jsonl")
    assert 0 < sparse_trace.checkpoints < dense_trace.checkpoints
    # The estimate stream is cadence-independent.
    assert sum(len(t) for t in sparse_trace.host_estimates.values()) == sum(
        len(t) for t in dense_trace.host_estimates.values()
    )


def test_aborted_marker_stamps_dirty_shutdowns(tmp_path):
    """A propagating exception (not a dead stream) leaves an aborted marker."""
    path = tmp_path / "aborted.jsonl"
    spec = fleet_spec(
        2,
        n_ticks=4,
        checkpoint=CheckpointSpec(path=str(path)),
        fault_policy=FaultPolicySpec(max_attempts=1, on_exhausted="raise"),
    )
    chaos = FaultInjector([Fault("raise", "host-001", 2, attempts=99)])
    with pytest.raises(SliceFailed):
        run_fleet(spec, chaos)
    trace = read_trace(path, strict=False)
    assert trace.aborted is not None
    assert "SliceFailed" in trace.aborted
    # The aborted suffix is uncommitted noise: recovery rolls it back and
    # the resumed run still finishes, bit-identical to a clean faultless run.
    resumed = Pipeline.resume(path).run_fleet()
    ref = run_fleet(fleet_spec(2, n_ticks=4))
    assert_estimates_equal(ref, resumed)


def test_crashing_stream_hard_mode_validates_but_stays_unarmed():
    with pytest.raises(ValueError, match="after_writes"):
        CrashingStream(None, after_writes=-1)


def test_cli_resume_continues_a_crashed_run(tmp_path, capsys):
    from repro.fleet.__main__ import main as fleet_main

    crash_path = tmp_path / "crash.jsonl"
    chaos = FaultInjector((), crash_after_writes=20)
    with pytest.raises(InjectedCrash):
        run_fleet(wal_spec(crash_path), chaos)
    # The report subcommand surfaces the WAL state of the damaged file.
    assert fleet_main(["report", str(crash_path)]) == 0
    report_out = capsys.readouterr().out
    assert "write-ahead log" in report_out
    assert "torn tail" in report_out
    # The resume subcommand finishes the run from the file alone.
    assert fleet_main(["resume", str(crash_path)]) == 0
    out = capsys.readouterr().out
    assert "Resumed" in out
    ref = run_fleet(wal_spec(tmp_path / "ref.jsonl"))
    trace = read_trace(crash_path)
    assert sum(len(t) for t in trace.host_estimates.values()) == ref.total_slices
    # A plain (non-WAL) trace is refused with a message, not a traceback.
    plain = tmp_path / "plain.jsonl"
    record_session_trace(plain, "steady", n_ticks=2)
    assert fleet_main(["resume", str(plain)]) == 1
    assert "Cannot resume" in capsys.readouterr().out


# -- satellite: replay ingestion tolerates damaged lines ---------------------


def test_replay_source_tolerates_trailing_garbage(tmp_path):
    path = tmp_path / "host.jsonl"
    record_session_trace(path, "steady", n_ticks=4)
    with open(path, "a", encoding="utf-8") as stream:
        stream.write('{"type": "sample", "tick":')  # torn tail
    log = EventLog(maxlen=None)
    service = FleetService("x86", n_workers=1, processors=(log,))
    trace = read_trace(path)  # strict: only the torn tail is tolerated
    assert trace.torn_tail
    host = service.add_trace(trace)
    result = service.run()
    assert len(result.estimates[host]) == 4
    skipped = [e for e in log.iter() if isinstance(e, MalformedRecordSkipped)]
    assert len(skipped) == 1
    assert skipped[0].torn_tail
    assert skipped[0].n_lines == 1


def test_replay_source_accounts_midstream_damage(tmp_path):
    path = tmp_path / "host.jsonl"
    record_session_trace(path, "steady", n_ticks=4)
    lines = path.read_text(encoding="utf-8").splitlines()
    lines.insert(2, "%% not json %%")
    lines.insert(4, json.dumps({"type": "martian"}))
    path.write_text("\n".join(lines) + "\n", encoding="utf-8")
    with pytest.raises(Exception):
        read_trace(path)  # mid-stream damage is fatal for strict readers
    trace = read_trace(path, strict=False)
    assert len(trace.malformed_lines) == 2
    service = FleetService("x86", n_workers=1)
    host = service.add_trace(trace)
    result = service.run()
    assert len(result.estimates[host]) == 4


# -- satellite: spec serialization round-trips -------------------------------


def test_run_spec_round_trips_through_json():
    spec = RunSpec(
        metrics=METRICS,
        hosts=(HostSpec(workload="mux-stress", seed=3, n_ticks=5),),
        fault_policy=FaultPolicySpec(max_attempts=4, on_exhausted="skip"),
        checkpoint=CheckpointSpec(path="wal.jsonl", every=2, fsync=False),
        engine_overrides={"ep_max_iterations": 7},
    )
    payload = json.loads(json.dumps(spec.to_dict()))
    assert RunSpec.from_dict(payload) == spec
