"""Tests for factors, the factor graph, Markov blankets, MCMC and EP."""

import numpy as np
import pytest

from repro.fg import (
    ExpectationPropagation,
    FactorGraph,
    GaussianDensity,
    GaussianObservation,
    GaussianPriorFactor,
    LinearConstraintFactor,
    RandomWalkMetropolis,
    StudentTObservation,
    credible_interval,
    map_estimate,
    markov_blanket,
    markov_blanket_of_set,
)
from repro.fg.distributions import StudentT
from repro.fg.ep import EPSite
from repro.fg.markov import blankets_overlap
from repro.fg.mle import coefficient_of_variation, credible_intervals, posterior_std


def _simple_graph():
    graph = FactorGraph(variables=["a", "b", "c"])
    graph.add_factor(GaussianObservation("obs_a", "a", observed=2.0, sigma=0.1))
    graph.add_factor(
        LinearConstraintFactor("sum", {"a": 1.0, "b": 1.0, "c": -1.0}, sigma=0.05)
    )
    graph.add_factor(GaussianPriorFactor("prior_b", {"b": 1.0}, {"b": 0.25}))
    return graph


class TestFactors:
    def test_gaussian_observation_log_density(self):
        obs = GaussianObservation("o", "x", observed=1.0, sigma=1.0)
        assert obs.log_density({"x": 1.0}) > obs.log_density({"x": 3.0})
        assert obs.is_gaussian

    def test_student_t_observation_projection(self):
        obs = StudentTObservation("o", "x", StudentT(loc=5.0, scale=1.0, df=10))
        gaussian = obs.to_gaussian()
        assert gaussian.mean()["x"] == pytest.approx(5.0)
        assert not obs.is_gaussian

    def test_linear_constraint_residual(self):
        factor = LinearConstraintFactor("c", {"x": 1.0, "y": -2.0}, sigma=1.0)
        assert factor.residual({"x": 4.0, "y": 2.0}) == pytest.approx(0.0)
        assert factor.log_density({"x": 4.0, "y": 2.0}) > factor.log_density({"x": 8.0, "y": 2.0})

    def test_prior_factor_validation(self):
        with pytest.raises(ValueError):
            GaussianPriorFactor("p", {"x": 0.0}, {"x": -1.0})
        with pytest.raises(ValueError):
            GaussianPriorFactor("p", {"x": 0.0}, {"y": 1.0})


class TestFactorGraph:
    def test_variables_and_factors_registered(self):
        graph = _simple_graph()
        assert set(graph.variables) == {"a", "b", "c"}
        assert len(graph.factors) == 3

    def test_duplicate_factor_rejected(self):
        graph = _simple_graph()
        with pytest.raises(ValueError):
            graph.add_factor(GaussianObservation("obs_a", "a", 1.0, 1.0))

    def test_factors_of_variable(self):
        graph = _simple_graph()
        names = {factor.name for factor in graph.factors_of("a")}
        assert names == {"obs_a", "sum"}

    def test_neighbors(self):
        graph = _simple_graph()
        assert set(graph.neighbors("a")) == {"b", "c"}

    def test_log_density_sums_factors(self):
        graph = _simple_graph()
        values = {"a": 2.0, "b": 1.0, "c": 3.0}
        total = graph.log_density(values)
        partial = graph.log_density_of(["obs_a"], values)
        assert total < 0 or total > partial  # both finite, partial is a subset
        assert np.isfinite(total)

    def test_to_networkx_bipartite(self):
        graph = _simple_graph().to_networkx()
        variable_nodes = [n for n, d in graph.nodes(data=True) if d["bipartite"] == 0]
        factor_nodes = [n for n, d in graph.nodes(data=True) if d["bipartite"] == 1]
        assert len(variable_nodes) == 3
        assert len(factor_nodes) == 3

    def test_subgraph(self):
        graph = _simple_graph()
        sub = graph.subgraph(["obs_a"])
        assert set(sub.variables) == {"a"}


class TestMarkovBlanket:
    def test_blanket_of_single_variable(self):
        graph = _simple_graph()
        assert set(markov_blanket(graph, "b")) == {"a", "c"}

    def test_blanket_of_set_excludes_members(self):
        graph = _simple_graph()
        blanket = markov_blanket_of_set(graph, ["a", "b"])
        assert "a" not in blanket and "b" not in blanket
        assert "c" in blanket

    def test_blankets_overlap_via_shared_variable(self):
        graph = _simple_graph()
        assert blankets_overlap(graph, ["a"], ["a", "b"])
        assert blankets_overlap(graph, ["a"], ["c"])

    def test_disconnected_variables_do_not_overlap(self):
        graph = FactorGraph(variables=["a", "b", "x", "y"])
        graph.add_factor(LinearConstraintFactor("ab", {"a": 1.0, "b": -1.0}, sigma=1.0))
        graph.add_factor(LinearConstraintFactor("xy", {"x": 1.0, "y": -1.0}, sigma=1.0))
        assert not blankets_overlap(graph, ["a"], ["x"])


class TestMCMC:
    def test_recovers_gaussian_mean(self):
        target = GaussianDensity.diagonal({"x": 3.0}, {"x": 0.5})
        sampler = RandomWalkMetropolis(
            target.log_density, ["x"], initial={"x": 0.0}, rng=np.random.default_rng(1)
        )
        result = sampler.run(800, burn_in=400)
        assert result.mean()["x"] == pytest.approx(3.0, abs=0.3)
        assert 0.05 < result.acceptance_rate < 0.95

    def test_invalid_arguments(self):
        target = GaussianDensity.diagonal({"x": 0.0}, {"x": 1.0})
        sampler = RandomWalkMetropolis(target.log_density, ["x"], initial={"x": 0.0})
        with pytest.raises(ValueError):
            sampler.run(0)
        with pytest.raises(ValueError):
            sampler.run(10, thin=0)


class TestExpectationPropagation:
    def _run_ep(self, estimator):
        graph = _simple_graph()
        prior = GaussianDensity.diagonal(
            {"a": 1.0, "b": 1.0, "c": 2.0}, {"a": 25.0, "b": 25.0, "c": 25.0}
        )
        sites = [
            EPSite("observations", ("obs_a", "prior_b")),
            EPSite("constraints", ("sum",)),
        ]
        ep = ExpectationPropagation(
            graph,
            sites,
            prior,
            moment_estimator=estimator,
            rng=np.random.default_rng(0),
            mcmc_samples=400,
        )
        return ep.run()

    def test_analytic_ep_matches_exact_posterior(self):
        result = self._run_ep("analytic")
        means = result.mean()
        # a is pinned by its observation, b by its prior, and c = a + b.
        assert means["a"] == pytest.approx(2.0, abs=0.1)
        assert means["b"] == pytest.approx(1.0, abs=0.2)
        assert means["c"] == pytest.approx(3.0, abs=0.3)
        assert result.converged

    def test_mcmc_ep_close_to_analytic(self):
        analytic = self._run_ep("analytic").mean()
        sampled = self._run_ep("mcmc").mean()
        for name in ("a", "b", "c"):
            assert sampled[name] == pytest.approx(analytic[name], abs=0.5)

    def test_posterior_uncertainty_reported(self):
        result = self._run_ep("analytic")
        assert all(v > 0 for v in result.variance().values())

    def test_invalid_estimator_rejected(self):
        graph = _simple_graph()
        prior = GaussianDensity.diagonal({"a": 0.0, "b": 0.0, "c": 0.0}, {"a": 1.0, "b": 1.0, "c": 1.0})
        with pytest.raises(ValueError):
            ExpectationPropagation(graph, [EPSite("s", ("obs_a",))], prior, moment_estimator="exact")


class TestMLE:
    def test_map_and_intervals(self):
        density = GaussianDensity.diagonal({"x": 2.0}, {"x": 4.0})
        assert map_estimate(density)["x"] == pytest.approx(2.0)
        low, high = credible_interval(density, "x", 0.95)
        assert low < 2.0 < high
        assert posterior_std(density)["x"] == pytest.approx(2.0)
        assert credible_intervals(density)["x"][0] == pytest.approx(low)
        assert coefficient_of_variation(density)["x"] == pytest.approx(1.0)

    def test_invalid_confidence(self):
        density = GaussianDensity.diagonal({"x": 0.0}, {"x": 1.0})
        with pytest.raises(ValueError):
            credible_interval(density, "x", 1.5)
