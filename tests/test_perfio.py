"""Real-trace ingestion (:mod:`repro.perfio`): parsers, schema mapping,
lowering, the host source, and the pipeline composition end to end.

The committed fixtures are real-format captures:

* ``tests/fixtures/perf_stat_interval.csv`` — ``perf stat -I 100 -x,``
  interval output, 8 events over 4 counters (~50% multiplexed), two
  ``<not counted>`` intervals and one torn interleaved line;
* ``tests/fixtures/perf_script_sample.txt`` — ``perf script`` sample
  lines across 2 CPUs with one ``LOST n events!`` marker.

Everything malformed follows the skip-and-account contract from the
tracefile reader: counted, surfaced, never raised on.  The hypothesis
fuzz section hammers that contract with truncated / interleaved /
locale-mangled lines.
"""

import json
import math
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import CheckpointSpec, HostSpec, Pipeline, RunSpec
from repro.core import BayesPerfEngine
from repro.events import catalog_for
from repro.fleet.__main__ import main as fleet_main
from repro.fleet.chaos import FaultInjector, InjectedCrash
from repro.fleet.tracefile import TraceFile, read_trace, write_trace
from repro.perfio import (
    PERF_FORMATS,
    CounterSample,
    IngestStats,
    PerfTraceSource,
    SchemaMapper,
    UnknownEventError,
    detect_format,
    iter_jsonl,
    iter_script,
    iter_stat_csv,
    parser_for,
)
from repro.pmu.sampling import SamplingRecord
from repro.pmu.configuration import CounterConfiguration

FIXTURES = Path(__file__).parent / "fixtures"
STAT_FIXTURE = FIXTURES / "perf_stat_interval.csv"
SCRIPT_FIXTURE = FIXTURES / "perf_script_sample.txt"


def parse(parser, lines):
    stats = IngestStats()
    samples = list(parser(lines, stats))
    return samples, stats


# -- parsers -----------------------------------------------------------------


class TestStatCsvParser:
    def test_parses_values_and_mux_bookkeeping(self):
        samples, stats = parse(
            iter_stat_csv,
            [
                "# started on Thu Aug  6 09:14:02 2026",
                "0.100123,1234567,,cycles,50000000,50.00,,",
                "0.100123,<not counted>,,branches,0,0.00,,",
            ],
        )
        assert stats.comment_lines == 1
        assert stats.parsed_samples == 2
        assert stats.not_counted == 1
        counted, dropped = samples
        assert counted.event == "cycles"
        assert counted.value == 1234567.0
        assert counted.fraction() == pytest.approx(0.5)
        assert dropped.value is None

    def test_malformed_lines_skip_and_account(self):
        samples, stats = parse(
            iter_stat_csv,
            [
                "0.9934,1721malformed,,instr",  # truncated mid-write
                "0.1,NaN-ish,,cycles,1,50.00,,",  # non-numeric value
                "not,csv",  # too few fields
                "",  # blank: neither parsed nor skipped
            ],
        )
        assert samples == []
        assert stats.skipped_lines == 3
        assert stats.total_lines == 4

    def test_locale_mangled_numbers_parse(self):
        samples, stats = parse(
            iter_stat_csv,
            [
                "0.1,1_234_567,,cycles,1,50.00,,",  # underscore grouping
                "0.2,1234\u00a0567,,cycles,1,50.00,,",  # NBSP grouping
                "0.3,1234\u202f567,,cycles,1,50.00,,",  # narrow NBSP
            ],
        )
        assert stats.skipped_lines == 0
        assert [s.value for s in samples] == [1234567.0] * 3

    def test_locale_commas_parse_inside_jsonl_strings(self):
        # Comma-separated CSV cannot carry comma-grouped numbers, but JSON
        # string values can — both locale conventions must lower.
        samples, stats = parse(
            iter_jsonl,
            [
                '{"ts": 0.1, "event": "cycles", "value": "1,234,567"}',
                '{"ts": 0.2, "event": "cycles", "value": "1.234.567,89"}',
                '{"ts": 0.3, "event": "cycles", "value": "1234,56"}',
            ],
        )
        assert stats.skipped_lines == 0
        assert [s.value for s in samples] == [1234567.0, 1234567.89, 1234.56]


class TestScriptParser:
    def test_parses_sample_line(self):
        samples, stats = parse(
            iter_script,
            [
                "stress-ng  4021 [001] 883.412345:    1250000 cycles:u:  55d1 do_work (/usr/bin/stress-ng)"
            ],
        )
        (sample,) = samples
        assert sample.event == "cycles:u"
        assert sample.value == 1250000.0
        assert sample.cpu == 1
        assert sample.timestamp == pytest.approx(883.412345)
        assert stats.parsed_samples == 1

    def test_period_defaults_to_one_sample(self):
        samples, _ = parse(
            iter_script, ["swapper     0 100.000100: cycles:  ffffffff810 do_idle ([kernel])"]
        )
        assert samples[0].value == 1.0
        assert samples[0].cpu is None

    def test_lost_event_markers_are_skipped(self):
        samples, stats = parse(iter_script, ["  LOST 14 events!"])
        assert samples == []
        assert stats.skipped_lines == 1


class TestJsonlParser:
    def test_key_aliases(self):
        samples, stats = parse(
            iter_jsonl,
            [
                '{"ts": 0.1, "event": "cycles", "value": 10, "enabled": 4, "running": 2}',
                '{"time": 0.2, "name": "cycles", "count": 11, "time_enabled": 4, "time_running": 2}',
                '{"timestamp": 0.3, "event": "cycles", "value": 12}',
            ],
        )
        assert stats.parsed_samples == 3
        assert [s.value for s in samples] == [10.0, 11.0, 12.0]
        assert samples[0].fraction() == pytest.approx(0.5)
        assert samples[1].fraction() == pytest.approx(0.5)
        assert samples[2].fraction() is None

    def test_not_counted_and_garbage(self):
        samples, stats = parse(
            iter_jsonl,
            [
                '{"ts": 0.1, "event": "cycles", "value": "<not counted>"}',
                '{"ts": 0.2, "event": "cycles", "value": null}',
                '{"ts": 0.3, "event": "cycles", "value": true}',  # bool is not a count
                "{torn json",
                "[1, 2, 3]",
                '{"event": "cycles", "value": 3}',  # no timestamp
            ],
        )
        assert stats.not_counted == 2
        assert stats.skipped_lines == 4
        assert all(s.value is None for s in samples)


class TestDetectFormat:
    def test_detects_each_format(self):
        assert detect_format(['{"ts": 1, "event": "cycles", "value": 2}']) == "jsonl"
        assert detect_format(["0.1,123,,cycles,1,50.00,,"]) == "stat-csv"
        assert detect_format(["prog 1 [000] 1.0: 5 cycles: 55d1 f (x)"]) == "script"
        assert detect_format(["# comment only"]) == "stat-csv"
        assert detect_format([]) == "stat-csv"

    def test_parser_for_rejects_unknown_format(self):
        with pytest.raises(ValueError, match="stat-csv"):
            parser_for("pmu-dump")
        for fmt in PERF_FORMATS:
            assert callable(parser_for(fmt))


# -- schema mapping ----------------------------------------------------------


class TestSchemaMapper:
    def setup_method(self):
        self.catalog = catalog_for("x86")
        self.mapper = SchemaMapper(self.catalog)

    def test_generic_aliases_resolve_through_semantics(self):
        assert self.mapper.resolve("cycles") == "CPU_CLK_UNHALTED.THREAD"
        assert self.mapper.resolve("instructions") == "INST_RETIRED.ANY"
        assert self.mapper.resolve("cache-misses") == "LONGEST_LAT_CACHE.MISS"

    def test_modifiers_and_wrappers_are_stripped(self):
        assert self.mapper.resolve("cycles:u") == self.mapper.resolve("cycles")
        assert self.mapper.resolve("cycles:kHG") == self.mapper.resolve("cycles")
        assert self.mapper.resolve("cpu/cycles/") == self.mapper.resolve("cycles")
        assert self.mapper.resolve("cpu_cycles") == self.mapper.resolve("cpu-cycles")

    def test_exact_catalog_names_win_case_insensitively(self):
        assert self.mapper.resolve("INST_RETIRED.ANY") == "INST_RETIRED.ANY"
        assert self.mapper.resolve("inst_retired.any") == "INST_RETIRED.ANY"

    def test_unknown_event_error_lists_nearest_aliases(self):
        with pytest.raises(UnknownEventError) as excinfo:
            self.mapper.resolve("cycels")
        message = str(excinfo.value)
        assert "cycels" in message
        assert "cycles" in message  # the nearest alias is suggested
        assert "on_unknown='skip'" in message

    def test_skip_policy_returns_none_and_caches(self):
        mapper = SchemaMapper(self.catalog, on_unknown="skip")
        assert mapper.resolve("definitely-not-an-event") is None
        assert mapper.resolve("cycles") == "CPU_CLK_UNHALTED.THREAD"

    def test_unknown_policy_is_validated(self):
        with pytest.raises(ValueError, match="raise"):
            SchemaMapper(self.catalog, on_unknown="explode")


# -- the host source over the committed fixtures -----------------------------


class TestPerfTraceSource:
    def test_stat_fixture_lowers_with_accounting(self):
        source = PerfTraceSource("h0", STAT_FIXTURE)
        assert source.format == "stat-csv"
        assert source.n_ticks == 24
        assert len(source.events) == 8
        assert source.stats.skipped_lines == 1  # the interleaved torn line
        assert source.stats.not_counted == 2
        assert source.skipped_lines == 1  # the channel accounting surface
        assert not source.torn_tail
        # ~50% multiplexing shows up as per-event fractions on every tick.
        first = next(source.records())
        assert first.mux_fraction
        assert all(0.4 < f < 0.6 for f in first.mux_fraction.values())

    def test_not_counted_events_leave_the_ticks_configuration(self):
        source = PerfTraceSource("h0", STAT_FIXTURE)
        records = list(source.records())
        missing = source.mapping["cache-misses"]
        assert missing not in records[7].samples
        assert missing not in records[7].configuration.events
        assert missing in records[6].samples

    def test_script_fixture_groups_into_quanta(self):
        source = PerfTraceSource("h0", SCRIPT_FIXTURE)
        assert source.format == "script"
        assert source.n_ticks > 10
        assert source.stats.skipped_lines == 1  # the LOST marker
        assert set(source.mapping) == {
            "cycles:u",
            "instructions:u",
            "branches:u",
            "cache-misses:u",
        }

    def test_ingestion_is_deterministic(self):
        a = PerfTraceSource("h0", STAT_FIXTURE)
        b = PerfTraceSource("h0", STAT_FIXTURE)
        for ra, rb in zip(a.records(), b.records()):
            assert ra.tick == rb.tick
            assert ra.configuration.events == rb.configuration.events
            assert ra.mux_fraction == rb.mux_fraction
            for event in ra.samples:
                assert np.array_equal(ra.samples[event], rb.samples[event])

    def test_byte_offsets_are_monotonic_and_file_bounded(self):
        source = PerfTraceSource("h0", STAT_FIXTURE)
        size = STAT_FIXTURE.stat().st_size
        offsets = [source.byte_offset(n) for n in range(source.n_ticks + 1)]
        assert offsets[0] == 0
        assert offsets == sorted(offsets)
        assert offsets[-1] <= size
        # Past-the-end pulls clamp to the final record's offset.
        assert source.byte_offset(source.n_ticks + 99) == offsets[-1]

    def test_torn_tail_is_detected(self, tmp_path):
        path = tmp_path / "torn.csv"
        path.write_text("0.1,123,,cycles,1,50.00,,\n0.2,45", encoding="utf-8")
        source = PerfTraceSource("h0", path)
        assert source.torn_tail
        assert source.stats.skipped_lines == 1

    def test_useless_capture_raises_at_registration(self, tmp_path):
        path = tmp_path / "noise.csv"
        path.write_text("garbage\nmore garbage\n", encoding="utf-8")
        with pytest.raises(ValueError, match="no usable counter samples"):
            PerfTraceSource("h0", path, format="stat-csv")

    def test_unknown_event_raises_with_suggestions_by_default(self, tmp_path):
        path = tmp_path / "bogus.csv"
        path.write_text("0.1,123,,cycels,1,50.00,,\n", encoding="utf-8")
        with pytest.raises(UnknownEventError, match="cycles"):
            PerfTraceSource("h0", path)

    def test_on_unknown_skip_accounts_like_malformed_lines(self, tmp_path):
        path = tmp_path / "mixed.csv"
        path.write_text(
            "0.1,123,,cycles,1,50.00,,\n"
            "0.1,9,,made-up-event,1,50.00,,\n"
            "0.2,124,,cycles,1,50.00,,\n"
            "0.2,9,,made-up-event,1,50.00,,\n"
            "half a torn line\n",
            encoding="utf-8",
        )
        source = PerfTraceSource("h0", path, on_unknown="skip")
        assert source.stats.unknown_events == {"made-up-event": 2}
        assert source.stats.skipped_lines == 1
        # The channel-facing count folds both in, like fleet.ingest replay.
        assert source.skipped_lines == 3
        assert source.events == ("CPU_CLK_UNHALTED.THREAD",)

    def test_monitored_events_filter_the_capture(self):
        source = PerfTraceSource(
            "h0", STAT_FIXTURE, events=("CPU_CLK_UNHALTED.THREAD", "INST_RETIRED.ANY")
        )
        assert source.events == ("CPU_CLK_UNHALTED.THREAD", "INST_RETIRED.ANY")
        for record in source.records():
            assert set(record.samples) <= set(source.events)

    def test_monitored_events_are_validated_against_the_catalog(self):
        with pytest.raises(KeyError, match="NOT_AN_EVENT"):
            PerfTraceSource("h0", STAT_FIXTURE, events=("NOT_AN_EVENT",))


# -- HostSpec / RunSpec wiring -----------------------------------------------


class TestHostSpecValidation:
    def test_perf_and_trace_are_mutually_exclusive(self):
        with pytest.raises(ValueError, match="mutually exclusive"):
            HostSpec(perf="a.csv", trace="b.jsonl")

    @pytest.mark.parametrize(
        "kwargs, field",
        [
            (dict(seed=7), "seed"),
            (dict(n_ticks=5), "n_ticks"),
            (dict(workload="mux-stress"), "workload"),
        ],
    )
    def test_perf_host_rejects_synthetic_knobs(self, kwargs, field):
        with pytest.raises(ValueError, match=field):
            HostSpec(perf="a.csv", **kwargs)

    def test_perf_host_format_and_policy_are_validated(self):
        with pytest.raises(ValueError, match="'auto'"):
            HostSpec(perf="a.csv", format="xml")
        with pytest.raises(ValueError, match="on_unknown"):
            HostSpec(perf="a.csv", on_unknown="explode")

    def test_synthetic_host_rejects_perf_only_fields(self):
        with pytest.raises(ValueError, match="HostSpec.perf"):
            HostSpec(format="jsonl")
        with pytest.raises(ValueError, match="HostSpec.perf"):
            HostSpec(on_unknown="skip")

    def test_perf_host_round_trips_through_run_spec_dict(self):
        spec = RunSpec(
            hosts=(
                HostSpec(perf=str(STAT_FIXTURE), format="stat-csv", on_unknown="skip"),
                HostSpec(workload="steady", n_ticks=4),
            ),
            baselines=("linux",),
        )
        assert RunSpec.from_dict(spec.to_dict()) == spec


# -- pipeline composition ----------------------------------------------------


def perf_spec(**kwargs):
    return RunSpec(
        hosts=(HostSpec(perf=str(STAT_FIXTURE), host_id="metal-00"),), **kwargs
    )


class TestPipelineComposition:
    def test_two_runs_are_bit_identical(self):
        key = lambda r: [(s.host, s.tick, s.values, s.sigma) for s in r.slices]
        first = Pipeline.from_spec(perf_spec()).run()
        second = Pipeline.from_spec(perf_spec()).run()
        assert len(first.slices) == 24
        assert key(first) == key(second)

    def test_perf_and_synthetic_hosts_share_a_fleet(self):
        spec = RunSpec(
            hosts=(
                HostSpec(perf=str(STAT_FIXTURE), host_id="metal-00"),
                HostSpec(workload="steady", n_ticks=4, host_id="sim-00"),
            )
        )
        result = Pipeline.from_spec(spec).run()
        hosts = {s.host for s in result.slices}
        assert hosts == {"metal-00", "sim-00"}

    def test_comparison_report_scores_baselines_against_the_posterior(self):
        result = Pipeline.from_spec(perf_spec(baselines=("linux",))).run()
        report = result.comparison
        assert report is not None
        (host,) = report.hosts
        assert host.host_id == "metal-00"
        assert host.workload == "perf:stat-csv"
        # No ground truth exists: linux is scored as divergence from the
        # engine posterior, and the bayesperf column is blank (NaN).
        assert "linux" in host.reports
        assert math.isfinite(host.reports["linux"].mean_error_percent)
        assert "bayesperf" not in host.reports
        assert math.isnan(report.mean_error_percent("bayesperf"))
        rendered = report.render()
        assert "metal-00" in rendered and "linux" in rendered

    def test_crash_resume_mid_file_recovers_bit_identically(self, tmp_path):
        def wal_spec(path):
            return perf_spec(
                checkpoint=CheckpointSpec(path=str(path)), pump_records=4
            )

        reference = Pipeline.from_spec(wal_spec(tmp_path / "ref.jsonl")).run_fleet()
        crash_path = tmp_path / "crash.jsonl"
        chaos = FaultInjector((), crash_after_writes=12)
        with pytest.raises(InjectedCrash):
            Pipeline.from_spec(wal_spec(crash_path), chaos=chaos).run_fleet()
        resumed = Pipeline.resume(crash_path).run_fleet()
        trace = resumed.estimates["metal-00"]
        assert trace.values_equal(reference.estimates["metal-00"])
        assert read_trace(crash_path).resumes == 1

    def test_checkpoints_pin_the_file_offset(self, tmp_path):
        path = tmp_path / "wal.jsonl"
        Pipeline.from_spec(
            perf_spec(checkpoint=CheckpointSpec(path=str(path)), pump_records=4)
        ).run_fleet()
        offsets = []
        with open(path, encoding="utf-8") as handle:
            for line in handle:
                record = json.loads(line)
                if record.get("type") == "checkpoint":
                    offsets.append(record["progress"]["file_offset"])
        assert offsets, "expected host checkpoints in the WAL"
        assert all(isinstance(offset, int) for offset in offsets)
        assert offsets == sorted(offsets)
        assert offsets[-1] <= STAT_FIXTURE.stat().st_size


# -- engine: multiplexing-fraction widening ----------------------------------


class TestMuxFractionWidening:
    def record(self, mux):
        events = ("CPU_CLK_UNHALTED.THREAD", "INST_RETIRED.ANY")
        return SamplingRecord(
            tick=0,
            configuration=CounterConfiguration(events=events),
            samples={
                "CPU_CLK_UNHALTED.THREAD": np.array([1.0e6, 1.1e6, 0.9e6]),
                "INST_RETIRED.ANY": np.array([7.0e5, 7.2e5, 6.8e5]),
            },
            mux_fraction=mux,
        )

    def engine(self):
        return BayesPerfEngine(
            catalog_for("x86"), ("CPU_CLK_UNHALTED.THREAD", "INST_RETIRED.ANY")
        )

    def test_fraction_widens_the_observation_scale(self):
        clean = self.engine()._observation_summaries(self.record({}))
        muxed = self.engine()._observation_summaries(
            self.record({"CPU_CLK_UNHALTED.THREAD": 0.25})
        )
        assert muxed.scale[0] == pytest.approx(clean.scale[0] / math.sqrt(0.25))
        assert muxed.scale[1] == clean.scale[1]  # untouched event unchanged

    def test_empty_fraction_dict_is_bit_identical(self):
        base = self.engine()._observation_summaries(self.record({}))
        default = self.engine()._observation_summaries(
            SamplingRecord(
                tick=0,
                configuration=self.record({}).configuration,
                samples=self.record({}).samples,
            )
        )
        assert np.array_equal(base.scale, default.scale)
        assert np.array_equal(base.loc, default.loc)

    def test_degenerate_fractions_do_not_blow_up(self):
        summaries = self.engine()._observation_summaries(
            self.record({"CPU_CLK_UNHALTED.THREAD": 0.0, "INST_RETIRED.ANY": 1.0})
        )
        assert np.all(np.isfinite(summaries.scale))


# -- tracefile round trip ----------------------------------------------------


class TestTracefileMuxRoundTrip:
    def test_mux_fractions_survive_write_read(self, tmp_path):
        source = PerfTraceSource("h0", STAT_FIXTURE)
        path = tmp_path / "capture.trace"
        write_trace(
            path,
            TraceFile(
                arch=source.arch,
                events=source.events,
                workload=source.workload_name,
                samples_per_tick=source.samples_per_tick,
                sampled=source.sampled_trace(),
            ),
        )
        rebuilt = read_trace(path)
        originals = list(source.records())
        assert len(rebuilt.sampled.records) == len(originals)
        for original, restored in zip(originals, rebuilt.sampled.records):
            assert restored.mux_fraction == pytest.approx(original.mux_fraction)

    def test_synthetic_records_stay_byte_stable(self, tmp_path):
        from repro.fleet.tracefile import sample_line

        record = SamplingRecord(
            tick=0,
            configuration=CounterConfiguration(events=("INST_RETIRED.ANY",)),
            samples={"INST_RETIRED.ANY": np.array([1.0, 2.0])},
        )
        assert "mux" not in sample_line(record)


# -- the CLI -----------------------------------------------------------------


class TestIngestCli:
    def test_preview_shows_mapping_and_accounting(self, capsys):
        assert fleet_main(["ingest", str(STAT_FIXTURE), "--limit", "2"]) == 0
        out = capsys.readouterr().out
        assert "schema mapping" in out
        assert "cycles" in out and "CPU_CLK_UNHALTED.THREAD" in out
        assert "1 malformed skipped" in out
        assert "<not counted> readings: 2" in out
        assert "quantum 0:" in out

    def test_missing_file_fails_cleanly(self, capsys):
        assert fleet_main(["ingest", "/nonexistent/capture.csv"]) == 1
        assert "Cannot ingest" in capsys.readouterr().out

    def test_unknown_event_raise_vs_skip(self, tmp_path, capsys):
        path = tmp_path / "odd.csv"
        path.write_text(
            "0.1,1,,cycles,1,50.00,,\n0.1,2,,mystery-event,1,50.00,,\n",
            encoding="utf-8",
        )
        assert fleet_main(["ingest", str(path)]) == 1
        assert "mystery-event" in capsys.readouterr().out
        assert fleet_main(["ingest", str(path), "--on-unknown", "skip"]) == 0
        assert "unknown events skipped: mystery-event x1" in capsys.readouterr().out

    def test_convert_writes_a_replayable_tracefile(self, tmp_path, capsys):
        out_path = tmp_path / "converted.trace"
        code = fleet_main(
            ["ingest", str(STAT_FIXTURE), "--convert", str(out_path), "--limit", "0"]
        )
        assert code == 0
        trace = read_trace(out_path)
        assert trace.workload == "perf:stat-csv"
        assert len(trace.sampled.records) == 24
        assert trace.metadata["format"] == "stat-csv"

    def test_demo_unknown_workload_lists_the_registry(self, capsys):
        from repro.workloads.registry import available_workloads

        with pytest.raises(SystemExit) as excinfo:
            fleet_main(["demo", "--workload", "does-not-exist"])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "does-not-exist" in err
        for name in available_workloads():
            assert name in err


# -- fuzz: skip-and-account never raises -------------------------------------

STAT_LINES = STAT_FIXTURE.read_text(encoding="utf-8").splitlines()
SCRIPT_LINES = SCRIPT_FIXTURE.read_text(encoding="utf-8").splitlines()


def mangle(line, cut, locale_commas):
    if cut:
        line = line[: max(1, len(line) * 2 // 3)]
    if locale_commas:
        line = line.replace(".", ",", 1)
    return line


mangled_lines = st.one_of(
    st.text(max_size=80),  # arbitrary interleaved garbage
    st.builds(
        mangle,
        st.sampled_from(STAT_LINES + SCRIPT_LINES),
        st.booleans(),
        st.booleans(),
    ),
)


class TestFuzzParsers:
    @settings(max_examples=60, deadline=None)
    @given(lines=st.lists(mangled_lines, max_size=30), fmt=st.sampled_from(PERF_FORMATS))
    def test_parsers_never_raise_and_account_every_line(self, lines, fmt):
        stats = IngestStats()
        samples = list(parser_for(fmt)(lines, stats))
        assert stats.total_lines == len(lines)
        # Every non-blank line is either parsed, a comment, or accounted
        # as skipped — nothing disappears silently.
        blank = sum(1 for line in lines if not line.strip())
        assert (
            stats.parsed_samples + stats.comment_lines + stats.skipped_lines + blank
            == len(lines)
        )
        for sample in samples:
            assert isinstance(sample, CounterSample)
            assert math.isfinite(sample.timestamp)

    @settings(max_examples=30, deadline=None)
    @given(lines=st.lists(mangled_lines, max_size=20))
    def test_detect_format_always_answers(self, lines):
        assert detect_format(lines) in PERF_FORMATS

    @settings(max_examples=20, deadline=None)
    @given(lines=st.lists(st.sampled_from(STAT_LINES), min_size=8, max_size=40))
    def test_interleaved_captures_still_lower(self, tmp_path_factory, lines):
        path = tmp_path_factory.mktemp("fuzz") / "capture.csv"
        path.write_text("\n".join(lines) + "\n", encoding="utf-8")
        try:
            source = PerfTraceSource("h0", path, format="stat-csv")
        except ValueError:
            return  # nothing usable is a loud, clean failure — fine
        assert source.n_ticks >= 1
        for record in source.records():
            assert record.configuration.events
