"""Tests for the BayesPerf engine, sessions, ring buffer and shim."""

import numpy as np
import pytest

from repro.core import BayesPerfEngine, BayesPerfShim, PerfSession, RingBuffer
from repro.core.posterior import EventEstimate, PosteriorReport
from repro.core.shim import ShimError
from repro.events import catalog_for
from repro.events.profiles import standard_profiling_events
from repro.metrics import trace_error
from repro.pmu import MultiplexedSampler, NoiseModel, PollingReader
from repro.scheduling import overlap_schedule, round_robin_schedule
from repro.uarch import Machine, MachineConfig
from repro.workloads import get_workload, steady_workload


@pytest.fixture(scope="module")
def small_pipeline():
    catalog = catalog_for("x86")
    events = standard_profiling_events(catalog, n_events=16)
    schedule = overlap_schedule(catalog, events)
    trace = Machine(MachineConfig(), get_workload("KMeans"), seed=1).run(50)
    sampled = MultiplexedSampler(catalog, schedule, seed=2).sample(trace)
    polled = PollingReader(catalog, sampled.events, seed=3).read(trace)
    return catalog, events, schedule, sampled, polled


class TestPosteriorTypes:
    def test_event_estimate_interval(self):
        estimate = EventEstimate(event="e", mean=10.0, std=1.0)
        low, high = estimate.interval(0.95)
        assert low < 10.0 < high
        assert estimate.contains(10.5)
        assert estimate.relative_uncertainty == pytest.approx(0.1)

    def test_report_most_uncertain(self):
        report = PosteriorReport(tick=0)
        report.estimates["a"] = EventEstimate("a", 10.0, 5.0)
        report.estimates["b"] = EventEstimate("b", 10.0, 0.1)
        assert report.most_uncertain(1)[0].event == "a"


class TestRingBuffer:
    def test_fifo_semantics(self):
        buffer = RingBuffer(capacity=2)
        assert buffer.push(1) and buffer.push(2)
        assert not buffer.push(3)  # dropped
        assert buffer.dropped == 1
        assert buffer.pop() == 1
        assert buffer.drain() == [2]
        assert buffer.is_empty

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            RingBuffer(capacity=0)


class TestBayesPerfEngine:
    def test_validates_arguments(self):
        catalog = catalog_for("x86")
        events = standard_profiling_events(catalog, n_events=8)
        with pytest.raises(ValueError):
            BayesPerfEngine(catalog, events, observation_model="poisson")
        with pytest.raises(ValueError):
            BayesPerfEngine(catalog, events, drift=0.0)

    def test_reports_monitored_events_only(self, small_pipeline):
        catalog, events, _, sampled, _ = small_pipeline
        engine = BayesPerfEngine(catalog, events)
        report = engine.process_record(sampled.records[0])
        assert set(report.estimates) == set(engine.monitored_events)
        assert all(isinstance(e, EventEstimate) for e in report.estimates.values())

    def test_estimates_track_measured_events(self, small_pipeline):
        catalog, events, _, sampled, polled = small_pipeline
        engine = BayesPerfEngine(catalog, events)
        record = sampled.records[0]
        report = engine.process_record(record)
        for event in record.configuration.events:
            measured = record.total(event)
            assert report[event].mean == pytest.approx(measured, rel=0.25)

    def test_correct_beats_linux(self, small_pipeline):
        catalog, events, schedule, sampled, polled = small_pipeline
        from repro.baselines import LinuxScaling

        bayes = BayesPerfEngine(catalog, events).correct(sampled)
        linux = LinuxScaling().correct(sampled)
        warmup = schedule.rotation_ticks
        bayes_error = trace_error(bayes, polled, events=events, skip_ticks=warmup, aggregate_ticks=8)
        linux_error = trace_error(linux, polled, events=events, skip_ticks=warmup, aggregate_ticks=8)
        assert bayes_error.mean_error < linux_error.mean_error

    def test_uncertainty_reported_and_positive(self, small_pipeline):
        catalog, events, _, sampled, _ = small_pipeline
        engine = BayesPerfEngine(catalog, events)
        reports = engine.reports(sampled)
        assert len(reports) == len(sampled)
        assert all(e.std > 0 for e in reports[-1].estimates.values())

    def test_unmeasured_events_have_higher_relative_uncertainty(self, small_pipeline):
        catalog, events, _, sampled, _ = small_pipeline
        engine = BayesPerfEngine(catalog, events)
        engine.process_record(sampled.records[0])
        report = engine.process_record(sampled.records[1])
        measured = set(report.measured_events)
        unmeasured = [e for e in engine.monitored_events if e not in measured]
        measured_unc = np.mean([report[e].relative_uncertainty for e in measured])
        unmeasured_unc = np.mean([report[e].relative_uncertainty for e in unmeasured])
        assert unmeasured_unc > measured_unc

    def test_gaussian_observation_model_also_works(self, small_pipeline):
        catalog, events, _, sampled, _ = small_pipeline
        engine = BayesPerfEngine(catalog, events, observation_model="gaussian")
        report = engine.process_record(sampled.records[0])
        assert report.ep_converged

    def test_reset_clears_state(self, small_pipeline):
        catalog, events, _, sampled, _ = small_pipeline
        engine = BayesPerfEngine(catalog, events)
        engine.process_record(sampled.records[0])
        engine.reset()
        assert all(v is None for v in engine._prior_mean.values())


class TestPerfSession:
    def test_invalid_method(self):
        with pytest.raises(ValueError):
            PerfSession("x86", method="magic")

    def test_bayesperf_session_runs_and_improves(self):
        # A bursty, phase-rich workload: the regime multiplexing error (and
        # therefore BayesPerf's advantage) comes from.
        events = standard_profiling_events(catalog_for("x86"), n_events=14)
        bayes = PerfSession("x86", method="bayesperf", events=events).run("mux-stress", n_ticks=60, seed=0)
        linux = PerfSession("x86", method="linux", events=events).run("mux-stress", n_ticks=60, seed=0)
        assert bayes.mean_error_percent < linux.mean_error_percent
        assert bayes.schedule.name == "bayesperf-overlap"
        assert linux.schedule.name == "round-robin"

    def test_metrics_selection(self):
        session = PerfSession("x86", method="linux", metrics=["ipc", "llc_miss_rate"])
        assert len(session.events) < 10

    def test_separate_run_reference(self):
        events = standard_profiling_events(catalog_for("x86"), n_events=10)
        session = PerfSession("x86", method="linux", events=events, reference="separate-run")
        result = session.run("steady", n_ticks=30, seed=1)
        assert result.mean_error_percent > 0


class TestShim:
    def test_full_lifecycle(self):
        shim = BayesPerfShim("x86", seed=0)
        fd_miss = shim.perf_event_open("LONGEST_LAT_CACHE.MISS")
        fd_ref = shim.perf_event_open("LONGEST_LAT_CACHE.REFERENCE")
        shim.attach(steady_workload(), n_ticks=12)
        shim.enable()
        processed = shim.step(6)
        assert processed == 6
        estimate = shim.read(fd_miss)
        assert estimate.mean > 0
        assert shim.read_value(fd_ref) > estimate.mean  # references exceed misses
        reports = shim.poll_reports()
        assert len(reports) == 6
        shim.close()

    def test_api_misuse_raises(self):
        shim = BayesPerfShim("x86")
        with pytest.raises(KeyError):
            shim.perf_event_open("NOT_AN_EVENT")
        with pytest.raises(ShimError):
            shim.attach("steady")  # no events registered
        fd = shim.perf_event_open("L2_RQSTS.MISS")
        with pytest.raises(ShimError):
            shim.enable()  # not attached
        shim.attach("steady", n_ticks=5)
        with pytest.raises(ShimError):
            shim.step()  # not enabled
        shim.enable()
        with pytest.raises(ShimError):
            shim.read(fd)  # nothing processed yet
