"""Equivalence suite: compiled EP kernel vs. the reference implementation.

The compiled kernel must be a drop-in replacement for analytic-estimator
EP: posteriors within 1e-8 of the reference on the seed benchmark graphs,
batched solves exactly equal to looped single-record solves, and graceful
fallback for everything it cannot compile.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.engine import BayesPerfEngine
from repro.events.profiles import standard_profiling_events
from repro.events.registry import catalog_for
from repro.fg import (
    CompiledEPKernel,
    ExpectationPropagation,
    FactorGraph,
    GaussianDensity,
    GaussianObservation,
    GaussianPriorFactor,
    LinearConstraintFactor,
    compile_factor_graph,
    site_factor_lists,
)
from repro.fg.distributions import StudentT
from repro.fg.ep import EPSite
from repro.fg.factors import Factor, StudentTObservation
from repro.pmu.sampling import MultiplexedSampler
from repro.scheduling.cache import cached_schedule
from repro.uarch.machine import Machine, MachineConfig
from repro.workloads.registry import get_workload


def _relative_gap(a, b):
    return abs(a - b) / max(abs(a), abs(b), 1e-12)


def _run_both(graph, sites, prior, *, damping=0.5, max_iterations=25):
    """(reference EPResult, compiled CompiledEPResult) for one graph."""
    reference = ExpectationPropagation(
        graph, sites, prior, damping=damping, max_iterations=max_iterations
    ).run()
    structure = compile_factor_graph(graph, sites, prior.variables)
    assert structure is not None
    kernel = CompiledEPKernel(structure, damping=damping, max_iterations=max_iterations)
    binding = structure.bind(site_factor_lists(graph, sites))
    compiled = kernel.run([binding], [prior])
    return reference, compiled


def _assert_posteriors_match(reference, compiled, tolerance=1e-8):
    ref_mean = reference.posterior.mean()
    ref_var = reference.posterior.variance()
    com_mean = compiled.mean_dict(0)
    com_var = compiled.variance_dict(0)
    for name in ref_mean:
        assert com_mean[name] == pytest.approx(ref_mean[name], rel=tolerance, abs=tolerance)
        assert com_var[name] == pytest.approx(ref_var[name], rel=tolerance, abs=tolerance)
    assert int(compiled.iterations[0]) == reference.iterations
    assert bool(compiled.converged[0]) == reference.converged


def _bench_graph(observed=2.0):
    """The seed test graph: one observation, one constraint, one prior."""
    graph = FactorGraph(variables=["a", "b", "c"])
    graph.add_factor(GaussianObservation("obs_a", "a", observed=observed, sigma=0.1))
    graph.add_factor(LinearConstraintFactor("sum", {"a": 1.0, "b": 1.0, "c": -1.0}, sigma=0.05))
    graph.add_factor(GaussianPriorFactor("prior_b", {"b": 1.0}, {"b": 0.25}))
    sites = [
        EPSite("observations", ("obs_a", "prior_b")),
        EPSite("constraints", ("sum",)),
    ]
    prior = GaussianDensity.diagonal(
        {"a": 1.0, "b": 1.0, "c": 2.0}, {"a": 25.0, "b": 25.0, "c": 25.0}
    )
    return graph, sites, prior


class TestKernelMatchesReference:
    def test_seed_graph_damped(self):
        reference, compiled = _run_both(*_bench_graph(), damping=0.5)
        _assert_posteriors_match(reference, compiled)

    def test_seed_graph_undamped(self):
        reference, compiled = _run_both(*_bench_graph(), damping=1.0)
        _assert_posteriors_match(reference, compiled)

    def test_student_t_observations(self):
        graph = FactorGraph(variables=["x", "y"])
        graph.add_factor(
            StudentTObservation("obs_x", "x", StudentT(loc=4.0, scale=0.5, df=6.0))
        )
        graph.add_factor(
            StudentTObservation("obs_y", "y", StudentT(loc=1.0, scale=0.2, df=2.0))
        )
        graph.add_factor(LinearConstraintFactor("xy", {"x": 1.0, "y": -2.0}, sigma=0.3))
        sites = [
            EPSite("obs", ("obs_x", "obs_y")),
            EPSite("rel", ("xy",)),
        ]
        prior = GaussianDensity.diagonal({"x": 0.0, "y": 0.0}, {"x": 9.0, "y": 9.0})
        reference, compiled = _run_both(graph, sites, prior)
        _assert_posteriors_match(reference, compiled)

    def test_iteration_cap_respected(self):
        graph, sites, prior = _bench_graph()
        reference, compiled = _run_both(graph, sites, prior, damping=0.3, max_iterations=3)
        assert not reference.converged
        assert not bool(compiled.converged[0])
        assert int(compiled.iterations[0]) == reference.iterations == 3
        _assert_posteriors_match(reference, compiled)


class TestEngineEquivalence:
    @pytest.fixture(scope="class")
    def records(self):
        catalog = catalog_for("x86")
        events = standard_profiling_events(catalog, n_events=16)
        schedule = cached_schedule(catalog, events, kind="overlap")
        trace = Machine(MachineConfig(), get_workload("KMeans"), seed=1).run(12)
        return catalog, events, MultiplexedSampler(catalog, schedule, seed=2).sample(trace)

    def test_compiled_engine_matches_reference_per_slice(self, records):
        """Each slice solved from identical state agrees within 1e-8."""
        catalog, events, sampled = records
        reference = BayesPerfEngine(catalog, events, use_compiled_kernel=False)
        compiled = BayesPerfEngine(catalog, events, use_compiled_kernel=True)
        state = None
        for record in sampled.records:
            reference.restore(state) if state is not None else reference.reset()
            want = reference.process_record(record)
            next_state = reference.snapshot()
            compiled.restore(state) if state is not None else compiled.reset()
            got = compiled.process_record(record)
            assert got.ep_iterations == want.ep_iterations
            assert got.ep_converged == want.ep_converged
            for event, estimate in want.estimates.items():
                assert _relative_gap(got.estimates[event].mean, estimate.mean) < 1e-8
                assert _relative_gap(got.estimates[event].std, estimate.std) < 1e-8
            state = next_state

    def test_compiled_engine_matches_reference_end_to_end(self, records):
        """Full temporal chains stay within 1e-8 too (seed workload)."""
        catalog, events, sampled = records
        reference = BayesPerfEngine(catalog, events, use_compiled_kernel=False).correct(sampled)
        compiled = BayesPerfEngine(catalog, events, use_compiled_kernel=True).correct(sampled)
        for tick in range(len(reference)):
            want, got = reference.at(tick), compiled.at(tick)
            for event in want:
                assert _relative_gap(got[event], want[event]) < 1e-8

    def test_batched_equals_looped_exactly(self, records):
        """process_batch == restore/process_record/snapshot, bit for bit."""
        catalog, events, sampled = records
        engine = BayesPerfEngine(catalog, events)
        hosts, depth = 5, 4
        # Batched: one multi-record solve per slot across simulated hosts.
        states = [None] * hosts
        batched = [[] for _ in range(hosts)]
        for slot in range(depth):
            items = [(states[h], sampled.records[slot]) for h in range(hosts)]
            for h, (report, state) in enumerate(engine.process_batch(items)):
                states[h] = state
                batched[h].append(report)
        # Looped: per-host sequential single-record solves.
        for h in range(hosts):
            state = None
            for slot in range(depth):
                engine.restore(state) if state is not None else engine.reset()
                report = engine.process_record(sampled.records[slot])
                state = engine.snapshot()
                want = batched[h][slot]
                assert report.means() == want.means()
                assert report.stds() == want.stds()
                assert report.ep_iterations == want.ep_iterations
            assert states[h].prior_mean == state.prior_mean
            assert states[h].scale == state.scale
            assert states[h].tick == state.tick

    def test_kernel_cache_reused_across_slices(self, records):
        catalog, events, sampled = records
        engine = BayesPerfEngine(catalog, events)
        engine.correct(sampled)
        signatures = len(engine._kernel_cache)
        assert 0 < signatures < len(sampled.records)
        engine.correct(sampled)  # second run: every signature already compiled
        assert len(engine._kernel_cache) == signatures

    def test_mcmc_estimator_uses_compiled_structures(self, records):
        """Per-site tilted MCMC now batches on the kernel's buffers (PR 4)."""
        catalog, events, sampled = records
        engine = BayesPerfEngine(
            catalog, events, moment_estimator="mcmc", mcmc_samples=20, mcmc_burn_in=10
        )
        engine.process_record(sampled.records[0])
        assert engine._kernel_cache

    def test_mcmc_reference_twin_bypasses_kernel(self, records):
        catalog, events, sampled = records
        engine = BayesPerfEngine(
            catalog, events, moment_estimator="mcmc", mcmc_samples=20,
            mcmc_burn_in=10, use_compiled_kernel=False,
        )
        engine.process_record(sampled.records[0])
        assert not engine._kernel_cache

    def test_process_batch_mixed_fresh_and_resumed_states(self, records):
        catalog, events, sampled = records
        engine = BayesPerfEngine(catalog, events)
        _, resumed = engine.process_batch([(None, sampled.records[0])])[0]
        reports = engine.process_batch(
            [(None, sampled.records[1]), (resumed, sampled.records[1])]
        )
        fresh_report, resumed_report = reports[0][0], reports[1][0]
        # A resumed run carries a temporal prior, so the two differ.
        assert fresh_report.means() != resumed_report.means()


class TestCompilationFallback:
    def test_unknown_factor_type_refuses_compilation(self):
        class Mystery(Factor):
            def log_density(self, values):
                return 0.0

            def to_gaussian(self, anchor=None):
                return GaussianDensity.diagonal({"a": 0.0}, {"a": 1.0})

        graph = FactorGraph(variables=["a"])
        graph.add_factor(Mystery("m", ["a"]))
        assert compile_factor_graph(graph, [EPSite("s", ("m",))], ["a"]) is None

    def test_anchor_dependent_factor_keeps_cavity_anchored_reference_path(self):
        """Non-anchor-free factors refuse compilation AND still get the
        cavity-mean anchor through the reference analytic path."""
        seen_anchors = []

        class Anchored(Factor):
            def log_density(self, values):
                return 0.0

            def to_gaussian(self, anchor=None):
                seen_anchors.append(anchor)
                center = anchor["a"] if anchor is not None else 0.0
                return GaussianDensity.diagonal({"a": center}, {"a": 4.0})

        graph = FactorGraph(variables=["a"])
        graph.add_factor(GaussianObservation("obs", "a", observed=2.0, sigma=0.5))
        graph.add_factor(Anchored("anchored", ["a"]))
        sites = [EPSite("s", ("obs", "anchored"))]
        prior = GaussianDensity.diagonal({"a": 0.0}, {"a": 9.0})
        assert compile_factor_graph(graph, sites, prior.variables) is None
        result = ExpectationPropagation(graph, sites, prior).run()
        assert np.isfinite(result.mean()["a"])
        assert seen_anchors and all(anchor is not None for anchor in seen_anchors)

    def test_empty_sites_rejected(self):
        graph, _, prior = _bench_graph()
        with pytest.raises(ValueError, match="at least one site"):
            compile_factor_graph(graph, [], prior.variables)

    def test_kernel_validates_arguments(self):
        graph, sites, prior = _bench_graph()
        structure = compile_factor_graph(graph, sites, prior.variables)
        with pytest.raises(ValueError, match="damping"):
            CompiledEPKernel(structure, damping=0.0)
        kernel = CompiledEPKernel(structure)
        with pytest.raises(ValueError, match="prior"):
            kernel.run(
                [structure.bind(site_factor_lists(graph, sites))],
                [GaussianDensity.diagonal({"z": 0.0}, {"z": 1.0})],
            )
        with pytest.raises(ValueError, match="factor lists"):
            structure.bind([])


@st.composite
def _random_problem(draw):
    n = draw(st.integers(min_value=2, max_value=6))
    variables = [f"v{i}" for i in range(n)]
    value = st.floats(min_value=-4.0, max_value=4.0)
    spread = st.floats(min_value=0.05, max_value=8.0)
    prior = GaussianDensity.diagonal(
        {v: draw(value) for v in variables}, {v: draw(spread) for v in variables}
    )
    graph = FactorGraph(variables=variables)
    n_observed = draw(st.integers(min_value=1, max_value=n))
    observation_names = []
    for v in variables[:n_observed]:
        name = f"obs_{v}"
        graph.add_factor(GaussianObservation(name, v, observed=draw(value), sigma=draw(spread)))
        observation_names.append(name)
    sites = [EPSite("observations", tuple(observation_names))]
    n_constraints = draw(st.integers(min_value=0, max_value=2))
    constraint_names = []
    for index in range(n_constraints):
        size = draw(st.integers(min_value=2, max_value=n))
        coefficient = st.floats(min_value=0.25, max_value=2.0)
        sign = st.sampled_from([-1.0, 1.0])
        coefficients = {v: draw(sign) * draw(coefficient) for v in variables[:size]}
        name = f"rel_{index}"
        graph.add_factor(LinearConstraintFactor(name, coefficients, sigma=draw(spread)))
        constraint_names.append(name)
    if constraint_names:
        sites.append(EPSite("constraints", tuple(constraint_names)))
    damping = draw(st.sampled_from([1.0, 0.7, 0.5]))
    return graph, sites, prior, damping


class TestPropertyEquivalence:
    @given(problem=_random_problem())
    @settings(max_examples=30, deadline=None)
    def test_random_graphs_match_reference(self, problem):
        graph, sites, prior, damping = problem
        reference, compiled = _run_both(graph, sites, prior, damping=damping)
        _assert_posteriors_match(reference, compiled)

    @given(
        observed=st.lists(
            st.floats(min_value=-5.0, max_value=5.0), min_size=2, max_size=6
        )
    )
    @settings(max_examples=15, deadline=None)
    def test_batched_matches_looped(self, observed):
        """One batched solve == per-record solves, for any batch content."""
        problems = [_bench_graph(value) for value in observed]
        structure = compile_factor_graph(problems[0][0], problems[0][1], problems[0][2].variables)
        kernel = CompiledEPKernel(structure)
        bindings = [
            structure.bind(site_factor_lists(graph, sites)) for graph, sites, _ in problems
        ]
        priors = [prior for _, _, prior in problems]
        together = kernel.run(bindings, priors)
        for b, (binding, prior) in enumerate(zip(bindings, priors)):
            alone = kernel.run([binding], [prior])
            assert np.array_equal(alone.means[0], together.means[b])
            assert np.array_equal(alone.variances[0], together.variances[b])
            assert alone.iterations[0] == together.iterations[b]
            assert alone.converged[0] == together.converged[b]
