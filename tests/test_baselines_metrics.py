"""Tests for the baseline correction methods and the error metrics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import CounterMiner, LinuxScaling, WeaverPin
from repro.events import catalog_for
from repro.events.profiles import standard_profiling_events
from repro.metrics import dtw_distance, dtw_path, normalized_improvement, relative_series_error, trace_error
from repro.metrics.error import ErrorReport
from repro.pmu import MultiplexedSampler, NoiseModel, PollingReader
from repro.scheduling import round_robin_schedule
from repro.uarch import Machine, MachineConfig
from repro.workloads import get_workload


@pytest.fixture(scope="module")
def pipeline():
    """A small shared sampling pipeline for baseline tests."""
    catalog = catalog_for("x86")
    events = standard_profiling_events(catalog, n_events=16)
    schedule = round_robin_schedule(catalog, events)
    trace = Machine(MachineConfig(), get_workload("KMeans"), seed=1).run(60)
    sampled = MultiplexedSampler(catalog, schedule, seed=2).sample(trace)
    polled = PollingReader(catalog, sampled.events, seed=3).read(trace)
    return catalog, events, schedule, sampled, polled


class TestDTW:
    def test_identical_series_zero_distance(self):
        series = [1.0, 2.0, 3.0]
        assert dtw_distance(series, series) == pytest.approx(0.0)

    def test_shifted_series_aligned(self):
        a = [0.0, 0.0, 1.0, 5.0, 1.0, 0.0]
        b = [0.0, 1.0, 5.0, 1.0, 0.0, 0.0]
        assert dtw_distance(a, b) < np.sum(np.abs(np.array(a) - np.array(b)))

    def test_path_endpoints(self):
        path = dtw_path([1.0, 2.0, 3.0], [1.0, 3.0])
        assert path[0] == (0, 0)
        assert path[-1] == (2, 1)

    def test_empty_series_rejected(self):
        with pytest.raises(ValueError):
            dtw_distance([], [1.0])


class TestErrorMetrics:
    def test_relative_error_zero_for_identical(self):
        series = np.array([1.0, 2.0, 3.0])
        assert relative_series_error(series, series) == pytest.approx(0.0)

    def test_pointwise_requires_equal_length(self):
        with pytest.raises(ValueError):
            relative_series_error([1.0], [1.0, 2.0], align=False)

    def test_cap_limits_blowups(self):
        error = relative_series_error([100.0], [1e-9], cap=10.0)
        assert error == pytest.approx(10.0)

    def test_error_report_aggregation(self):
        report = ErrorReport(method="m", per_event={"a": 0.1, "b": 0.3})
        assert report.mean_error == pytest.approx(0.2)
        assert report.mean_error_percent == pytest.approx(20.0)
        assert report.worst_events(1) == (("b", 0.3),)

    def test_normalized_improvement(self):
        base = ErrorReport(method="linux", per_event={"a": 0.4})
        better = ErrorReport(method="bayesperf", per_event={"a": 0.08})
        assert normalized_improvement(base, better) == pytest.approx(5.0)

    @given(scale=st.floats(0.5, 2.0))
    @settings(max_examples=20, deadline=None)
    def test_scaling_both_series_preserves_relative_error(self, scale):
        reference = np.array([1.0, 2.0, 4.0, 2.0])
        estimate = reference * 1.1
        base = relative_series_error(estimate, reference, align=False)
        scaled = relative_series_error(estimate * scale, reference * scale, align=False)
        assert scaled == pytest.approx(base, rel=1e-9)


class TestLinuxScaling:
    def test_invalid_mode(self):
        with pytest.raises(ValueError):
            LinuxScaling(mode="bogus")

    @pytest.mark.parametrize("mode", ["scaling", "hold", "cumulative"])
    def test_produces_estimates_for_all_events(self, pipeline, mode):
        _, _, _, sampled, _ = pipeline
        estimates = LinuxScaling(mode=mode).correct(sampled)
        assert len(estimates) == len(sampled)
        assert set(estimates.events()) == set(sampled.events)

    def test_measured_ticks_match_samples(self, pipeline):
        _, _, _, sampled, _ = pipeline
        estimates = LinuxScaling(mode="hold").correct(sampled)
        record = sampled.records[5]
        event = record.configuration.events[0]
        assert estimates.at(5)[event] == pytest.approx(record.total(event))

    def test_error_is_substantial_under_multiplexing(self, pipeline):
        _, events, schedule, sampled, polled = pipeline
        estimates = LinuxScaling().correct(sampled)
        report = trace_error(estimates, polled, events=events, skip_ticks=schedule.rotation_ticks, aggregate_ticks=8)
        assert report.mean_error > 0.10


class TestCounterMiner:
    def test_rejects_invalid_parameters(self):
        with pytest.raises(ValueError):
            CounterMiner(window=1)
        with pytest.raises(ValueError):
            CounterMiner(significance=0.0)

    def test_produces_estimates(self, pipeline):
        _, _, _, sampled, _ = pipeline
        estimates = CounterMiner().correct(sampled)
        assert len(estimates) == len(sampled)

    def test_outlier_rejection(self):
        miner = CounterMiner(window=5, significance=2.0)
        from collections import deque

        history = deque([100.0, 101.0, 99.0, 1000.0], maxlen=5)
        estimate = miner._robust_estimate(history)
        assert estimate < 200.0


class TestWeaverPin:
    def test_corrects_only_instruction_counts(self, pipeline):
        catalog, events, schedule, sampled, polled = pipeline
        weaver = WeaverPin(catalog)
        estimates = weaver.correct(sampled)
        report = trace_error(estimates, polled, events=events, skip_ticks=schedule.rotation_ticks, aggregate_ticks=8)
        instructions = catalog.event_for_semantic("instructions").name
        other_errors = [v for k, v in report.per_event.items() if k != instructions]
        assert report.per_event[instructions] < np.mean(other_errors)

    def test_models_slowdown(self):
        catalog = catalog_for("x86")
        assert WeaverPin(catalog).slowdown > 100
        with pytest.raises(ValueError):
            WeaverPin(catalog, slowdown=0.5)
