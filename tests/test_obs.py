"""Observability (`repro.obs`): spans, metrics, chain-health analytics, and
the fully-instrumented pipeline — span trees over a real run, the complete
replayable run log (tracefile v3 estimate records), and the mixing report."""

import json
from pathlib import Path

import pytest

from repro.api import EstimatorSpec, ObserverSpec, Pipeline, RecorderSpec, RunSpec
from repro.fg.mcmc import ChainSiteVisit, ChainTrace
from repro.fleet.__main__ import main as fleet_main
from repro.fleet.tracefile import (
    TraceWriter,
    chain_trace_file,
    read_trace,
    write_trace,
)
from repro.obs import (
    InMemorySpanProcessor,
    JsonlSpanExporter,
    MetricsRegistry,
    MixingAccumulator,
    Observer,
    Tracer,
    analyze_chain,
    analyze_tracefile,
)

METRICS = ("ipc", "l1d_mpki")


# -- spans --------------------------------------------------------------------


class TestSpans:
    def test_nesting_parents_spans_automatically(self):
        memory = InMemorySpanProcessor()
        tracer = Tracer([memory])
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                assert tracer.current is inner
            assert tracer.current is outer
        assert tracer.current is None
        inner_span, outer_span = memory.spans  # completion order: inner first
        assert inner_span.parent_id == outer_span.span_id
        assert outer_span.parent_id is None
        assert inner_span.trace_id == outer_span.trace_id
        assert memory.roots() == [outer_span]
        assert memory.children(outer_span) == [inner_span]

    def test_span_timing_and_otlp_shape(self):
        tracer = Tracer()
        with tracer.span("work", batch=4) as span:
            sum(range(1000))
        otlp = span.to_otlp()
        assert otlp["name"] == "work"
        assert otlp["attributes"] == {"batch": 4}
        assert otlp["status"] == "OK"
        assert otlp["end_time_unix_nano"] >= otlp["start_time_unix_nano"]
        assert otlp["duration_ns"] == span.duration_ns
        assert span.ended

    def test_exception_marks_span_error(self):
        memory = InMemorySpanProcessor()
        tracer = Tracer([memory])
        with pytest.raises(RuntimeError):
            with tracer.span("explode"):
                raise RuntimeError("boom")
        (span,) = memory.spans
        assert span.status == "ERROR"
        assert span.attributes["error.type"] == "RuntimeError"

    def test_out_of_order_end_is_tolerated(self):
        tracer = Tracer()
        outer = tracer.start("outer")
        inner = tracer.start("inner")
        tracer.end(outer)  # abandoned consumer unwinds outermost-first
        assert tracer.current is inner
        tracer.end(inner)
        tracer.end(inner)  # double-end is a no-op
        assert tracer.current is None

    def test_shutdown_ends_leftover_spans(self):
        memory = InMemorySpanProcessor()
        tracer = Tracer([memory])
        tracer.start("left-open")
        tracer.shutdown()
        assert [span.name for span in memory.spans] == ["left-open"]
        assert memory.spans[0].ended

    def test_jsonl_exporter_round_trips(self, tmp_path):
        path = tmp_path / "spans.jsonl"
        exporter = JsonlSpanExporter(path)
        tracer = Tracer([exporter])
        with tracer.span("a"):
            with tracer.span("b"):
                pass
        tracer.shutdown()
        assert exporter.exported == 2
        lines = [json.loads(line) for line in path.read_text().splitlines()]
        assert [line["name"] for line in lines] == ["b", "a"]
        assert lines[0]["parent_span_id"] == lines[1]["span_id"]


# -- metrics ------------------------------------------------------------------


class TestMetrics:
    def test_counter_only_goes_up(self):
        registry = MetricsRegistry()
        registry.counter("n").inc()
        registry.counter("n").inc(4)
        assert registry.counter("n").value == 5
        with pytest.raises(ValueError, match="only go up"):
            registry.counter("n").inc(-1)

    def test_gauge_set_and_high_water_mark(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("depth")
        gauge.max(3)
        gauge.max(1)
        assert gauge.value == 3
        gauge.set(0.5)
        assert gauge.value == 0.5

    def test_histogram_buckets_and_summary(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("lat", buckets=(0.1, 1.0))
        for value in (0.05, 0.5, 5.0):
            histogram.record(value)
        summary = histogram.summary()
        assert summary["count"] == 3
        assert summary["buckets"] == {"le_0.1": 1, "le_1": 1, "le_inf": 1}
        assert summary["min"] == 0.05 and summary["max"] == 5.0

    def test_cross_type_name_collision_is_rejected(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ValueError, match="another type"):
            registry.gauge("x")

    def test_export_json(self, tmp_path):
        registry = MetricsRegistry()
        registry.counter("hits").inc(2)
        registry.histogram("lat").record(0.01)
        path = registry.export_json(tmp_path / "metrics.json")
        payload = json.loads(Path(path).read_text())
        assert payload["counters"]["hits"] == 2
        assert payload["histograms"]["lat"]["count"] == 1
        assert "hits 2" in registry.render()


# -- chain-health analytics ---------------------------------------------------


def _visit(slice_id, accepted, n_steps=100, windows=(), sequence=0):
    return ChainSiteVisit(
        sequence=sequence,
        slice_id=slice_id,
        tick=0,
        iteration=1,
        site="site",
        site_index=0,
        width=2,
        n_factors=3,
        n_steps=n_steps,
        burn_in=50,
        accepted=accepted,
        step_scale=0.1,
        windows=tuple(windows),
    )


def _fleet_visits(n_slices=10, accepted=35, stuck=()):
    """One healthy visit per slice, with the given slices fully stuck."""
    return [
        _visit(i, 0 if i in stuck else accepted, sequence=i) for i in range(n_slices)
    ]


class TestMixing:
    def test_healthy_fleet_has_no_flags(self):
        report = analyze_chain(_fleet_visits())
        assert report.healthy
        assert report.n_slices == 10
        assert report.median_acceptance == pytest.approx(0.35)

    def test_stuck_chain_is_flagged(self):
        report = analyze_chain(_fleet_visits(stuck={3}))
        reasons = report.flags_by_reason()
        assert reasons["stuck-chain"] == 1
        assert any(
            flag.reason == "stuck-chain" and flag.slice_id == 3
            for flag in report.flags
        )

    def test_stuck_slice_is_also_a_fleet_outlier(self):
        report = analyze_chain(_fleet_visits(stuck={7}))
        assert 7 in report.outlier_slices

    def test_too_few_steps_do_not_count_as_stuck(self):
        report = analyze_chain([_visit(0, 0, n_steps=5)])
        assert "stuck-chain" not in report.flags_by_reason()

    def test_collapsed_acceptance_trajectory(self):
        report = analyze_chain([_visit(0, 10, windows=(18, 9, 0))])
        assert "collapsed-acceptance" in report.flags_by_reason()

    def test_non_monotone_adaptation(self):
        report = analyze_chain([_visit(0, 40, windows=(20, 2, 20, 2))])
        assert "non-monotone-adaptation" in report.flags_by_reason()

    def test_small_fleets_skip_outlier_detection(self):
        report = analyze_chain(_fleet_visits(n_slices=4, stuck={1}))
        assert "fleet-outlier" not in report.flags_by_reason()
        assert "stuck-chain" in report.flags_by_reason()  # per-slice still runs

    def test_accumulator_is_incremental(self):
        accumulator = MixingAccumulator()
        visits = _fleet_visits(stuck={2})
        accumulator.consume(visits[:5])
        accumulator.consume(visits[5:])
        report = accumulator.report()
        assert report.n_visits == 10
        assert 2 in report.outlier_slices
        assert report.to_dict()["healthy"] is False
        assert "stuck-chain" in report.render()

    def test_repeat_visits_flag_once_per_site(self):
        # The same stuck (slice, site) revisited across EP iterations is one
        # pathology, not one flag per iteration.
        accumulator = MixingAccumulator()
        accumulator.consume(
            _visit(3, accepted=0, sequence=seq) for seq in range(6)
        )
        report = accumulator.report()
        assert report.flags_by_reason() == {"stuck-chain": 1}

    def test_analyze_tracefile(self, tmp_path):
        chain = ChainTrace()
        chain.visits.extend(_fleet_visits(stuck={0}))
        path = tmp_path / "chains.jsonl"
        write_trace(path, chain_trace_file(chain, arch="x86"))
        report = analyze_tracefile(path)
        assert report is not None and not report.healthy
        # A chain-free trace yields no report rather than an error.
        write_trace(tmp_path / "plain.jsonl", chain_trace_file(ChainTrace(), arch="x86"))
        assert analyze_tracefile(tmp_path / "plain.jsonl") is None


# -- tracefile v3: the complete run log ---------------------------------------


class TestTracefileV3:
    def test_writer_estimate_records_round_trip(self, tmp_path):
        path = tmp_path / "run.jsonl"
        writer = TraceWriter(path, arch="x86", events=("A", "B"), estimates=True)
        writer.write_estimate("h1", 0, {"A": 1.0, "B": 2.0}, {"A": 0.1, "B": 0.2})
        writer.write_estimate("h1", 1, {"A": 3.0, "B": 4.0}, {"A": 0.3, "B": 0.4})
        writer.write_estimate("h0", 0, {"A": 5.0, "B": 6.0})
        writer.close()
        header = json.loads(path.read_text().splitlines()[0])
        assert header["version"] == 3
        trace = read_trace(path)
        assert sorted(trace.host_estimates) == ["h0", "h1"]
        assert trace.host_estimates["h1"].estimates == [
            {"A": 1.0, "B": 2.0},
            {"A": 3.0, "B": 4.0},
        ]
        assert trace.host_estimates["h1"].uncertainties[1] == {"A": 0.3, "B": 0.4}
        assert trace.host_estimates["h0"].uncertainties == [{}]
        # Host-keyed records never populate the legacy single-trace slot.
        assert trace.estimates is None

    def test_batch_writer_stamps_v3_only_with_host_estimates(self, tmp_path):
        from repro.pmu.traces import EstimateTrace

        trace = chain_trace_file(ChainTrace(), arch="x86")
        trace.chain = None
        host_log = EstimateTrace(method="bayesperf")
        host_log.append({"A": 1.0})
        trace.host_estimates["h0"] = host_log
        path = write_trace(tmp_path / "v3.jsonl", trace)
        assert json.loads(path.read_text().splitlines()[0])["version"] == 3
        replayed = read_trace(path)
        assert replayed.host_estimates["h0"].values_equal(host_log)

    def test_streamed_chain_only_traces_stay_v2(self, tmp_path):
        path = tmp_path / "chains.jsonl"
        TraceWriter(path, arch="x86").close()
        assert json.loads(path.read_text().splitlines()[0])["version"] == 2


# -- observer and spec wiring -------------------------------------------------


class TestObserver:
    def test_null_helpers_cost_nothing_without_backends(self):
        observer = Observer()
        with observer.span("anything"):
            observer.count("c")
            observer.observe("h", 1.0)
            observer.gauge("g", 2.0)
        observer.close()  # no backends: close is a no-op
        assert observer.metrics is None and observer.tracer is None

    def test_from_options_builds_only_whats_asked(self, tmp_path):
        observer = Observer.from_options(metrics="console")
        assert observer.tracer is None and observer.metrics is not None
        observer = Observer.from_options(trace=str(tmp_path / "s.jsonl"))
        assert observer.tracer is not None and observer.metrics is None

    def test_metrics_close_exports_json(self, tmp_path):
        sink = tmp_path / "metrics.json"
        observer = Observer.from_options(metrics=str(sink))
        observer.observe("lat", 0.2)
        observer.close()
        observer.close()  # idempotent
        assert json.loads(sink.read_text())["histograms"]["lat"]["count"] == 1

    def test_console_metrics_sink_prints_summary(self, capsys):
        observer = Observer.from_options(metrics="console")
        observer.count("hits", 3)
        observer.gauge_max("depth", 2)
        observer.close()
        out = capsys.readouterr().out
        assert "hits 3" in out and "depth 2" in out

    def test_in_memory_tree_helpers(self):
        observer = Observer.from_options(spans_in_memory=True)
        with observer.span("outer"):
            with observer.span("inner") as inner:
                inner.set_attribute("k", 1)
        observer.close()
        memory = observer.spans
        assert [span.name for span in memory.by_name("inner")] == ["inner"]
        tree = memory.tree()
        (outer,) = memory.roots()
        assert [span.name for span in tree[outer.span_id]] == ["inner"]
        assert memory.by_name("inner")[0].attributes["k"] == 1

    def test_estimates_without_sink_is_rejected(self):
        spec = RunSpec.fleet(
            1,
            "steady",
            n_ticks=1,
            metrics=METRICS,
            observer=ObserverSpec(estimates=True),
        )
        with pytest.raises(ValueError, match="recorder"):
            Pipeline.from_spec(spec)


# -- the instrumented pipeline (the acceptance run) ---------------------------


class TestInstrumentedPipeline:
    def test_fleet_run_produces_spans_metrics_and_run_log(self, tmp_path):
        """The tentpole acceptance: one observed 64-host run yields (1) a
        span tree reconstructing run -> round -> slice -> kernel, (2) nonzero
        slice-latency histogram counts, and (3) a tracefile whose host-keyed
        estimate records reproduce the run's estimates exactly."""
        span_path = tmp_path / "spans.jsonl"
        metrics_path = tmp_path / "metrics.json"
        sink = tmp_path / "run.jsonl"
        spec = RunSpec.fleet(
            64,
            "steady",
            n_ticks=1,
            metrics=METRICS,
            n_workers=4,
            recorder=RecorderSpec(sink=str(sink)),
            observer=ObserverSpec(
                trace=str(span_path), metrics=str(metrics_path), estimates=True
            ),
        )
        result = Pipeline.from_spec(spec).run()
        assert result.n_slices == 64

        # (1) the span JSONL reconstructs the full pipeline tree.
        spans = [json.loads(line) for line in span_path.read_text().splitlines()]
        by_id = {span["span_id"]: span for span in spans}
        assert len({span["trace_id"] for span in spans}) == 1
        roots = [span for span in spans if span["parent_span_id"] is None]
        assert [span["name"] for span in roots] == ["pipeline.run"]
        assert roots[0]["attributes"]["hosts"] == 64

        def parent_name(span):
            return by_id[span["parent_span_id"]]["name"]

        rounds = [span for span in spans if span["name"] == "fleet.round"]
        assert rounds and all(parent_name(span) == "pipeline.run" for span in rounds)
        solves = [span for span in spans if span["name"] == "slice.solve"]
        # One span per engine batch; together they cover all 64 slices.
        assert sum(span["attributes"]["n_records"] for span in solves) == 64
        assert all(parent_name(span) == "fleet.round" for span in solves)
        for kernel_stage in ("kernel.bind", "kernel.solve"):
            stage_spans = [span for span in spans if span["name"] == kernel_stage]
            assert stage_spans
            assert all(parent_name(span) == "slice.solve" for span in stage_spans)

        # (2) the metrics summary has nonzero slice-latency counts.
        metrics = json.loads(metrics_path.read_text())
        assert metrics["histograms"]["slice.latency_seconds"]["count"] == 64
        assert metrics["counters"]["slices.solved"] == 64

        # (3) the tracefile's run log reproduces the estimates exactly.
        trace = read_trace(sink)
        assert len(trace.host_estimates) == 64
        for slice_result in result.slices:
            host_log = trace.host_estimates[slice_result.host]
            assert host_log.estimates[slice_result.tick] == slice_result.values
            assert host_log.uncertainties[slice_result.tick] == slice_result.sigma
        # ... and the report CLI reads it without re-running inference.
        assert fleet_main(["report", str(sink)]) == 0

    def test_mcmc_run_feeds_mixing_report_and_events(self, tmp_path):
        """A live sampled run records chains, analyses them at end of run,
        and surfaces the report on the PipelineResult."""
        sink = tmp_path / "chains.jsonl"
        spec = RunSpec.fleet(
            2,
            "steady",
            n_ticks=1,
            metrics=METRICS,
            estimator=EstimatorSpec("mcmc", samples=10, burn_in=55),
            recorder=RecorderSpec(sink=str(sink)),
            observer=ObserverSpec(metrics=str(tmp_path / "m.json"), spans_in_memory=True),
        )
        pipeline = Pipeline.from_spec(spec)
        result = pipeline.run()
        assert result.mixing is not None
        assert result.mixing.n_visits > 0
        assert pipeline.mixing_report is result.mixing
        metrics = json.loads((tmp_path / "m.json").read_text())
        assert metrics["histograms"]["chain.acceptance"]["count"] > 0
        # The in-memory sink saw the mixing.report span under the run root.
        observer = pipeline.observer
        names = [span.name for span in observer.spans.spans]
        assert "mixing.report" in names and "pipeline.run" in names

    def test_observers_off_leaves_no_artifacts(self, tmp_path):
        spec = RunSpec.fleet(2, "steady", n_ticks=1, metrics=METRICS)
        pipeline = Pipeline.from_spec(spec)
        result = pipeline.run()
        assert pipeline.observer is None
        assert result.mixing is None
        assert list(tmp_path.iterdir()) == []


# -- the report CLI over a pathological fixture -------------------------------


class TestReportCli:
    def test_report_flags_synthetic_stuck_chain(self, tmp_path, capsys):
        chain = ChainTrace()
        chain.visits.extend(_fleet_visits(n_slices=12, stuck={5}))
        path = tmp_path / "pathological.jsonl"
        write_trace(path, chain_trace_file(chain, arch="x86", workload="synthetic"))
        assert fleet_main(["report", str(path)]) == 0
        out = capsys.readouterr().out
        assert "stuck-chain" in out
        assert "fleet-outlier" in out

    def test_report_degrades_on_chain_free_trace(self, tmp_path, capsys):
        path = tmp_path / "plain.jsonl"
        write_trace(path, chain_trace_file(ChainTrace(), arch="x86"))
        assert fleet_main(["report", str(path)]) == 0
        assert "chain records: none" in capsys.readouterr().out
