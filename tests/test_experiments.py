"""Integration tests: every experiment module runs and reproduces the paper's shape.

These use reduced sweep sizes so the suite stays fast; the full-size runs live
in ``benchmarks/``.
"""

import numpy as np
import pytest

from repro.experiments import (
    casestudy,
    fig1_multiplexing_error,
    fig3_read_latency,
    fig6_hibench_error,
    fig7_improvement,
    fig8_scaling,
    fig9_pcie_contention,
    fig10_training,
    table1_area_power,
)


class TestFig1:
    def test_error_grows_with_multiplexing(self):
        result = fig1_multiplexing_error.run(counter_counts=(10, 35), n_ticks=70, n_runs=1)
        assert result.error_percent[35] > result.error_percent[10]
        assert result.is_monotonically_increasing()
        assert "avg error" in result.to_table()


class TestFig3:
    def test_latency_relationships(self):
        result = fig3_read_latency.run()
        for arch in ("x86", "ppc64"):
            cycles = result.cycles[arch]
            assert cycles["bayesperf-cpu"] > 5 * cycles["linux"]
            assert cycles["counterminer"] > cycles["bayesperf-cpu"]
        # CAPI (ppc64) accelerated reads are within ~2% of native.
        assert result.overhead_vs_linux("ppc64", "bayesperf-accelerator") < 0.02
        # The PCIe build pays more transport overhead than the CAPI build.
        assert result.cycles["x86"]["bayesperf-accelerator"] > result.cycles["ppc64"]["bayesperf-accelerator"]


class TestTable1:
    def test_reports_and_efficiency(self):
        result = table1_area_power.run()
        assert set(result.reports) == {"x86-PCIe", "ppc64-CAPI"}
        efficiency = result.power_efficiency()
        assert efficiency["ppc64-CAPI"] > efficiency["x86-PCIe"] > 1.0
        assert "Vivado (W)" in result.to_table()


class TestFig6:
    @pytest.fixture(scope="class")
    def result(self):
        return fig6_hibench_error.run(
            arches=("x86",), workloads=("KMeans", "Sort"), n_ticks=70, seed=1
        )

    def test_bayesperf_wins_every_workload(self, result):
        for workload in result.workloads():
            assert (
                result.error_percent["x86"]["bayesperf"][workload]
                < result.error_percent["x86"]["linux"][workload]
            )

    def test_reduction_factor_substantial(self, result):
        assert result.reduction_factor("x86") > 2.0

    def test_table_contains_average_row(self, result):
        assert "AVERAGE" in result.to_table()


class TestFig7:
    def test_improvement_from_fig6(self):
        fig6 = fig6_hibench_error.run(arches=("x86",), workloads=("KMeans",), n_ticks=70, seed=1)
        fig7 = fig7_improvement.from_fig6(fig6)
        assert fig7.average("x86", "linux") > 1.0


class TestFig8:
    def test_bayesperf_flat_and_best(self):
        result = fig8_scaling.run(
            arches=("x86",),
            methods=("linux", "bayesperf"),
            counter_counts=(10, 30),
            n_ticks=70,
            seed=1,
        )
        series = result.error_percent["x86"]
        assert series["bayesperf"][30] < series["linux"][30]
        assert result.error_growth("x86", "bayesperf") < result.error_growth("x86", "linux") + 3.0


class TestFig9:
    def test_contention_slowdown(self):
        result = fig9_pcie_contention.run(message_sizes=(2**10, 2**18, 2**22))
        assert 0.5 < result.max_slowdown() < 3.0
        assert result.slowdown(2**10) < result.slowdown(2**22)
        assert result.isolated_gbps[2**22] > 10.0


class TestFig10:
    def test_training_curves_produced(self):
        result = fig10_training.run(iterations=150, seed=0)
        assert set(result.curves) == {p.name for p in fig10_training.MONITORING_PROFILES}
        assert all(len(curve) == 150 for curve in result.curves.values())
        assert "reduction vs Linux" in result.to_table()


class TestCaseStudy:
    def test_decision_quality_structure(self):
        result = casestudy.run(train_iterations=120, cf_observations=80, episodes=40, seed=0)
        assert set(result.results) == {"collaborative-filtering", "reinforcement-learning"}
        table = result.to_table()
        assert "improvement vs Linux inputs" in table
        for outcome in result.results.values():
            assert set(outcome.mean_regret) == {p.name for p in casestudy.MONITORING_PROFILES}
