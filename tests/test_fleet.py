"""Fleet telemetry service: ingestion, workers, trace record/replay, events."""

import logging
from pathlib import Path

import pytest

from repro.core.engine import BayesPerfEngine
from repro.core.session import PerfSession
from repro.events.registry import catalog_for
from repro.fleet.events import (
    BackpressureDetected,
    EstimateReady,
    EventDispatcher,
    EventLog,
    EventProcessor,
    LoggingProcessor,
    MetricsProcessor,
    SessionCompleted,
    SessionStarted,
    SliceCompleted,
    TypedEventProcessor,
)
from repro.fleet.ingest import FleetIngest, ReplayHostSource, SyntheticHostSource
from repro.fleet.service import FleetService
from repro.fleet.tracefile import (
    TraceFile,
    TraceFormatError,
    read_trace,
    record_session_trace,
    register_trace_workload,
    write_trace,
)
from repro.fleet.workers import EngineCache, WorkerPool, engine_key
from repro.pmu.traces import EstimateTrace
from repro.scheduling.cache import cached_schedule, schedule_cache_stats
from repro.workloads.registry import (
    available_workloads,
    get_workload,
    register_workload,
    unregister_workload,
)

#: A small but schedulable event selection (3 events, 1 configuration).
METRICS = ("ipc", "l1d_mpki")


def small_fleet(n_hosts=4, *, n_ticks=5, n_workers=2, **kwargs):
    service = FleetService("x86", metrics=METRICS, n_workers=n_workers, **kwargs)
    for index in range(n_hosts):
        service.add_host("mux-stress", seed=index, n_ticks=n_ticks)
    return service


# -- observability event stream --------------------------------------------


class _Recorder(TypedEventProcessor):
    def __init__(self):
        self.seen = []

    def on_session_started(self, event):
        self.seen.append(("start", event.host))

    def on_slice_completed(self, event):
        self.seen.append(("slice", event.tick))


def test_typed_processor_dispatches_by_event_type():
    recorder = _Recorder()
    dispatcher = EventDispatcher([recorder])
    dispatcher.emit(SessionStarted(host="h0", arch="x86", workload="steady", n_events=3))
    dispatcher.emit(SliceCompleted(host="h0", tick=7, worker=0, n_measured=3))
    dispatcher.emit(EstimateReady(host="h0", first_tick=0, last_tick=7, n_slices=8))
    assert recorder.seen == [("start", "h0"), ("slice", 7)]


def test_dispatcher_is_best_effort(caplog):
    class Exploding(EventProcessor):
        def on_event(self, event):
            raise RuntimeError("boom")

    log = EventLog()
    dispatcher = EventDispatcher([Exploding(), log])
    with caplog.at_level(logging.WARNING):
        dispatcher.emit(SessionStarted(host="h0"))
    # The failing processor is logged; later processors still receive the event.
    assert len(log) == 1
    assert any("Exploding" in record.message for record in caplog.records)


def test_event_log_pull_iteration_drains():
    log = EventLog(maxlen=2)
    for tick in range(3):
        log.on_event(SliceCompleted(host="h0", tick=tick))
    assert log.discarded == 1  # oldest event fell out of the bounded buffer
    ticks = [event.tick for event in log.iter()]
    assert ticks == [1, 2]
    assert len(log) == 0


def test_logging_processor_writes_lines(caplog):
    processor = LoggingProcessor(logging.getLogger("fleet-test"))
    with caplog.at_level(logging.INFO, logger="fleet-test"):
        processor.on_event(BackpressureDetected(host="h9", dropped=3))
    assert any("BackpressureDetected" in record.message for record in caplog.records)


def test_metrics_processor_aggregates():
    metrics = MetricsProcessor()
    metrics.on_event(SessionStarted(host="a"))
    metrics.on_event(SliceCompleted(host="a", tick=0))
    metrics.on_event(SliceCompleted(host="a", tick=1))
    metrics.on_event(BackpressureDetected(host="a", dropped=2, total_dropped=2))
    metrics.on_event(SessionCompleted(host="a", n_slices=2))
    summary = metrics.summary()
    assert summary["hosts_started"] == 1
    assert summary["hosts_completed"] == 1
    assert summary["total_slices"] == 2
    assert summary["total_dropped"] == 2
    assert summary["backpressure_events"] == 1


# -- ingestion ---------------------------------------------------------------


def _source(host_id="h0", *, n_ticks=6, seed=0):
    catalog = catalog_for("x86")
    events = catalog.events_for_derived(METRICS)
    return SyntheticHostSource(
        host_id, get_workload("steady"), events=events, n_ticks=n_ticks, seed=seed
    )


def test_ingest_pump_and_take():
    ingest = FleetIngest(buffer_capacity=16)
    channel = ingest.add(_source(n_ticks=6))
    stats = channel.pump(4)
    assert stats.accepted == 4 and stats.dropped == 0 and not stats.exhausted
    records = channel.take(2)
    assert [record.tick for record in records] == [0, 1]
    stats = channel.pump(10)
    assert stats.exhausted
    assert not channel.done  # buffered records remain
    channel.take(100)
    assert channel.done


def test_ingest_backpressure_drops_and_emits():
    log = EventLog()
    ingest = FleetIngest(buffer_capacity=2, dispatcher=EventDispatcher([log]))
    channel = ingest.add(_source(n_ticks=8))
    stats = channel.pump(8)
    assert stats.accepted == 2
    assert stats.dropped == 6
    assert channel.dropped == 6
    drops = [e for e in log.iter() if isinstance(e, BackpressureDetected)]
    assert len(drops) == 1
    assert drops[0].total_dropped == 6
    assert drops[0].capacity == 2
    assert ingest.drop_report() == {"h0": 6}


def test_ingest_rejects_duplicate_host():
    ingest = FleetIngest()
    ingest.add(_source("dup"))
    with pytest.raises(ValueError, match="dup"):
        ingest.add(_source("dup"))


def test_ingest_emits_session_started():
    log = EventLog()
    ingest = FleetIngest(dispatcher=EventDispatcher([log]))
    ingest.add(_source("h7"))
    events = list(log.iter())
    assert isinstance(events[0], SessionStarted)
    assert events[0].host == "h7"
    assert events[0].n_events == 3


# -- engine state checkpointing ---------------------------------------------


def test_engine_snapshot_restore_is_exact():
    catalog = catalog_for("x86")
    events = catalog.events_for_derived(METRICS)
    source = _source(n_ticks=6)
    records = list(source.records())

    continuous = BayesPerfEngine(catalog, events)
    continuous.reset()
    expected = [continuous.process_record(record).means() for record in records]

    # Same records, but the engine round-trips through another host's run
    # between the two halves (the worker-pool interleaving pattern).
    shared = BayesPerfEngine(catalog, events)
    shared.reset()
    first = [shared.process_record(record).means() for record in records[:3]]
    state = shared.snapshot()
    shared.reset()
    for record in records[:2]:  # some other host's slices
        shared.process_record(record)
    shared.restore(state)
    second = [shared.process_record(record).means() for record in records[3:]]
    assert first + second == expected


def test_engine_restore_rejects_unknown_events():
    catalog = catalog_for("x86")
    engine = BayesPerfEngine(catalog, catalog.events_for_derived(METRICS))
    state = engine.snapshot()
    state.prior_mean["NOT_AN_EVENT"] = 1.0
    with pytest.raises(ValueError, match="NOT_AN_EVENT"):
        engine.restore(state)


# -- shared caches -----------------------------------------------------------


def test_catalog_cache_shares_instances_across_aliases():
    assert catalog_for("x86") is catalog_for("x86_64")
    assert catalog_for("x86") is catalog_for("x86_64-skylake")
    assert catalog_for("ppc64") is catalog_for("power9")
    assert catalog_for("x86") is not catalog_for("ppc64")


def test_schedule_cache_reuses_schedules():
    catalog = catalog_for("x86")
    events = catalog.events_for_derived(METRICS)
    before = schedule_cache_stats()
    first = cached_schedule(catalog, events, kind="overlap")
    second = cached_schedule(catalog, events, kind="overlap")
    assert first is second
    after = schedule_cache_stats()
    assert after["hits"] >= before["hits"] + 1


def test_engine_cache_keys_on_arch_and_events():
    cache = EngineCache()
    catalog = catalog_for("x86")
    events = catalog.events_for_derived(METRICS)
    one = cache.engine_for("x86", events)
    two = cache.engine_for("x86_64-skylake", events)  # alias: same key
    assert one is two
    assert cache.hits == 1 and cache.misses == 1
    other = cache.engine_for("x86", events[:2])
    assert other is not one
    assert engine_key("x86", events) == engine_key("x86_64", events)


def test_engine_cache_survives_host_quarantine():
    """Quarantining one host must not poison its shared engine.

    Hosts with the same (arch, event-set) key share one engine; the
    quarantine path excises the host from batching, and the surviving
    hosts' results through the shared engine stay bit-identical with a
    fleet that never saw the faulty host's quarantine.
    """
    from repro.fleet.chaos import Fault, FaultInjector
    from repro.fleet.faults import FaultPolicySpec

    clean = small_fleet(n_hosts=4, n_ticks=4).run()
    chaos = FaultInjector([Fault("raise", "host-002", 1, attempts=99)])
    service = small_fleet(
        n_hosts=4,
        n_ticks=4,
        fault_policy=FaultPolicySpec(
            max_attempts=2, backoff_base=0.0, on_exhausted="quarantine"
        ),
        chaos=chaos,
    )
    result = service.run()
    assert result.quarantined == ("host-002",)
    # All four hosts share one engine key: it was built once and kept being
    # reused by the survivors after the quarantine.
    assert result.engine_cache["engines_built"] <= 2
    assert result.engine_cache["hits"] >= 2
    for host in ("host-000", "host-001", "host-003"):
        assert result.estimates[host].values_equal(clean.estimates[host]), host


# -- workload registry -------------------------------------------------------


def test_register_workload_roundtrip():
    marker = object()
    register_workload("fleet-test-workload", lambda: marker)
    try:
        assert "fleet-test-workload" in available_workloads()
        assert get_workload("fleet-test-workload") is marker
        with pytest.raises(ValueError, match="already registered"):
            register_workload("fleet-test-workload", lambda: None)
        register_workload("fleet-test-workload", lambda: 42, overwrite=True)
        assert get_workload("fleet-test-workload") == 42
    finally:
        unregister_workload("fleet-test-workload")
    assert "fleet-test-workload" not in available_workloads()


def test_register_workload_cannot_shadow_builtin():
    with pytest.raises(ValueError, match="built-in"):
        register_workload("steady", lambda: None)


# -- trace files -------------------------------------------------------------


def test_trace_file_roundtrips_all_sections(tmp_path):
    path = tmp_path / "run.jsonl"
    recorded = record_session_trace(
        path, "steady", metrics=METRICS, n_ticks=6, seed=11
    )
    loaded = read_trace(path)
    assert loaded.arch == "x86"
    assert loaded.events == recorded.events
    assert loaded.workload == "steady"
    assert loaded.seed == 11
    assert loaded.n_ticks == 6
    # Sampled records survive exactly (ticks, configurations, float samples).
    for original, parsed in zip(recorded.sampled.records, loaded.sampled.records):
        assert parsed.tick == original.tick
        assert parsed.configuration.events == original.configuration.events
        for event in original.samples:
            assert list(parsed.samples[event]) == list(original.samples[event])
    assert loaded.polled.values == recorded.polled.values
    assert loaded.estimates.values_equal(recorded.estimates)


def test_trace_file_rejects_bad_header(tmp_path):
    path = tmp_path / "bad.jsonl"
    path.write_text('{"format": "something-else", "version": 1}\n')
    with pytest.raises(TraceFormatError, match="bad header"):
        read_trace(path)
    path.write_text('{"format": "bayesperf-trace", "version": 99}\n')
    with pytest.raises(TraceFormatError, match="version"):
        read_trace(path)
    path.write_text("")
    with pytest.raises(TraceFormatError, match="empty"):
        read_trace(path)


def test_estimate_trace_records_roundtrip():
    trace = EstimateTrace(method="bayesperf")
    trace.append({"A": 1.5, "B": 2.0}, {"A": 0.1, "B": 0.2})
    trace.append({"A": 3.25})
    rebuilt = EstimateTrace.from_records("bayesperf", trace.to_records())
    assert rebuilt.values_equal(trace)


def test_registered_trace_workload_replays_and_is_rejected_by_session(tmp_path):
    path = tmp_path / "replayable.jsonl"
    record_session_trace(path, "steady", metrics=METRICS, n_ticks=5, seed=2)
    register_trace_workload("fleet-test-trace", path)
    try:
        service = FleetService("x86", n_workers=1)
        host = service.add_host("fleet-test-trace")
        result = service.run()
        assert len(result.estimates[host]) == 5
        # The simulator-facing session API refuses replay-only workloads.
        with pytest.raises(TypeError, match="repro.fleet"):
            PerfSession("x86", metrics=METRICS).run("fleet-test-trace")
    finally:
        unregister_workload("fleet-test-trace")


def test_write_trace_estimates_only(tmp_path):
    estimates = EstimateTrace(method="bayesperf")
    estimates.append({"A": 1.0})
    trace = TraceFile(arch="x86", events=("A",), estimates=estimates)
    path = write_trace(tmp_path / "est.jsonl", trace)
    loaded = read_trace(path)
    assert loaded.sampled is None
    assert loaded.estimates.values_equal(estimates)
    with pytest.raises(ValueError, match="nothing to replay"):
        ReplayHostSource("h0", loaded)


# -- the service -------------------------------------------------------------


def test_pool_and_serial_produce_identical_estimates():
    pool = small_fleet(n_hosts=5, n_ticks=4, n_workers=3, batch_size=2).run(mode="pool")
    serial = small_fleet(n_hosts=5, n_ticks=4, n_workers=3, batch_size=2).run(mode="serial")
    assert pool.estimates.keys() == serial.estimates.keys()
    for host in pool.estimates:
        assert pool.estimates[host].values_equal(serial.estimates[host])
    # The pool shared engines across its 5 hosts; serial built one per host.
    assert pool.engine_cache["engines_built"] <= 3
    assert pool.engine_cache["hits"] >= 2
    assert serial.engine_cache["engines_built"] == 5
    assert serial.engine_cache["hits"] == 0


def test_recorded_trace_replay_matches_original_estimates(tmp_path):
    """Acceptance: record -> replay reproduces EstimateTrace values exactly."""
    path = tmp_path / "roundtrip.jsonl"
    recorded = record_session_trace(path, "KMeans", metrics=METRICS, n_ticks=8, seed=5)
    service = FleetService("x86", n_workers=2)
    host = service.add_trace(path)
    result = service.run()
    assert result.estimates[host].values_equal(recorded.estimates)


#: Committed golden trace: a small fleet recording whose estimates pin the
#: whole array-native pipeline (summaries, binder, compiled kernel) in place.
GOLDEN_TRACE = Path(__file__).parent / "fixtures" / "golden_fleet_trace.jsonl"


def _assert_traces_match_golden(got, want, rel=1e-9):
    """Near-exact trace comparison for the committed fixture.

    Exact float equality would be BLAS/CPU-build dependent across CI
    runners; a 1e-9 relative tolerance still catches any real numerical
    change while tolerating last-bit LAPACK differences.  (Within-run
    comparisons — pool vs serial, record vs replay — stay exact.)
    """
    assert len(got) == len(want)
    for tick in range(len(want)):
        got_values, want_values = got.at(tick), want.at(tick)
        assert got_values.keys() == want_values.keys()
        for event, value in want_values.items():
            assert got_values[event] == pytest.approx(value, rel=rel)


def test_golden_trace_replay_reproduces_committed_estimates():
    """Regression pin: replaying the committed fixture must reproduce the
    estimates stored inside it.  Any numerical change to the
    observation-summary, binding or kernel code paths fails this test."""
    golden = read_trace(GOLDEN_TRACE)
    assert golden.estimates is not None and len(golden.estimates) == 6
    service = FleetService(golden.arch, n_workers=2)
    host = service.add_trace(GOLDEN_TRACE)
    result = service.run()
    _assert_traces_match_golden(result.estimates[host], golden.estimates)
    # Spot-pin one value so a wholesale rewrite of the fixture is also caught.
    assert result.estimates[host].at(0)["INST_RETIRED.ANY"] == pytest.approx(
        2254911.6948, abs=1e-3
    )


def test_golden_trace_batched_replay_matches_serial():
    """The golden fixture replayed through pooled batching equals serial."""
    pooled = FleetService("x86", n_workers=2)
    host_a = pooled.add_trace(GOLDEN_TRACE, host_id="golden-a")
    host_b = pooled.add_trace(GOLDEN_TRACE, host_id="golden-b")
    result = pooled.run(mode="pool")
    # The two replay hosts batch through one shared engine and must agree
    # with each other exactly; agreement with the fixture is near-exact.
    assert result.estimates[host_a].values_equal(result.estimates[host_b])
    golden = read_trace(GOLDEN_TRACE)
    _assert_traces_match_golden(result.estimates[host_a], golden.estimates)


def test_service_runs_sixteen_hosts_end_to_end():
    log = EventLog()
    service = small_fleet(n_hosts=16, n_ticks=3, n_workers=4, processors=(log,))
    result = service.run()
    assert result.n_hosts == 16
    assert result.total_slices == 48
    assert result.metrics["hosts_completed"] == 16
    assert result.slices_per_second > 0
    assert len(result.estimates) == 16
    assert all(len(trace) == 3 for trace in result.estimates.values())
    kinds = {type(event).__name__ for event in log.iter()}
    assert {"SessionStarted", "SliceCompleted", "EstimateReady", "SessionCompleted"} <= kinds


def test_service_backpressure_is_visible_in_result():
    service = small_fleet(
        n_hosts=2, n_ticks=10, n_workers=1, buffer_capacity=2, pump_records=10
    )
    result = service.run()
    assert result.total_dropped > 0
    assert result.metrics["backpressure_events"] > 0
    # Dropped slices are simply absent from the host's estimate trace.
    assert all(len(trace) < 10 for trace in result.estimates.values())


def test_service_guards_misuse():
    service = small_fleet(n_hosts=1, n_ticks=2)
    with pytest.raises(ValueError, match="mode"):
        service.run(mode="turbo")
    service.run()
    with pytest.raises(RuntimeError, match="runs once"):
        service.run()
    with pytest.raises(RuntimeError, match="after run"):
        service.add_host("steady", seed=1)
    empty = FleetService("x86", metrics=METRICS)
    with pytest.raises(RuntimeError, match="at least one host"):
        empty.run()


def test_long_streams_do_not_drop_by_default():
    """Default pump rate never outruns the drain rate, whatever the length."""
    service = small_fleet(n_hosts=1, n_ticks=30, n_workers=1, batch_size=2, buffer_capacity=4)
    result = service.run()
    assert result.total_dropped == 0
    assert len(result.estimates["host-000"]) == 30


def test_mcmc_pool_matches_serial():
    """RNG state rides along in engine snapshots, so sharing stays exact."""
    kwargs = {"moment_estimator": "mcmc", "mcmc_samples": 25}
    pool = small_fleet(n_hosts=2, n_ticks=3, batch_size=2, engine_kwargs=kwargs).run("pool")
    serial = small_fleet(n_hosts=2, n_ticks=3, batch_size=2, engine_kwargs=kwargs).run("serial")
    for host in pool.estimates:
        assert pool.estimates[host].values_equal(serial.estimates[host])


def test_batched_mcmc_pool_matches_serial():
    """Batched MCMC chains are seeded per record from each host's snapshotted
    RNG stream, so cross-host batching stays bit-identical to serial."""
    kwargs = {"moment_estimator": "batched-mcmc", "mcmc_samples": 25, "mcmc_burn_in": 15}
    pool = small_fleet(n_hosts=3, n_ticks=3, batch_size=2, engine_kwargs=kwargs).run("pool")
    serial = small_fleet(n_hosts=3, n_ticks=3, batch_size=2, engine_kwargs=kwargs).run("serial")
    for host in pool.estimates:
        assert pool.estimates[host].values_equal(serial.estimates[host])


def test_unassigned_channel_does_not_hang_pool():
    ingest = FleetIngest()
    ingest.add(_source("orphan", n_ticks=3))
    pool = WorkerPool(1, dispatcher=ingest.dispatcher)  # orphan never assigned
    assert pool.run_until_drained(ingest) == 0


def test_trace_host_rejects_synthetic_overrides(tmp_path):
    path = tmp_path / "t.jsonl"
    record_session_trace(path, "steady", metrics=METRICS, n_ticks=3, seed=0)
    register_trace_workload("fleet-test-override", path)
    try:
        service = FleetService("x86", metrics=METRICS)
        with pytest.raises(ValueError, match="n_ticks"):
            service.add_host("fleet-test-override", n_ticks=2)
    finally:
        unregister_workload("fleet-test-override")


def test_mixed_arch_fleet_resolves_events_per_catalog():
    service = FleetService("x86", metrics=METRICS, n_workers=2)
    x86_host = service.add_host("steady", seed=0, n_ticks=2)
    ppc_host = service.add_host("steady", seed=1, n_ticks=2, arch="ppc64")
    result = service.run()
    # Each host monitors its own architecture's counterpart events.
    x86_events = set(result.estimates[x86_host].at(0))
    ppc_events = set(result.estimates[ppc_host].at(0))
    assert x86_events and ppc_events and x86_events != ppc_events
    # Misconfigured hosts fail at registration, naming the offending event.
    with pytest.raises(KeyError, match="NOT_A_COUNTER"):
        FleetService("x86", metrics=METRICS).add_host("steady", events=("NOT_A_COUNTER",))


def test_worker_pool_shards_round_robin():
    ingest = FleetIngest()
    pool = WorkerPool(3, dispatcher=ingest.dispatcher)
    catalog = catalog_for("x86")
    events = catalog.events_for_derived(METRICS)
    assigned = [
        pool.assign(ingest.add(_source(f"h{i}", n_ticks=2, seed=i)), arch="x86", events=events)
        for i in range(7)
    ]
    assert assigned == [0, 1, 2, 0, 1, 2, 0]
    assert pool.workers[0].hosts == ("h0", "h3", "h6")
