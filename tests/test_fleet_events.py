"""Edge cases of the fleet event stream: log overflow, mid-iteration
appends, failing-processor isolation, rate-limited failure logging, and the
type-keyed handler dispatch."""

import logging
from dataclasses import dataclass

from repro.fleet.events import (
    ChainHealthFlagged,
    EventDispatcher,
    EventLog,
    EventProcessor,
    FleetEvent,
    MetricsProcessor,
    SliceCompleted,
    TypedEventProcessor,
)


def _slices(n):
    return [SliceCompleted(host=f"h{i}", tick=i) for i in range(n)]


# -- EventLog -----------------------------------------------------------------


class TestEventLog:
    def test_overflow_discards_oldest_and_counts(self):
        log = EventLog(maxlen=3)
        for event in _slices(5):
            log.on_event(event)
        assert log.discarded == 2
        assert len(log) == 3
        assert [event.tick for event in log.snapshot()] == [2, 3, 4]

    def test_events_appended_mid_iteration_are_seen(self):
        log = EventLog()
        log.on_event(SliceCompleted(host="a", tick=0))
        seen = []
        iterator = log.iter()
        seen.append(next(iterator))
        log.on_event(SliceCompleted(host="a", tick=1))  # arrives while draining
        seen.extend(iterator)
        assert [event.tick for event in seen] == [0, 1]
        assert len(log) == 0

    def test_unbounded_log_never_discards(self):
        log = EventLog(maxlen=None)
        for event in _slices(10):
            log.on_event(event)
        assert log.discarded == 0 and len(log) == 10


# -- dispatcher fan-out -------------------------------------------------------


class _Exploding(EventProcessor):
    def on_event(self, event):
        raise RuntimeError("broken consumer")


class _Collecting(EventProcessor):
    def __init__(self):
        self.events = []

    def on_event(self, event):
        self.events.append(event)


class TestDispatcher:
    def test_failing_processor_does_not_break_the_others(self):
        collector = _Collecting()
        dispatcher = EventDispatcher([_Exploding(), collector])
        for event in _slices(3):
            dispatcher.emit(event)
        assert len(collector.events) == 3

    def test_failures_are_logged_once_per_processor_type(self, caplog):
        dispatcher = EventDispatcher([_Exploding()])
        with caplog.at_level(logging.WARNING, logger="repro.fleet.events"):
            for event in _slices(5):
                dispatcher.emit(event)
        failures = [
            record for record in caplog.records if "failed on" in record.message
        ]
        assert len(failures) == 1  # 4 further failures suppressed

    def test_shutdown_reports_suppressed_failure_count(self, caplog):
        dispatcher = EventDispatcher([_Exploding()])
        for event in _slices(4):
            dispatcher.emit(event)
        with caplog.at_level(logging.WARNING, logger="repro.fleet.events"):
            dispatcher.shutdown()
        summaries = [
            record
            for record in caplog.records
            if "failed on 4 events" in record.getMessage()
        ]
        assert len(summaries) == 1

    def test_single_failure_gets_no_shutdown_summary(self, caplog):
        dispatcher = EventDispatcher([_Exploding()])
        dispatcher.emit(SliceCompleted(host="a"))
        with caplog.at_level(logging.WARNING, logger="repro.fleet.events"):
            dispatcher.shutdown()
        assert not any("events during the run" in r.getMessage() for r in caplog.records)


# -- typed dispatch -----------------------------------------------------------


@dataclass(frozen=True)
class _FancySliceCompleted(SliceCompleted):
    """A downstream specialisation of a known event type."""

    fancy: bool = True


@dataclass(frozen=True)
class _UnknownEvent(FleetEvent):
    pass


class TestTypedDispatch:
    def test_dispatch_is_keyed_on_the_type_not_its_name(self):
        received = []

        class Handler(TypedEventProcessor):
            def on_slice_completed(self, event):
                received.append(event)

        handler = Handler()
        handler.on_event(SliceCompleted(host="a", tick=1))
        # A subclass reaches the parent type's handler via the MRO — the old
        # class-name table would have silently dropped it.
        handler.on_event(_FancySliceCompleted(host="a", tick=2))
        assert [event.tick for event in received] == [1, 2]

    def test_unknown_event_types_are_ignored(self):
        TypedEventProcessor().on_event(_UnknownEvent(host="a"))  # no raise

    def test_chain_health_flags_reach_metrics(self):
        metrics = MetricsProcessor()
        metrics.on_event(
            ChainHealthFlagged(host="fleet", reason="stuck-chain", slice_id=3)
        )
        metrics.on_event(
            ChainHealthFlagged(host="fleet", reason="fleet-outlier", slice_id=3)
        )
        assert metrics.mixing_flags == {"stuck-chain": 1, "fleet-outlier": 1}
        assert metrics.summary()["mixing_flags"] == 2
