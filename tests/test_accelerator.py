"""Tests for the accelerator models (NoC, EP engines, latency, area/power)
and the trace-driven co-simulation grounding them in measured chain traces."""

import numpy as np
import pytest

from repro.accelerator import (
    AcceleratorConfig,
    AcceleratorModel,
    ButterflyNoC,
    EPEngineUnit,
    FPGAResourceModel,
    MCMCSamplerIP,
    ReadLatencyModel,
    ReadPath,
)
from repro.fg import (
    BatchedSiteMCMC,
    ChainTrace,
    CompiledEPKernel,
    FactorGraph,
    GaussianDensity,
    GaussianObservation,
    LinearConstraintFactor,
    compile_factor_graph,
    site_factor_lists,
)
from repro.fg.ep import EPSite
from repro.fleet.tracefile import chain_trace_file, read_trace, write_trace


class TestButterflyNoC:
    def test_requires_power_of_two_ports(self):
        with pytest.raises(ValueError):
            ButterflyNoC(n_ports=10)

    def test_hops_uniform(self):
        noc = ButterflyNoC(n_ports=16)
        assert noc.stages == 4
        assert noc.hops(0, 15) == 4
        assert noc.hops(3, 3) == 0

    def test_transfer_latency_grows_with_payload(self):
        noc = ButterflyNoC(n_ports=16)
        small = noc.transfer(0, 5, 16).cycles
        large = noc.transfer(0, 5, 1024).cycles
        assert large > small

    def test_port_validation(self):
        noc = ButterflyNoC(n_ports=8)
        with pytest.raises(ValueError):
            noc.hops(0, 8)


class TestComputeUnits:
    def test_sampler_cycles_scale_with_samples(self):
        sampler = MCMCSamplerIP()
        assert sampler.sampling_cycles(200, 8) > sampler.sampling_cycles(100, 8)

    def test_ep_engine_site_update(self):
        engine = EPEngineUnit()
        sampler = MCMCSamplerIP()
        few = engine.site_update_cycles(5, 4, sampler, 128)
        many = engine.site_update_cycles(50, 4, sampler, 128)
        assert many > few

    def test_invalid_dimensions(self):
        engine = EPEngineUnit()
        with pytest.raises(ValueError):
            engine.site_update_cycles(0, 4, MCMCSamplerIP(), 128)


class TestAcceleratorModel:
    def test_config_validation(self):
        with pytest.raises(ValueError):
            AcceleratorConfig(transport="usb")
        with pytest.raises(ValueError):
            AcceleratorConfig(n_ep_engines=10, n_samplers=10, noc_ports=16)

    def test_inference_latency_scales_with_sites(self):
        model = AcceleratorModel()
        one = model.inference_latency(1, 10, 8).total_cycles
        eight = model.inference_latency(8, 10, 8).total_cycles
        assert eight > one

    def test_capi_has_lower_host_overhead_than_pcie(self):
        capi = AcceleratorModel(AcceleratorConfig(transport="capi"))
        pcie = AcceleratorModel(AcceleratorConfig(transport="pcie"))
        assert capi.host_read_overhead_cycles() < pcie.host_read_overhead_cycles()

    def test_sustained_throughput_positive(self):
        model = AcceleratorModel()
        assert model.sustained_inferences_per_second(4, 44, 12) > 0


class TestReadLatencyModel:
    @pytest.fixture
    def model(self):
        return ReadLatencyModel()

    def test_ordering_matches_fig3(self, model):
        paths = model.all_paths()
        assert paths["linux+rdpmc"] < paths["linux"]
        assert paths["linux"] < paths["bayesperf-accelerator"]
        assert paths["bayesperf-accelerator"] < paths["bayesperf-cpu"]
        assert paths["bayesperf-cpu"] < paths["counterminer"]

    def test_cpu_inference_is_about_9x(self, model):
        ratio = model.bayesperf_cpu_read_cycles() / model.linux_read_cycles()
        assert 6.0 < ratio < 12.0

    def test_accelerator_overhead_below_two_percent(self):
        model = ReadLatencyModel(accelerator=AcceleratorModel(AcceleratorConfig(transport="capi")))
        assert model.overhead_vs_linux(ReadPath.BAYESPERF_ACCELERATOR) < 0.02

    def test_pcie_slower_than_capi(self):
        capi = ReadLatencyModel(accelerator=AcceleratorModel(AcceleratorConfig(transport="capi")))
        pcie = ReadLatencyModel(accelerator=AcceleratorModel(AcceleratorConfig(transport="pcie")))
        ratio = pcie.bayesperf_accelerator_read_cycles() / capi.bayesperf_accelerator_read_cycles()
        assert 1.05 < ratio < 1.30


class TestFPGAResourceModel:
    @pytest.fixture(params=["pcie", "capi"])
    def report(self, request):
        model = FPGAResourceModel(AcceleratorConfig(transport=request.param))
        return model.report(request.param)

    def test_design_fits_on_device(self, report):
        assert report.over_budget() == {}
        assert all(10.0 < v <= 100.0 for v in report.utilization_percent.values())

    def test_power_in_expected_range(self, report):
        assert 8.0 < report.vivado_power_w < 14.0
        assert report.measured_power_w > report.vivado_power_w

    def test_power_efficiency_vs_cpu(self):
        capi = FPGAResourceModel(AcceleratorConfig(transport="capi")).report("ppc64")
        assert 8.0 < capi.power_efficiency_vs(190.0) < 16.0
        pcie = FPGAResourceModel(AcceleratorConfig(transport="pcie")).report("x86")
        assert 4.0 < pcie.power_efficiency_vs(100.0) < 8.0


# -- trace-driven co-simulation ----------------------------------------------


def _synthetic_trace(n_slices=4, iterations=2, n_steps=50, accepted=17):
    """A hand-built chain trace with a known, uniform visit schedule."""
    trace = ChainTrace(params={"n_samples": 30, "burn_in": 20})
    base = trace.reserve_slices(n_slices)
    for iteration in range(1, iterations + 1):
        for s in range(n_slices):
            for site_index, (site, width, factors) in enumerate(
                (("slice-observations", 6, 6), ("constraints-0", 4, 2))
            ):
                trace.record(
                    slice_id=base + s,
                    tick=s,
                    iteration=iteration,
                    site=site,
                    site_index=site_index,
                    width=width,
                    n_factors=factors,
                    n_steps=n_steps,
                    burn_in=20,
                    accepted=accepted,
                    step_scale=0.05,
                )
    return trace


def _recorded_trace():
    """A genuinely recorded trace: the batched site sampler on a small graph."""
    graph = FactorGraph(variables=["a", "b"])
    graph.add_factor(GaussianObservation("obs_a", "a", observed=2.0, sigma=0.5))
    graph.add_factor(LinearConstraintFactor("rel", {"a": 1.0, "b": -1.0}, sigma=0.2))
    sites = [EPSite("obs", ("obs_a",)), EPSite("rel", ("rel",))]
    prior = GaussianDensity.diagonal({"a": 0.0, "b": 0.0}, {"a": 9.0, "b": 9.0})
    structure = compile_factor_graph(graph, sites, prior.variables)
    kernel = CompiledEPKernel(structure, damping=1.0, max_iterations=3)
    binding = structure.bind(site_factor_lists(graph, sites))
    stacked = [(np.repeat(p[None, ...], 3, 0), np.repeat(s[None, ...], 3, 0)) for p, s in binding]
    recorder = ChainTrace(params={"n_samples": 25, "burn_in": 15})
    sampler = BatchedSiteMCMC(kernel, n_samples=25, burn_in=15, recorder=recorder)
    sampler.run(
        stacked,
        np.repeat(prior.precision[None, ...], 3, 0),
        np.repeat(prior.shift[None, ...], 3, 0),
        seeds=[1, 2, 3],
        ticks=[0, 0, 0],
    )
    return recorder


class TestChainTraceCosim:
    def test_empty_trace_rejected(self):
        with pytest.raises(ValueError):
            AcceleratorModel().cosimulate(ChainTrace())

    def test_report_reflects_the_measured_schedule(self):
        trace = _synthetic_trace(n_slices=4, iterations=2)
        report = AcceleratorModel().cosimulate(trace)
        assert report.n_visits == trace.n_visits == 16
        assert report.n_slices == 4
        assert report.total_chain_steps == 16 * 50
        assert report.mean_acceptance == pytest.approx(17 / 50)
        assert report.makespan_cycles > 0
        assert report.slices_per_second > 0
        assert len(report.engine_busy_cycles) == AcceleratorConfig().n_ep_engines

    def test_more_measured_steps_cost_more_cycles(self):
        short = AcceleratorModel().cosimulate(_synthetic_trace(n_steps=50))
        long = AcceleratorModel().cosimulate(_synthetic_trace(n_steps=200, accepted=60))
        assert long.makespan_cycles > short.makespan_cycles
        assert long.compute_cycles > short.compute_cycles

    def test_measured_acceptance_costs_cycles(self):
        cold = AcceleratorModel().cosimulate(_synthetic_trace(accepted=0))
        hot = AcceleratorModel().cosimulate(_synthetic_trace(accepted=50))
        assert hot.compute_cycles > cold.compute_cycles

    def test_parallel_records_spread_across_engines(self):
        report = AcceleratorModel().cosimulate(_synthetic_trace(n_slices=8))
        assert all(busy > 0 for busy in report.engine_busy_cycles)
        assert 0.0 < report.occupancy["ep_engine"] <= 1.0
        assert 0.0 <= report.occupancy["mcmc_sampler"] <= 1.0

    def test_recorded_trace_cosimulates(self):
        trace = _recorded_trace()
        report = AcceleratorModel().cosimulate(trace)
        assert report.n_slices == 3
        assert report.total_chain_steps == trace.total_steps > 0
        assert 0.0 <= report.mean_acceptance <= 1.0

    def test_energy_report_grounded_in_occupancy(self):
        model = AcceleratorModel(AcceleratorConfig(transport="capi"))
        report = model.cosimulate(_synthetic_trace())
        resources = FPGAResourceModel(model.config)
        energy = resources.energy_report(report)
        assert energy.total_joules > 0
        assert energy.millijoules_per_slice > 0
        # Internal consistency: average power is the energy over the run.
        assert energy.average_power_w * energy.makespan_seconds == pytest.approx(
            energy.total_joules
        )
        # The workload averages can never exceed the all-units-busy peaks.
        assert 0 < energy.average_power_w <= resources.vivado_power_w()
        assert energy.measured_average_power_w <= resources.measured_power_w()
        assert energy.power_efficiency_vs(190.0) > 1.0

    def test_read_latency_model_from_trace(self):
        trace = _synthetic_trace(n_slices=4, iterations=2)
        model = ReadLatencyModel.from_chain_trace(trace)
        # 16 visits over 4 slices -> 4 site updates per read; 6- and 2-factor
        # sites average to 4 factors; widths 6 and 4 average to 5.
        assert model.model_sites == 4
        assert model.model_factors == 4
        assert model.model_variables == 5
        paths = model.all_paths()
        assert paths["bayesperf-cpu"] > paths["linux"]
        with pytest.raises(ValueError):
            ReadLatencyModel.from_chain_trace(ChainTrace())


class TestChainTraceRoundTrip:
    """The capture layer round-trips losslessly through the tracefile format
    and the accelerator model reproduces its estimates from a replayed trace."""

    def test_replayed_trace_produces_identical_estimates(self, tmp_path):
        trace = _recorded_trace()
        path = tmp_path / "chains.jsonl"
        write_trace(path, chain_trace_file(trace, arch="x86", workload="unit"))
        replayed = read_trace(path).chain
        assert replayed is not None
        assert replayed.params == trace.params
        assert replayed.visits == trace.visits
        model = AcceleratorModel()
        assert model.cosimulate(replayed) == model.cosimulate(trace)
        resources = FPGAResourceModel(model.config)
        assert resources.energy_report(model.cosimulate(replayed)) == resources.energy_report(
            model.cosimulate(trace)
        )
        grounded = ReadLatencyModel.from_chain_trace(replayed)
        assert grounded.all_paths() == ReadLatencyModel.from_chain_trace(trace).all_paths()

    def test_chain_traces_are_version_2(self, tmp_path):
        import json

        path = tmp_path / "chains.jsonl"
        write_trace(path, chain_trace_file(_synthetic_trace()))
        header = json.loads(path.read_text().splitlines()[0])
        assert header["version"] == 2
        assert header["chain_params"] == {"n_samples": 30, "burn_in": 20}

    def test_chain_free_traces_keep_version_1(self, tmp_path):
        import json

        from repro.fleet.tracefile import TraceFile

        path = tmp_path / "plain.jsonl"
        write_trace(path, TraceFile(arch="x86", events=("e",)))
        header = json.loads(path.read_text().splitlines()[0])
        assert header["version"] == 1
        assert read_trace(path).chain is None


class TestAdaptationTrajectories:
    """Per-window burn-in acceptance trajectories, recorded and priced."""

    @staticmethod
    def _adapting_trace():
        """A recorded trace whose burn-in spans two adaptation windows."""
        graph = FactorGraph(variables=["a", "b"])
        graph.add_factor(GaussianObservation("obs_a", "a", observed=2.0, sigma=0.5))
        graph.add_factor(LinearConstraintFactor("rel", {"a": 1.0, "b": -1.0}, sigma=0.2))
        sites = [EPSite("obs", ("obs_a",)), EPSite("rel", ("rel",))]
        prior = GaussianDensity.diagonal({"a": 0.0, "b": 0.0}, {"a": 9.0, "b": 9.0})
        structure = compile_factor_graph(graph, sites, prior.variables)
        kernel = CompiledEPKernel(structure, damping=1.0, max_iterations=2)
        binding = structure.bind(site_factor_lists(graph, sites))
        stacked = [(p[None, ...], s[None, ...]) for p, s in binding]
        recorder = ChainTrace(params={"n_samples": 20, "burn_in": 100})
        sampler = BatchedSiteMCMC(
            kernel, n_samples=20, burn_in=100, adapt=True, recorder=recorder
        )
        sampler.run(
            stacked,
            np.asarray(prior.precision)[None, ...],
            np.asarray(prior.shift)[None, ...],
            seeds=[5],
            ticks=[0],
        )
        return recorder

    def test_adapting_chains_record_their_trajectory(self):
        trace = self._adapting_trace()
        for visit in trace.visits:
            assert visit.n_adaptations == len(visit.windows) == 2
            assert all(0 <= count <= 50 for count in visit.windows)

    def test_unadapted_chains_record_no_trajectory(self):
        for visit in _recorded_trace().visits:  # burn_in=15 < one window
            assert visit.windows == ()
            assert visit.n_adaptations == 0

    def test_trajectory_round_trips_through_the_tracefile(self, tmp_path):
        trace = self._adapting_trace()
        path = tmp_path / "adapting.jsonl"
        write_trace(path, chain_trace_file(trace, arch="x86"))
        replayed = read_trace(path).chain
        assert replayed.visits == trace.visits
        assert any(visit.windows for visit in replayed.visits)

    def test_cosim_prices_the_adaptation_windows(self):
        import dataclasses

        trace = self._adapting_trace()
        stripped = ChainTrace(params=dict(trace.params))
        stripped.visits = [
            dataclasses.replace(visit, windows=()) for visit in trace.visits
        ]
        model = AcceleratorModel()
        priced = model.cosimulate(trace)
        unpriced = model.cosimulate(stripped)
        assert priced.adaptation_windows == 2 * len(trace.visits)
        assert unpriced.adaptation_windows == 0
        expected = priced.adaptation_windows * model.ep_engine.cycles_per_adaptation
        assert priced.compute_cycles == pytest.approx(
            unpriced.compute_cycles + expected
        )

    def test_trajectory_free_traces_are_priced_as_before(self):
        """Synthetic (pre-trajectory) traces must produce identical figures
        whatever cycles_per_adaptation is set to."""
        trace = _synthetic_trace()
        cheap = AcceleratorModel()
        expensive = AcceleratorModel(
            ep_engine=EPEngineUnit(cycles_per_adaptation=10_000.0)
        )
        assert cheap.cosimulate(trace) == expensive.cosimulate(trace)


class TestMeasuredCostModels:
    def test_chain_cycles_charges_accept_writes(self):
        sampler = MCMCSamplerIP()
        cold = sampler.chain_cycles(100, 6, 0)
        hot = sampler.chain_cycles(100, 6, 40)
        assert hot == cold + 40 * sampler.cycles_per_accept

    def test_chain_cycles_validation(self):
        sampler = MCMCSamplerIP()
        with pytest.raises(ValueError):
            sampler.chain_cycles(0, 6, 0)
        with pytest.raises(ValueError):
            sampler.chain_cycles(10, 6, 11)

    def test_site_visit_cycles_track_visit_shape(self):
        trace = _synthetic_trace()
        wide, narrow = trace.visits[0], trace.visits[1]
        engine = EPEngineUnit()
        sampler = MCMCSamplerIP()
        assert engine.site_visit_cycles(wide, sampler) > engine.site_visit_cycles(
            narrow, sampler
        )
        with pytest.raises(ValueError):
            engine.site_visit_cycles(wide, sampler, samplers_per_engine=0)

    def test_noc_site_update_round_trip(self):
        noc = ButterflyNoC(n_ports=16)
        assert noc.site_update_payload_bytes(6) == 8 * 6 * 7
        assert noc.site_update_cycles(6) == (
            noc.transfer(0, 15, 8 * 6 * 7).cycles + noc.transfer(15, 0, 8 * 6 * 7).cycles
        )
        with pytest.raises(ValueError):
            noc.site_update_payload_bytes(0)

    def test_cosim_report_derived_figures(self):
        model = AcceleratorModel()
        report = model.cosimulate(_synthetic_trace())
        assert report.makespan_seconds == pytest.approx(
            report.makespan_cycles / (report.clock_mhz * 1e6)
        )
        assert report.microseconds_per_slice > 0
        assert report.cycles_per_chain_step > 0
        latency = model.inference_latency(4, 10, 8)
        assert latency.microseconds == pytest.approx(
            latency.total_cycles * (1e3 / latency.clock_mhz) / 1e3
        )
