"""Tests for the accelerator models (NoC, EP engines, latency, area/power)."""

import pytest

from repro.accelerator import (
    AcceleratorConfig,
    AcceleratorModel,
    ButterflyNoC,
    EPEngineUnit,
    FPGAResourceModel,
    MCMCSamplerIP,
    ReadLatencyModel,
    ReadPath,
)


class TestButterflyNoC:
    def test_requires_power_of_two_ports(self):
        with pytest.raises(ValueError):
            ButterflyNoC(n_ports=10)

    def test_hops_uniform(self):
        noc = ButterflyNoC(n_ports=16)
        assert noc.stages == 4
        assert noc.hops(0, 15) == 4
        assert noc.hops(3, 3) == 0

    def test_transfer_latency_grows_with_payload(self):
        noc = ButterflyNoC(n_ports=16)
        small = noc.transfer(0, 5, 16).cycles
        large = noc.transfer(0, 5, 1024).cycles
        assert large > small

    def test_port_validation(self):
        noc = ButterflyNoC(n_ports=8)
        with pytest.raises(ValueError):
            noc.hops(0, 8)


class TestComputeUnits:
    def test_sampler_cycles_scale_with_samples(self):
        sampler = MCMCSamplerIP()
        assert sampler.sampling_cycles(200, 8) > sampler.sampling_cycles(100, 8)

    def test_ep_engine_site_update(self):
        engine = EPEngineUnit()
        sampler = MCMCSamplerIP()
        few = engine.site_update_cycles(5, 4, sampler, 128)
        many = engine.site_update_cycles(50, 4, sampler, 128)
        assert many > few

    def test_invalid_dimensions(self):
        engine = EPEngineUnit()
        with pytest.raises(ValueError):
            engine.site_update_cycles(0, 4, MCMCSamplerIP(), 128)


class TestAcceleratorModel:
    def test_config_validation(self):
        with pytest.raises(ValueError):
            AcceleratorConfig(transport="usb")
        with pytest.raises(ValueError):
            AcceleratorConfig(n_ep_engines=10, n_samplers=10, noc_ports=16)

    def test_inference_latency_scales_with_sites(self):
        model = AcceleratorModel()
        one = model.inference_latency(1, 10, 8).total_cycles
        eight = model.inference_latency(8, 10, 8).total_cycles
        assert eight > one

    def test_capi_has_lower_host_overhead_than_pcie(self):
        capi = AcceleratorModel(AcceleratorConfig(transport="capi"))
        pcie = AcceleratorModel(AcceleratorConfig(transport="pcie"))
        assert capi.host_read_overhead_cycles() < pcie.host_read_overhead_cycles()

    def test_sustained_throughput_positive(self):
        model = AcceleratorModel()
        assert model.sustained_inferences_per_second(4, 44, 12) > 0


class TestReadLatencyModel:
    @pytest.fixture
    def model(self):
        return ReadLatencyModel()

    def test_ordering_matches_fig3(self, model):
        paths = model.all_paths()
        assert paths["linux+rdpmc"] < paths["linux"]
        assert paths["linux"] < paths["bayesperf-accelerator"]
        assert paths["bayesperf-accelerator"] < paths["bayesperf-cpu"]
        assert paths["bayesperf-cpu"] < paths["counterminer"]

    def test_cpu_inference_is_about_9x(self, model):
        ratio = model.bayesperf_cpu_read_cycles() / model.linux_read_cycles()
        assert 6.0 < ratio < 12.0

    def test_accelerator_overhead_below_two_percent(self):
        model = ReadLatencyModel(accelerator=AcceleratorModel(AcceleratorConfig(transport="capi")))
        assert model.overhead_vs_linux(ReadPath.BAYESPERF_ACCELERATOR) < 0.02

    def test_pcie_slower_than_capi(self):
        capi = ReadLatencyModel(accelerator=AcceleratorModel(AcceleratorConfig(transport="capi")))
        pcie = ReadLatencyModel(accelerator=AcceleratorModel(AcceleratorConfig(transport="pcie")))
        ratio = pcie.bayesperf_accelerator_read_cycles() / capi.bayesperf_accelerator_read_cycles()
        assert 1.05 < ratio < 1.30


class TestFPGAResourceModel:
    @pytest.fixture(params=["pcie", "capi"])
    def report(self, request):
        model = FPGAResourceModel(AcceleratorConfig(transport=request.param))
        return model.report(request.param)

    def test_design_fits_on_device(self, report):
        assert report.over_budget() == {}
        assert all(10.0 < v <= 100.0 for v in report.utilization_percent.values())

    def test_power_in_expected_range(self, report):
        assert 8.0 < report.vivado_power_w < 14.0
        assert report.measured_power_w > report.vivado_power_w

    def test_power_efficiency_vs_cpu(self):
        capi = FPGAResourceModel(AcceleratorConfig(transport="capi")).report("ppc64")
        assert 8.0 < capi.power_efficiency_vs(190.0) < 16.0
        pcie = FPGAResourceModel(AcceleratorConfig(transport="pcie")).report("x86")
        assert 4.0 < pcie.power_efficiency_vs(100.0) < 8.0
