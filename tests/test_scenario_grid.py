"""Scenario grid: scheduler policies, contention, baselines, comparison.

Covers the spec-level wiring (``SchedulerSpec``/``ContentionSpec``/
``RunSpec.baselines`` and their dict round-trips), the schedule builders
behind ``SCHEDULE_KINDS``, the contention workload modifier, the baseline
registry split, and the end-to-end pipeline comparison — including its
determinism and JSONL export.
"""

import json

import pytest

import repro.api as api
from repro.events.registry import catalog_for
from repro.fg.registry import baseline_names, engine_estimator_names, get_estimator
from repro.pmu.constraints import ValidityChecker
from repro.scheduling import SCHEDULE_KINDS, build_schedule, cached_schedule
from repro.workloads import contended_workload, contention_slowdown, get_workload

EVENTS = (
    "INST_RETIRED.ANY",
    "CPU_CLK_UNHALTED.THREAD",
    "BR_INST_RETIRED.ALL_BRANCHES",
    "BR_MISP_RETIRED.ALL_BRANCHES",
    "L1D.REPLACEMENT",
    "L2_RQSTS.REFERENCES",
    "L2_RQSTS.MISS",
    "LONGEST_LAT_CACHE.REFERENCE",
)


# -- spec round-trips --------------------------------------------------------


def test_scenario_spec_round_trips_through_dict():
    spec = api.RunSpec.fleet(
        2,
        "KMeans",
        n_ticks=8,
        scheduler=api.SchedulerSpec(policy="round-robin", seed=3),
        contention=api.ContentionSpec(background=2, size_mb=32.0),
        baselines=("linux", "counterminer"),
    )
    payload = json.loads(json.dumps(spec.to_dict()))
    rebuilt = api.RunSpec.from_dict(payload)
    assert rebuilt == spec
    assert rebuilt.scheduler == api.SchedulerSpec(policy="round-robin", seed=3)
    assert rebuilt.contention == api.ContentionSpec(background=2, size_mb=32.0)
    assert rebuilt.baselines == ("linux", "counterminer")


def test_default_spec_round_trip_keeps_scenario_fields_none():
    spec = api.RunSpec.fleet(2, "steady", n_ticks=4)
    rebuilt = api.RunSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
    assert rebuilt.scheduler is None
    assert rebuilt.contention is None
    assert rebuilt.baselines == ()
    assert rebuilt == spec


def test_scheduler_spec_rejects_unknown_policy():
    with pytest.raises(ValueError, match="unknown scheduler policy"):
        api.SchedulerSpec(policy="fifo")


def test_contention_spec_validates_background_range():
    with pytest.raises(ValueError):
        api.ContentionSpec(background=-1)
    with pytest.raises(ValueError):
        api.ContentionSpec(background=99)
    with pytest.raises(ValueError):
        api.ContentionSpec(background=2, size_mb=0.0)


def test_run_spec_rejects_engine_estimator_as_baseline():
    with pytest.raises(ValueError, match="RunSpec.estimator"):
        api.RunSpec.fleet(1, "steady", n_ticks=2, baselines=("mcmc",))


def test_estimator_spec_rejects_baseline_name():
    with pytest.raises(ValueError, match="RunSpec.baselines"):
        api.EstimatorSpec("linux").engine_kwargs()


# -- registry split ----------------------------------------------------------


def test_registry_separates_engines_from_baselines():
    engines = set(engine_estimator_names())
    baselines = set(baseline_names())
    assert not engines & baselines
    assert {"linux", "counterminer", "wm+pin"} <= baselines
    for name in baselines:
        assert get_estimator(name).baseline


def test_engine_rejects_baseline_as_moment_estimator():
    from repro.core.engine import BayesPerfEngine

    catalog = catalog_for("x86")
    with pytest.raises(ValueError, match="baseline correction method"):
        BayesPerfEngine(catalog, EVENTS[:4], moment_estimator="counterminer")


# -- schedule policies -------------------------------------------------------


@pytest.mark.parametrize("kind", SCHEDULE_KINDS)
def test_every_policy_covers_all_events_validly(kind):
    catalog = catalog_for("x86")
    schedule = build_schedule(catalog, EVENTS, kind=kind)
    # Fixed counters are always-on and never occupy a programmable slot.
    fixed = {spec.name for spec in catalog.fixed_events}
    assert set(schedule.events) == set(EVENTS) - fixed
    checker = ValidityChecker(catalog)
    for configuration in schedule.configurations:
        assert checker.can_schedule(list(configuration.events))


@pytest.mark.parametrize("kind", SCHEDULE_KINDS)
def test_every_policy_is_deterministic(kind):
    catalog = catalog_for("x86")
    first = build_schedule(catalog, EVENTS, kind=kind, seed=7)
    second = build_schedule(catalog, EVENTS, kind=kind, seed=7)
    assert [c.events for c in first.configurations] == [
        c.events for c in second.configurations
    ]


def test_build_schedule_rejects_unknown_kind():
    catalog = catalog_for("x86")
    with pytest.raises(ValueError, match="unknown schedule kind"):
        build_schedule(catalog, EVENTS, kind="fifo")


def test_cached_schedule_keys_on_kind_and_seed():
    catalog = catalog_for("x86")
    overlap = cached_schedule(catalog, EVENTS, kind="overlap")
    round_robin = cached_schedule(catalog, EVENTS, kind="round-robin")
    assert overlap is cached_schedule(catalog, EVENTS, kind="overlap")
    assert overlap is not round_robin
    assert round_robin.name == "round-robin"


# -- contention --------------------------------------------------------------


def test_contention_slowdown_is_monotone_in_background_streams():
    slowdowns = [contention_slowdown(background=n) for n in range(6)]
    assert slowdowns[0] == 0.0
    for before, after in zip(slowdowns, slowdowns[1:]):
        assert after > before


def test_contended_workload_throttles_and_renames_without_mutating():
    base = get_workload("KMeans")
    contended = contended_workload(base, background=2)
    assert contended.name == "KMeans@pcie-bg2"
    assert base.name == "KMeans"  # source spec untouched
    assert len(contended.phases) == len(base.phases)
    intensity = 1.0 / (1.0 + contention_slowdown(background=2))
    for original, throttled in zip(base.phases, contended.phases):
        assert throttled.duration_ticks == original.duration_ticks
        assert throttled.profile.instructions_per_tick == pytest.approx(
            original.profile.instructions_per_tick * intensity
        )


# -- end-to-end comparison ---------------------------------------------------


def _grid_spec(tmp_path=None, **overrides):
    kwargs = dict(
        n_ticks=12,
        estimator=api.EstimatorSpec("analytic"),
        scheduler=api.SchedulerSpec(policy="round-robin"),
        baselines=("linux", "counterminer"),
        n_workers=2,
    )
    if tmp_path is not None:
        kwargs["recorder"] = api.RecorderSpec(sink=str(tmp_path / "chains.jsonl"))
    kwargs.update(overrides)
    return api.RunSpec.fleet(2, "KMeans", **kwargs)


def test_pipeline_comparison_scores_engine_and_baselines():
    result = api.Pipeline.from_spec(_grid_spec()).run()
    report = result.comparison
    assert report is not None
    assert report.methods == ("bayesperf", "linux", "counterminer")
    assert report.scenario["scheduler"] == "round-robin"
    assert len(report.hosts) == 2
    for host in report.hosts:
        assert set(host.reports) == set(report.methods)
        for method in report.methods:
            assert host.reports[method].mean_error_percent >= 0.0
    table = report.render()
    assert "bayesperf err%" in table and "fleet-mean" in table


def test_pipeline_comparison_is_deterministic():
    first = api.Pipeline.from_spec(_grid_spec()).run().comparison
    second = api.Pipeline.from_spec(_grid_spec()).run().comparison
    assert first.to_records() == second.to_records()


def test_pipeline_without_baselines_has_no_comparison():
    spec = api.RunSpec.fleet(1, "steady", n_ticks=4)
    result = api.Pipeline.from_spec(spec).run()
    assert result.comparison is None
    assert result.comparison_path is None


def test_comparison_jsonl_lands_next_to_the_trace_sink(tmp_path):
    result = api.Pipeline.from_spec(_grid_spec(tmp_path)).run()
    assert result.comparison_path == str(tmp_path / "chains.jsonl.comparison.jsonl")
    lines = [
        json.loads(line)
        for line in open(result.comparison_path, encoding="utf-8")
    ]
    assert lines[0]["kind"] == "comparison-scenario"
    assert lines[0]["baselines"] == ["linux", "counterminer"]
    body = [record for record in lines[1:] if record["kind"] == "comparison"]
    assert {record["method"] for record in body} == {
        "bayesperf",
        "linux",
        "counterminer",
    }
    # The chain tracefile itself keeps its format: no comparison records.
    with open(tmp_path / "chains.jsonl", encoding="utf-8") as handle:
        kinds = {json.loads(line).get("kind") for line in handle if line.strip()}
    assert "comparison" not in kinds and "comparison-scenario" not in kinds


def test_contention_rides_through_the_pipeline_into_the_scenario():
    spec = _grid_spec(
        contention=api.ContentionSpec(background=2),
        baselines=("linux",),
    )
    result = api.Pipeline.from_spec(spec).run()
    report = result.comparison
    assert report.scenario["contention_background"] == 2
    assert report.scenario["contention_slowdown"] == pytest.approx(
        contention_slowdown(background=2)
    )
    for host in report.hosts:
        assert host.workload.endswith("@pcie-bg2")
