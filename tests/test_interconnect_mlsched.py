"""Tests for the PCIe contention model and the ML-scheduler case study."""

import numpy as np
import pytest

from repro.interconnect import (
    ContentionModel,
    PCIeDevice,
    PCIeLink,
    PCIeTopology,
    Transfer,
    build_case_study_topology,
)
from repro.mlsched import (
    ActorCriticScheduler,
    CollaborativeFilteringScheduler,
    HPCFeatureExtractor,
    ShuffleSchedulingEnv,
    ShuffleTask,
)
from repro.mlsched.training import MONITORING_PROFILES, convergence_summary, training_time_comparison


class TestTopology:
    def test_case_study_topology_devices(self):
        topo = build_case_study_topology()
        assert len(topo.devices("gpu")) == 5
        assert len(topo.devices("nic")) == 2
        assert topo.device("fpga").kind == "fpga"

    def test_route_crosses_sockets(self):
        topo = build_case_study_topology()
        route = topo.route("mem1", "nic0")
        endpoints = {link.first for link in route} | {link.second for link in route}
        assert "cpu0" in endpoints and "cpu1" in endpoints

    def test_shared_links_detection(self):
        topo = build_case_study_topology()
        halo = topo.route("gpu0", "gpu2")
        shuffle = topo.route("mem1", "nic1")
        assert topo.shared_links(halo, shuffle)

    def test_duplicate_device_rejected(self):
        topo = PCIeTopology()
        topo.add_device(PCIeDevice("a", "cpu"))
        with pytest.raises(ValueError):
            topo.add_device(PCIeDevice("a", "cpu"))

    def test_link_requires_known_devices(self):
        topo = PCIeTopology()
        topo.add_device(PCIeDevice("a", "cpu"))
        with pytest.raises(KeyError):
            topo.add_link(PCIeLink("a", "b", 10.0))


class TestContentionModel:
    @pytest.fixture
    def model(self):
        return ContentionModel(build_case_study_topology())

    def test_isolated_transfer_gets_bottleneck_bandwidth(self, model):
        transfer = Transfer("t", "mem1", "nic1", 1e9)
        results = model.allocate([transfer])
        assert results["t"].bandwidth_gbps == pytest.approx(12.5)

    def test_contention_reduces_bandwidth(self, model):
        probe = Transfer("probe", "gpu0", "gpu2", 1e9)
        halo = Transfer("halo", "mem1", "nic1", 1e9)
        alone = model.allocate([probe])["probe"].bandwidth_gbps
        together = model.allocate([probe, halo])["probe"].bandwidth_gbps
        assert together < alone

    def test_small_messages_latency_bound(self, model):
        sweep = model.bandwidth_sweep("gpu0", "gpu2", [256, 2**22])
        assert sweep[256] < sweep[2**22]

    def test_slowdown_positive_under_contention(self, model):
        probe = Transfer("probe", "gpu0", "gpu2", 1e9)
        background = [Transfer("bg", "mem1", "nic1", 1e9)]
        assert model.slowdown(probe, background) > 0.0

    def test_empty_allocation(self, model):
        assert model.allocate([]) == {}


class TestSchedulingEnvironment:
    def test_observation_shape(self):
        env = ShuffleSchedulingEnv(seed=0)
        observation = env.reset()
        assert observation.shape == (env.feature_spec.size,)

    def test_completion_time_depends_on_action(self):
        env = ShuffleSchedulingEnv(seed=0)
        task = ShuffleTask(size_bytes=1e9, numa_node=1, halo_active=True, dataload_active=False)
        nic0 = env.completion_time_us(task, 0)
        nic1 = env.completion_time_us(task, 1)
        assert nic0 < nic1  # halo contends with NIC1's uplink

    def test_best_action_switches_with_contention_side(self):
        env = ShuffleSchedulingEnv(seed=0)
        halo_task = ShuffleTask(1e9, 1, halo_active=True, dataload_active=False)
        load_task = ShuffleTask(1e9, 1, halo_active=False, dataload_active=True)
        assert env.best_action(halo_task) == 0
        assert env.best_action(load_task) == 1

    def test_step_returns_reward_and_regret(self):
        env = ShuffleSchedulingEnv(seed=0)
        env.reset()
        _, reward, info = env.step(0)
        assert reward <= -1.0 + 1e-9
        assert info["regret"] >= 0.0

    def test_feature_noise_applied(self):
        clean = HPCFeatureExtractor(error_level=0.0, seed=0)
        noisy = HPCFeatureExtractor(error_level=0.4, seed=0)
        activity = {name: 0.5 for name in clean.spec.hpc_features}
        a = clean.extract(activity, shuffle_bytes=1e9, numa_node=0)
        b = noisy.extract(activity, shuffle_bytes=1e9, numa_node=0)
        assert not np.allclose(a[: len(clean.spec.hpc_features)], b[: len(clean.spec.hpc_features)])
        # Task metadata is never perturbed.
        assert np.allclose(a[-2:], b[-2:])


class TestSchedulers:
    def test_actor_critic_learns_low_noise_environment(self):
        env = ShuffleSchedulingEnv(HPCFeatureExtractor(error_level=0.0, seed=1), seed=1)
        scheduler = ActorCriticScheduler(n_features=env.feature_spec.size, learning_rate=0.05, seed=1)
        curve = scheduler.train(env, 900)
        early = float(np.mean(curve.losses[:100]))
        late = float(np.mean(curve.losses[-100:]))
        assert late <= early
        assert scheduler.evaluate(env, 100)["mean_regret"] < 0.15

    def test_policy_is_a_distribution(self):
        scheduler = ActorCriticScheduler(n_features=12)
        probabilities = scheduler.policy(np.ones(12))
        assert probabilities.shape == (2,)
        assert np.isclose(probabilities.sum(), 1.0)

    def test_collaborative_filtering_recommends(self):
        env = ShuffleSchedulingEnv(HPCFeatureExtractor(error_level=0.05, seed=2), seed=2)
        model = CollaborativeFilteringScheduler(seed=2)
        rng = np.random.default_rng(0)
        observation = env.reset()
        for _ in range(200):
            action = int(rng.integers(0, 2))
            task = env._task
            completion = env.completion_time_us(task, action)
            model.record(observation, action, 1.0 / completion)
            observation = env.reset()
        model.fit()
        assert model.recommend(observation) in (0, 1)
        assert model.n_observations == 200

    def test_cf_validation(self):
        with pytest.raises(ValueError):
            CollaborativeFilteringScheduler(sparsity=1.0)
        model = CollaborativeFilteringScheduler()
        with pytest.raises(RuntimeError):
            model.fit()

    def test_training_comparison_profiles(self):
        curves = training_time_comparison(MONITORING_PROFILES[:2], iterations=60, seed=0)
        assert set(curves) == {"bayesperf-acc", "bayesperf-cpu"}
        summary = convergence_summary(
            {**curves, "linux": curves["bayesperf-acc"]}, baseline="linux"
        )
        assert "convergence_iteration" in summary["bayesperf-acc"]
