"""The unified `repro.api` pipeline: spec-driven runs, the estimator
registry, streaming with bounded recorder memory, and the deprecation shims
over the legacy entry points."""

from pathlib import Path

import pytest

from repro.api import EstimatorSpec, HostSpec, Pipeline, RecorderSpec, RunSpec
from repro.core.engine import BayesPerfEngine
from repro.core.session import PerfSession
from repro.events.registry import catalog_for
from repro.fg import ChainTrace, estimator_names, get_estimator
from repro.fg.mcmc import BatchedMCMC, BatchedSiteMCMC, ReferenceMCMC
from repro.fg.ep import ExpectationPropagation, ReferenceSiteMCMC
from repro.fleet.service import FleetService
from repro.fleet.tracefile import read_trace
from repro.fleet.__main__ import main as fleet_main

METRICS = ("ipc", "l1d_mpki")
GOLDEN_TRACE = Path(__file__).parent / "fixtures" / "golden_fleet_trace.jsonl"


def _small_spec(n_hosts=4, n_ticks=3, **kwargs):
    kwargs.setdefault("metrics", METRICS)
    kwargs.setdefault("n_workers", 2)
    return RunSpec.fleet(n_hosts, "mux-stress", n_ticks=n_ticks, **kwargs)


def _legacy_service(n_hosts=4, n_ticks=3, **kwargs):
    service = FleetService("x86", metrics=METRICS, n_workers=2, **kwargs)
    for index in range(n_hosts):
        service.add_host("mux-stress", seed=index, n_ticks=n_ticks)
    return service


# -- the estimator registry ---------------------------------------------------


class TestEstimatorRegistry:
    def test_builtin_pairings(self):
        assert get_estimator("batched-mcmc").batched is BatchedMCMC
        assert get_estimator("batched-mcmc").reference is ReferenceMCMC
        assert get_estimator("mcmc").batched is BatchedSiteMCMC
        assert get_estimator("mcmc").reference is ReferenceSiteMCMC
        assert get_estimator("analytic").reference is ExpectationPropagation
        assert get_estimator("mcmc").default_adapt is True
        assert get_estimator("batched-mcmc").default_adapt is False

    def test_unknown_name_lists_registered_estimators(self):
        # The listing covers the whole registry: engines and the baseline
        # correction methods that joined it for the scenario grid.
        with pytest.raises(
            ValueError, match="analytic, batched-mcmc, counterminer, linux, mcmc"
        ):
            get_estimator("turbo")

    def test_engine_validation_goes_through_registry(self):
        catalog = catalog_for("x86")
        events = catalog.events_for_derived(METRICS)
        with pytest.raises(ValueError, match="registered estimators"):
            BayesPerfEngine(catalog, events, moment_estimator="turbo")

    def test_engine_adapt_default_comes_from_registry(self):
        catalog = catalog_for("x86")
        events = catalog.events_for_derived(METRICS)
        assert BayesPerfEngine(catalog, events, moment_estimator="mcmc").mcmc_adapt
        assert not BayesPerfEngine(
            catalog, events, moment_estimator="batched-mcmc"
        ).mcmc_adapt

    def test_spec_resolution_validates_eagerly(self):
        with pytest.raises(ValueError, match="registered estimators"):
            EstimatorSpec("turbo").engine_kwargs()
        kwargs = EstimatorSpec("mcmc", samples=25, burn_in=10, adapt=False).engine_kwargs()
        assert kwargs == {
            "moment_estimator": "mcmc",
            "use_compiled_kernel": True,
            "mcmc_samples": 25,
            "mcmc_burn_in": 10,
            "mcmc_adapt": False,
        }

    def test_names_are_sorted_and_stable(self):
        names = estimator_names()
        assert list(names) == sorted(names)

    def test_pair_tuple_fields_accept_dicts(self):
        spec = RunSpec.fleet(
            1, "steady", n_ticks=2, engine_overrides={"ep_damping": 0.5}
        )
        assert spec.engine_overrides == (("ep_damping", 0.5),)
        assert spec.engine_kwargs()["ep_damping"] == 0.5
        recorder = RecorderSpec(params={"n_samples": 20})
        assert recorder.build().params == {"n_samples": 20}


class TestSessionSpecPrecedence:
    def test_session_use_compiled_kernel_false_beats_estimator_spec(self):
        """The A/B ablation switch must win over the spec's compiled default."""
        session = PerfSession(
            "x86",
            metrics=METRICS,
            estimator=EstimatorSpec("batched-mcmc"),
            use_compiled_kernel=False,
        )
        assert session.engine_kwargs["use_compiled_kernel"] is False

    def test_estimator_spec_reference_twin_flag_survives(self):
        session = PerfSession(
            "x86",
            metrics=METRICS,
            estimator=EstimatorSpec("batched-mcmc", use_compiled_kernel=False),
        )
        assert session.engine_kwargs["use_compiled_kernel"] is False

    def test_session_rejects_recorder_spec_with_sink(self):
        with pytest.raises(ValueError, match="stream"):
            PerfSession(
                "x86", metrics=METRICS, recorder=RecorderSpec(sink="chains.jsonl")
            )

    def test_session_accepts_sinkless_recorder_spec(self):
        session = PerfSession(
            "x86",
            metrics=METRICS,
            estimator=EstimatorSpec("mcmc", samples=15, burn_in=10, ep_iterations=2),
            recorder=RecorderSpec(params={"n_samples": 15}),
        )
        recorder = session.engine_kwargs["chain_recorder"]
        session.run("steady", n_ticks=2, seed=0)
        assert recorder.n_visits > 0


# -- Pipeline.run: parity with the legacy entry points ------------------------


class TestPipelineRun:
    def test_run_matches_legacy_fleet_service_exactly(self):
        result = Pipeline.from_spec(_small_spec()).run()
        legacy = _legacy_service().run()
        assert result.estimates.keys() == legacy.estimates.keys()
        for host in result.estimates:
            assert result.estimates[host].values_equal(legacy.estimates[host])
        assert result.n_slices == legacy.total_slices
        assert result.slices_per_second > 0

    def test_run_collects_every_slice_in_order_per_host(self):
        result = Pipeline.from_spec(_small_spec(n_hosts=2, n_ticks=4)).run()
        ticks = {}
        for item in result.slices:
            ticks.setdefault(item.host, []).append(item.tick)
        assert set(ticks) == {"host-000", "host-001"}
        for per_host in ticks.values():
            assert per_host == sorted(per_host)
        # The per-slice values are the same dictionaries the estimate
        # traces accumulated.
        first = result.slices[0]
        assert result.estimates[first.host].at(0) == first.values

    def test_golden_trace_through_pipeline(self):
        """Acceptance: Pipeline.from_spec(...).run() reproduces the
        committed golden fleet trace exactly like the legacy entry points."""
        golden = read_trace(GOLDEN_TRACE)
        spec = RunSpec(
            arch=golden.arch,
            hosts=(HostSpec(trace=str(GOLDEN_TRACE)),),
            n_workers=2,
        )
        result = Pipeline.from_spec(spec).run()
        (host,) = result.estimates
        got = result.estimates[host]
        assert len(got) == len(golden.estimates)
        for tick in range(len(golden.estimates)):
            want = golden.estimates.at(tick)
            have = got.at(tick)
            assert have.keys() == want.keys()
            for event, value in want.items():
                assert have[event] == pytest.approx(value, rel=1e-9)

    def test_from_spec_requires_hosts(self):
        with pytest.raises(ValueError, match="at least one HostSpec"):
            Pipeline.from_spec(RunSpec())

    def test_fleet_result_unavailable_before_completion(self):
        pipeline = Pipeline.from_spec(_small_spec(n_hosts=1, n_ticks=2))
        with pytest.raises(RuntimeError, match="not finished"):
            pipeline.fleet_result

    def test_serial_mode_spec(self):
        spec = _small_spec(n_hosts=2, n_ticks=2, mode="serial", n_workers=1)
        result = Pipeline.from_spec(spec).run()
        assert result.fleet.mode == "serial"
        assert result.n_slices == 4


# -- Pipeline.stream: incremental results, bounded chain memory ---------------


class TestPipelineStream:
    def _stream_spec(self, sink=None, n_ticks=3):
        return _small_spec(
            n_hosts=3,
            n_ticks=n_ticks,
            batch_size=1,  # one tick per host per round -> several rounds
            estimator=EstimatorSpec("mcmc", samples=20, burn_in=15, ep_iterations=2),
            recorder=RecorderSpec(sink=sink, params=(("n_samples", 20),)),
        )

    def test_stream_yields_while_running_and_matches_run(self):
        streamed = list(Pipeline.from_spec(self._stream_spec()).stream())
        collected = Pipeline.from_spec(self._stream_spec()).run()
        assert [(s.host, s.tick) for s in streamed] == [
            (s.host, s.tick) for s in collected.slices
        ]
        assert all(s.values == c.values for s, c in zip(streamed, collected.slices))

    def test_stream_flushes_chain_records_with_bounded_memory(self, tmp_path):
        """Acceptance: chain records land in the sink incrementally — the
        recorder's peak buffered visit count stays a fraction of the total
        (the ROADMAP 'stream chain records incrementally' item)."""
        sink = tmp_path / "chains.jsonl"
        pipeline = Pipeline.from_spec(self._stream_spec(sink=str(sink)))
        slices = sum(1 for _ in pipeline.stream())
        recorder = pipeline.service.chain_recorder
        assert slices == 9
        assert recorder.total_recorded > 0
        # Peak memory: bounded by one flush round, not the whole run.
        assert recorder.peak_buffered <= recorder.total_recorded // 3
        # Everything was flushed out of memory into the sink.
        assert recorder.n_visits == 0
        replayed = read_trace(sink).chain
        assert replayed is not None
        assert replayed.n_visits == recorder.total_recorded

    def test_streamed_file_equals_unstreamed_recorder(self, tmp_path):
        sink = tmp_path / "chains.jsonl"
        pipeline = Pipeline.from_spec(self._stream_spec(sink=str(sink)))
        for _ in pipeline.stream():
            pass
        unstreamed = Pipeline.from_spec(self._stream_spec(sink=None)).run()
        assert read_trace(sink).chain.visits == unstreamed.chain_trace.visits

    def test_abandoned_stream_still_finalizes_the_sink(self, tmp_path):
        sink = tmp_path / "chains.jsonl"
        pipeline = Pipeline.from_spec(self._stream_spec(sink=str(sink)))
        stream = pipeline.stream()
        next(stream)
        stream.close()  # consumer walks away mid-run
        assert pipeline.fleet_result is not None
        assert read_trace(sink).chain is not None


# -- deprecation shims over the legacy entry points ---------------------------


class TestDeprecationShims:
    def test_session_moment_estimator_kwarg_warns_and_still_works(self):
        with pytest.warns(DeprecationWarning, match="moment_estimator"):
            legacy = PerfSession("x86", metrics=METRICS, moment_estimator="batched-mcmc")
        modern = PerfSession(
            "x86", metrics=METRICS, estimator=EstimatorSpec("batched-mcmc")
        )
        assert legacy.engine_kwargs["moment_estimator"] == "batched-mcmc"
        legacy_run = legacy.run("steady", n_ticks=4, seed=3)
        modern_run = modern.run("steady", n_ticks=4, seed=3)
        assert legacy_run.estimates.values_equal(modern_run.estimates)

    def test_session_chain_recorder_kwarg_warns_and_still_records(self):
        recorder = ChainTrace()
        with pytest.warns(DeprecationWarning, match="chain_recorder"):
            session = PerfSession(
                "x86",
                metrics=METRICS,
                estimator=EstimatorSpec("mcmc", samples=15, burn_in=10, ep_iterations=2),
                chain_recorder=recorder,
            )
        session.run("steady", n_ticks=2, seed=0)
        assert recorder.n_visits > 0

    def test_fleet_chain_recorder_kwarg_warns_and_matches_recorder_param(self):
        kwargs = dict(
            engine_kwargs={
                "moment_estimator": "mcmc",
                "mcmc_samples": 15,
                "mcmc_burn_in": 10,
                "ep_max_iterations": 2,
            }
        )
        legacy_trace, modern_trace = ChainTrace(), ChainTrace()
        with pytest.warns(DeprecationWarning, match="chain_recorder"):
            legacy = _legacy_service(
                n_hosts=2, n_ticks=2, chain_recorder=legacy_trace, **kwargs
            )
        modern = _legacy_service(n_hosts=2, n_ticks=2, recorder=modern_trace, **kwargs)
        legacy_result = legacy.run()
        modern_result = modern.run()
        assert legacy_result.chain_trace is legacy_trace
        assert legacy_trace.visits == modern_trace.visits
        for host in legacy_result.estimates:
            assert legacy_result.estimates[host].values_equal(
                modern_result.estimates[host]
            )

    def test_legacy_kwargs_still_reproduce_the_golden_trace(self):
        """The deprecated spellings change nothing numerically: a service
        built through them replays the committed golden fixture exactly."""
        golden = read_trace(GOLDEN_TRACE)
        with pytest.warns(DeprecationWarning):
            service = FleetService(
                golden.arch, n_workers=2, chain_recorder=ChainTrace()
            )
        host = service.add_trace(GOLDEN_TRACE)
        result = service.run()
        got = result.estimates[host]
        for tick in range(len(golden.estimates)):
            want = golden.estimates.at(tick)
            for event, value in want.items():
                assert got.at(tick)[event] == pytest.approx(value, rel=1e-9)


# -- the CLI rides the registry ----------------------------------------------


class TestFleetCLI:
    def test_unknown_estimator_lists_registered_names(self, capsys):
        with pytest.raises(SystemExit):
            fleet_main(["demo", "--hosts", "1", "--ticks", "1", "--estimator", "turbo"])
        err = capsys.readouterr().err
        assert "registered estimators" in err
        for name in estimator_names():
            assert name in err

    def test_stream_flag_exercises_pipeline_stream(self, capsys):
        code = fleet_main(
            ["demo", "--hosts", "2", "--ticks", "2", "--workers", "2", "--stream"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "streamed 4 slices" in out

    def test_estimator_flag_reaches_the_engines(self, capsys):
        code = fleet_main(
            [
                "demo", "--hosts", "1", "--ticks", "1",
                "--estimator", "batched-mcmc", "--stream",
            ]
        )
        assert code == 0
        assert "batched-mcmc estimator" in capsys.readouterr().out
