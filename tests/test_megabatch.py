"""Cross-signature mega-batching and multicore kernel execution, locked down.

The mega-batched solve (:mod:`repro.fg.megabatch`) replaces many
per-signature batched kernel calls with one canonical padded call, and the
``KernelExecSpec`` thread partitions replace one serial call with several
chunked ones.  Both rewrites sit on the hottest numeric path, so their
contract is **bit-identity**, not closeness:

* mega-batched posteriors == per-signature batched posteriors, exactly, on
  hypothesis-randomized heterogeneous fleets — and both match the
  object-walking reference twin within 1e-6;
* lane-partitioned results == serial results, exactly, for any thread
  count;
* the PD repair composes: merged batches re-probe at original group
  granularity, so a group that passes its own Cholesky probe is never
  spuriously repaired by a failing neighbour.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.engine import BayesPerfEngine
from repro.events.profiles import standard_profiling_events
from repro.events.registry import catalog_for
from repro.fg import (
    CompiledEPKernel,
    FactorGraph,
    GaussianObservation,
    KernelExecSpec,
    LinearConstraintFactor,
    compile_factor_graph,
    kernel_exec_from_env,
    lane_chunks,
    observation_certified,
    padding_slots,
    run_lane_partitioned,
)
from repro.api import (
    EstimatorSpec,
    HostSpec,
    ObserverSpec,
    Pipeline,
    RecorderSpec,
    RunSpec,
)
from repro.fg.ep import EPSite
from repro.fg.megabatch import THREADS_ENV_VAR
from repro.pmu.sampling import MultiplexedSampler
from repro.scheduling.cache import cached_schedule
from repro.uarch.machine import Machine, MachineConfig
from repro.workloads.registry import get_workload

TOLERANCE = 1e-6

CATALOG = catalog_for("x86")
UNION = standard_profiling_events(CATALOG, n_events=12)


def _gap(a, b):
    return abs(a - b) / max(abs(a), abs(b), 1e-12)


def _record_for(subset, seed, rotation=0):
    """One sampled record for a host monitoring *subset* of the union."""
    schedule = cached_schedule(CATALOG, tuple(subset))
    offset = rotation % len(schedule.configurations)
    trace = Machine(MachineConfig(), get_workload("steady"), seed=seed).run(offset + 1)
    sampler = MultiplexedSampler(CATALOG, schedule, seed=seed + 1, samples_per_tick=4)
    return sampler.sample(trace).records[offset]


def _solve_batch(engine, records):
    """Fresh-state batch solve; (means, stds, iterations, converged) rows."""
    results = engine.process_batch([(None, record) for record in records])
    return [
        (report.means(), report.stds(), report.ep_iterations, report.ep_converged)
        for report, _ in results
    ]


@st.composite
def _hetero_fleet(draw):
    """A small fleet of hosts with randomized measured-event subsets.

    Union indices 0-1 are the fixed counters (INST_RETIRED / CPU_CLK); the
    overlap scheduler requires at least one *programmable* event, so every
    subset draws from index 2 up and mixes the fixed pair in freely.
    """
    n_hosts = draw(st.integers(min_value=3, max_value=5))
    subsets = [
        sorted(
            draw(
                st.sets(st.integers(2, len(UNION) - 1), min_size=1)
            )
            | draw(st.sets(st.integers(0, 1)))
        )
        for _ in range(n_hosts)
    ]
    rotations = [draw(st.integers(0, 3)) for _ in range(n_hosts)]
    return [
        _record_for([UNION[i] for i in subset], seed=17 * host, rotation=rotation)
        for host, (subset, rotation) in enumerate(zip(subsets, rotations))
    ]


class TestMegabatchDifferential:
    """Mega-batch == per-signature batched, bit for bit; twin within 1e-6."""

    @given(records=_hetero_fleet())
    @settings(max_examples=8, deadline=None)
    def test_megabatch_is_bit_identical_and_tracks_the_twin(self, records):
        fragmented = _solve_batch(BayesPerfEngine(CATALOG, UNION), records)
        megabatched = _solve_batch(
            BayesPerfEngine(CATALOG, UNION, megabatch=True), records
        )
        assert megabatched == fragmented

        twin = BayesPerfEngine(CATALOG, UNION, use_compiled_kernel=False)
        for record, (means, stds, _, _) in zip(records, megabatched):
            twin.reset()
            report = twin.process_record(record)
            want_means, want_stds = report.means(), report.stds()
            for event in want_means:
                assert _gap(means[event], want_means[event]) < TOLERANCE
                assert _gap(stds[event], want_stds[event]) < TOLERANCE

    def test_megabatch_path_actually_engages(self):
        """The equality above must not be vacuous: the canonical solve runs."""
        subsets = [UNION[:5], UNION[4:10], UNION[2:9], UNION[:5]]
        records = [
            _record_for(subset, seed=31 * host) for host, subset in enumerate(subsets)
        ]
        engine = BayesPerfEngine(CATALOG, UNION, megabatch=True)
        prepared = []
        for record in records:
            engine.reset()
            prepared.append(engine._prepare_slice(record))
        groups = {}
        for index, slice_ in enumerate(prepared):
            groups.setdefault(slice_.measured, []).append(index)
        assert len(groups) >= 2, "fleet must be heterogeneous for this test"
        eligible = engine._megabatch_eligible(groups, prepared)
        assert len(eligible) >= 2, "mega-batch eligibility must engage here"

    def test_disabled_by_default_and_for_non_analytic_estimators(self):
        records = [_record_for(UNION[:5], seed=3), _record_for(UNION[4:10], seed=5)]
        default_engine = BayesPerfEngine(CATALOG, UNION)
        sampling_engine = BayesPerfEngine(
            CATALOG, UNION, megabatch=True, moment_estimator="batched-mcmc",
            mcmc_samples=10, mcmc_burn_in=5,
        )
        for engine in (default_engine, sampling_engine):
            prepared = []
            for record in records:
                engine.reset()
                prepared.append(engine._prepare_slice(record))
            groups = {}
            for index, slice_ in enumerate(prepared):
                groups.setdefault(slice_.measured, []).append(index)
            assert engine._megabatch_eligible(groups, prepared) == []


class TestRepairGroupComposition:
    """The PD repair probe is per *call*; merged calls must re-probe per group.

    A numerically rank-deficient site matrix can pass its own group's
    Cholesky probe while its smallest eigenvalue rounds to <= 0.  Merged
    into one batch with a genuinely failing group, a whole-batch repair
    would bump it by ~1e-9 — a real posterior drift the per-signature path
    never sees.  ``repair_groups`` pins the probe to original-group
    granularity.
    """

    def _kernel(self):
        variables = [f"v{i}" for i in range(6)]
        graph = FactorGraph(variables=variables)
        names = []
        for v in variables:
            graph.add_factor(GaussianObservation(f"obs_{v}", v, observed=1.0, sigma=1.0))
            names.append(f"obs_{v}")
        graph.add_factor(
            LinearConstraintFactor("rel_0", {v: 1.0 for v in variables}, sigma=0.5)
        )
        sites = [EPSite("obs", tuple(names)), EPSite("rel", ("rel_0",))]
        structure = compile_factor_graph(graph, sites, variables)
        assert structure is not None
        return CompiledEPKernel(structure, damping=1.0)

    def _trigger_matrix(self):
        """A 6x6 matrix that passes Cholesky with eigvalsh smallest <= 0."""
        rng = np.random.default_rng(0)
        n = int(rng.integers(3, 7))
        basis = rng.normal(size=(n, n - 1))
        matrix = basis @ basis.T  # rank-deficient in exact arithmetic
        assert matrix.shape == (6, 6)
        try:
            np.linalg.cholesky(matrix)
        except np.linalg.LinAlgError:  # pragma: no cover - platform BLAS
            pytest.skip("platform LAPACK rejects the trigger matrix")
        smallest = float(np.linalg.eigvalsh(0.5 * (matrix + matrix.T))[0])
        if smallest > 0:  # pragma: no cover - platform BLAS
            pytest.skip("platform LAPACK rounds the trigger matrix PD")
        return matrix

    def _stacked(self, trigger):
        failing = np.zeros((6, 6))  # Cholesky always fails, bump 1e-9
        observation = np.stack([4.0 * np.eye(6)] * 2)
        constraint = np.stack([trigger, failing])
        return [
            (observation, np.zeros((2, 6))),
            (constraint, np.zeros((2, 6))),
        ]

    def test_grouped_probe_leaves_passing_group_untouched(self):
        kernel = self._kernel()
        trigger = self._trigger_matrix()
        stacked = self._stacked(trigger)
        groups = [np.array([0]), np.array([1])]
        repaired = kernel._repaired_targets(stacked, (), groups)
        # The passing group's rows ride through bitwise-untouched...
        assert np.array_equal(repaired[1][0][0], trigger)
        # ...and the failing group is repaired exactly as it would be alone.
        solo = kernel._repaired_targets(
            [(p[1:2], s[1:2]) for p, s in stacked], (), None
        )
        assert np.array_equal(repaired[1][0][1], solo[1][0][0])

    def test_whole_batch_probe_would_have_bumped_it(self):
        """The hazard is real: without groups the merged probe repairs row 0."""
        kernel = self._kernel()
        trigger = self._trigger_matrix()
        merged = kernel._repaired_targets(self._stacked(trigger), (), None)
        assert not np.array_equal(merged[1][0][0], trigger)

    def test_run_stacked_composes_bit_identically_with_groups(self):
        kernel = self._kernel()
        trigger = self._trigger_matrix()
        stacked = self._stacked(trigger)
        prior_precision = np.stack([np.eye(6)] * 2)
        prior_shift = np.zeros((2, 6))
        merged = kernel.run_stacked(
            stacked,
            prior_precision,
            prior_shift,
            (),
            None,
            [np.array([0]), np.array([1])],
        )
        for row in range(2):
            solo = kernel.run_stacked(
                [(p[row : row + 1], s[row : row + 1]) for p, s in stacked],
                prior_precision[row : row + 1],
                prior_shift[row : row + 1],
            )
            assert np.array_equal(merged.means[row], solo.means[0])
            assert np.array_equal(merged.variances[row], solo.variances[0])


class TestLanePartition:
    """threads=N results are bit-identical to the serial kernel."""

    def _problem(self, batch=7):
        variables = [f"v{i}" for i in range(4)]
        graph = FactorGraph(variables=variables)
        names = []
        for v in variables:
            graph.add_factor(GaussianObservation(f"obs_{v}", v, observed=0.5, sigma=0.8))
            names.append(f"obs_{v}")
        graph.add_factor(
            LinearConstraintFactor("rel_0", {v: 1.0 for v in variables}, sigma=0.4)
        )
        sites = [EPSite("obs", tuple(names)), EPSite("rel", ("rel_0",))]
        structure = compile_factor_graph(graph, sites, variables)
        kernel = CompiledEPKernel(structure, damping=1.0)
        rng = np.random.default_rng(42)
        stacked = []
        for _ in sites:
            basis = rng.normal(size=(batch, 4, 4))
            precision = basis @ np.swapaxes(basis, -1, -2) + 2.0 * np.eye(4)
            stacked.append((precision, rng.normal(size=(batch, 4))))
        prior_precision = np.stack([np.eye(4)] * batch)
        prior_shift = rng.normal(size=(batch, 4))
        return kernel, stacked, prior_precision, prior_shift

    @pytest.mark.parametrize("threads", [2, 3, 4, 9])
    def test_partitioned_kernel_is_bit_identical(self, threads):
        from concurrent.futures import ThreadPoolExecutor

        kernel, stacked, prior_precision, prior_shift = self._problem()
        serial = kernel.run_stacked(stacked, prior_precision, prior_shift)
        with ThreadPoolExecutor(max_workers=threads) as pool:
            partitioned = run_lane_partitioned(
                kernel, stacked, prior_precision, prior_shift, (), pool, threads
            )
        assert np.array_equal(partitioned.means, serial.means)
        assert np.array_equal(partitioned.variances, serial.variances)
        assert np.array_equal(partitioned.posterior_precision, serial.posterior_precision)
        assert np.array_equal(partitioned.iterations, serial.iterations)
        assert np.array_equal(partitioned.converged, serial.converged)

    def test_engine_lane_threads_are_bit_identical(self):
        records = [
            _record_for(UNION[:8], seed=7 * host) for host in range(6)
        ] + [_record_for(UNION[3:11], seed=100 + host) for host in range(4)]
        serial = _solve_batch(BayesPerfEngine(CATALOG, UNION), records)
        threaded = _solve_batch(
            BayesPerfEngine(
                CATALOG, UNION, kernel_exec=KernelExecSpec(threads=4, partition="lane")
            ),
            records,
        )
        mega_threaded = _solve_batch(
            BayesPerfEngine(
                CATALOG,
                UNION,
                megabatch=True,
                kernel_exec=KernelExecSpec(threads=4, partition="lane"),
            ),
            records,
        )
        assert threaded == serial
        assert mega_threaded == serial

    def test_engine_signature_partition_is_bit_identical(self):
        records = [
            _record_for(UNION[:6], seed=51 * host) for host in range(3)
        ] + [_record_for(UNION[5:11], seed=200 + host) for host in range(3)]
        serial = _solve_batch(BayesPerfEngine(CATALOG, UNION), records)
        partitioned = _solve_batch(
            BayesPerfEngine(
                CATALOG,
                UNION,
                kernel_exec=KernelExecSpec(threads=2, partition="signature"),
            ),
            records,
        )
        assert partitioned == serial

    @given(batch=st.integers(1, 200), threads=st.integers(1, 16))
    @settings(max_examples=40, deadline=None)
    def test_lane_chunks_partition_the_batch_exactly(self, batch, threads):
        bounds = lane_chunks(batch, threads)
        assert bounds[0][0] == 0 and bounds[-1][1] == batch
        assert len(bounds) == min(threads, batch)
        sizes = []
        for (start, stop), (next_start, _) in zip(bounds, bounds[1:]):
            assert stop == next_start
        for start, stop in bounds:
            sizes.append(stop - start)
            assert stop > start
        assert max(sizes) - min(sizes) <= 1
        assert bounds == lane_chunks(batch, threads)  # pure & deterministic


class TestCanonicalShapeHelpers:
    def test_padding_slots_are_distinct_and_unmeasured(self):
        slots = np.array([1, 4, 7], dtype=np.intp)
        pads = padding_slots(6, slots, 10)
        assert len(pads) == 3
        assert len(set(pads.tolist())) == 3
        assert not set(pads.tolist()) & {1, 4, 7}
        # Deterministic: smallest free slot ids, in order.
        assert pads.tolist() == [0, 2, 3]

    def test_padding_slots_empty_when_width_matches(self):
        assert padding_slots(3, np.array([0, 1, 2], dtype=np.intp), 5).size == 0

    def test_padding_slots_rejects_overwide_buckets(self):
        with pytest.raises(ValueError, match="variable count"):
            padding_slots(6, np.array([0], dtype=np.intp), 4)

    def test_observation_certified(self):
        assert observation_certified(np.array([0.5, 2.0]))
        assert not observation_certified(np.array([]))
        assert not observation_certified(np.array([0.5, 0.0]))
        assert not observation_certified(np.array([0.5, -1.0]))
        assert not observation_certified(np.array([0.5, np.inf]))
        assert not observation_certified(np.array([0.5, np.nan]))


class TestKernelExecSpec:
    def test_defaults(self):
        spec = KernelExecSpec()
        assert spec.threads == 1 and spec.partition == "lane"

    def test_validation(self):
        with pytest.raises(ValueError, match="threads"):
            KernelExecSpec(threads=0)
        with pytest.raises(ValueError, match="partition"):
            KernelExecSpec(threads=2, partition="diagonal")

    def test_frozen_and_hashable(self):
        spec = KernelExecSpec(threads=4, partition="signature")
        assert hash(spec) == hash(KernelExecSpec(threads=4, partition="signature"))
        with pytest.raises(AttributeError):
            spec.threads = 8

    def test_kernel_exec_from_env(self, monkeypatch):
        monkeypatch.delenv(THREADS_ENV_VAR, raising=False)
        assert kernel_exec_from_env() is None
        monkeypatch.setenv(THREADS_ENV_VAR, "")
        assert kernel_exec_from_env() is None
        monkeypatch.setenv(THREADS_ENV_VAR, " 4 ")
        assert kernel_exec_from_env() == KernelExecSpec(threads=4)

    def test_engine_picks_up_env_default(self, monkeypatch):
        monkeypatch.setenv(THREADS_ENV_VAR, "4")
        engine = BayesPerfEngine(CATALOG, UNION[:4])
        assert engine.kernel_exec == KernelExecSpec(threads=4)
        monkeypatch.delenv(THREADS_ENV_VAR)
        assert BayesPerfEngine(CATALOG, UNION[:4]).kernel_exec is None


@pytest.mark.thread_matrix
class TestDeterminismUnderThreads:
    """threads=1 vs threads=4 on one seeded RunSpec: byte-identical output.

    The thread count is an execution knob, never a numeric one — the lane
    partition pins each chunk's reduction layout and the signature
    partition replays recording in deterministic key order, so the same
    declarative run must produce the same estimates *and* the same
    tracefile bytes regardless of parallelism.  CI re-runs the whole tier-1
    suite with ``REPRO_KERNEL_THREADS=4`` on a matrix leg; these tests pin
    the equivalence explicitly inside a single process.
    """

    def _spec(self, sink, kernel_exec):
        # A mixed-signature fleet: each host monitors its own union slice.
        subsets = (UNION[:6], UNION[:2] + UNION[7:10], UNION[2:8], tuple(UNION))
        hosts = tuple(
            HostSpec(workload="steady", seed=40 + h, n_ticks=3, events=subset)
            for h, subset in enumerate(subsets)
        )
        return RunSpec(
            events=tuple(UNION),
            hosts=hosts,
            estimator=EstimatorSpec(megabatch=True, kernel_exec=kernel_exec),
            recorder=RecorderSpec(sink=sink),
            observer=ObserverSpec(estimates=True, mixing=False),
            n_workers=2,
        )

    def _run(self, tmp_path, name, kernel_exec):
        sink = tmp_path / f"{name}.jsonl"
        result = Pipeline.from_spec(self._spec(str(sink), kernel_exec)).run()
        return result.estimates, sink.read_bytes()

    def test_lane_threads_are_byte_identical(self, tmp_path):
        serial, serial_log = self._run(tmp_path, "t1", KernelExecSpec(threads=1))
        threaded, threaded_log = self._run(tmp_path, "t4", KernelExecSpec(threads=4))
        assert serial.keys() == threaded.keys()
        for host in serial:
            assert serial[host].values_equal(threaded[host])
        # The run logs — header, every estimate record — match byte for byte.
        assert serial_log == threaded_log

    def test_signature_partition_is_byte_identical(self, tmp_path):
        serial, serial_log = self._run(tmp_path, "s1", KernelExecSpec(threads=1))
        partitioned, partitioned_log = self._run(
            tmp_path, "s4", KernelExecSpec(threads=4, partition="signature")
        )
        for host in serial:
            assert serial[host].values_equal(partitioned[host])
        assert serial_log == partitioned_log
