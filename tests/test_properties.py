"""Property-based tests on core data structures and end-to-end invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.ringbuffer import RingBuffer
from repro.events import catalog_for
from repro.events.profiles import standard_profiling_events
from repro.invariants import standard_invariants
from repro.metrics.dtw import dtw_distance
from repro.pmu import ValidityChecker
from repro.scheduling import overlap_schedule, round_robin_schedule
from repro.uarch.profile import PhaseProfile
from repro.uarch.synthesis import synthesize_semantics


@given(
    instructions=st.floats(1e5, 1e8),
    branch_fraction=st.floats(0.01, 0.4),
    miss=st.floats(0.001, 0.6),
    dma=st.floats(0.0, 1e5),
    intensity=st.floats(0.1, 5.0),
)
@settings(max_examples=40, deadline=None)
def test_synthesized_semantics_always_satisfy_invariants(
    instructions, branch_fraction, miss, dma, intensity
):
    """The machine model can never emit values violating the invariant library."""
    profile = PhaseProfile(
        instructions_per_tick=instructions,
        branch_fraction=branch_fraction,
        l1d_miss_rate=miss,
        l2_miss_rate=miss,
        llc_miss_rate=miss,
        dma_transactions_per_tick=dma,
    )
    values = synthesize_semantics(profile, intensity=intensity)
    assert standard_invariants().violated(values, rtol=1e-8) == ()
    assert all(v >= 0 for v in values.values())


@given(n_events=st.integers(5, 40), arch=st.sampled_from(["x86", "ppc64"]))
@settings(max_examples=20, deadline=None)
def test_schedules_cover_events_and_stay_valid(n_events, arch):
    """Both schedulers always produce valid configurations covering every event."""
    catalog = catalog_for(arch)
    events = standard_profiling_events(catalog, n_events=n_events)
    checker = ValidityChecker(catalog)
    _, programmable = checker.split_events(events)
    for builder in (round_robin_schedule, overlap_schedule):
        schedule = builder(catalog, events)
        assert set(programmable) <= set(schedule.events)
        for configuration in schedule.configurations:
            assert checker.is_valid(configuration)
            assert len(configuration) <= checker.n_counters


@given(
    series=st.lists(st.floats(0.0, 1e6), min_size=1, max_size=30),
)
@settings(max_examples=40, deadline=None)
def test_dtw_identity_and_symmetry(series):
    """DTW distance of a series with itself is zero and the metric is symmetric."""
    other = list(reversed(series))
    assert dtw_distance(series, series) == pytest.approx(0.0, abs=1e-9)
    assert dtw_distance(series, other) == pytest.approx(dtw_distance(other, series), rel=1e-9)


@given(capacity=st.integers(1, 50), pushes=st.integers(0, 120))
@settings(max_examples=40, deadline=None)
def test_ring_buffer_never_exceeds_capacity(capacity, pushes):
    """The ring buffer drops on overflow and preserves FIFO order."""
    buffer = RingBuffer(capacity=capacity)
    for value in range(pushes):
        buffer.push(value)
    assert len(buffer) <= capacity
    assert buffer.dropped == max(0, pushes - capacity)
    drained = buffer.drain()
    assert drained == sorted(drained)


@given(
    taken=st.floats(0.0, 1.0),
    mispredict=st.floats(0.0, 0.5),
    intensity=st.floats(0.2, 3.0),
)
@settings(max_examples=30, deadline=None)
def test_branch_accounting_is_consistent(taken, mispredict, intensity):
    """Branch taken/not-taken always sum to total branches and misses never exceed them."""
    profile = PhaseProfile(branch_taken_fraction=taken, branch_mispredict_rate=mispredict)
    values = synthesize_semantics(profile, intensity=intensity)
    assert values["branch_taken"] + values["branch_not_taken"] == pytest.approx(values["branches"])
    assert values["branch_misses"] <= values["branches"] + 1e-9
