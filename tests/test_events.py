"""Tests for the event model and catalogs."""

import pytest

from repro.events import (
    EventCatalog,
    EventDomain,
    EventKind,
    EventSpec,
    available_catalogs,
    catalog_for,
    derived_metric_events,
    standard_profiling_events,
)
from repro.events import semantics as sem
from repro.events.catalog import CounterFile
from repro.events.derived import DerivedEvent, DerivedEventSet, ratio, weighted_sum


class TestEventSpec:
    def test_requires_known_semantic(self):
        with pytest.raises(ValueError):
            EventSpec(name="X", semantic="not-a-semantic", domain=EventDomain.CORE)

    def test_requires_nonempty_name(self):
        with pytest.raises(ValueError):
            EventSpec(name="", semantic=sem.CYCLES, domain=EventDomain.CORE)

    def test_rejects_nonpositive_scale(self):
        with pytest.raises(ValueError):
            EventSpec(name="X", semantic=sem.CYCLES, domain=EventDomain.CORE, scale=0.0)

    def test_counter_mask_restricts_placement(self):
        spec = EventSpec(
            name="X", semantic=sem.CYCLES, domain=EventDomain.CORE, counter_mask=frozenset({2})
        )
        assert spec.can_use_counter(2)
        assert not spec.can_use_counter(0)
        assert spec.is_constrained

    def test_fixed_event_cannot_use_programmable_counter(self):
        spec = EventSpec(name="X", semantic=sem.CYCLES, domain=EventDomain.CORE, kind=EventKind.FIXED)
        assert spec.is_fixed
        assert not spec.can_use_counter(0)

    def test_ground_truth_applies_scale(self):
        spec = EventSpec(name="X", semantic=sem.CYCLES, domain=EventDomain.CORE, scale=0.5)
        assert spec.ground_truth({sem.CYCLES: 100.0}) == pytest.approx(50.0)


class TestCounterFile:
    def test_smt_split_halves_programmable_budget(self):
        cf = CounterFile(n_fixed=3, n_programmable=8, smt_split=True)
        assert cf.usable_programmable == 4

    def test_no_split_keeps_budget(self):
        cf = CounterFile(n_fixed=2, n_programmable=4, smt_split=False)
        assert cf.usable_programmable == 4

    def test_rejects_zero_programmable(self):
        with pytest.raises(ValueError):
            CounterFile(n_fixed=1, n_programmable=0)


class TestCatalogs:
    @pytest.fixture(params=["x86", "ppc64"])
    def catalog(self, request):
        return catalog_for(request.param)

    def test_available_catalogs(self):
        assert set(available_catalogs()) == {"x86_64-skylake", "ppc64-power9"}

    def test_catalog_lookup_aliases(self):
        assert catalog_for("x86_64").name == "x86_64-skylake"
        assert catalog_for("power9").name == "ppc64-power9"

    def test_unknown_arch_raises(self):
        with pytest.raises(KeyError):
            catalog_for("sparc")

    def test_catalog_has_enough_events(self, catalog):
        assert len(catalog) >= 50

    def test_catalog_has_fixed_events(self, catalog):
        assert len(catalog.fixed_events) >= 2
        semantics = {spec.semantic for spec in catalog.fixed_events}
        assert sem.CYCLES in semantics
        assert sem.INSTRUCTIONS in semantics

    def test_every_event_has_unique_name(self, catalog):
        names = catalog.names()
        assert len(names) == len(set(names))

    def test_event_for_semantic_roundtrip(self, catalog):
        spec = catalog.event_for_semantic(sem.LLC_MISS)
        assert catalog.semantic_of(spec.name) == sem.LLC_MISS

    def test_unknown_event_raises(self, catalog):
        with pytest.raises(KeyError):
            catalog.get("NOT_AN_EVENT")

    def test_ground_truth_covers_all_events(self, catalog):
        values = {key: 1.0 for key in sem.ALL_SEMANTICS}
        truth = catalog.ground_truth(values)
        assert set(truth) == set(catalog.names())

    def test_derived_metrics_exist(self, catalog):
        assert len(catalog.derived) >= 10
        names = [metric.name for metric in catalog.derived]
        assert "ipc" in names
        assert "dram_bandwidth" in names

    def test_compute_derived_ipc(self, catalog):
        cycles = catalog.event_for_semantic(sem.CYCLES).name
        instructions = catalog.event_for_semantic(sem.INSTRUCTIONS).name
        values = {cycles: 2e6, instructions: 3e6}
        derived = catalog.compute_derived(values)
        assert derived["ipc"] == pytest.approx(1.5)

    def test_events_for_derived_dedupes(self, catalog):
        events = catalog.events_for_derived(["ipc", "l1d_mpki"])
        assert len(events) == len(set(events))

    def test_standard_profiling_events(self, catalog):
        events = standard_profiling_events(catalog)
        assert len(events) >= 35
        assert len(set(events)) == len(events)
        capped = standard_profiling_events(catalog, n_events=10)
        assert len(capped) == 10

    def test_derived_metric_events(self, catalog):
        events = derived_metric_events(catalog, n_metrics=10)
        assert len(events) >= 10


class TestDerivedEvent:
    def test_compute_requires_all_inputs(self):
        metric = DerivedEvent(name="m", inputs=("a", "b"), formula=ratio("a", "b"))
        with pytest.raises(KeyError):
            metric.compute({"a": 1.0})

    def test_ratio_and_weighted_sum(self):
        metric = DerivedEvent(name="m", inputs=("a", "b"), formula=weighted_sum({"a": 2.0, "b": 3.0}))
        assert metric.compute({"a": 1.0, "b": 1.0}) == pytest.approx(5.0)

    def test_duplicate_names_rejected(self):
        metric = DerivedEvent(name="m", inputs=("a",), formula=lambda v: v["a"])
        with pytest.raises(ValueError):
            DerivedEventSet(name="s", metrics=(metric, metric))

    def test_required_events_ordered_unique(self):
        m1 = DerivedEvent(name="m1", inputs=("a", "b"), formula=ratio("a", "b"))
        m2 = DerivedEvent(name="m2", inputs=("b", "c"), formula=ratio("b", "c"))
        metrics = DerivedEventSet(name="s", metrics=(m1, m2))
        assert metrics.required_events() == ("a", "b", "c")
