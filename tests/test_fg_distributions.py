"""Tests for the scalar distributions and multivariate Gaussian algebra."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fg import Gaussian1D, GaussianDensity, StudentT


class TestGaussian1D:
    def test_rejects_nonpositive_variance(self):
        with pytest.raises(ValueError):
            Gaussian1D(mean=0.0, variance=0.0)

    def test_log_pdf_matches_scipy(self):
        from scipy import stats

        g = Gaussian1D(mean=2.0, variance=4.0)
        assert g.log_pdf(1.0) == pytest.approx(stats.norm.logpdf(1.0, 2.0, 2.0))

    def test_multiply_precision_adds(self):
        a = Gaussian1D(0.0, 1.0)
        b = Gaussian1D(2.0, 1.0)
        product = a.multiply(b)
        assert product.mean == pytest.approx(1.0)
        assert product.variance == pytest.approx(0.5)

    def test_divide_inverts_multiply(self):
        a = Gaussian1D(1.0, 2.0)
        b = Gaussian1D(0.5, 4.0)
        assert a.multiply(b).divide(b).mean == pytest.approx(a.mean)

    def test_divide_improper_raises(self):
        with pytest.raises(ValueError):
            Gaussian1D(0.0, 2.0).divide(Gaussian1D(0.0, 1.0))

    def test_interval_contains_mean(self):
        low, high = Gaussian1D(3.0, 1.0).interval(0.9)
        assert low < 3.0 < high

    @given(mean=st.floats(-1e3, 1e3), variance=st.floats(0.01, 1e3))
    @settings(max_examples=30, deadline=None)
    def test_pdf_is_maximal_at_mean(self, mean, variance):
        g = Gaussian1D(mean, variance)
        assert g.log_pdf(mean) >= g.log_pdf(mean + np.sqrt(variance))


class TestStudentT:
    def test_log_pdf_matches_scipy(self):
        from scipy import stats

        t = StudentT(loc=1.0, scale=2.0, df=3.0)
        assert t.log_pdf(0.0) == pytest.approx(stats.t.logpdf(0.0, 3.0, loc=1.0, scale=2.0))

    def test_from_samples_recovers_mean(self):
        rng = np.random.default_rng(0)
        samples = rng.normal(10.0, 1.0, size=200)
        t = StudentT.from_samples(samples)
        assert t.loc == pytest.approx(10.0, abs=0.3)
        assert t.df == pytest.approx(199)

    def test_from_samples_single_sample(self):
        t = StudentT.from_samples(np.array([5.0]))
        assert t.loc == pytest.approx(5.0)
        assert t.scale > 0

    def test_from_samples_empty_raises(self):
        with pytest.raises(ValueError):
            StudentT.from_samples(np.array([]))

    def test_to_gaussian_moment_match(self):
        t = StudentT(loc=0.0, scale=1.0, df=5.0)
        g = t.to_gaussian()
        assert g.mean == pytest.approx(0.0)
        assert g.variance == pytest.approx(5.0 / 3.0)

    def test_low_df_variance_is_finite(self):
        t = StudentT(loc=0.0, scale=1.0, df=1.5)
        assert np.isfinite(t.variance)

    def test_interval_widens_with_confidence(self):
        t = StudentT(loc=0.0, scale=1.0, df=4.0)
        narrow = t.interval(0.5)
        wide = t.interval(0.99)
        assert wide[1] - wide[0] > narrow[1] - narrow[0]


class TestGaussianDensity:
    def test_diagonal_roundtrip(self):
        density = GaussianDensity.diagonal({"a": 1.0, "b": -2.0}, {"a": 4.0, "b": 0.25})
        assert density.mean() == pytest.approx({"a": 1.0, "b": -2.0})
        assert density.variance()["a"] == pytest.approx(4.0)

    def test_from_moments_roundtrip(self):
        mean = np.array([1.0, 2.0])
        cov = np.array([[2.0, 0.3], [0.3, 1.0]])
        density = GaussianDensity.from_moments(["x", "y"], mean, cov)
        back_mean, back_cov = density.moments()
        assert np.allclose(back_mean, mean)
        assert np.allclose(back_cov, cov, atol=1e-8)

    def test_multiply_then_divide_is_identity(self):
        a = GaussianDensity.diagonal({"x": 0.0, "y": 1.0}, {"x": 1.0, "y": 2.0})
        b = GaussianDensity.diagonal({"x": 3.0}, {"x": 5.0})
        roundtrip = a.multiply(b).divide(b)
        assert np.allclose(roundtrip.precision, a.precision)
        assert np.allclose(roundtrip.shift, a.shift)

    def test_multiply_requires_subset(self):
        a = GaussianDensity.diagonal({"x": 0.0}, {"x": 1.0})
        b = GaussianDensity.diagonal({"z": 0.0}, {"z": 1.0})
        with pytest.raises(ValueError):
            a.multiply(b)

    def test_marginal_preserves_moments(self):
        mean = np.array([1.0, 2.0, 3.0])
        cov = np.diag([1.0, 2.0, 3.0])
        density = GaussianDensity.from_moments(["a", "b", "c"], mean, cov)
        marginal = density.marginal(["b"])
        assert marginal.mean()["b"] == pytest.approx(2.0)
        assert marginal.variance()["b"] == pytest.approx(2.0, rel=1e-6)

    def test_uninformative_is_improper(self):
        density = GaussianDensity.uninformative(["a", "b"])
        with pytest.raises(ValueError):
            density.moments(jitter=0.0)

    def test_damped_towards(self):
        a = GaussianDensity.diagonal({"x": 0.0}, {"x": 1.0})
        b = GaussianDensity.diagonal({"x": 2.0}, {"x": 1.0})
        halfway = a.damped_towards(b, 0.5)
        assert halfway.mean()["x"] == pytest.approx(1.0)

    def test_log_density_peaks_at_mean(self):
        density = GaussianDensity.diagonal({"x": 1.0, "y": -1.0}, {"x": 1.0, "y": 1.0})
        at_mean = density.log_density({"x": 1.0, "y": -1.0})
        away = density.log_density({"x": 2.0, "y": 0.0})
        assert at_mean > away

    @given(
        mean_a=st.floats(-10, 10),
        mean_b=st.floats(-10, 10),
        var_a=st.floats(0.1, 10),
        var_b=st.floats(0.1, 10),
    )
    @settings(max_examples=30, deadline=None)
    def test_product_precision_is_sum(self, mean_a, mean_b, var_a, var_b):
        a = GaussianDensity.diagonal({"x": mean_a}, {"x": var_a})
        b = GaussianDensity.diagonal({"x": mean_b}, {"x": var_b})
        product = a.multiply(b)
        assert product.precision[0, 0] == pytest.approx(1 / var_a + 1 / var_b)
