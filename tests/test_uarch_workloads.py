"""Tests for the machine model and the workload suite."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.events import semantics as sem
from repro.invariants import standard_invariants
from repro.uarch import Machine, MachineConfig, PhaseProfile, Phase, WorkloadSpec, synthesize_semantics
from repro.workloads import (
    HIBENCH_WORKLOADS,
    available_workloads,
    get_workload,
    hibench_suite,
    hibench_workload,
    multiplexing_stress_workload,
    steady_workload,
)


class TestPhaseProfile:
    def test_invalid_fraction_rejected(self):
        with pytest.raises(ValueError):
            PhaseProfile(branch_fraction=1.5)

    def test_load_store_fraction_budget(self):
        with pytest.raises(ValueError):
            PhaseProfile(load_fraction=0.7, store_fraction=0.5)

    def test_scaled_profile(self):
        profile = PhaseProfile()
        scaled = profile.scaled(2.0)
        assert scaled.instructions_per_tick == pytest.approx(2 * profile.instructions_per_tick)


class TestWorkloadSpec:
    def test_profile_cycles_through_phases(self):
        spec = WorkloadSpec(
            name="w",
            phases=(
                Phase(PhaseProfile(instructions_per_tick=1e6), 5, "p0"),
                Phase(PhaseProfile(instructions_per_tick=2e6), 5, "p1"),
            ),
        )
        assert spec.total_ticks == 10
        assert spec.profile_at(0).instructions_per_tick == pytest.approx(1e6)
        assert spec.profile_at(7).instructions_per_tick == pytest.approx(2e6)
        assert spec.profile_at(12).instructions_per_tick == pytest.approx(1e6)
        assert spec.phase_index_at(7) == 1

    def test_phase_boundaries(self):
        spec = WorkloadSpec(
            name="w",
            phases=(Phase(PhaseProfile(), 5, "p0"), Phase(PhaseProfile(), 3, "p1")),
        )
        assert spec.phase_boundaries(10) == (0, 5, 8)

    def test_requires_phases(self):
        with pytest.raises(ValueError):
            WorkloadSpec(name="w", phases=())


class TestSynthesis:
    def test_all_semantics_produced(self):
        values = synthesize_semantics(PhaseProfile())
        assert set(values) == set(sem.ALL_SEMANTICS)

    def test_values_non_negative(self):
        values = synthesize_semantics(PhaseProfile(), intensity=0.3)
        assert all(v >= 0 for v in values.values())

    def test_intensity_scales_instructions(self):
        base = synthesize_semantics(PhaseProfile(), intensity=1.0)
        double = synthesize_semantics(PhaseProfile(), intensity=2.0)
        assert double[sem.INSTRUCTIONS] == pytest.approx(2 * base[sem.INSTRUCTIONS])

    def test_invalid_intensity(self):
        with pytest.raises(ValueError):
            synthesize_semantics(PhaseProfile(), intensity=0.0)

    @given(intensity=st.floats(0.2, 4.0), miss=st.floats(0.01, 0.5))
    @settings(max_examples=25, deadline=None)
    def test_invariants_hold_for_any_profile(self, intensity, miss):
        profile = PhaseProfile(l1d_miss_rate=miss, llc_miss_rate=miss)
        values = synthesize_semantics(profile, intensity=intensity)
        assert standard_invariants().violated(values, rtol=1e-9) == ()


class TestMachine:
    def test_trace_length_and_series(self):
        machine = Machine(MachineConfig(), steady_workload(), seed=0)
        trace = machine.run(20)
        assert len(trace) == 20
        cycles = trace.semantic_series(sem.CYCLES)
        assert cycles.shape == (20,)
        assert np.all(cycles > 0)

    def test_different_seeds_differ(self):
        workload = hibench_workload("KMeans")
        a = Machine(MachineConfig(), workload, seed=1).run(10)
        b = Machine(MachineConfig(), workload, seed=2).run(10)
        assert not np.allclose(a.semantic_series(sem.INSTRUCTIONS), b.semantic_series(sem.INSTRUCTIONS))

    def test_same_seed_reproducible(self):
        workload = hibench_workload("KMeans")
        a = Machine(MachineConfig(), workload, seed=3).run(10)
        b = Machine(MachineConfig(), workload, seed=3).run(10)
        assert np.allclose(a.semantic_series(sem.CYCLES), b.semantic_series(sem.CYCLES))

    def test_every_tick_satisfies_invariants(self):
        machine = Machine(MachineConfig(), hibench_workload("Join"), seed=5)
        trace = machine.run(30)
        library = standard_invariants()
        for values in trace.ticks:
            assert library.violated(values, rtol=1e-9) == ()

    def test_window_totals(self):
        machine = Machine(MachineConfig(), steady_workload(), seed=0)
        trace = machine.run(10)
        totals = trace.window_totals(2, 5)
        manual = sum(trace.ticks[t][sem.INSTRUCTIONS] for t in range(2, 5))
        assert totals[sem.INSTRUCTIONS] == pytest.approx(manual)
        with pytest.raises(ValueError):
            trace.window_totals(5, 2)

    def test_run_workload_covers_phases(self):
        workload = multiplexing_stress_workload()
        trace = Machine(MachineConfig(), workload, seed=0).run_workload()
        assert len(trace) == workload.total_ticks

    def test_invalid_tick_count(self):
        with pytest.raises(ValueError):
            Machine(MachineConfig(), steady_workload(), seed=0).run(0)


class TestHiBenchSuite:
    def test_suite_size(self):
        assert len(HIBENCH_WORKLOADS) == 28
        assert len(hibench_suite()) == 28

    def test_category_filter(self):
        ml_only = hibench_suite(categories=("ml",))
        assert all(spec.category == "ml" for spec in ml_only)
        assert len(ml_only) == 13

    def test_workloads_are_distinct(self):
        kmeans = hibench_workload("KMeans")
        sort = hibench_workload("Sort")
        assert (
            kmeans.phases[0].profile.instructions_per_tick
            != sort.phases[0].profile.instructions_per_tick
        )

    def test_workload_is_deterministic(self):
        a = hibench_workload("PageRank")
        b = hibench_workload("PageRank")
        assert a.phases[0].profile == b.phases[0].profile

    def test_unknown_workload_raises(self):
        with pytest.raises(KeyError):
            hibench_workload("NotABenchmark")

    def test_registry(self):
        assert "KMeans" in available_workloads()
        assert get_workload("mux-stress").name == "mux-stress"
        with pytest.raises(KeyError):
            get_workload("missing")
