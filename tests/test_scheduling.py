"""Tests for round-robin and overlap-aware scheduling."""

import pytest

from repro.events import catalog_for
from repro.events.profiles import standard_profiling_events
from repro.fg.markov import blankets_overlap
from repro.pmu import ValidityChecker
from repro.scheduling import (
    BayesPerfScheduler,
    Schedule,
    build_event_adjacency,
    build_structure_graph,
    overlap_schedule,
    round_robin_schedule,
)
from repro.pmu.configuration import CounterConfiguration
from repro.scheduling.overlap import condense_common_step, remove_redundant_steps
from repro.scheduling.structure import connectivity_order, instantiate_relations


@pytest.fixture(params=["x86", "ppc64"])
def catalog(request):
    return catalog_for(request.param)


@pytest.fixture
def events(catalog):
    return standard_profiling_events(catalog, n_events=24)


class TestSchedule:
    def test_config_rotation(self):
        configs = (
            CounterConfiguration(events=("A", "B")),
            CounterConfiguration(events=("C", "D")),
        )
        schedule = Schedule(configurations=configs, quantum_ticks=2)
        assert schedule.rotation_ticks == 4
        assert schedule.config_at(0).events == ("A", "B")
        assert schedule.config_at(2).events == ("C", "D")
        assert schedule.config_at(4).events == ("A", "B")
        assert schedule.enabled_fraction("A") == pytest.approx(0.5)

    def test_overlap_accounting(self):
        configs = (
            CounterConfiguration(events=("A", "B")),
            CounterConfiguration(events=("B", "C")),
            CounterConfiguration(events=("C", "A")),
        )
        schedule = Schedule(configurations=configs)
        assert schedule.min_overlap() == 1
        assert schedule.consecutive_overlaps() == (("B",), ("C",), ("A",))

    def test_requires_configurations(self):
        with pytest.raises(ValueError):
            Schedule(configurations=())


class TestRoundRobin:
    def test_covers_all_events(self, catalog, events):
        schedule = round_robin_schedule(catalog, events)
        checker = ValidityChecker(catalog)
        _, programmable = checker.split_events(events)
        assert set(schedule.events) == set(programmable)

    def test_configurations_are_valid(self, catalog, events):
        schedule = round_robin_schedule(catalog, events)
        checker = ValidityChecker(catalog)
        for configuration in schedule.configurations:
            assert checker.is_valid(configuration)
            assert len(configuration) <= checker.n_counters

    def test_needs_programmable_events(self, catalog):
        fixed = [spec.name for spec in catalog.fixed_events]
        with pytest.raises(ValueError):
            round_robin_schedule(catalog, fixed)


class TestStructure:
    def test_adjacency_connects_related_events(self, catalog):
        relations = instantiate_relations(catalog)
        adjacency = build_event_adjacency(relations)
        llc_access = catalog.event_for_semantic("llc_access").name
        l2_miss = catalog.event_for_semantic("l2_miss").name
        assert adjacency.has_edge(llc_access, l2_miss)

    def test_connectivity_order_keeps_all_events(self, catalog, events):
        relations = instantiate_relations(catalog)
        adjacency = build_event_adjacency(relations)
        ordered = connectivity_order(adjacency, events)
        assert sorted(ordered) == sorted(events)

    def test_structure_graph_blankets(self, catalog):
        relations = instantiate_relations(catalog)
        graph = build_structure_graph(relations)
        llc_miss = catalog.event_for_semantic("llc_miss").name
        assert len(graph.neighbors(llc_miss)) >= 2


class TestOverlapScheduler:
    def test_covers_all_events(self, catalog, events):
        schedule = overlap_schedule(catalog, events)
        checker = ValidityChecker(catalog)
        _, programmable = checker.split_events(events)
        assert set(programmable) <= set(schedule.events)

    def test_configurations_valid(self, catalog, events):
        schedule = overlap_schedule(catalog, events)
        checker = ValidityChecker(catalog)
        for configuration in schedule.configurations:
            assert checker.is_valid(configuration)

    def test_consecutive_slices_statistically_connected(self, catalog, events):
        scheduler = BayesPerfScheduler(catalog)
        schedule = scheduler.build(events)
        structure = scheduler.structure_graph(schedule.events)
        pairs = list(zip(schedule.configurations, schedule.configurations[1:]))
        for current, following in pairs:
            connected = bool(current.overlap(following)) or blankets_overlap(
                structure, current.events, following.events
            )
            assert connected

    def test_more_overlap_than_round_robin(self, catalog, events):
        rr = round_robin_schedule(catalog, events)
        overlap = overlap_schedule(catalog, events)
        assert overlap.min_overlap() >= rr.min_overlap()

    def test_small_event_set_single_configuration(self, catalog):
        events = [spec.name for spec in catalog.programmable_events[:3]]
        schedule = overlap_schedule(catalog, events)
        assert len(schedule) == 1

    def test_remove_redundant_steps(self, catalog):
        scheduler = BayesPerfScheduler(catalog)
        events = standard_profiling_events(catalog, n_events=16)
        structure = scheduler.structure_graph(events)
        config = CounterConfiguration(events=(events[3],))
        pruned = remove_redundant_steps([config, config, config], structure)
        assert len(pruned) == 1

    def test_condense_common_step(self, catalog):
        scheduler = BayesPerfScheduler(catalog)
        structure = scheduler.structure_graph(standard_profiling_events(catalog))
        llc_hit = catalog.event_for_semantic("llc_hit").name
        llc_miss = catalog.event_for_semantic("llc_miss").name
        condensed = condense_common_step([llc_hit, llc_miss], structure)
        assert len(condensed) == 1
