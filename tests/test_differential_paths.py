"""Differential test harness: every fast path against its reference twin.

The repository's contract (README, "Differential testing") is that each
compiled/vectorized path has an object-walking reference twin and a test
pinning the pair together:

* analytic EP:   ``CompiledEPKernel``  <->  ``ExpectationPropagation``
* moment MCMC:   ``BatchedMCMC``       <->  ``ReferenceMCMC``
* binding:       ``CompiledBinder``    <->  ``CompiledGraph.bind`` (objects)

On randomized graphs the three posterior paths — reference EP, compiled EP,
batched MCMC — must agree within 1e-6, and the array-native binding/summary
code paths must be bit-identical between B=1 and B=N.
"""

from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.engine import BayesPerfEngine
from repro.events.profiles import standard_profiling_events
from repro.events.registry import catalog_for
from repro.fg import (
    BatchedMCMC,
    BatchedSiteMCMC,
    ChainTrace,
    CompiledEPKernel,
    EPResult,
    ExpectationPropagation,
    FactorGraph,
    GaussianDensity,
    GaussianObservation,
    GaussianPriorFactor,
    LinearConstraintFactor,
    ReferenceMCMC,
    ReferenceSiteMCMC,
    StudentT,
    StudentTObservation,
    StudentTTail,
    compile_factor_graph,
    site_factor_lists,
    student_t_moment_variance,
)
from repro.fg.ep import EPSite
from repro.fg.mcmc import RandomWalkMetropolis
from repro.fg.megabatch import KernelExecSpec
from repro.fleet.service import FleetService
from repro.fleet.tracefile import read_trace
from repro.pmu.sampling import MultiplexedSampler
from repro.scheduling.cache import cached_schedule
from repro.uarch.machine import Machine, MachineConfig
from repro.workloads.registry import get_workload

TOLERANCE = 1e-6


def _gap(a, b):
    return abs(a - b) / max(abs(a), abs(b), 1e-12)


def _max_moment_gap(mean_a, var_a, mean_b, var_b):
    gap = 0.0
    for name in mean_a:
        gap = max(gap, _gap(mean_a[name], mean_b[name]), _gap(var_a[name], var_b[name]))
    return gap


def _solve_three_ways(graph, sites, prior, *, n_samples=50, burn_in=30, seed=7):
    """(reference EP, compiled EP, batched MCMC) posteriors for one graph.

    Undamped EP converges to the exact factor-product fixed point, which is
    also the batched MCMC estimator's analytic baseline; on purely Gaussian
    graphs its coupled chains cannot drift from the shadow, so all three
    paths must coincide to floating-point accuracy.
    """
    reference = ExpectationPropagation(graph, sites, prior, damping=1.0).run()
    structure = compile_factor_graph(graph, sites, prior.variables)
    assert structure is not None
    kernel = CompiledEPKernel(structure, damping=1.0)
    binding = structure.bind(site_factor_lists(graph, sites))
    compiled = kernel.run([binding], [prior])
    stacked = [(p[None, ...], s[None, ...]) for p, s in binding]
    sampler = BatchedMCMC(kernel, n_samples=n_samples, burn_in=burn_in)
    sampled = sampler.run(
        stacked, prior.precision[None, ...], prior.shift[None, ...], seeds=[seed]
    )
    return reference, compiled, sampled


@st.composite
def _random_gaussian_problem(draw):
    """Randomized all-Gaussian graphs: observations + constraints + priors."""
    n = draw(st.integers(min_value=2, max_value=6))
    variables = [f"v{i}" for i in range(n)]
    value = st.floats(min_value=-4.0, max_value=4.0)
    spread = st.floats(min_value=0.05, max_value=8.0)
    prior = GaussianDensity.diagonal(
        {v: draw(value) for v in variables}, {v: draw(spread) for v in variables}
    )
    graph = FactorGraph(variables=variables)
    n_observed = draw(st.integers(min_value=1, max_value=n))
    observation_names = []
    for v in variables[:n_observed]:
        name = f"obs_{v}"
        graph.add_factor(GaussianObservation(name, v, observed=draw(value), sigma=draw(spread)))
        observation_names.append(name)
    if draw(st.booleans()):
        name = f"prior_{variables[-1]}"
        graph.add_factor(
            GaussianPriorFactor(name, {variables[-1]: draw(value)}, {variables[-1]: draw(spread)})
        )
        observation_names.append(name)
    sites = [EPSite("observations", tuple(observation_names))]
    n_constraints = draw(st.integers(min_value=0, max_value=2))
    constraint_names = []
    for index in range(n_constraints):
        size = draw(st.integers(min_value=2, max_value=n))
        coefficient = st.floats(min_value=0.25, max_value=2.0)
        sign = st.sampled_from([-1.0, 1.0])
        coefficients = {v: draw(sign) * draw(coefficient) for v in variables[:size]}
        name = f"rel_{index}"
        graph.add_factor(LinearConstraintFactor(name, coefficients, sigma=draw(spread)))
        constraint_names.append(name)
    if constraint_names:
        sites.append(EPSite("constraints", tuple(constraint_names)))
    return graph, sites, prior


@st.composite
def _random_student_t_problem(draw):
    """Randomized graphs whose observations are genuinely non-Gaussian."""
    n = draw(st.integers(min_value=2, max_value=5))
    variables = [f"v{i}" for i in range(n)]
    value = st.floats(min_value=-3.0, max_value=3.0)
    spread = st.floats(min_value=0.1, max_value=4.0)
    prior = GaussianDensity.diagonal(
        {v: draw(value) for v in variables}, {v: draw(spread) for v in variables}
    )
    graph = FactorGraph(variables=variables)
    observed = []
    for v in variables[: draw(st.integers(min_value=1, max_value=n))]:
        distribution = StudentT(
            loc=draw(value),
            scale=draw(st.floats(min_value=0.1, max_value=2.0)),
            df=draw(st.floats(min_value=1.5, max_value=9.0)),
        )
        graph.add_factor(StudentTObservation(f"obs_{v}", v, distribution))
        observed.append(v)
    sites = [EPSite("observations", tuple(f"obs_{v}" for v in observed))]
    coefficients = {v: 1.0 for v in variables[:2]}
    graph.add_factor(LinearConstraintFactor("rel_0", coefficients, sigma=draw(spread)))
    sites.append(EPSite("constraints", ("rel_0",)))
    return graph, sites, prior, observed


class TestThreeWayPosteriorAgreement:
    """Reference EP vs compiled EP vs batched MCMC, randomized graphs."""

    @given(problem=_random_gaussian_problem())
    @settings(max_examples=25, deadline=None)
    def test_all_three_paths_agree_within_tolerance(self, problem):
        graph, sites, prior = problem
        reference, compiled, sampled = _solve_three_ways(graph, sites, prior)
        ref_mean, ref_var = reference.posterior.mean(), reference.posterior.variance()
        com_mean, com_var = compiled.mean_dict(0), compiled.variance_dict(0)
        mc_mean, mc_var = sampled.mean_dict(0), sampled.variance_dict(0)
        assert _max_moment_gap(ref_mean, ref_var, com_mean, com_var) < TOLERANCE
        assert _max_moment_gap(com_mean, com_var, mc_mean, mc_var) < TOLERANCE
        assert _max_moment_gap(ref_mean, ref_var, mc_mean, mc_var) < TOLERANCE

    def test_mcmc_chains_actually_run(self):
        """The Gaussian-case exactness is a coupling property, not a skip."""
        graph = FactorGraph(variables=["a", "b"])
        graph.add_factor(GaussianObservation("obs_a", "a", observed=2.0, sigma=0.5))
        graph.add_factor(LinearConstraintFactor("sum", {"a": 1.0, "b": -1.0}, sigma=0.1))
        sites = [EPSite("obs", ("obs_a",)), EPSite("rel", ("sum",))]
        prior = GaussianDensity.diagonal({"a": 0.0, "b": 0.0}, {"a": 9.0, "b": 9.0})
        _, _, sampled = _solve_three_ways(graph, sites, prior, n_samples=200, burn_in=100)
        assert 0.05 < float(sampled.acceptance_rates[0]) < 0.95
        assert np.array_equal(sampled.means, sampled.baseline_means)


class TestBatchedMCMCAgainstReferenceTwin:
    """The array-native sampler must reproduce the object-based twin."""

    @given(problem=_random_student_t_problem(), seed=st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=10, deadline=None)
    def test_student_t_twin_agreement(self, problem, seed):
        graph, sites, prior, observed = problem
        structure = compile_factor_graph(graph, sites, prior.variables)
        kernel = CompiledEPKernel(structure, damping=1.0)
        binding = structure.bind(site_factor_lists(graph, sites))
        stacked = [(p[None, ...], s[None, ...]) for p, s in binding]
        slot_of = {v: i for i, v in enumerate(prior.variables)}
        distributions = [graph.factor(f"obs_{v}").distribution for v in observed]
        tail = StudentTTail(
            slots=np.array([slot_of[v] for v in observed], dtype=np.intp),
            loc=np.array([[d.loc for d in distributions]]),
            scale=np.array([[d.scale for d in distributions]]),
            df=np.array([[d.df for d in distributions]]),
            variance=np.array([[d.variance for d in distributions]]),
        )
        sampler = BatchedMCMC(kernel, n_samples=60, burn_in=40)
        fast = sampler.run(
            stacked,
            prior.precision[None, ...],
            prior.shift[None, ...],
            seeds=[seed],
            extra_log_density=tail,
        )
        factors = [factor for group in site_factor_lists(graph, sites) for factor in group]
        twin = ReferenceMCMC(factors, prior, n_samples=60, burn_in=40)
        moments = twin.run(rng=np.random.default_rng(seed))
        for i, name in enumerate(prior.variables):
            assert _gap(fast.means[0, i], moments.means[i]) < TOLERANCE
            assert _gap(fast.variances[0, i], moments.variances[i]) < TOLERANCE

    def test_student_t_correction_is_engaged(self):
        """Non-Gaussian graphs must produce a non-zero sampled correction."""
        graph = FactorGraph(variables=["a"])
        graph.add_factor(
            StudentTObservation("obs_a", "a", StudentT(loc=1.0, scale=0.5, df=2.5))
        )
        sites = [EPSite("obs", ("obs_a",))]
        prior = GaussianDensity.diagonal({"a": 0.0}, {"a": 4.0})
        structure = compile_factor_graph(graph, sites, prior.variables)
        kernel = CompiledEPKernel(structure)
        binding = structure.bind(site_factor_lists(graph, sites))
        tail = StudentTTail(
            slots=np.array([0], dtype=np.intp),
            loc=np.array([[1.0]]),
            scale=np.array([[0.5]]),
            df=np.array([[2.5]]),
            variance=np.array([[float(student_t_moment_variance(0.5, 2.5))]]),
        )
        sampler = BatchedMCMC(kernel, n_samples=300, burn_in=150)
        result = sampler.run(
            [(p[None, ...], s[None, ...]) for p, s in binding],
            prior.precision[None, ...],
            prior.shift[None, ...],
            seeds=[11],
            extra_log_density=tail,
        )
        assert not np.array_equal(result.variances, result.baseline_variances)
        assert np.all(np.isfinite(result.means)) and np.all(result.variances > 0)


class TestBatchBitIdentity:
    """B=1 vs B=N bit-identity of the new binding/summary/sampling paths."""

    @pytest.fixture(scope="class")
    def engine_and_records(self):
        catalog = catalog_for("x86")
        events = standard_profiling_events(catalog, n_events=16)
        schedule = cached_schedule(catalog, events, kind="overlap")
        trace = Machine(MachineConfig(), get_workload("KMeans"), seed=3).run(8)
        sampled = MultiplexedSampler(catalog, schedule, seed=4).sample(trace)
        return catalog, events, sampled

    def test_binder_blocks_bit_identical_across_batch_sizes(self, engine_and_records):
        catalog, events, sampled = engine_and_records
        engine = BayesPerfEngine(catalog, events)
        engine.reset()
        base = engine._prepare_slice(sampled.records[0])
        kernel, binder = engine._compiled_kernel(base)
        group = [base] * 5
        batched = binder.bind_batch(
            np.stack([p.obs_mean for p in group]),
            np.stack([p.obs_variance for p in group]),
            np.stack([p.scales_vec for p in group]),
        )
        single = binder.bind_batch(
            base.obs_mean[None], base.obs_variance[None], base.scales_vec[None]
        )
        for (bp, bs), (sp, ss) in zip(batched, single):
            for b in range(5):
                assert np.array_equal(bp[b], sp[0])
                assert np.array_equal(bs[b], ss[0])

    def test_array_binding_matches_object_binding(self, engine_and_records):
        """CompiledBinder (arrays) vs CompiledGraph.bind (factor objects)."""
        catalog, events, sampled = engine_and_records
        engine = BayesPerfEngine(catalog, events)
        for record in sampled.records[:4]:
            engine.reset()
            prepared = engine._prepare_slice(record)
            kernel, binder = engine._compiled_kernel(prepared)
            arrays = binder.bind_batch(
                prepared.obs_mean[None],
                prepared.obs_variance[None],
                prepared.scales_vec[None],
            )
            observation_factors, constraint_groups = engine._build_factors(
                prepared.summaries
            )
            site_lists = engine._site_factor_lists(observation_factors, constraint_groups)
            objects = kernel.structure.bind([factors for _, factors in site_lists])
            for (ap, ash), (op, osh) in zip(arrays, objects):
                np.testing.assert_allclose(ap[0], op, rtol=1e-12, atol=1e-12)
                np.testing.assert_allclose(ash[0], osh, rtol=1e-12, atol=1e-12)

    def test_batched_mcmc_engine_batch_equals_looped(self, engine_and_records):
        catalog, events, sampled = engine_and_records
        engine = BayesPerfEngine(
            catalog, events, moment_estimator="batched-mcmc",
            mcmc_samples=30, mcmc_burn_in=20,
        )
        hosts, depth = 4, 2
        states = [None] * hosts
        batched = [[] for _ in range(hosts)]
        for slot in range(depth):
            items = [(states[h], sampled.records[slot]) for h in range(hosts)]
            for h, (report, state) in enumerate(engine.process_batch(items)):
                states[h] = state
                batched[h].append(report)
        for h in range(hosts):
            state = None
            for slot in range(depth):
                engine.restore(state) if state is not None else engine.reset()
                report = engine.process_record(sampled.records[slot])
                state = engine.snapshot()
                assert report.means() == batched[h][slot].means()
                assert report.stds() == batched[h][slot].stds()


class TestSiteMCMCTwin:
    """Batched per-site tilted MCMC against its object-walking twin."""

    def _student_t_problem(self):
        graph = FactorGraph(variables=["a", "b"])
        d1 = StudentT(loc=1.2, scale=0.4, df=3.0)
        d2 = StudentT(loc=-0.5, scale=0.7, df=2.2)
        graph.add_factor(StudentTObservation("obs_a", "a", d1))
        graph.add_factor(StudentTObservation("obs_b", "b", d2))
        graph.add_factor(LinearConstraintFactor("rel", {"a": 1.0, "b": 1.0}, sigma=0.3))
        sites = [EPSite("obs", ("obs_a", "obs_b")), EPSite("rel", ("rel",))]
        prior = GaussianDensity.diagonal({"a": 0.0, "b": 0.0}, {"a": 4.0, "b": 4.0})
        tail = StudentTTail(
            slots=np.array([0, 1], dtype=np.intp),
            loc=np.array([[d1.loc, d2.loc]]),
            scale=np.array([[d1.scale, d2.scale]]),
            df=np.array([[d1.df, d2.df]]),
            variance=np.array([[d1.variance, d2.variance]]),
        )
        return graph, sites, prior, tail

    def _batched(self, graph, sites, prior, tail, seed, *, adapt=True, recorder=None):
        structure = compile_factor_graph(graph, sites, prior.variables)
        kernel = CompiledEPKernel(structure, damping=1.0, max_iterations=4)
        binding = structure.bind(site_factor_lists(graph, sites))
        stacked = [(p[None, ...], s[None, ...]) for p, s in binding]
        sampler = BatchedSiteMCMC(
            kernel, n_samples=60, burn_in=60, adapt=adapt, recorder=recorder
        )
        return sampler.run(
            stacked,
            prior.precision[None, ...],
            prior.shift[None, ...],
            seeds=[seed],
            site_tails={0: tail},
        )

    def _twin(self, graph, sites, prior, *, adapt=True, recorder=None):
        site_lists = [
            (site.name, [graph.factor(name) for name in site.factor_names])
            for site in sites
        ]
        return ReferenceSiteMCMC(
            site_lists,
            prior,
            n_samples=60,
            burn_in=60,
            adapt=adapt,
            damping=1.0,
            max_iterations=4,
        )

    @given(seed=st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=10, deadline=None)
    def test_student_t_twin_agreement(self, seed):
        graph, sites, prior, tail = self._student_t_problem()
        fast = self._batched(graph, sites, prior, tail, seed)
        moments = self._twin(graph, sites, prior).run(rng=np.random.default_rng(seed))
        for i in range(len(prior.variables)):
            assert _gap(fast.means[0, i], moments.means[i]) < TOLERANCE
            assert _gap(fast.variances[0, i], moments.variances[i]) < TOLERANCE
        assert int(fast.iterations[0]) == moments.iterations
        assert bool(fast.converged[0]) == moments.converged

    def test_gaussian_sites_solved_exactly(self):
        """Zero sampled correction => the analytic kernel's posterior, exactly."""
        graph = FactorGraph(variables=["a", "b", "c"])
        graph.add_factor(GaussianObservation("obs_a", "a", observed=2.0, sigma=0.5))
        graph.add_factor(GaussianObservation("obs_b", "b", observed=1.0, sigma=0.8))
        graph.add_factor(
            LinearConstraintFactor("sum", {"a": 1.0, "b": 1.0, "c": -1.0}, sigma=0.1)
        )
        sites = [EPSite("obs", ("obs_a", "obs_b")), EPSite("rel", ("sum",))]
        prior = GaussianDensity.diagonal(
            {"a": 0.0, "b": 0.0, "c": 0.0}, {"a": 9.0, "b": 9.0, "c": 9.0}
        )
        structure = compile_factor_graph(graph, sites, prior.variables)
        kernel = CompiledEPKernel(structure, damping=1.0, max_iterations=6)
        binding = structure.bind(site_factor_lists(graph, sites))
        stacked = [(p[None, ...], s[None, ...]) for p, s in binding]
        sampler = BatchedSiteMCMC(kernel, n_samples=40, burn_in=30)
        sampled = sampler.run(
            stacked, prior.precision[None, ...], prior.shift[None, ...], seeds=[7]
        )
        analytic = kernel.run([binding], [prior])
        assert np.array_equal(sampled.means, analytic.means)
        assert np.array_equal(sampled.variances, analytic.variances)

    def test_adaptation_changes_numerics_and_twin_follows(self):
        graph, sites, prior, tail = self._student_t_problem()
        adapted = self._batched(graph, sites, prior, tail, 11, adapt=True)
        fixed = self._batched(graph, sites, prior, tail, 11, adapt=False)
        assert not np.array_equal(adapted.means, fixed.means)
        twin_fixed = self._twin(graph, sites, prior, adapt=False).run(
            rng=np.random.default_rng(11)
        )
        for i in range(len(prior.variables)):
            assert _gap(fixed.means[0, i], twin_fixed.means[i]) < TOLERANCE

    def test_chain_trace_recorded_on_both_paths(self):
        """Both twins capture the same measured site-visit schedule."""
        graph, sites, prior, tail = self._student_t_problem()
        fast_trace, twin_trace = ChainTrace(), ChainTrace()
        self._batched(graph, sites, prior, tail, 3, recorder=fast_trace)
        twin = self._twin(graph, sites, prior)
        twin.recorder = twin_trace
        twin.run(rng=np.random.default_rng(3))
        assert fast_trace.n_visits == twin_trace.n_visits > 0
        for fast, slow in zip(fast_trace.visits, twin_trace.visits):
            assert (fast.site, fast.iteration, fast.width, fast.n_factors) == (
                slow.site,
                slow.iteration,
                slow.width,
                slow.n_factors,
            )
            assert fast.n_steps == slow.n_steps == 120
            assert fast.accepted == slow.accepted
            # The per-window burn-in acceptance trajectory is coupled too
            # (burn_in=60 spans one 50-step adaptation window).
            assert fast.windows == slow.windows
            assert len(fast.windows) == 1

    def test_engine_batch_equals_looped_site_mcmc(self):
        """B=1 == B=N bit-identity for the per-site sampler inside the engine."""
        catalog = catalog_for("x86")
        events = standard_profiling_events(catalog, n_events=16)
        schedule = cached_schedule(catalog, events, kind="overlap")
        trace = Machine(MachineConfig(), get_workload("KMeans"), seed=3).run(4)
        sampled = MultiplexedSampler(catalog, schedule, seed=4).sample(trace)
        engine = BayesPerfEngine(
            catalog, events, moment_estimator="mcmc",
            mcmc_samples=25, mcmc_burn_in=15, ep_max_iterations=2,
        )
        hosts, depth = 3, 2
        states = [None] * hosts
        batched = [[] for _ in range(hosts)]
        for slot in range(depth):
            items = [(states[h], sampled.records[slot]) for h in range(hosts)]
            for h, (report, state) in enumerate(engine.process_batch(items)):
                states[h] = state
                batched[h].append(report)
        for h in range(hosts):
            state = None
            for slot in range(depth):
                engine.restore(state) if state is not None else engine.reset()
                report = engine.process_record(sampled.records[slot])
                state = engine.snapshot()
                assert report.means() == batched[h][slot].means()
                assert report.stds() == batched[h][slot].stds()


class TestEngineDifferential:
    """Engine-level: each estimator's fast path against its reference twin."""

    @pytest.fixture(scope="class")
    def workload(self):
        catalog = catalog_for("x86")
        events = standard_profiling_events(catalog, n_events=16)
        schedule = cached_schedule(catalog, events, kind="overlap")
        trace = Machine(MachineConfig(), get_workload("KMeans"), seed=5).run(6)
        return catalog, events, MultiplexedSampler(catalog, schedule, seed=6).sample(trace)

    def _max_trace_gap(self, a, b):
        gap = 0.0
        for tick in range(len(a)):
            want, got = a.at(tick), b.at(tick)
            for event in want:
                gap = max(gap, _gap(got[event], want[event]))
        return gap

    def test_batched_mcmc_fast_path_matches_object_twin(self, workload):
        catalog, events, sampled = workload
        kwargs = dict(
            moment_estimator="batched-mcmc", mcmc_samples=40, mcmc_burn_in=30
        )
        fast = BayesPerfEngine(catalog, events, **kwargs).correct(sampled)
        twin = BayesPerfEngine(
            catalog, events, use_compiled_kernel=False, **kwargs
        ).correct(sampled)
        assert self._max_trace_gap(fast, twin) < TOLERANCE

    def test_site_mcmc_fast_path_matches_object_twin(self, workload):
        catalog, events, sampled = workload
        kwargs = dict(
            moment_estimator="mcmc", mcmc_samples=30, mcmc_burn_in=20,
            ep_max_iterations=2,
        )
        fast = BayesPerfEngine(catalog, events, **kwargs).correct(sampled)
        twin = BayesPerfEngine(
            catalog, events, use_compiled_kernel=False, **kwargs
        ).correct(sampled)
        assert self._max_trace_gap(fast, twin) < TOLERANCE

    def test_site_mcmc_tracks_analytic_on_gaussian_model(self, workload):
        """With exact Gaussian observations the per-site chains cannot drift."""
        catalog, events, sampled = workload
        analytic = BayesPerfEngine(
            catalog, events, observation_model="gaussian", ep_max_iterations=2,
        ).correct(sampled)
        sampled_estimates = BayesPerfEngine(
            catalog, events, observation_model="gaussian",
            moment_estimator="mcmc", mcmc_samples=30, mcmc_burn_in=20,
            ep_max_iterations=2,
        ).correct(sampled)
        assert self._max_trace_gap(analytic, sampled_estimates) < TOLERANCE

    def test_batched_mcmc_tracks_analytic_on_gaussian_model(self, workload):
        """With exact Gaussian observations the sampler cannot drift."""
        catalog, events, sampled = workload
        analytic = BayesPerfEngine(
            catalog, events, observation_model="gaussian"
        ).correct(sampled)
        sampled_estimates = BayesPerfEngine(
            catalog, events, observation_model="gaussian",
            moment_estimator="batched-mcmc", mcmc_samples=40, mcmc_burn_in=30,
        ).correct(sampled)
        assert self._max_trace_gap(analytic, sampled_estimates) < TOLERANCE

    def test_unknown_estimator_rejected(self, workload):
        catalog, events, _ = workload
        with pytest.raises(ValueError, match="moment estimator"):
            BayesPerfEngine(catalog, events, moment_estimator="turbo")

    def test_empty_sample_array_fails_loudly(self, workload):
        """Zero sub-samples for a measured event must raise, not emit NaNs."""
        catalog, events, sampled = workload
        engine = BayesPerfEngine(catalog, events)
        record = sampled.records[0]
        broken = type(record)(
            tick=record.tick,
            configuration=record.configuration,
            samples={**record.samples, next(iter(record.samples)): np.empty(0)},
        )
        with pytest.raises(ValueError, match="no samples"):
            engine.process_record(broken)


class TestReferenceMCMCSeedHandling:
    """Repeated runs with an explicit rng must be reproducible."""

    def _twin(self):
        prior = GaussianDensity.diagonal({"a": 0.5, "b": -1.0}, {"a": 4.0, "b": 2.0})
        factors = [
            StudentTObservation("obs_a", "a", StudentT(loc=1.0, scale=0.4, df=3.0)),
            LinearConstraintFactor("rel", {"a": 1.0, "b": 1.0}, sigma=0.3),
        ]
        return ReferenceMCMC(factors, prior, n_samples=50, burn_in=25)

    def test_explicit_rng_is_reproducible_across_runs(self):
        twin = self._twin()
        first = twin.run(rng=np.random.default_rng(42))
        second = twin.run(rng=np.random.default_rng(42))
        assert np.array_equal(first.means, second.means)
        assert np.array_equal(first.variances, second.variances)
        assert first.acceptance_rate == second.acceptance_rate

    def test_constructor_seed_is_reproducible_without_rng(self):
        twin = self._twin()
        assert np.array_equal(twin.run().means, twin.run().means)

    def test_different_seeds_differ(self):
        twin = self._twin()
        first = twin.run(rng=np.random.default_rng(1))
        second = twin.run(rng=np.random.default_rng(2))
        assert not np.array_equal(first.means, second.means)

    def test_legacy_sampler_continues_its_chain(self):
        """The historical sampler mutates state across runs — the behaviour
        ReferenceMCMC.run deliberately does not share."""
        sampler = RandomWalkMetropolis(
            lambda values: -0.5 * values["x"] ** 2,
            ["x"],
            {"x": 0.0},
            rng=np.random.default_rng(0),
        )
        first = sampler.run(20, burn_in=10)
        second = sampler.run(20, burn_in=10)
        assert not np.array_equal(first.samples, second.samples)

    def test_rejects_non_anchor_free_factors(self):
        class Anchored(GaussianObservation):
            @property
            def anchor_free(self):
                return False

        prior = GaussianDensity.diagonal({"a": 0.0}, {"a": 1.0})
        with pytest.raises(ValueError, match="anchor-free"):
            ReferenceMCMC([Anchored("obs", "a", 0.0, 1.0)], prior)


#: Committed golden traces.  The homogeneous one (a single-host session
#: recording, pinned in ``test_fleet.py``) replays here under the mega-batch
#: engine; the heterogeneous one is a 32-host mixed-signature fleet run log
#: (version-3 host-keyed estimates) whose generation recipe is re-executed
#: below and compared host-by-host.
GOLDEN_TRACE = Path(__file__).parent / "fixtures" / "golden_fleet_trace.jsonl"
GOLDEN_HETERO_TRACE = Path(__file__).parent / "fixtures" / "golden_hetero_trace.jsonl"


class TestGoldenHeteroFleet:
    """Replay pin for the committed heterogeneous 32-host fleet run log.

    Host ``h`` monitors a seeded random subset (4-12 events) of the
    12-event x86 profiling union, phase-shifted ``h mod R`` into its
    schedule rotation, so one fleet round spans ~37 distinct measured-event
    signatures.  The fixture stores every host's per-tick estimates from
    the default (per-signature batched) engine; re-running the recipe must
    reproduce them, and the mega-batched / thread-partitioned paths must
    match the default path **exactly** on the same fleet.

    Comparison against the committed file uses the same 1e-9 relative
    tolerance as the homogeneous golden pin (exact float equality would be
    BLAS/CPU-build dependent across CI runners); within-run cross-path
    comparisons stay exact.
    """

    N_HOSTS = 32
    TICKS = 2
    SEED_BASE = 2000

    @pytest.fixture(scope="class")
    def fleet(self):
        catalog = catalog_for("x86")
        union = standard_profiling_events(catalog, n_events=12)
        spec = get_workload("steady")
        hosts = []
        for host in range(self.N_HOSTS):
            rng = np.random.default_rng(self.SEED_BASE + host)
            size = int(rng.integers(4, 13))
            subset = tuple(
                union[i]
                for i in sorted(rng.choice(len(union), size=size, replace=False))
            )
            schedule = cached_schedule(catalog, subset)
            offset = host % len(schedule.configurations)
            trace = Machine(MachineConfig(), spec, seed=host).run(offset + self.TICKS)
            sampled = MultiplexedSampler(
                catalog, schedule, seed=host + 1, samples_per_tick=4
            )
            hosts.append(sampled.sample(trace).records[offset : offset + self.TICKS])
        return catalog, union, hosts

    def _run_fleet(self, catalog, union, hosts, **engine_kwargs):
        """One fleet round per tick through ``process_batch`` (the recipe)."""
        engine = BayesPerfEngine(catalog, union, **engine_kwargs)
        states = [None] * len(hosts)
        outputs = [[] for _ in hosts]
        for tick in range(self.TICKS):
            items = [(states[h], records[tick]) for h, records in enumerate(hosts)]
            for h, (report, state) in enumerate(engine.process_batch(items)):
                states[h] = state
                outputs[h].append((report.means(), report.stds()))
        return outputs

    def test_fixture_is_a_mixed_signature_fleet(self, fleet):
        """The fixture covers what it claims: 32 hosts, many signatures."""
        _, _, hosts = fleet
        golden = read_trace(GOLDEN_HETERO_TRACE)
        assert len(golden.host_estimates) == self.N_HOSTS
        assert all(len(t) == self.TICKS for t in golden.host_estimates.values())
        signatures = {
            tuple(sorted(record.samples)) for records in hosts for record in records
        }
        assert len(signatures) == golden.metadata["distinct_signatures"] > 30

    def test_replay_reproduces_committed_estimates(self, fleet):
        """Re-running the recorded recipe reproduces every host's estimates."""
        catalog, union, hosts = fleet
        golden = read_trace(GOLDEN_HETERO_TRACE)
        outputs = self._run_fleet(catalog, union, hosts)
        for h, per_tick in enumerate(outputs):
            want = golden.host_estimates[f"h{h:02d}"]
            for tick, (means, stds) in enumerate(per_tick):
                stored = want.at(tick)
                assert stored.keys() == means.keys()
                for event, value in stored.items():
                    assert means[event] == pytest.approx(value, rel=1e-9)
                sigma = want.uncertainties[tick]
                for event, value in sigma.items():
                    assert stds[event] == pytest.approx(value, rel=1e-9)
        # Spot-pin one value so a wholesale fixture rewrite is also caught.
        assert golden.host_estimates["h00"].at(0)[
            "BR_INST_RETIRED.ALL_BRANCHES"
        ] == pytest.approx(331128.2579, abs=1e-3)

    def test_megabatch_and_partitioned_paths_match_exactly(self, fleet):
        """Mega-batched and thread-partitioned engines equal the default
        per-signature path bit-for-bit on the golden fleet (and therefore
        pin against the fixture transitively)."""
        catalog, union, hosts = fleet
        baseline = self._run_fleet(catalog, union, hosts)
        assert baseline == self._run_fleet(catalog, union, hosts, megabatch=True)
        assert baseline == self._run_fleet(
            catalog,
            union,
            hosts,
            megabatch=True,
            kernel_exec=KernelExecSpec(threads=4, partition="lane"),
        )
        assert baseline == self._run_fleet(
            catalog,
            union,
            hosts,
            kernel_exec=KernelExecSpec(threads=4, partition="signature"),
        )

    def test_homogeneous_golden_replays_under_megabatch_engine(self):
        """The pre-existing single-host golden fixture, replayed through a
        mega-batch-enabled fleet service, still reproduces its committed
        estimates — the merge path degrades to a single-signature batch."""
        golden = read_trace(GOLDEN_TRACE)
        service = FleetService(
            golden.arch, n_workers=2, engine_kwargs={"megabatch": True}
        )
        host = service.add_trace(GOLDEN_TRACE)
        result = service.run()
        got, want = result.estimates[host], golden.estimates
        assert len(got) == len(want)
        for tick in range(len(want)):
            got_values, want_values = got.at(tick), want.at(tick)
            assert got_values.keys() == want_values.keys()
            for event, value in want_values.items():
                assert got_values[event] == pytest.approx(value, rel=1e-9)
