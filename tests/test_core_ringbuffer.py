"""Ring-buffer backpressure semantics (the fleet ingestion layer depends on them)."""

import pytest

from repro.core.ringbuffer import RingBuffer


def test_rejects_non_positive_capacity():
    with pytest.raises(ValueError):
        RingBuffer(0)
    with pytest.raises(ValueError):
        RingBuffer(-3)


def test_push_pop_fifo_order():
    buffer = RingBuffer(4)
    for value in (10, 20, 30):
        assert buffer.push(value)
    assert len(buffer) == 3
    assert buffer.peek() == 10
    assert [buffer.pop(), buffer.pop(), buffer.pop()] == [10, 20, 30]
    assert buffer.pop() is None
    assert buffer.is_empty


def test_overflow_drops_new_entries_and_counts_them():
    buffer = RingBuffer(2)
    assert buffer.push("a")
    assert buffer.push("b")
    assert buffer.is_full
    # Full buffer: new entries are dropped (perf mmap behaviour), old ones kept.
    assert not buffer.push("c")
    assert not buffer.push("d")
    assert buffer.dropped == 2
    assert buffer.total_pushed == 4
    assert len(buffer) == 2
    assert buffer.drain() == ["a", "b"]


def test_wraparound_after_drain_accepts_again():
    """Capacity frees as entries are consumed; drop counting is cumulative."""
    buffer = RingBuffer(2)
    buffer.push(1)
    buffer.push(2)
    assert not buffer.push(3)  # dropped
    assert buffer.pop() == 1
    assert buffer.push(4)  # slot freed by the pop
    assert buffer.dropped == 1
    assert buffer.pop() == 2
    assert buffer.pop() == 4
    # Many wrap cycles: push/pop interleaved far beyond capacity.
    for value in range(100):
        assert buffer.push(value)
        assert buffer.pop() == value
    assert buffer.dropped == 1
    assert buffer.total_pushed == 104


def test_push_many_partial_acceptance():
    buffer = RingBuffer(3)
    accepted = buffer.push_many(range(5))
    assert accepted == 3
    assert buffer.dropped == 2
    assert buffer.drain() == [0, 1, 2]
    # Drain resets occupancy but not the cumulative counters.
    assert buffer.dropped == 2
    assert buffer.total_pushed == 5
    assert buffer.push_many([7, 8]) == 2


def test_peek_does_not_consume():
    buffer = RingBuffer(2)
    buffer.push("x")
    assert buffer.peek() == "x"
    assert buffer.peek() == "x"
    assert len(buffer) == 1
