"""Workload definitions.

The paper evaluates on the HiBench suite (micro-benchmarks, machine learning,
SQL, web search, graph analytics and streaming applications, §6.2).  Here each
workload is a phase-based specification consumed by the machine model; the
suite reproduces the *names* and the qualitative behavioural diversity of
HiBench rather than running Spark jobs.
"""

from repro.workloads.contention import contended_workload, contention_slowdown
from repro.workloads.hibench import HIBENCH_WORKLOADS, hibench_suite, hibench_workload
from repro.workloads.micro import multiplexing_stress_workload, steady_workload
from repro.workloads.registry import (
    available_workloads,
    get_workload,
    register_workload,
    unregister_workload,
)

__all__ = [
    "HIBENCH_WORKLOADS",
    "contended_workload",
    "contention_slowdown",
    "hibench_suite",
    "hibench_workload",
    "multiplexing_stress_workload",
    "steady_workload",
    "available_workloads",
    "get_workload",
    "register_workload",
    "unregister_workload",
]
