"""PCIe-contention workload modifier (the interconnect axis of the grid).

:func:`contended_workload` takes any synthetic :class:`WorkloadSpec` and
returns a copy whose per-phase progress rates are throttled by the
:mod:`repro.interconnect` max-min fair bandwidth model: a probe DMA transfer
for the monitored host shares the case-study PCIe topology with a configurable
number of background accelerator streams, and the resulting fractional
slowdown scales every phase via :meth:`PhaseProfile.scaled`.  The function is
pure — the same ``(spec, contention parameters)`` always yields the same
modified spec — which keeps contended runs exactly as replayable and
WAL-resumable as uncontended ones.

``repro.api`` exposes this through ``ContentionSpec`` on ``RunSpec``; the
modified spec flows into ``FleetService.add_host`` through the existing
``workload`` parameter (specs are first-class there), so no service surface
changes.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Tuple

from repro.interconnect import ContentionModel, Transfer, build_case_study_topology
from repro.uarch.profile import Phase, WorkloadSpec

__all__ = ["contention_slowdown", "contended_workload"]

#: Background DMA initiators in the case-study topology, in the order they
#: are enlisted as ``background`` grows: the training GPU first (same switch
#: as the probe's NIC), then the socket-1 worker GPUs.  Each streams results
#: out through ``nic0``, so every stream shares the probe's bottleneck
#: ``switch0a-nic0`` link and the slowdown grows monotonically with count.
_BACKGROUND_DEVICES = ("train_gpu", "gpu0", "gpu1", "gpu2", "gpu3")


def _transfers(background: int, size_bytes: int) -> Tuple[Transfer, Tuple[Transfer, ...]]:
    probe = Transfer("host-dma", source="mem0", destination="nic0", size_bytes=size_bytes)
    streams = tuple(
        Transfer(f"bg-{device}", source=device, destination="nic0", size_bytes=size_bytes)
        for device in _BACKGROUND_DEVICES[:background]
    )
    return probe, streams


def contention_slowdown(*, background: int = 2, size_mb: float = 64.0) -> float:
    """Fractional slowdown of the host's DMA path under *background* streams.

    ``0.0`` means no contention (``background=0``); ``1.0`` means the probe
    transfer takes twice as long as in isolation.  Deterministic: the
    topology is fixed and the allocation is max-min fair.
    """
    if background < 0 or background > len(_BACKGROUND_DEVICES):
        raise ValueError(
            f"background must be between 0 and {len(_BACKGROUND_DEVICES)}"
        )
    if size_mb <= 0:
        raise ValueError("size_mb must be positive")
    if background == 0:
        return 0.0
    size_bytes = int(size_mb * 1e6)
    probe, streams = _transfers(background, size_bytes)
    model = ContentionModel(build_case_study_topology())
    return model.slowdown(probe, streams)


def contended_workload(
    spec: WorkloadSpec, *, background: int = 2, size_mb: float = 64.0
) -> WorkloadSpec:
    """Return *spec* throttled by PCIe contention from *background* streams.

    Every phase profile is scaled by ``1 / (1 + slowdown)`` — instruction
    and DMA progress per tick drop together, exactly what a host stalling on
    a contended interconnect looks like to the PMU.  The returned spec is
    renamed ``<name>@pcie-bg<background>`` so traces and reports show which
    grid cell produced them.
    """
    slowdown = contention_slowdown(background=background, size_mb=size_mb)
    if slowdown == 0.0:
        return spec
    intensity = 1.0 / (1.0 + slowdown)
    phases = tuple(
        Phase(
            profile=phase.profile.scaled(intensity),
            duration_ticks=phase.duration_ticks,
            name=phase.name,
        )
        for phase in spec.phases
    )
    return replace(spec, name=f"{spec.name}@pcie-bg{background}", phases=phases)
