"""Synthetic micro-workloads used by the error-scaling experiments (Fig. 1, Fig. 8)."""

from __future__ import annotations

from dataclasses import replace
from typing import Tuple

from repro.uarch.profile import Phase, PhaseProfile, WorkloadSpec


def steady_workload(name: str = "steady", *, ticks: int = 120, burstiness: float = 0.0) -> WorkloadSpec:
    """A single-phase workload with optional burstiness and no phase changes.

    With ``burstiness=0`` the only measurement error left is read noise, which
    makes this workload useful for unit tests that isolate specific error
    sources.
    """
    profile = PhaseProfile(burstiness=burstiness, burst_correlation=0.5)
    return WorkloadSpec(
        name=name,
        phases=(Phase(profile=profile, duration_ticks=ticks, name=f"{name}-steady"),),
        category="micro",
        description="Single-phase steady workload",
    )


def multiplexing_stress_workload(name: str = "mux-stress") -> WorkloadSpec:
    """The phase-rich workload used to characterise multiplexing error (Fig. 1).

    Alternates compute-bound, memory-bound and IO-heavy phases so that stale
    extrapolated counter values are maximally wrong across phase boundaries.
    """
    compute = PhaseProfile(
        instructions_per_tick=2.8e6,
        l1d_miss_rate=0.03,
        l2_miss_rate=0.25,
        llc_miss_rate=0.3,
        dma_transactions_per_tick=1.5e3,
        burstiness=0.6,
        burst_correlation=0.45,
    )
    memory = PhaseProfile(
        instructions_per_tick=1.4e6,
        l1d_miss_rate=0.14,
        l2_miss_rate=0.55,
        llc_miss_rate=0.6,
        dma_transactions_per_tick=4.0e3,
        burstiness=0.6,
        burst_correlation=0.45,
    )
    io_heavy = PhaseProfile(
        instructions_per_tick=1.0e6,
        l1d_miss_rate=0.08,
        l2_miss_rate=0.4,
        llc_miss_rate=0.45,
        dma_transactions_per_tick=1.2e4,
        burstiness=0.65,
        burst_correlation=0.45,
    )
    phases: Tuple[Phase, ...] = (
        Phase(profile=compute, duration_ticks=25, name="compute"),
        Phase(profile=memory, duration_ticks=30, name="memory"),
        Phase(profile=replace(compute, instructions_per_tick=2.0e6), duration_ticks=20, name="mixed"),
        Phase(profile=io_heavy, duration_ticks=25, name="io"),
    )
    return WorkloadSpec(
        name=name,
        phases=phases,
        category="micro",
        description="Phase-rich workload for multiplexing-error characterisation",
    )
