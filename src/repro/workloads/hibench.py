"""HiBench-like workload suite.

The 28 workloads mirror the benchmark names in Fig. 6 of the paper, grouped
into the categories HiBench documents (micro, machine learning, SQL, web
search, graph, streaming).  Each category has a characteristic base profile;
per-workload deterministic perturbations make each workload distinct while
keeping the suite fully reproducible.
"""

from __future__ import annotations

import hashlib
from dataclasses import replace
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.uarch.profile import Phase, PhaseProfile, WorkloadSpec

#: Workload name -> HiBench category.
HIBENCH_WORKLOADS: Dict[str, str] = {
    "Sort": "micro",
    "WordCount": "micro",
    "TeraSort": "micro",
    "Repartition": "micro",
    "DFSIOE": "micro",
    "Bayes": "ml",
    "KMeans": "ml",
    "GMM": "ml",
    "LR": "ml",
    "ALS": "ml",
    "GBT": "ml",
    "XGBoost": "ml",
    "Linear": "ml",
    "LDA": "ml",
    "PCA": "ml",
    "RF": "ml",
    "SVM": "ml",
    "SVD": "ml",
    "Scan": "sql",
    "Join": "sql",
    "Aggregate": "sql",
    "PageRank": "websearch",
    "NutchIndexing": "websearch",
    "NWeight": "graph",
    "Identity": "streaming",
    "StreamRepartition": "streaming",
    "StatefulWordCount": "streaming",
    "FixWindow": "streaming",
}

#: Category base profiles.  The values are chosen to make the categories
#: behave differently (compute-bound ML, memory-bound micro/SQL, bursty
#: streaming), which is what drives per-workload differences in Fig. 6.
_CATEGORY_PROFILES: Dict[str, PhaseProfile] = {
    "micro": PhaseProfile(
        instructions_per_tick=1.8e6,
        branch_fraction=0.16,
        load_fraction=0.3,
        store_fraction=0.14,
        l1d_miss_rate=0.09,
        l2_miss_rate=0.45,
        llc_miss_rate=0.5,
        dma_transactions_per_tick=6.0e3,
        burstiness=0.6,
        burst_correlation=0.5,
    ),
    "ml": PhaseProfile(
        instructions_per_tick=2.6e6,
        branch_fraction=0.12,
        load_fraction=0.33,
        store_fraction=0.1,
        l1d_miss_rate=0.05,
        l2_miss_rate=0.3,
        llc_miss_rate=0.35,
        dma_transactions_per_tick=3.0e3,
        burstiness=0.55,
        burst_correlation=0.5,
    ),
    "sql": PhaseProfile(
        instructions_per_tick=2.0e6,
        branch_fraction=0.2,
        load_fraction=0.34,
        store_fraction=0.12,
        l1d_miss_rate=0.08,
        l2_miss_rate=0.4,
        llc_miss_rate=0.45,
        dma_transactions_per_tick=4.5e3,
        burstiness=0.58,
        burst_correlation=0.45,
    ),
    "websearch": PhaseProfile(
        instructions_per_tick=2.2e6,
        branch_fraction=0.22,
        branch_mispredict_rate=0.05,
        load_fraction=0.3,
        store_fraction=0.1,
        l1d_miss_rate=0.07,
        l2_miss_rate=0.38,
        llc_miss_rate=0.42,
        dma_transactions_per_tick=3.5e3,
        burstiness=0.6,
        burst_correlation=0.45,
    ),
    "graph": PhaseProfile(
        instructions_per_tick=1.6e6,
        branch_fraction=0.24,
        branch_mispredict_rate=0.06,
        load_fraction=0.36,
        store_fraction=0.08,
        l1d_miss_rate=0.12,
        l2_miss_rate=0.5,
        llc_miss_rate=0.55,
        dma_transactions_per_tick=2.5e3,
        burstiness=0.65,
        burst_correlation=0.45,
    ),
    "streaming": PhaseProfile(
        instructions_per_tick=1.5e6,
        branch_fraction=0.18,
        load_fraction=0.28,
        store_fraction=0.16,
        l1d_miss_rate=0.07,
        l2_miss_rate=0.36,
        llc_miss_rate=0.4,
        dma_transactions_per_tick=8.0e3,
        burstiness=0.7,
        burst_correlation=0.4,
    ),
}

#: Phase plans per category: (relative intensity, duration ticks) per phase.
_CATEGORY_PHASE_PLANS: Dict[str, Tuple[Tuple[float, int], ...]] = {
    "micro": ((1.0, 30), (1.8, 40), (0.7, 30), (1.4, 30)),
    "ml": ((0.8, 25), (1.6, 45), (1.1, 35), (2.0, 25)),
    "sql": ((1.0, 35), (2.2, 30), (0.6, 35), (1.5, 30)),
    "websearch": ((1.2, 30), (0.7, 30), (1.9, 35), (1.0, 35)),
    "graph": ((0.9, 40), (2.0, 30), (1.3, 30), (0.6, 30)),
    "streaming": ((1.0, 20), (2.4, 25), (0.8, 20), (1.7, 25), (1.1, 25)),
}


def _stable_seed(name: str) -> int:
    """Deterministic 32-bit seed derived from a workload name."""
    digest = hashlib.sha256(name.encode("utf-8")).digest()
    return int.from_bytes(digest[:4], "little")


def _perturb(profile: PhaseProfile, rng: np.random.Generator) -> PhaseProfile:
    """Small deterministic per-workload perturbation of a category profile."""

    def factor(scale: float = 0.15) -> float:
        return float(np.exp(rng.normal(0.0, scale)))

    def clipped(value: float, low: float = 0.001, high: float = 0.95) -> float:
        return float(min(max(value, low), high))

    return replace(
        profile,
        instructions_per_tick=profile.instructions_per_tick * factor(0.2),
        branch_fraction=clipped(profile.branch_fraction * factor()),
        branch_mispredict_rate=clipped(profile.branch_mispredict_rate * factor()),
        l1d_miss_rate=clipped(profile.l1d_miss_rate * factor()),
        l2_miss_rate=clipped(profile.l2_miss_rate * factor()),
        llc_miss_rate=clipped(profile.llc_miss_rate * factor()),
        dma_transactions_per_tick=profile.dma_transactions_per_tick * factor(0.3),
        burstiness=clipped(profile.burstiness * factor(0.1), 0.1, 0.9),
    )


def hibench_workload(name: str) -> WorkloadSpec:
    """Build the named HiBench-like workload specification."""
    if name not in HIBENCH_WORKLOADS:
        raise KeyError(f"unknown HiBench workload {name!r}; available: {sorted(HIBENCH_WORKLOADS)}")
    category = HIBENCH_WORKLOADS[name]
    rng = np.random.default_rng(_stable_seed(name))
    base = _perturb(_CATEGORY_PROFILES[category], rng)

    phases: List[Phase] = []
    for index, (intensity, duration) in enumerate(_CATEGORY_PHASE_PLANS[category]):
        # Each phase additionally shifts the cache behaviour a little so that
        # phases differ in more than raw intensity.
        phase_profile = replace(
            base.scaled(intensity),
            l1d_miss_rate=float(min(max(base.l1d_miss_rate * (0.8 + 0.15 * index), 0.001), 0.95)),
            llc_miss_rate=float(min(max(base.llc_miss_rate * (1.1 - 0.1 * index), 0.001), 0.95)),
        )
        duration_jitter = int(rng.integers(-4, 5))
        phases.append(
            Phase(
                profile=phase_profile,
                duration_ticks=max(10, duration + duration_jitter),
                name=f"{name.lower()}-phase{index}",
            )
        )
    return WorkloadSpec(
        name=name,
        phases=tuple(phases),
        category=category,
        description=f"HiBench-like {category} workload {name}",
    )


def hibench_suite(categories: Sequence[str] = ()) -> Tuple[WorkloadSpec, ...]:
    """All HiBench-like workloads, optionally filtered by category."""
    wanted = set(categories) if categories else None
    specs = []
    for name, category in HIBENCH_WORKLOADS.items():
        if wanted is None or category in wanted:
            specs.append(hibench_workload(name))
    return tuple(specs)
