"""Workload registry: uniform lookup across HiBench and micro workloads."""

from __future__ import annotations

from typing import Dict, Tuple

from repro.uarch.profile import WorkloadSpec
from repro.workloads.hibench import HIBENCH_WORKLOADS, hibench_workload
from repro.workloads.micro import multiplexing_stress_workload, steady_workload


def available_workloads() -> Tuple[str, ...]:
    """Names of all registered workloads."""
    return tuple(HIBENCH_WORKLOADS) + ("mux-stress", "steady")


def get_workload(name: str) -> WorkloadSpec:
    """Look up any registered workload by name."""
    if name in HIBENCH_WORKLOADS:
        return hibench_workload(name)
    if name == "mux-stress":
        return multiplexing_stress_workload()
    if name == "steady":
        return steady_workload()
    raise KeyError(f"unknown workload {name!r}; available: {sorted(available_workloads())}")
