"""Workload registry: uniform lookup across HiBench, micro and registered workloads."""

from __future__ import annotations

from typing import Callable, Dict, Tuple

from repro.workloads.hibench import HIBENCH_WORKLOADS, hibench_workload
from repro.workloads.micro import multiplexing_stress_workload, steady_workload

#: Dynamically registered workloads (name -> zero-argument factory).  The
#: factory may return a :class:`WorkloadSpec` or any workload-like object a
#: specific runner understands (e.g. a recorded trace replayed by
#: :mod:`repro.fleet`).
_REGISTERED: Dict[str, Callable[[], object]] = {}


def _builtin_workloads() -> Tuple[str, ...]:
    return tuple(HIBENCH_WORKLOADS) + ("mux-stress", "steady")


def available_workloads() -> Tuple[str, ...]:
    """Names of all registered workloads (built-in plus dynamic)."""
    return _builtin_workloads() + tuple(_REGISTERED)


def register_workload(
    name: str, factory: Callable[[], object], *, overwrite: bool = False
) -> None:
    """Register a workload factory under *name*.

    Built-in names cannot be shadowed.  Re-registering a dynamic name raises
    unless ``overwrite`` is true (replayable traces are often re-recorded).
    """
    if not name:
        raise ValueError("workload name must be non-empty")
    if name in _builtin_workloads():
        raise ValueError(f"cannot shadow built-in workload {name!r}")
    if name in _REGISTERED and not overwrite:
        raise ValueError(f"workload {name!r} already registered (pass overwrite=True)")
    _REGISTERED[name] = factory


def unregister_workload(name: str) -> None:
    """Remove a dynamically registered workload (missing names are ignored)."""
    _REGISTERED.pop(name, None)


def get_workload(name: str):
    """Look up any registered workload by name.

    Returns a :class:`WorkloadSpec` for built-in workloads; dynamically
    registered names return whatever their factory produces (for recorded
    traces, a :class:`repro.fleet.tracefile.TraceWorkload`).
    """
    if name in HIBENCH_WORKLOADS:
        return hibench_workload(name)
    if name == "mux-stress":
        return multiplexing_stress_workload()
    if name == "steady":
        return steady_workload()
    if name in _REGISTERED:
        return _REGISTERED[name]()
    raise KeyError(f"unknown workload {name!r}; available: {sorted(available_workloads())}")
