"""The unified public estimation API: spec-driven, registry-backed, streaming.

This package is the single front door for running estimations.  Declare a
run with frozen specs, then execute it::

    from repro.api import EstimatorSpec, HostSpec, Pipeline, RecorderSpec, RunSpec

    spec = RunSpec.fleet(
        64, "KMeans", n_ticks=3,
        estimator=EstimatorSpec("mcmc", samples=60, burn_in=50),
        recorder=RecorderSpec(sink="chains.jsonl"),
    )
    for slice_result in Pipeline.from_spec(spec).stream():
        consume(slice_result)          # arrives while the fleet runs

* Estimator names resolve through the :mod:`repro.fg.registry` the sampler
  implementations self-register into — one name table for the engine, the
  sessions, the CLI and this API.
* ``Pipeline.run()`` collects everything; ``Pipeline.stream()`` yields
  per-slice results incrementally and flushes chain records to the
  recorder's tracefile sink after every inference round (bounded memory).
* The legacy front doors remain as thin shims: ``FleetService.run`` drives
  this pipeline internally, and ``PerfSession``/``FleetService`` accept
  :class:`EstimatorSpec`/:class:`RecorderSpec` in place of their deprecated
  stringly-typed kwargs.
* :class:`ObserverSpec` opts a run into observability (:mod:`repro.obs`):
  OTel-style span export over the whole pipeline, the metrics registry,
  per-slice estimate records in the trace sink, and the end-of-run
  chain-health (mixing) analysis.
* :class:`FaultPolicySpec` opts the workers into retry/timeout/quarantine
  enforcement, and :class:`CheckpointSpec` opts the run into durable
  write-ahead logging — a killed run resumes from its log with
  ``Pipeline.resume(path)`` to bit-identical final estimates.
* The scenario grid (``docs/scenario-grid.md``): :class:`SchedulerSpec`
  selects the multiplexing policy, :class:`ContentionSpec` throttles
  synthetic workloads with PCIe contention, and ``RunSpec.baselines``
  fans the same sampled streams through registered baseline correction
  methods — the run's :class:`ComparisonReport` scores BayesPerf against
  each of them on reconstructed ground truth.
"""

from repro.api.comparison import ComparisonReport, HostComparison, baseline_names
from repro.api.pipeline import Pipeline, PipelineResult, SliceResult
from repro.api.spec import (
    CheckpointSpec,
    ContentionSpec,
    EstimatorSpec,
    FaultPolicySpec,
    HostSpec,
    KernelExecSpec,
    ObserverSpec,
    RecorderSpec,
    RunSpec,
    SchedulerSpec,
)

__all__ = [
    "CheckpointSpec",
    "ComparisonReport",
    "ContentionSpec",
    "EstimatorSpec",
    "FaultPolicySpec",
    "HostComparison",
    "HostSpec",
    "KernelExecSpec",
    "ObserverSpec",
    "Pipeline",
    "PipelineResult",
    "RecorderSpec",
    "RunSpec",
    "SchedulerSpec",
    "SliceResult",
    "baseline_names",
]
