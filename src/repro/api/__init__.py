"""The unified public estimation API: spec-driven, registry-backed, streaming.

This package is the single front door for running estimations.  Declare a
run with frozen specs, then execute it::

    from repro.api import EstimatorSpec, HostSpec, Pipeline, RecorderSpec, RunSpec

    spec = RunSpec.fleet(
        64, "KMeans", n_ticks=3,
        estimator=EstimatorSpec("mcmc", samples=60, burn_in=50),
        recorder=RecorderSpec(sink="chains.jsonl"),
    )
    for slice_result in Pipeline.from_spec(spec).stream():
        consume(slice_result)          # arrives while the fleet runs

* Estimator names resolve through the :mod:`repro.fg.registry` the sampler
  implementations self-register into — one name table for the engine, the
  sessions, the CLI and this API.
* ``Pipeline.run()`` collects everything; ``Pipeline.stream()`` yields
  per-slice results incrementally and flushes chain records to the
  recorder's tracefile sink after every inference round (bounded memory).
* The legacy front doors remain as thin shims: ``FleetService.run`` drives
  this pipeline internally, and ``PerfSession``/``FleetService`` accept
  :class:`EstimatorSpec`/:class:`RecorderSpec` in place of their deprecated
  stringly-typed kwargs.
* :class:`ObserverSpec` opts a run into observability (:mod:`repro.obs`):
  OTel-style span export over the whole pipeline, the metrics registry,
  per-slice estimate records in the trace sink, and the end-of-run
  chain-health (mixing) analysis.
* :class:`FaultPolicySpec` opts the workers into retry/timeout/quarantine
  enforcement, and :class:`CheckpointSpec` opts the run into durable
  write-ahead logging — a killed run resumes from its log with
  ``Pipeline.resume(path)`` to bit-identical final estimates.
"""

from repro.api.pipeline import Pipeline, PipelineResult, SliceResult
from repro.api.spec import (
    CheckpointSpec,
    EstimatorSpec,
    FaultPolicySpec,
    HostSpec,
    KernelExecSpec,
    ObserverSpec,
    RecorderSpec,
    RunSpec,
)

__all__ = [
    "CheckpointSpec",
    "EstimatorSpec",
    "FaultPolicySpec",
    "HostSpec",
    "KernelExecSpec",
    "ObserverSpec",
    "Pipeline",
    "PipelineResult",
    "RecorderSpec",
    "RunSpec",
    "SliceResult",
]
