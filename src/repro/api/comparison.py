"""BayesPerf-vs-baseline comparison over one pipeline run (the scenario grid).

When ``RunSpec.baselines`` names registered baseline correction methods
(``repro.fg.registry`` entries with ``baseline=True``), ``Pipeline.run``
attaches a :class:`ComparisonReport` to its result: the same multiplexed
sample stream every synthetic host fed the engine is replayed through each
baseline's ``correct()``, both are scored against the host's noise-free
ground truth, and the per-event relative errors land in one table.

No second fleet run happens.  A synthetic host's records are a pure function
of its source configuration (machine seed, sampler seed ``seed+1``, polled
ground truth seed ``seed+2`` — the same convention ``PerfSession`` uses), so
the comparison layer rebuilds the exact machine trace and sampled trace from
the already-registered sources and only the engine estimates come from the
live run.  That keeps the comparison deterministic, bit-stable under
worker-count changes, and free for replay hosts to opt out (no synthetic
ground truth exists for them — they are skipped).
"""

from __future__ import annotations

import inspect
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

# Importing the baselines package is what self-registers the baseline
# entries ("linux", "counterminer", "wm+pin") into the estimator registry.
import repro.baselines  # noqa: F401
from repro.events.catalog import EventCatalog
from repro.events.registry import catalog_for
from repro.fg.registry import baseline_names, get_estimator
from repro.metrics.error import ErrorReport, trace_error
from repro.pmu.sampling import MultiplexedSampler, PolledTrace, PollingReader
from repro.pmu.traces import EstimateTrace
from repro.scheduling.cache import cached_schedule
from repro.uarch.machine import Machine, MachineConfig

__all__ = [
    "ComparisonReport",
    "HostComparison",
    "baseline_names",
    "build_baseline",
    "build_comparison",
]

#: The engine's method name in reports (matches the paper's tables).
BAYESPERF = "bayesperf"


def build_baseline(name: str, catalog: EventCatalog):
    """Instantiate the registered baseline *name* for *catalog*.

    Registry-driven: the entry's implementation class is constructed with
    the catalog when its ``__init__`` asks for one (``WeaverPin``) and bare
    otherwise (``LinuxScaling``/``CounterMiner``), so new baselines join the
    grid by decorating their class with ``@register_estimator(...,
    baseline=True)`` — no comparison-layer changes.
    """
    entry = get_estimator(name)
    if not entry.baseline:
        raise ValueError(
            f"{name!r} is a moment estimator, not a baseline correction method"
        )
    parameters = inspect.signature(entry.batched).parameters
    if "catalog" in parameters:
        return entry.batched(catalog)
    return entry.batched()


@dataclass
class HostComparison:
    """Every method's error report for one synthetic host."""

    host_id: str
    workload: str
    #: Method name -> per-event relative error vs the host's ground truth.
    reports: Dict[str, ErrorReport] = field(default_factory=dict)


@dataclass
class ComparisonReport:
    """The scenario-grid comparison table for one pipeline run."""

    #: The grid cell that produced this table (scheduler policy, contention,
    #: estimator, baselines) — stamped into every exported record.
    scenario: Dict[str, object] = field(default_factory=dict)
    #: Method column order: BayesPerf first, then the baselines as listed.
    methods: Tuple[str, ...] = ()
    hosts: List[HostComparison] = field(default_factory=list)

    def mean_error_percent(self, method: str) -> float:
        """Fleet-mean error of *method* across compared hosts (percent)."""
        values = [
            host.reports[method].mean_error_percent
            for host in self.hosts
            if method in host.reports
        ]
        if not values:
            return float("nan")
        return float(sum(values) / len(values))

    def render(self) -> str:
        """The per-scenario table: one row per host, one column per method."""
        from repro.experiments.common import format_table

        headers = ["host", "workload"] + [f"{m} err%" for m in self.methods]
        rows: List[Sequence] = []
        for host in self.hosts:
            rows.append(
                [host.host_id, host.workload]
                + [
                    host.reports[m].mean_error_percent if m in host.reports else float("nan")
                    for m in self.methods
                ]
            )
        rows.append(
            ["fleet-mean", str(self.scenario.get("scheduler", "overlap"))]
            + [self.mean_error_percent(m) for m in self.methods]
        )
        return format_table(headers, rows)

    def to_records(self) -> List[Dict]:
        """JSONL-shaped records: one scenario header, one row per host/method."""
        records: List[Dict] = [{"kind": "comparison-scenario", **self.scenario}]
        for host in self.hosts:
            for method in self.methods:
                report = host.reports.get(method)
                if report is None:
                    continue
                records.append(
                    {
                        "kind": "comparison",
                        "host": host.host_id,
                        "workload": host.workload,
                        "method": method,
                        "mean_error_percent": report.mean_error_percent,
                        "per_event": dict(report.per_event),
                    }
                )
        return records

    def write_jsonl(self, path: Union[str, Path]) -> str:
        """Export :meth:`to_records` as JSON lines; returns the path."""
        path = str(path)
        with open(path, "w", encoding="utf-8") as handle:
            for record in self.to_records():
                handle.write(json.dumps(record) + "\n")
        return path


def _bayesperf_traces(slices) -> Dict[str, EstimateTrace]:
    """Per-host engine estimates, rebuilt from the run's slice stream."""
    traces: Dict[str, EstimateTrace] = {}
    for result in slices:
        trace = traces.get(result.host)
        if trace is None:
            trace = traces[result.host] = EstimateTrace(method=BAYESPERF)
        trace.append(dict(result.values), uncertainty=dict(result.sigma))
    return traces


def _read_interval(length: int, warmup: int) -> int:
    """Aggregation window for error scoring: the session default (8 ticks)
    when the post-warmup trace is long enough to hold two windows, else
    per-tick scoring so short fleet runs still produce a table."""
    return 8 if (length - warmup) >= 16 else 1


def _compare_perf_host(source, engine_trace, baselines) -> Optional[HostComparison]:
    """Baseline divergence-from-BayesPerf rows for one real-trace host.

    A perf capture carries no polled ground truth, so each baseline's
    correction of the *measured* sampled stream is scored against the
    engine's posterior means instead — the same DTW-aligned relative-error
    metric, with the corrected estimate as the reference series.  The
    engine itself gets no row (its divergence from itself is zero by
    construction).
    """
    if engine_trace is None or len(engine_trace) == 0 or not baselines:
        return None
    catalog = catalog_for(source.arch)
    sampled = source.sampled_trace()
    reference = PolledTrace(
        catalog_name=catalog.name,
        events=tuple(engine_trace.events()),
        values=[engine_trace.at(tick) for tick in range(len(engine_trace))],
    )
    events = tuple(name for name in source.events if name in reference.events)
    if not events:
        return None
    interval = _read_interval(len(reference), 0)
    host = HostComparison(host_id=source.host_id, workload=source.workload_name)
    for name in baselines:
        corrected = build_baseline(name, catalog).correct(sampled)
        scored = trace_error(
            corrected, reference, events=events, aggregate_ticks=interval
        )
        host.reports[name] = ErrorReport(method=name, per_event=scored.per_event)
    return host


def build_comparison(spec, service, slices) -> ComparisonReport:
    """Score BayesPerf against ``spec.baselines`` for every synthetic host.

    *service* is the (already-run) fleet service whose ingest still holds
    the host sources; *slices* is the run's completed slice stream.  Replay
    hosts are skipped — only synthetic hosts carry reconstructible ground
    truth.
    """
    policy = spec.scheduler.policy if spec.scheduler is not None else "overlap"
    policy_seed = spec.scheduler.seed if spec.scheduler is not None else 0
    scenario: Dict[str, object] = {
        "scheduler": policy,
        "scheduler_seed": policy_seed,
        "estimator": spec.estimator.name,
        "baselines": list(spec.baselines),
        "contention_background": (
            spec.contention.background if spec.contention is not None else 0
        ),
        "contention_slowdown": (
            spec.contention.slowdown() if spec.contention is not None else 0.0
        ),
    }
    report = ComparisonReport(
        scenario=scenario, methods=(BAYESPERF,) + tuple(spec.baselines)
    )
    engine_traces = _bayesperf_traces(slices)
    channels = sorted(service.ingest.channels, key=lambda ch: ch.source.host_id)
    for channel in channels:
        source = channel.source
        host_id = source.host_id
        if not hasattr(source, "spec"):
            if hasattr(source, "sampled_trace"):
                # Real-trace host: no ground truth exists, but the capture
                # can still fan through every baseline — scored against the
                # engine posterior, so "err%" reads as divergence from
                # BayesPerf rather than error (the bayesperf column is
                # blank for these rows; see docs/real-traces.md).
                host = _compare_perf_host(
                    source, engine_traces.get(host_id), spec.baselines
                )
                if host is not None:
                    report.hosts.append(host)
            continue  # replay host: no synthetic ground truth
        catalog = catalog_for(source.arch)
        config = (
            source.machine_config
            if source.machine_config is not None
            else MachineConfig(name=catalog.name)
        )
        # Same-run reconstruction, seed-for-seed what the source pumped:
        # machine at `seed`, sampler at `seed+1`, ground-truth reader at
        # `seed+2` (the PerfSession convention).
        machine_trace = Machine(config, source.spec, seed=source.seed).run(source.n_ticks)
        schedule = cached_schedule(
            catalog, source.events, kind=source.schedule_policy, seed=source.schedule_seed
        )
        sampled = MultiplexedSampler(
            catalog,
            schedule,
            noise=source.noise,
            samples_per_tick=source.samples_per_tick,
            seed=source.seed + 1,
        ).sample(machine_trace)
        polled = PollingReader(
            catalog, source.events, noise=source.noise, seed=source.seed + 2
        ).read(machine_trace)
        length = len(machine_trace)
        warmup = min(schedule.rotation_ticks, max(length - 1, 0))
        interval = _read_interval(length, warmup)
        host = HostComparison(host_id=host_id, workload=source.workload_name)
        engine_trace = engine_traces.get(host_id)
        candidates = [(BAYESPERF, engine_trace)] + [
            (name, build_baseline(name, catalog).correct(sampled))
            for name in spec.baselines
        ]
        for method, trace in candidates:
            if trace is None:
                continue
            scored = trace_error(
                trace,
                polled,
                events=source.events,
                skip_ticks=warmup,
                aggregate_ticks=interval,
            )
            host.reports[method] = ErrorReport(method=method, per_event=scored.per_event)
        report.hosts.append(host)
    return report
