"""The unified estimation pipeline: one drive loop behind every front door.

``Pipeline`` composes what used to be spread across ``PerfSession``,
``FleetService.run`` and raw engine calls: engine construction (with
schedule/kernel caching), registry-resolved estimator selection, chain
recorders, and the ingestion/worker drive loop — behind two verbs:

* :meth:`Pipeline.run` — execute to completion and collect everything
  (per-slice results, fleet statistics, the chain trace) into a
  :class:`PipelineResult`;
* :meth:`Pipeline.stream` — a generator yielding one :class:`SliceResult`
  per completed slice *while the run progresses*, flushing buffered chain
  records to the configured tracefile sink after every inference round, so
  neither results nor chain records accumulate for the whole run.

Construction is spec-driven (``Pipeline.from_spec(RunSpec(...))``) or wraps
an already-configured :class:`~repro.fleet.service.FleetService`
(``Pipeline(service)`` — which is exactly what ``FleetService.run`` now
does internally).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import TYPE_CHECKING, Dict, Iterator, List, Optional, Union

from repro.api.spec import CheckpointSpec, RunSpec
from repro.fleet.events import ChainHealthFlagged, CheckpointWritten
from repro.fleet.service import FleetResult, FleetService
from repro.fleet.tracefile import TraceWriter
from repro.fleet.wal import (
    WalState,
    checkpoint_host,
    load_wal,
    restore_host,
    truncate_to_commit,
)
from repro.fg.mcmc import ChainTrace
from repro.obs.mixing import MixingAccumulator, MixingReport
from repro.pmu.traces import EstimateTrace

if TYPE_CHECKING:
    from repro.api.comparison import ComparisonReport

__all__ = ["Pipeline", "PipelineResult", "SliceResult"]

#: Acceptance-rate histogram buckets (rates live in [0, 1]).
_ACCEPTANCE_BUCKETS = (0.05, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0)


@dataclass(frozen=True)
class SliceResult:
    """One completed scheduler slice, as yielded by :meth:`Pipeline.stream`."""

    host: str
    tick: int
    #: Corrected per-event estimates (posterior means).
    values: Dict[str, float]
    #: Per-event posterior standard deviations.
    sigma: Dict[str, float]
    ep_iterations: int = 0
    ep_converged: bool = True


@dataclass
class PipelineResult:
    """Everything :meth:`Pipeline.run` collects."""

    #: Per-slice results in completion order (what ``stream()`` yielded).
    slices: List[SliceResult] = field(default_factory=list)
    #: The legacy fleet summary (throughput, drops, cache stats, ...).
    fleet: Optional[FleetResult] = None
    #: The shared chain recorder (drained if a sink streamed it out).
    chain_trace: Optional[ChainTrace] = None
    #: Tracefile path chain records were flushed to, if any.
    chain_path: Optional[str] = None
    #: End-of-run chain-health analysis (when an observer ran with chains).
    mixing: Optional[MixingReport] = None
    #: BayesPerf-vs-baseline scoring (when ``RunSpec.baselines`` is set).
    comparison: Optional["ComparisonReport"] = None
    #: JSONL file the comparison was exported to (when a recorder sink
    #: anchors the run's tracefile records; ``<sink>.comparison.jsonl``).
    comparison_path: Optional[str] = None

    @property
    def estimates(self) -> Dict[str, EstimateTrace]:
        """Per-host estimate traces (identical to the legacy entry points)."""
        return self.fleet.estimates if self.fleet is not None else {}

    @property
    def n_slices(self) -> int:
        return len(self.slices)

    @property
    def slices_per_second(self) -> float:
        return self.fleet.slices_per_second if self.fleet is not None else 0.0


class Pipeline:
    """Executable form of a :class:`~repro.api.RunSpec`.

    A pipeline instance is single-shot, like the service it drives: build
    one per run.  ``fleet_result`` becomes available once the drive loop
    has finished (i.e. after ``run()`` returns or ``stream()`` is
    exhausted).
    """

    def __init__(self, service: FleetService, *, mode: str = "pool") -> None:
        self._service = service
        self.mode = mode
        self.spec: Optional[RunSpec] = None
        self._fleet_result: Optional[FleetResult] = None
        #: End-of-run chain-health analysis (set by the drive loop when the
        #: service carries an observer and chains were recorded).
        self.mixing_report: Optional[MixingReport] = None
        #: Recovery point loaded by :meth:`resume` (``None`` = fresh run).
        self._resume_state: Optional[WalState] = None

    @classmethod
    def from_spec(cls, spec: RunSpec, *, chaos=None) -> "Pipeline":
        """Build the pipeline a :class:`~repro.api.RunSpec` describes.

        Estimator names resolve through the :mod:`repro.fg.registry` (so an
        unknown name fails here, listing the registered estimators), hosts
        are registered exactly as ``FleetService.add_host``/``add_trace``
        would, and a recorder spec's sink is wired up for streaming.
        *chaos* (a :class:`~repro.fleet.chaos.FaultInjector`) is a test-only
        hook: it wraps the run's sources, solves and WAL stream with the
        injector's seeded fault schedule.
        """
        if not spec.hosts:
            raise ValueError("RunSpec needs at least one HostSpec in hosts")
        contended = None
        if spec.contention is not None:
            from repro.workloads import contended_workload, get_workload

            def contended(name: str):
                workload = get_workload(name)
                if not hasattr(workload, "phases"):
                    raise ValueError(
                        f"ContentionSpec cannot throttle non-synthetic "
                        f"workload {name!r}"
                    )
                return contended_workload(
                    workload,
                    background=spec.contention.background,
                    size_mb=spec.contention.size_mb,
                )

        service = FleetService(
            spec.arch,
            metrics=spec.metrics,
            events=spec.events,
            n_workers=spec.n_workers,
            batch_size=spec.batch_size,
            buffer_capacity=spec.buffer_capacity,
            pump_records=spec.pump_records,
            samples_per_tick=spec.samples_per_tick,
            engine_kwargs=dict(spec.engine_overrides),
            estimator=spec.estimator,
            recorder=spec.recorder,
            observer=spec.observer,
            fault_policy=spec.fault_policy,
            chaos=chaos,
        )
        for host in spec.hosts:
            if host.perf is not None:
                service.add_perf(
                    host.perf,
                    format=host.format,
                    host_id=host.host_id,
                    arch=host.arch,
                    events=host.events,
                    on_unknown=host.on_unknown,
                )
            elif host.trace is not None:
                service.add_trace(
                    host.trace, host_id=host.host_id, workload_name=host.workload
                )
            else:
                service.add_host(
                    # Contention rides the existing workload parameter
                    # (specs are first-class there): the PCIe-throttled
                    # WorkloadSpec changes the machine trace, not the
                    # service surface.
                    contended(host.workload) if contended is not None else host.workload,
                    host_id=host.host_id,
                    seed=host.seed,
                    n_ticks=host.n_ticks,
                    arch=host.arch,
                    events=host.events,
                )
        if spec.scheduler is not None:
            # Route the multiplexing policy to every synthetic source.
            # ``records()`` is lazy — nothing has sampled yet — and the
            # attribute lives on the source, so FleetService's signature
            # stays untouched (the "one front door" contract).
            for channel in service.ingest.channels:
                if hasattr(channel.source, "schedule_policy"):
                    channel.source.schedule_policy = spec.scheduler.policy
                    channel.source.schedule_seed = spec.scheduler.seed
        pipeline = cls(service, mode=spec.mode)
        pipeline.spec = spec
        return pipeline

    @classmethod
    def resume(cls, trace_path: Union[str, Path], *, chaos=None) -> "Pipeline":
        """Rebuild a crashed run's pipeline from its write-ahead log.

        The log's header carries the full serialized :class:`RunSpec`, so
        the file alone suffices: the spec is rebuilt, the uncommitted
        suffix of the log is rolled back (standard WAL truncation), and the
        returned pipeline — once run — restores every host from the last
        committed checkpoint, re-executes from there, and appends to the
        same log.  Final estimates are bit-identical with an uninterrupted
        run (sources, backoff jitter and engine RNG are all deterministic).
        """
        state = load_wal(trace_path)
        payload = state.run_spec
        if payload is None:
            raise ValueError(
                f"{trace_path}: header carries no run_spec; cannot resume"
            )
        # A crash before the first commit leaves nothing durable beyond the
        # header; the recovery point is then the header itself and the run
        # simply restarts from scratch (still bit-identical: nothing ran).
        spec = RunSpec.from_dict(payload)
        checkpoint = spec.checkpoint or CheckpointSpec(path=str(trace_path))
        # Resume against the file actually given (it may have been moved).
        spec = replace(spec, checkpoint=replace(checkpoint, path=str(trace_path)))
        truncate_to_commit(state)
        pipeline = cls.from_spec(spec, chaos=chaos)
        pipeline._resume_state = state
        return pipeline

    @property
    def service(self) -> FleetService:
        """The underlying (single-shot) fleet service."""
        return self._service

    @property
    def observer(self):
        """The run's :class:`~repro.obs.Observer`, or ``None`` when off."""
        return self._service.observer

    @property
    def fleet_result(self) -> FleetResult:
        """The run's fleet summary (available once the drive loop finished)."""
        if self._fleet_result is None:
            raise RuntimeError("the pipeline has not finished running yet")
        return self._fleet_result

    # -- the drive loop ------------------------------------------------------

    def _rounds(self, on_slice=None) -> Iterator[int]:
        """The unified drive loop: pump, solve, flush — one round at a time.

        Yields each round's processed-slice count.  On completion (or
        generator close) the dispatcher is shut down, any chain-sink writer
        is closed, observability is finalised (mixing report, root span,
        exporters flushed), and :attr:`fleet_result` is assembled — so a
        consumer that stops early still leaves a consistent, flushed trace
        file.
        """
        service = self._service
        observer = service.observer
        pool = service._build_pool(self.mode)
        recorder = service.chain_recorder
        writer: Optional[TraceWriter] = None
        if service.chain_sink is not None and recorder is not None:
            writer = TraceWriter(
                service.chain_sink,
                arch=service.arch,
                events=service.events,
                workload="fleet-stream",
                samples_per_tick=service.samples_per_tick,
                metadata={"hosts": service.n_hosts, "mode": self.mode},
                chain_params=recorder.params,
                estimates=observer is not None and observer.estimates,
            )
        estimate_writer = (
            writer if observer is not None and observer.estimates else None
        )
        checkpoint = self.spec.checkpoint if self.spec is not None else None
        resume_state = self._resume_state
        wal_writer: Optional[TraceWriter] = None
        if checkpoint is not None:
            chaos = service.chaos
            wal_writer = TraceWriter(
                checkpoint.path,
                arch=service.arch,
                events=service.events,
                workload="fleet-wal",
                samples_per_tick=service.samples_per_tick,
                metadata={
                    "hosts": service.n_hosts,
                    "mode": self.mode,
                    "run_spec": self.spec.to_dict(),
                },
                wal=True,
                mode="a" if resume_state is not None else "w",
                stream_wrapper=chaos.wrap_stream if chaos is not None else None,
            )
        next_round = 0
        if resume_state is not None:
            # Re-materialise every host from the last committed checkpoint
            # before the first pump, then append from the recovery point.
            # (A pre-first-commit crash has no checkpoints: every host — and
            # the round counter — starts fresh, ``resume`` round -1.)
            for host_id, run in pool.runs().items():
                entry = resume_state.checkpoints.get(host_id)
                if entry is None:
                    continue
                restore_host(
                    run,
                    entry.get("state"),
                    entry.get("progress", {}),
                    resume_state.host_estimates.get(host_id, []),
                )
            last_commit = resume_state.last_commit_round
            wal_writer.write_resume(-1 if last_commit is None else last_commit)
            next_round = 0 if last_commit is None else last_commit + 1
        if on_slice is not None or estimate_writer is not None or wal_writer is not None:
            inner = on_slice

            def tap(host_id, record, means, stds, report):
                if estimate_writer is not None:
                    # The complete run log: every slice's posterior lands in
                    # the same sink as the chain records that produced it.
                    estimate_writer.write_estimate(host_id, record.tick, means, stds)
                if wal_writer is not None:
                    # The WAL's redo stream: committed estimates are the
                    # slices a resumed run never re-executes.
                    wal_writer.write_estimate(host_id, record.tick, means, stds)
                if inner is not None:
                    inner(host_id, record, means, stds, report)

            pool.set_on_slice(tap)
        mixing = (
            MixingAccumulator()
            if observer is not None and observer.mixing and recorder is not None
            else None
        )
        root = None
        spec = self.spec
        if observer is not None and observer.tracing:
            root = observer.tracer.start(
                "pipeline.run", mode=self.mode, hosts=service.n_hosts
            )
            if spec is not None:
                # Scenario-grid keys: which cell of the grid this run is.
                root.set_attribute(
                    "scenario.scheduler",
                    spec.scheduler.policy if spec.scheduler is not None else "overlap",
                )
                root.set_attribute(
                    "scenario.contention",
                    spec.contention.background if spec.contention is not None else 0,
                )
                root.set_attribute("scenario.baselines", list(spec.baselines))
        if observer is not None and spec is not None and spec.contention is not None:
            observer.gauge("scenario.contention.slowdown", spec.contention.slowdown())
        total = 0
        start = time.perf_counter()
        rounds_iter = pool.rounds(service.ingest, pump_records=service.pump_records)
        try:
            for processed in rounds_iter:
                total += processed
                if writer is not None:
                    # Bounded memory: hand the round's chain records to the
                    # sink and forget them (the ROADMAP streaming item).
                    self._consume_visits(recorder.drain(), writer, mixing, observer)
                if wal_writer is not None and (next_round + 1) % checkpoint.every == 0:
                    self._write_checkpoint(
                        wal_writer,
                        pool,
                        next_round,
                        fsync=checkpoint.fsync,
                        dispatcher=service.dispatcher,
                        observer=observer,
                    )
                next_round += 1
                yield processed
        except BaseException as error:
            if wal_writer is not None:
                # Stamp the abort reason into the log (best-effort) so a
                # recovery reader can tell a crash from a clean shutdown.
                wal_writer.__exit__(type(error), error, error.__traceback__)
            raise
        finally:
            # Close the drive generator first so any round span it holds
            # open ends before the mixing/root spans below.
            rounds_iter.close()
            elapsed = time.perf_counter() - start
            if wal_writer is not None:
                wal_writer.close()
            if writer is not None:
                self._consume_visits(recorder.drain(), writer, mixing, observer)
                writer.close()
            elif mixing is not None:
                # In-memory recorder: nothing was drained; analyse in place.
                self._consume_visits(recorder.visits, None, mixing, observer)
            if mixing is not None:
                self.mixing_report = mixing.report()
                self._emit_mixing(self.mixing_report, observer, service.dispatcher)
            if root is not None:
                root.set_attribute("slices", total)
                observer.tracer.end(root)
            service.dispatcher.shutdown()
            if observer is not None:
                observer.close()
            self._fleet_result = service._build_result(self.mode, total, elapsed, pool)

    @staticmethod
    def _write_checkpoint(
        wal_writer, pool, round_idx, *, fsync, dispatcher, observer
    ) -> None:
        """Checkpoint every host and seal the round with a commit marker."""
        runs = pool.runs()
        for host_id in sorted(runs):
            state, progress = checkpoint_host(runs[host_id])
            wal_writer.write_checkpoint(host_id, state, round_idx, progress=progress)
        wal_writer.commit_checkpoint(round_idx, fsync=fsync)
        dispatcher.emit(
            CheckpointWritten(host="fleet", round_idx=round_idx, n_hosts=len(runs))
        )
        if observer is not None:
            observer.count("wal.commits")

    @staticmethod
    def _consume_visits(visits, writer, mixing, observer) -> None:
        """Route one batch of chain records to the sink and health analysis."""
        if writer is not None:
            writer.write_visits(visits)
        if mixing is not None:
            mixing.consume(visits)
            for visit in visits:
                observer.observe(
                    "chain.acceptance",
                    visit.acceptance_rate,
                    buckets=_ACCEPTANCE_BUCKETS,
                )

    @staticmethod
    def _emit_mixing(report: MixingReport, observer, dispatcher) -> None:
        """Publish chain-health findings as events, spans and metrics."""
        with observer.span(
            "mixing.report", flags=len(report.flags), slices=report.n_slices
        ):
            for flag in report.flags:
                with observer.span(
                    "mixing.flag",
                    reason=flag.reason,
                    slice=flag.slice_id,
                    site=flag.site,
                ):
                    dispatcher.emit(
                        ChainHealthFlagged(
                            host="fleet",
                            reason=flag.reason,
                            slice_id=flag.slice_id,
                            site=flag.site,
                            value=flag.value,
                            detail=flag.detail,
                        )
                    )
                    observer.count(f"mixing.flags.{flag.reason}")
        observer.gauge("mixing.acceptance.median", report.median_acceptance)

    def stream(self) -> Iterator[SliceResult]:
        """Yield per-slice results incrementally while the run progresses.

        Chain records (when a recorder with a sink is configured) are
        flushed to the tracefile after every inference round, keeping the
        recorder's buffered memory bounded by one round instead of the
        whole run.  Results arrive in completion order: each host's slices
        are in tick order, interleaved across hosts.
        """
        buffer: List[SliceResult] = []

        def tap(host_id, record, means, stds, report):
            buffer.append(
                SliceResult(
                    host=host_id,
                    tick=record.tick,
                    values=means,
                    sigma=stds,
                    ep_iterations=report.ep_iterations,
                    ep_converged=report.ep_converged,
                )
            )

        for _ in self._rounds(on_slice=tap):
            yield from buffer
            buffer.clear()

    def run(self) -> PipelineResult:
        """Execute to completion, collecting every slice (the convenience
        counterpart of :meth:`stream`).

        With ``RunSpec.baselines`` set, the result additionally carries a
        :class:`~repro.api.comparison.ComparisonReport` scoring the engine
        against every listed baseline on reconstructed ground truth; when a
        recorder sink anchors the run's tracefile, the report is exported as
        JSON lines alongside it (``<sink>.comparison.jsonl``).
        """
        slices = list(self.stream())
        service = self._service
        comparison = comparison_path = None
        if self.spec is not None and self.spec.baselines:
            from repro.api.comparison import build_comparison

            comparison = build_comparison(self.spec, service, slices)
            if service.chain_sink is not None:
                comparison_path = comparison.write_jsonl(
                    f"{service.chain_sink}.comparison.jsonl"
                )
        return PipelineResult(
            slices=slices,
            fleet=self.fleet_result,
            chain_trace=service.chain_recorder,
            chain_path=service.chain_sink,
            mixing=self.mixing_report,
            comparison=comparison,
            comparison_path=comparison_path,
        )

    def run_fleet(self) -> FleetResult:
        """Execute without per-slice collection; returns the fleet summary.

        This is the legacy ``FleetService.run`` body: same loop, no
        streaming tap, so the historical hot path stays untouched.
        """
        for _ in self._rounds():
            pass
        return self.fleet_result
