"""Frozen run specifications: declare an estimation run, then execute it.

The specs are plain frozen dataclasses — hashable, comparable, printable —
that describe *what* to run without touching *how*:

* :class:`EstimatorSpec` — which registered moment estimator to use and its
  sampling effort.  Resolved against the :mod:`repro.fg.registry`, so the
  set of valid names is exactly the set of self-registered estimators.
* :class:`RecorderSpec` — chain-trace capture: record every per-site MCMC
  chain, optionally streaming the records to a tracefile sink as the run
  progresses (bounded recorder memory).
* :class:`ObserverSpec` — observability: OTel-style span export, the
  metrics registry, per-slice estimate records in the trace sink, and the
  end-of-run chain-health (mixing) analysis.  Off by default.
* :class:`HostSpec` — one fleet host: a synthetic workload simulation or a
  recorded trace replay.
* :class:`SchedulerSpec` — the multiplexing policy rotating events across
  the PMU counters (overlap / round-robin / rl / invariant-aware), resolved
  through the :mod:`repro.scheduling` policy table.
* :class:`ContentionSpec` — PCIe interconnect contention applied to every
  synthetic workload (:func:`repro.workloads.contended_workload`).
* :class:`RunSpec` — the whole run: architecture, monitored events, hosts,
  estimator, scheduler, contention, baseline comparators, recorder,
  observer and fleet sizing.

``Pipeline.from_spec(spec)`` (:mod:`repro.api.pipeline`) turns a spec into
an executable pipeline; the legacy ``PerfSession`` / ``FleetService``
front doors consume :class:`EstimatorSpec` / :class:`RecorderSpec` too, so
estimator resolution has one implementation everywhere.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Dict, Mapping, Optional, Tuple

from repro.fg.mcmc import ChainTrace
from repro.fg.megabatch import KernelExecSpec
from repro.fg.registry import get_estimator
from repro.fleet.faults import FaultPolicySpec
from repro.obs.observer import Observer

__all__ = [
    "CheckpointSpec",
    "ContentionSpec",
    "EstimatorSpec",
    "FaultPolicySpec",
    "HostSpec",
    "KernelExecSpec",
    "ObserverSpec",
    "RecorderSpec",
    "RunSpec",
    "SchedulerSpec",
]


def _frozen_tuple(spec, name: str) -> None:
    """Normalise a frozen dataclass's sequence field to a tuple in place.

    Mappings become item tuples, so the pair-tuple fields
    (``RecorderSpec.params``, ``RunSpec.engine_overrides``) accept the
    natural dict spelling too.
    """
    value = getattr(spec, name)
    if isinstance(value, Mapping):
        object.__setattr__(spec, name, tuple(value.items()))
    elif value is not None and not isinstance(value, tuple):
        object.__setattr__(spec, name, tuple(value))


@dataclass(frozen=True)
class EstimatorSpec:
    """One registered moment estimator plus its sampling effort.

    ``name`` must be registered in :mod:`repro.fg.registry` ("analytic",
    "mcmc", "batched-mcmc", plus anything downstream code registers); the
    remaining fields default to ``None`` meaning "the engine's default".
    ``use_compiled_kernel=False`` selects the estimator's object-walking
    reference twin — the differential-testing A/B switch.

    ``megabatch`` opts heterogeneous-fleet rounds into the cross-signature
    mega-batched kernel (:mod:`repro.fg.megabatch`); ``kernel_exec``
    carries a :class:`~repro.fg.megabatch.KernelExecSpec` describing how
    the kernel spreads work across threads.  Both are ``None`` by default
    (the engine's defaults), both are bit-identity-preserving knobs: they
    change wall-clock, never numbers.  A plain mapping (e.g. from a
    JSON-round-tripped ``RunSpec``) is coerced to a ``KernelExecSpec``.
    """

    name: str = "analytic"
    samples: Optional[int] = None
    burn_in: Optional[int] = None
    adapt: Optional[bool] = None
    ep_iterations: Optional[int] = None
    use_compiled_kernel: bool = True
    megabatch: Optional[bool] = None
    kernel_exec: Optional[KernelExecSpec] = None

    def __post_init__(self) -> None:
        if self.kernel_exec is not None and isinstance(self.kernel_exec, Mapping):
            object.__setattr__(self, "kernel_exec", KernelExecSpec(**self.kernel_exec))

    def engine_kwargs(self) -> Dict:
        """Resolve to :class:`~repro.core.engine.BayesPerfEngine` kwargs.

        Raises ``ValueError`` (listing the registered names) for an unknown
        estimator — validation happens at spec-resolution time, before any
        engine is built.  Baseline correction methods (registry entries with
        ``baseline=True``) are rejected here too: they consume whole sampled
        traces through the scenario-grid comparison (``RunSpec.baselines``),
        not slices through the engine.
        """
        entry = get_estimator(self.name)
        if entry.baseline:
            raise ValueError(
                f"{self.name!r} is a baseline correction method, not a moment "
                f"estimator; list it in RunSpec.baselines to compare it "
                f"against the engine estimator"
            )
        kwargs: Dict = {
            "moment_estimator": self.name,
            "use_compiled_kernel": self.use_compiled_kernel,
        }
        if self.samples is not None:
            kwargs["mcmc_samples"] = self.samples
        if self.burn_in is not None:
            kwargs["mcmc_burn_in"] = self.burn_in
        if self.adapt is not None:
            kwargs["mcmc_adapt"] = self.adapt
        if self.ep_iterations is not None:
            kwargs["ep_max_iterations"] = self.ep_iterations
        if self.megabatch is not None:
            kwargs["megabatch"] = self.megabatch
        if self.kernel_exec is not None:
            kwargs["kernel_exec"] = self.kernel_exec
        return kwargs


@dataclass(frozen=True)
class RecorderSpec:
    """Chain-trace capture for a run.

    A bare ``RecorderSpec()`` collects every per-site chain in memory (the
    historical ``chain_recorder=`` behaviour).  With ``sink`` set, streaming
    executions flush the recorder to that tracefile path after every
    inference round, so the in-memory buffer stays bounded by one round.
    ``params`` is stamped into the trace header's ``chain_params``.
    """

    sink: Optional[str] = None
    params: Tuple[Tuple[str, object], ...] = ()

    def __post_init__(self) -> None:
        if self.sink is not None and not isinstance(self.sink, str):
            object.__setattr__(self, "sink", str(self.sink))
        _frozen_tuple(self, "params")

    def build(self) -> ChainTrace:
        """Materialise the recorder every engine of the run will share."""
        return ChainTrace(params=dict(self.params))


@dataclass(frozen=True)
class ObserverSpec:
    """Observability for a run; everything defaults off.

    ``trace`` names a JSONL file that receives one OTLP-shaped dict per
    finished span (the run → round → slice → kernel hierarchy).
    ``metrics`` enables the metrics registry and names where its summary
    goes: ``"console"`` (or ``"-"``) prints it, anything else is a JSON
    file path.  ``estimates=True`` streams one ``"estimate"`` record per
    completed slice into the recorder's tracefile sink (requires a
    :class:`RecorderSpec` with ``sink`` set), making the tracefile a
    complete replayable run log.  ``mixing`` (on whenever the observer is
    present) runs the fleet-wide chain-health analysis over recorded chain
    visits at end of run and emits its findings as events and spans.
    ``spans_in_memory`` additionally retains finished spans on
    ``Observer.spans`` for inspection.
    """

    trace: Optional[str] = None
    metrics: Optional[str] = None
    estimates: bool = False
    mixing: bool = True
    spans_in_memory: bool = False

    def __post_init__(self) -> None:
        for name in ("trace", "metrics"):
            value = getattr(self, name)
            if value is not None and not isinstance(value, str):
                object.__setattr__(self, name, str(value))

    def build(self) -> Observer:
        """Materialise the run's :class:`~repro.obs.Observer`."""
        return Observer.from_options(
            trace=self.trace,
            metrics=self.metrics,
            estimates=self.estimates,
            mixing=self.mixing,
            spans_in_memory=self.spans_in_memory,
        )


@dataclass(frozen=True)
class CheckpointSpec:
    """Durable write-ahead logging for a run (crash-resume).

    ``path`` names the WAL tracefile (format version 4): every completed
    slice's estimate streams into it, and every ``every`` inference rounds
    each host's engine snapshot + ingest position is checkpointed and sealed
    with a commit marker (fsynced by default — turn ``fsync`` off only for
    benchmarks).  A run killed at any point resumes from the file with
    ``Pipeline.resume(path)`` to final estimates bit-identical with an
    uninterrupted run.
    """

    path: str
    every: int = 1
    fsync: bool = True

    def __post_init__(self) -> None:
        if not isinstance(self.path, str):
            object.__setattr__(self, "path", str(self.path))
        if self.every < 1:
            raise ValueError("every must be >= 1")


@dataclass(frozen=True)
class HostSpec:
    """One fleet host: a synthetic workload, a trace replay, or a real
    perf capture.

    ``trace`` (a tracefile path) makes this a replay host, in which case
    the synthetic knobs (``seed``/``n_ticks``/``arch``/``events``) must be
    left unset — the recorded stream defines them.

    ``perf`` (a perf capture path) makes this a real-trace host ingested
    through :mod:`repro.perfio`: ``format`` names the capture format
    (``"stat-csv"``/``"script"``/``"jsonl"``, or ``"auto"`` to sniff) and
    ``on_unknown`` the schema mapper's unknown-event policy (``"raise"``
    or ``"skip"``).  The captured stream defines the host, so the
    synthetic knobs (``seed``/``n_ticks``/``workload``) and ``trace`` are
    rejected — mirroring the replay-host rule — while ``arch`` (catalog
    selection for schema mapping) and ``events`` (monitored subset) stay
    meaningful.
    """

    workload: str = "steady"
    seed: Optional[int] = None
    n_ticks: Optional[int] = None
    arch: Optional[str] = None
    events: Optional[Tuple[str, ...]] = None
    host_id: Optional[str] = None
    trace: Optional[str] = None
    perf: Optional[str] = None
    format: str = "auto"
    on_unknown: str = "raise"

    def __post_init__(self) -> None:
        _frozen_tuple(self, "events")
        if self.trace is not None and not isinstance(self.trace, str):
            object.__setattr__(self, "trace", str(self.trace))
        if self.perf is not None and not isinstance(self.perf, str):
            object.__setattr__(self, "perf", str(self.perf))
        if self.perf is not None:
            from repro.perfio.mapping import UNKNOWN_POLICIES
            from repro.perfio.model import PERF_FORMATS

            if self.trace is not None:
                raise ValueError(
                    "HostSpec.perf and HostSpec.trace are mutually exclusive: "
                    "a host replays either a perf capture or a recorded "
                    "tracefile; drop one of the two fields"
                )
            overridden = [
                name
                for name, value in (
                    ("seed", self.seed),
                    ("n_ticks", self.n_ticks),
                    ("workload", None if self.workload == "steady" else self.workload),
                )
                if value is not None
            ]
            if overridden:
                raise ValueError(
                    f"real-trace host (perf={self.perf!r}) streams its captured "
                    f"records; {', '.join(overridden)} cannot be overridden — "
                    f"drop the field(s), or drop perf= to simulate a synthetic "
                    f"host instead"
                )
            if self.format not in ("auto",) + PERF_FORMATS:
                raise ValueError(
                    f"unknown perf capture format {self.format!r}; expected "
                    f"'auto' or one of {PERF_FORMATS}"
                )
            if self.on_unknown not in UNKNOWN_POLICIES:
                raise ValueError(
                    f"unknown on_unknown policy {self.on_unknown!r}; expected "
                    f"one of {UNKNOWN_POLICIES}"
                )
        else:
            if self.format != "auto":
                raise ValueError(
                    "HostSpec.format applies to real-trace hosts only; set "
                    "HostSpec.perf to the capture path (or drop format)"
                )
            if self.on_unknown != "raise":
                raise ValueError(
                    "HostSpec.on_unknown applies to real-trace hosts only; "
                    "set HostSpec.perf to the capture path (or drop "
                    "on_unknown)"
                )


@dataclass(frozen=True)
class SchedulerSpec:
    """The multiplexing policy rotating monitored events across counters.

    ``policy`` selects how synthetic hosts group events into counter
    configurations (:data:`repro.scheduling.SCHEDULE_KINDS`):

    * ``"overlap"`` — the paper's overlap-aware scheduler (the default when
      no ``SchedulerSpec`` is given, so existing runs are bit-identical);
    * ``"round-robin"`` — the Linux perf rotation;
    * ``"rl"`` — the :mod:`repro.mlsched` actor-critic policy (trained
      in-process, greedy rollout; deterministic for a fixed ``seed``);
    * ``"invariant-aware"`` — events grouped only along
      :mod:`repro.invariants` relations, so every configuration is jointly
      constrained.

    ``seed`` feeds the ``"rl"`` policy's agent; other policies ignore it.
    """

    policy: str = "overlap"
    seed: int = 0

    def __post_init__(self) -> None:
        from repro.scheduling import SCHEDULE_KINDS

        if self.policy not in SCHEDULE_KINDS:
            raise ValueError(
                f"unknown scheduler policy {self.policy!r}; "
                f"expected one of {SCHEDULE_KINDS}"
            )


@dataclass(frozen=True)
class ContentionSpec:
    """PCIe interconnect contention applied to every synthetic workload.

    ``background`` accelerator streams (0-5: the training GPU, then the
    socket-1 worker GPUs) share the monitored host's DMA path through the
    case-study topology (:mod:`repro.interconnect`); the resulting max-min
    fair slowdown throttles each host's workload via
    :func:`repro.workloads.contended_workload` before the machine model
    runs, so contention changes the *trace*, deterministically, not the
    estimator.  ``size_mb`` sizes every transfer (slowdown is
    size-invariant in the fair-share model but recorded for reports).
    """

    background: int = 2
    size_mb: float = 64.0

    def __post_init__(self) -> None:
        from repro.workloads.contention import contention_slowdown

        # Validates the ranges and proves the topology can price this spec.
        contention_slowdown(background=self.background, size_mb=self.size_mb)

    def slowdown(self) -> float:
        """The fractional DMA slowdown this spec resolves to (pure)."""
        from repro.workloads.contention import contention_slowdown

        return contention_slowdown(background=self.background, size_mb=self.size_mb)


@dataclass(frozen=True)
class RunSpec:
    """A complete declarative estimation run.

    The event selection mirrors ``PerfSession``/``FleetService``: explicit
    ``events`` win over ``metrics`` (derived-metric selection), and with
    neither the standard profiling set is monitored.  ``engine_overrides``
    is the escape hatch for engine kwargs the spec does not model
    (key/value pairs, applied last).  ``fault_policy`` opts the workers
    into retry/timeout/quarantine enforcement
    (:class:`~repro.fleet.faults.FaultPolicySpec`), ``checkpoint`` opts the
    run into durable write-ahead logging (:class:`CheckpointSpec`); both
    default off, leaving the hot path untouched.

    The scenario-grid axes are spec fields too: ``scheduler``
    (:class:`SchedulerSpec`) picks the multiplexing policy for synthetic
    hosts, ``contention`` (:class:`ContentionSpec`) throttles their
    workloads with PCIe contention, and ``baselines`` names registered
    baseline correction methods (``repro.fg.registry`` entries with
    ``baseline=True``, e.g. ``"linux"``/``"counterminer"``/``"wm+pin"``)
    to fan the same sampled streams through — the run then carries a
    :class:`~repro.api.comparison.ComparisonReport` scoring BayesPerf
    against each baseline on ground truth.  All three default to the seed
    behaviour (overlap scheduling, no contention, no comparison).
    """

    arch: str = "x86"
    events: Optional[Tuple[str, ...]] = None
    metrics: Optional[Tuple[str, ...]] = None
    hosts: Tuple[HostSpec, ...] = ()
    estimator: EstimatorSpec = field(default_factory=EstimatorSpec)
    recorder: Optional[RecorderSpec] = None
    observer: Optional[ObserverSpec] = None
    mode: str = "pool"
    n_workers: int = 4
    batch_size: int = 8
    buffer_capacity: int = 256
    pump_records: Optional[int] = None
    samples_per_tick: int = 4
    engine_overrides: Tuple[Tuple[str, object], ...] = ()
    fault_policy: Optional[FaultPolicySpec] = None
    checkpoint: Optional[CheckpointSpec] = None
    scheduler: Optional[SchedulerSpec] = None
    contention: Optional[ContentionSpec] = None
    baselines: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        _frozen_tuple(self, "events")
        _frozen_tuple(self, "metrics")
        _frozen_tuple(self, "hosts")
        _frozen_tuple(self, "engine_overrides")
        _frozen_tuple(self, "baselines")
        if self.baselines:
            import repro.baselines  # noqa: F401  (registers the baseline entries)
        for name in self.baselines:
            entry = get_estimator(name)
            if not entry.baseline:
                raise ValueError(
                    f"{name!r} is a moment estimator, not a baseline "
                    f"correction method; put it in RunSpec.estimator instead"
                )

    @classmethod
    def fleet(
        cls,
        n_hosts: int,
        workload: str = "steady",
        *,
        n_ticks: Optional[int] = None,
        seed: int = 0,
        **kwargs,
    ) -> "RunSpec":
        """Spec for a uniform synthetic fleet: *n_hosts* hosts of *workload*
        with consecutive seeds starting at *seed*."""
        hosts = tuple(
            HostSpec(workload=workload, seed=seed + index, n_ticks=n_ticks)
            for index in range(n_hosts)
        )
        return cls(hosts=hosts, **kwargs)

    def engine_kwargs(self) -> Dict:
        """The engine configuration this spec resolves to."""
        kwargs = self.estimator.engine_kwargs()
        kwargs.update(self.engine_overrides)
        return kwargs

    # -- serialization ------------------------------------------------------

    def to_dict(self) -> Dict:
        """JSON-serialisable form of the whole spec.

        The write-ahead log stamps this into its header so a crashed run's
        file alone suffices to rebuild and resume the pipeline
        (``RunSpec.from_dict`` is the exact inverse).  ``engine_overrides``
        values must be JSON-representable — runtime objects (e.g. a shared
        ``ChainTrace``) cannot ride along.
        """
        return asdict(self)

    @classmethod
    def from_dict(cls, payload: Mapping) -> "RunSpec":
        """Rebuild a spec from :meth:`to_dict` output (JSON round-tripped)."""
        data = dict(payload)
        recorder = None
        if data.get("recorder"):
            fields_ = dict(data["recorder"])
            fields_["params"] = tuple(
                (str(key), value) for key, value in fields_.get("params", ())
            )
            recorder = RecorderSpec(**fields_)
        return cls(
            arch=data.get("arch", "x86"),
            events=tuple(data["events"]) if data.get("events") is not None else None,
            metrics=tuple(data["metrics"]) if data.get("metrics") is not None else None,
            hosts=tuple(HostSpec(**dict(host)) for host in data.get("hosts", ())),
            estimator=(
                EstimatorSpec(**dict(data["estimator"]))
                if data.get("estimator")
                else EstimatorSpec()
            ),
            recorder=recorder,
            observer=(
                ObserverSpec(**dict(data["observer"])) if data.get("observer") else None
            ),
            mode=data.get("mode", "pool"),
            n_workers=int(data.get("n_workers", 4)),
            batch_size=int(data.get("batch_size", 8)),
            buffer_capacity=int(data.get("buffer_capacity", 256)),
            pump_records=(
                int(data["pump_records"])
                if data.get("pump_records") is not None
                else None
            ),
            samples_per_tick=int(data.get("samples_per_tick", 4)),
            engine_overrides=tuple(
                (str(key), value) for key, value in data.get("engine_overrides", ())
            ),
            fault_policy=(
                FaultPolicySpec(**dict(data["fault_policy"]))
                if data.get("fault_policy")
                else None
            ),
            checkpoint=(
                CheckpointSpec(**dict(data["checkpoint"]))
                if data.get("checkpoint")
                else None
            ),
            scheduler=(
                SchedulerSpec(**dict(data["scheduler"]))
                if data.get("scheduler")
                else None
            ),
            contention=(
                ContentionSpec(**dict(data["contention"]))
                if data.get("contention")
                else None
            ),
            baselines=tuple(str(name) for name in data.get("baselines", ())),
        )
