"""OTel-compatible spans over the estimation pipeline.

The span model mirrors OpenTelemetry's wire shape without depending on the
SDK: a :class:`Span` carries a :class:`SpanContext` (trace id + span id), a
parent link, free-form attributes, and both wall-clock and CPU timing.  A
:class:`Tracer` hands spans out as context managers and maintains the active
span stack, so nested instrumentation (pipeline run → worker round →
per-slice solve → kernel stage) parents itself without any explicit
plumbing.  Finished spans fan out to :class:`SpanProcessor` instances —
:class:`JsonlSpanExporter` writes OTLP-shaped dicts one per line (greppable,
ingestable by collectors), :class:`InMemorySpanProcessor` keeps the finished
spans and reconstructs the tree for tests and reports.

Everything here is synchronous and single-process, matching the fleet drive
loop; the active-span stack is therefore a plain list, and ``end()`` is
tolerant of out-of-order closure (an abandoned streaming consumer can close
the root before an in-flight round span).
"""

from __future__ import annotations

import itertools
import json
import time
import uuid
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

__all__ = [
    "InMemorySpanProcessor",
    "JsonlSpanExporter",
    "Span",
    "SpanContext",
    "SpanProcessor",
    "Tracer",
]


@dataclass(frozen=True)
class SpanContext:
    """Identity of one span: the run's trace id plus the span's own id."""

    trace_id: str
    span_id: str


@dataclass
class Span:
    """One timed operation in the pipeline, OTel-shaped.

    Wall-clock timing uses the epoch (``start_unix_nano``/``end_unix_nano``)
    so exported spans line up with external monitoring; ``cpu_ns`` measures
    process CPU time over the same interval, which is what separates "slow
    because computing" from "slow because waiting".
    """

    name: str
    context: SpanContext
    parent_id: Optional[str] = None
    attributes: Dict[str, object] = field(default_factory=dict)
    start_unix_nano: int = 0
    end_unix_nano: int = 0
    cpu_ns: int = 0
    status: str = "OK"
    _start_perf: int = 0
    _start_cpu: int = 0

    @property
    def trace_id(self) -> str:
        return self.context.trace_id

    @property
    def span_id(self) -> str:
        return self.context.span_id

    @property
    def duration_ns(self) -> int:
        return max(self.end_unix_nano - self.start_unix_nano, 0)

    @property
    def ended(self) -> bool:
        return self.end_unix_nano != 0

    def set_attribute(self, key: str, value: object) -> None:
        self.attributes[key] = value

    def to_otlp(self) -> Dict:
        """The span as an OTLP-shaped JSON-serialisable dict."""
        return {
            "name": self.name,
            "trace_id": self.context.trace_id,
            "span_id": self.context.span_id,
            "parent_span_id": self.parent_id,
            "start_time_unix_nano": int(self.start_unix_nano),
            "end_time_unix_nano": int(self.end_unix_nano),
            "duration_ns": int(self.duration_ns),
            "cpu_time_ns": int(self.cpu_ns),
            "attributes": dict(self.attributes),
            "status": self.status,
        }


class SpanProcessor:
    """Base class for span consumers (the event-processor idiom for spans)."""

    def on_start(self, span: Span) -> None:
        """Called when a span starts.  Override as needed."""

    def on_end(self, span: Span) -> None:
        """Called when a span ends.  Override as needed."""

    def shutdown(self) -> None:
        """Called once when tracing shuts down.  Override to flush buffers."""


class JsonlSpanExporter(SpanProcessor):
    """Writes every finished span to a JSONL file, one OTLP dict per line."""

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self._stream = self.path.open("w", encoding="utf-8")
        self.exported = 0

    def on_end(self, span: Span) -> None:
        self._stream.write(json.dumps(span.to_otlp()) + "\n")
        self.exported += 1

    def shutdown(self) -> None:
        if not self._stream.closed:
            self._stream.close()


class InMemorySpanProcessor(SpanProcessor):
    """Keeps finished spans and reconstructs the tree (the testing sink)."""

    def __init__(self) -> None:
        self.spans: List[Span] = []

    def on_end(self, span: Span) -> None:
        self.spans.append(span)

    def by_name(self, name: str) -> List[Span]:
        return [span for span in self.spans if span.name == name]

    def roots(self) -> List[Span]:
        """Spans whose parent never finished here (usually the run roots)."""
        ids = {span.span_id for span in self.spans}
        return [span for span in self.spans if span.parent_id not in ids]

    def children(self, span: Span) -> List[Span]:
        return [s for s in self.spans if s.parent_id == span.span_id]

    def tree(self) -> Dict[Optional[str], List[Span]]:
        """Parent span id -> finished children, in completion order."""
        tree: Dict[Optional[str], List[Span]] = {}
        for span in self.spans:
            tree.setdefault(span.parent_id, []).append(span)
        return tree


class _ActiveSpan:
    """Context-manager wrapper the tracer hands out from :meth:`Tracer.span`."""

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: "Tracer", span: Span) -> None:
        self._tracer = tracer
        self._span = span

    def __enter__(self) -> Span:
        return self._span

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is not None:
            self._span.status = "ERROR"
            self._span.attributes.setdefault("error.type", exc_type.__name__)
        self._tracer.end(self._span)


class Tracer:
    """Starts spans, tracks the active stack, fans finished spans out.

    One tracer per run: every span it starts shares one ``trace_id``.  The
    parent of a new span is whatever span is currently innermost — callers
    never pass parents explicitly, the call structure *is* the tree.
    """

    def __init__(self, processors: Sequence[SpanProcessor] = ()) -> None:
        self._processors: List[SpanProcessor] = list(processors)
        self.trace_id = uuid.uuid4().hex
        self._ids = itertools.count(1)
        self._stack: List[Span] = []

    def add(self, processor: SpanProcessor) -> None:
        self._processors.append(processor)

    @property
    def current(self) -> Optional[Span]:
        """The innermost active span, if any."""
        return self._stack[-1] if self._stack else None

    def start(self, name: str, **attributes) -> Span:
        """Start a span (parented under the current one) and push it active."""
        span = Span(
            name=name,
            context=SpanContext(
                trace_id=self.trace_id, span_id=f"{next(self._ids):016x}"
            ),
            parent_id=self._stack[-1].span_id if self._stack else None,
            attributes=dict(attributes),
            start_unix_nano=time.time_ns(),
            _start_perf=time.perf_counter_ns(),
            _start_cpu=time.process_time_ns(),
        )
        self._stack.append(span)
        for processor in self._processors:
            processor.on_start(span)
        return span

    def end(self, span: Span) -> None:
        """Finish *span* and hand it to every processor.

        Closure is stack-tolerant: ending a span that is not innermost just
        removes it from wherever it sits (an early-terminated consumer may
        unwind out of order), and ending twice is a no-op.
        """
        if span.ended:
            return
        span.end_unix_nano = span.start_unix_nano + max(
            time.perf_counter_ns() - span._start_perf, 0
        )
        span.cpu_ns = max(time.process_time_ns() - span._start_cpu, 0)
        if span in self._stack:
            self._stack.remove(span)
        for processor in self._processors:
            processor.on_end(span)

    def span(self, name: str, **attributes) -> _ActiveSpan:
        """Start a span as a context manager: ``with tracer.span("x"): ...``."""
        return _ActiveSpan(self, self.start(name, **attributes))

    def shutdown(self) -> None:
        """End any spans left active (outermost last), then flush processors."""
        while self._stack:
            self.end(self._stack[-1])
        for processor in self._processors:
            processor.shutdown()
