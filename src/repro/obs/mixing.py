"""Chain-health analytics: the fleet-wide mixing-pathology report.

The per-site tilted-MCMC samplers record one :class:`ChainSiteVisit` per
chain they run, including the per-window burn-in acceptance trajectory when
adaptation is on.  This module turns that stream — live from a
:class:`~repro.fg.mcmc.ChainTrace` recorder, or replayed from a tracefile —
into actionable health flags:

* ``stuck-chain`` — a chain that never accepted a proposal: its moment
  estimates are the initial state, not samples.
* ``collapsed-acceptance`` — the burn-in trajectory started healthy and fell
  to zero: adaptation drove the proposal scale somewhere pathological.
* ``non-monotone-adaptation`` — the windowed acceptance oscillated instead
  of settling: the adaptation loop is fighting the target.
* ``fleet-outlier`` — a slice whose aggregate acceptance rate is a robust
  (median/MAD) outlier against the whole fleet: the cross-host comparison
  only a fleet-wide view can make.

The :class:`MixingAccumulator` consumes visits incrementally (it sits on the
streaming flush path, so analyzing a run costs no extra memory); a
:class:`MixingReport` is its end-of-run summary, renderable for the CLI and
serialisable for dashboards.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple, Union

from repro.fg.mcmc import ChainSiteVisit, ChainTrace

__all__ = [
    "ChainHealthFlag",
    "MixingAccumulator",
    "MixingReport",
    "analyze_chain",
    "analyze_tracefile",
]

#: Acceptance below this (with enough steps to judge) marks a stuck chain.
STUCK_RATE = 1e-9
#: Minimum chain steps before a zero-acceptance chain counts as stuck.
MIN_STEPS_TO_JUDGE = 10
#: Robust z-score (0.6745 * (x - median) / MAD) beyond which a slice's
#: acceptance rate is a fleet-wide outlier (the classic 3.5 cutoff).
OUTLIER_Z = 3.5
#: Minimum slices before fleet-wide outlier detection is meaningful.
MIN_SLICES_FOR_OUTLIERS = 8
#: Direction changes in the burn-in trajectory beyond which adaptation is
#: flagged as non-monotone (one reversal is normal overshoot-and-settle).
MAX_DIRECTION_CHANGES = 1


@dataclass(frozen=True)
class ChainHealthFlag:
    """One detected mixing pathology."""

    reason: str
    slice_id: int
    site: str = ""
    value: float = 0.0
    detail: str = ""

    def render(self) -> str:
        site = f" site={self.site}" if self.site else ""
        return f"[{self.reason}] slice={self.slice_id}{site} value={self.value:.4g} {self.detail}"


@dataclass
class _SliceStats:
    """Aggregate chain statistics for one inference slice."""

    accepted: int = 0
    steps: int = 0
    visits: int = 0

    @property
    def acceptance_rate(self) -> float:
        return self.accepted / self.steps if self.steps else 0.0


def _median(values: List[float]) -> float:
    ordered = sorted(values)
    n = len(ordered)
    mid = n // 2
    return ordered[mid] if n % 2 else 0.5 * (ordered[mid - 1] + ordered[mid])


def _trajectory_flags(visit: ChainSiteVisit) -> List[ChainHealthFlag]:
    """Per-visit pathology checks on the burn-in acceptance trajectory."""
    flags: List[ChainHealthFlag] = []
    if visit.n_steps >= MIN_STEPS_TO_JUDGE and visit.acceptance_rate <= STUCK_RATE:
        flags.append(
            ChainHealthFlag(
                reason="stuck-chain",
                slice_id=visit.slice_id,
                site=visit.site,
                value=visit.acceptance_rate,
                detail=f"0/{visit.n_steps} proposals accepted",
            )
        )
    windows = visit.windows
    if len(windows) >= 2 and windows[0] > 0 and windows[-1] == 0:
        flags.append(
            ChainHealthFlag(
                reason="collapsed-acceptance",
                slice_id=visit.slice_id,
                site=visit.site,
                value=float(windows[-1]),
                detail=f"burn-in windows {list(windows)} collapsed to zero",
            )
        )
    if len(windows) >= 3:
        deltas = [b - a for a, b in zip(windows, windows[1:])]
        directions = [d for d in deltas if d != 0]
        changes = sum(
            1 for a, b in zip(directions, directions[1:]) if (a > 0) != (b > 0)
        )
        swing = max(windows) - min(windows)
        # Small jitter around the target is healthy; flag only oscillations
        # with real amplitude relative to the best window.
        if changes > MAX_DIRECTION_CHANGES and swing >= max(2, max(windows) // 2):
            flags.append(
                ChainHealthFlag(
                    reason="non-monotone-adaptation",
                    slice_id=visit.slice_id,
                    site=visit.site,
                    value=float(changes),
                    detail=f"burn-in windows {list(windows)} oscillated",
                )
            )
    return flags


@dataclass
class MixingReport:
    """Fleet-wide chain-health summary (what ``fleet report`` renders)."""

    n_visits: int = 0
    n_slices: int = 0
    median_acceptance: float = 0.0
    mad_acceptance: float = 0.0
    min_acceptance: float = 0.0
    max_acceptance: float = 0.0
    flags: List[ChainHealthFlag] = field(default_factory=list)

    @property
    def outlier_slices(self) -> Tuple[int, ...]:
        """Slice ids flagged as fleet-wide acceptance outliers."""
        seen: Dict[int, None] = {}
        for flag in self.flags:
            if flag.reason == "fleet-outlier":
                seen.setdefault(flag.slice_id, None)
        return tuple(seen)

    @property
    def healthy(self) -> bool:
        return not self.flags

    def flags_by_reason(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for flag in self.flags:
            counts[flag.reason] = counts.get(flag.reason, 0) + 1
        return counts

    def to_dict(self) -> Dict:
        return {
            "n_visits": self.n_visits,
            "n_slices": self.n_slices,
            "acceptance": {
                "median": self.median_acceptance,
                "mad": self.mad_acceptance,
                "min": self.min_acceptance,
                "max": self.max_acceptance,
            },
            "healthy": self.healthy,
            "flags": [
                {
                    "reason": flag.reason,
                    "slice": flag.slice_id,
                    "site": flag.site,
                    "value": flag.value,
                    "detail": flag.detail,
                }
                for flag in self.flags
            ],
        }

    def render(self) -> str:
        lines = [
            f"chains: {self.n_visits} visits over {self.n_slices} slices",
            (
                f"acceptance: median={self.median_acceptance:.3f} "
                f"mad={self.mad_acceptance:.3f} "
                f"range=[{self.min_acceptance:.3f}, {self.max_acceptance:.3f}]"
            ),
        ]
        if self.healthy:
            lines.append("mixing: healthy (no pathologies flagged)")
        else:
            by_reason = ", ".join(
                f"{reason}: {count}" for reason, count in sorted(self.flags_by_reason().items())
            )
            lines.append(f"mixing: {len(self.flags)} flag(s) ({by_reason})")
            lines.extend(f"  {flag.render()}" for flag in self.flags)
        return "\n".join(lines)


class MixingAccumulator:
    """Streams chain visits into per-slice statistics, bounded memory.

    Sits on the tracefile flush path: :meth:`consume` each drained batch of
    visits, then :meth:`report` once at end of run.  Per-visit pathologies
    are detected at consume time, so only one aggregate per slice (three
    ints) and the flag list persist.
    """

    def __init__(self) -> None:
        self._slices: Dict[int, _SliceStats] = {}
        self._flags: List[ChainHealthFlag] = []
        self._seen_flags: set = set()
        self._n_visits = 0

    def consume(self, visits: Iterable[ChainSiteVisit]) -> None:
        for visit in visits:
            self._n_visits += 1
            stats = self._slices.setdefault(visit.slice_id, _SliceStats())
            stats.accepted += visit.accepted
            stats.steps += visit.n_steps
            stats.visits += 1
            for flag in _trajectory_flags(visit):
                # One pathology per (reason, slice, site): the same site
                # re-visited across EP iterations is one finding, not many.
                key = (flag.reason, flag.slice_id, flag.site)
                if key not in self._seen_flags:
                    self._seen_flags.add(key)
                    self._flags.append(flag)

    @property
    def n_visits(self) -> int:
        return self._n_visits

    def report(self) -> MixingReport:
        """Close the books: fleet-wide outlier detection plus the summary."""
        rates = {
            slice_id: stats.acceptance_rate
            for slice_id, stats in self._slices.items()
            if stats.steps > 0
        }
        flags = list(self._flags)
        median = mad = lo = hi = 0.0
        if rates:
            values = list(rates.values())
            median = _median(values)
            mad = _median([abs(v - median) for v in values])
            lo, hi = min(values), max(values)
            if len(rates) >= MIN_SLICES_FOR_OUTLIERS:
                for slice_id in sorted(rates):
                    rate = rates[slice_id]
                    if mad > 0:
                        z = 0.6745 * (rate - median) / mad
                        is_outlier = abs(z) > OUTLIER_Z
                        value = z
                    else:
                        # A perfectly uniform fleet: any real deviation from
                        # the common rate is an outlier by itself.
                        is_outlier = abs(rate - median) > 0.05
                        value = rate - median
                    if is_outlier:
                        flags.append(
                            ChainHealthFlag(
                                reason="fleet-outlier",
                                slice_id=slice_id,
                                value=value,
                                detail=(
                                    f"acceptance {rate:.3f} vs fleet median "
                                    f"{median:.3f} (mad {mad:.3f})"
                                ),
                            )
                        )
        return MixingReport(
            n_visits=self._n_visits,
            n_slices=len(self._slices),
            median_acceptance=median,
            mad_acceptance=mad,
            min_acceptance=lo,
            max_acceptance=hi,
            flags=flags,
        )


def analyze_chain(chain: Union[ChainTrace, Iterable[ChainSiteVisit]]) -> MixingReport:
    """One-shot analysis of a recorded chain trace (or any visit iterable)."""
    accumulator = MixingAccumulator()
    visits = chain.visits if isinstance(chain, ChainTrace) else chain
    accumulator.consume(visits)
    return accumulator.report()


def analyze_tracefile(path) -> Optional[MixingReport]:
    """Analyze the chain records of a tracefile; ``None`` if it has none."""
    from repro.fleet.tracefile import read_trace  # local import: fleet sits above obs

    trace = read_trace(path)
    if trace.chain is None:
        return None
    return analyze_chain(trace.chain)
