"""Observability for the estimation pipeline: spans, metrics, chain health.

Three layers, composable and individually optional:

* :mod:`repro.obs.spans` — an OTel-compatible span model and
  :class:`Tracer` instrumenting the whole pipeline (run → worker round →
  per-slice solve → kernel compile/bind/solve), exported as OTLP-shaped
  JSONL or kept in memory;
* :mod:`repro.obs.metrics` — counters/gauges/histograms behind one
  :class:`MetricsRegistry` (slice latency, batch occupancy, ring-buffer
  depth, kernel-cache hit rate, chain acceptance), with console and JSON
  exports;
* :mod:`repro.obs.mixing` — fleet-wide chain-health analytics over the
  per-window burn-in acceptance trajectories chain traces carry (stuck
  chains, collapsed acceptance, non-monotone adaptation, robust fleet
  outliers).

An :class:`Observer` bundles a run's tracer and registry behind null-safe
helpers; runs opt in through :class:`repro.api.ObserverSpec` (observers
default off, and a disabled observer costs the hot path nothing).
"""

from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.mixing import (
    ChainHealthFlag,
    MixingAccumulator,
    MixingReport,
    analyze_chain,
    analyze_tracefile,
)
from repro.obs.observer import Observer
from repro.obs.spans import (
    InMemorySpanProcessor,
    JsonlSpanExporter,
    Span,
    SpanContext,
    SpanProcessor,
    Tracer,
)

__all__ = [
    "ChainHealthFlag",
    "Counter",
    "Gauge",
    "Histogram",
    "InMemorySpanProcessor",
    "JsonlSpanExporter",
    "MetricsRegistry",
    "MixingAccumulator",
    "MixingReport",
    "Observer",
    "Span",
    "SpanContext",
    "SpanProcessor",
    "Tracer",
    "analyze_chain",
    "analyze_tracefile",
]
