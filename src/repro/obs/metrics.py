"""Pipeline metrics: counters, gauges and histograms behind one registry.

The instruments are deliberately small — the Prometheus vocabulary without
the client library: a :class:`Counter` only goes up, a :class:`Gauge` holds
the last value, a :class:`Histogram` buckets observations against fixed
upper bounds.  A :class:`MetricsRegistry` hands instruments out by name
(get-or-create, so instrumentation sites never coordinate) and renders one
summary for the console or JSON export.

Instrument names are dotted paths (``slice.latency_seconds``,
``kernel.cache.hits``) so external tooling can prefix-filter them.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry"]

#: Prometheus-style latency buckets (seconds).
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0,
)


class Counter:
    """Monotonically increasing count."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a gauge for deltas")
        self.value += amount


class Gauge:
    """Last-write-wins instantaneous value."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: float = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def max(self, value: float) -> None:
        """Keep the high-water mark of everything set through here."""
        self.value = max(self.value, float(value))


class Histogram:
    """Fixed-bucket distribution of observations.

    ``buckets`` are inclusive upper bounds; observations above the last
    bound land in the implicit ``+Inf`` bucket.  Count/sum/min/max are
    tracked exactly regardless of bucketing.
    """

    def __init__(self, name: str, buckets: Optional[Sequence[float]] = None) -> None:
        self.name = name
        self.buckets: Tuple[float, ...] = tuple(
            sorted(buckets if buckets is not None else DEFAULT_BUCKETS)
        )
        self.bucket_counts: List[int] = [0] * (len(self.buckets) + 1)
        self.count = 0
        self.sum = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def record(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.sum += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)
        for index, bound in enumerate(self.buckets):
            if value <= bound:
                self.bucket_counts[index] += 1
                return
        self.bucket_counts[-1] += 1

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def summary(self) -> Dict:
        labels = [f"le_{bound:g}" for bound in self.buckets] + ["le_inf"]
        return {
            "count": self.count,
            "sum": self.sum,
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
            "buckets": dict(zip(labels, self.bucket_counts)),
        }


class MetricsRegistry:
    """Names instruments and renders them; one per observed run."""

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    # -- get-or-create instruments ---------------------------------------

    def counter(self, name: str) -> Counter:
        try:
            return self._counters[name]
        except KeyError:
            self._check_free(name, self._counters)
            counter = self._counters[name] = Counter(name)
            return counter

    def gauge(self, name: str) -> Gauge:
        try:
            return self._gauges[name]
        except KeyError:
            self._check_free(name, self._gauges)
            gauge = self._gauges[name] = Gauge(name)
            return gauge

    def histogram(self, name: str, buckets: Optional[Sequence[float]] = None) -> Histogram:
        try:
            return self._histograms[name]
        except KeyError:
            self._check_free(name, self._histograms)
            histogram = self._histograms[name] = Histogram(name, buckets)
            return histogram

    def _check_free(self, name: str, own: Dict) -> None:
        for table in (self._counters, self._gauges, self._histograms):
            if table is not own and name in table:
                raise ValueError(f"metric {name!r} already registered with another type")

    # -- export -----------------------------------------------------------

    def summary(self) -> Dict:
        """Everything recorded, as one JSON-serialisable dict."""
        return {
            "counters": {name: c.value for name, c in sorted(self._counters.items())},
            "gauges": {name: g.value for name, g in sorted(self._gauges.items())},
            "histograms": {
                name: h.summary() for name, h in sorted(self._histograms.items())
            },
        }

    def render(self) -> str:
        """Human-readable one-line-per-instrument summary (the console export)."""
        lines: List[str] = []
        for name, counter in sorted(self._counters.items()):
            lines.append(f"{name} {counter.value}")
        for name, gauge in sorted(self._gauges.items()):
            lines.append(f"{name} {gauge.value:g}")
        for name, histogram in sorted(self._histograms.items()):
            lines.append(
                f"{name} count={histogram.count} mean={histogram.mean:.6g} "
                f"min={histogram.min if histogram.min is not None else 'n/a'} "
                f"max={histogram.max if histogram.max is not None else 'n/a'}"
            )
        return "\n".join(lines)

    def export_json(self, path: Union[str, Path]) -> Path:
        """Write :meth:`summary` to *path* as JSON."""
        path = Path(path)
        path.write_text(json.dumps(self.summary(), indent=2) + "\n", encoding="utf-8")
        return path
