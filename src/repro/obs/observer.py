"""The observer: one handle bundling a run's tracer and metrics registry.

Every instrumentation site in the pipeline (engine kernel stages, worker
solves, the drive loop) holds at most an ``Optional[Observer]``; when it is
``None`` — the default everywhere — the hot path pays nothing.  When
present, the observer's null-safe helpers route spans to the
:class:`~repro.obs.spans.Tracer` and measurements to the
:class:`~repro.obs.metrics.MetricsRegistry`, each of which is independently
optional (a metrics-only observer never constructs spans and vice versa).

``Observer.from_options`` is the one constructor the spec layer and the CLI
share: *trace* names the span JSONL export path, *metrics* names the
summary destination (``"console"``/``"-"`` prints, anything else is a JSON
file path), *estimates* asks the pipeline to stream per-slice estimate
records into the recorder's tracefile sink, and *mixing* runs the
chain-health analysis at end of run.
"""

from __future__ import annotations

from contextlib import nullcontext
from typing import Optional, Sequence

from repro.obs.metrics import MetricsRegistry
from repro.obs.spans import (
    InMemorySpanProcessor,
    JsonlSpanExporter,
    SpanProcessor,
    Tracer,
)

__all__ = ["Observer"]

_NULL = nullcontext()


class Observer:
    """A run's observability bundle; ``close()`` flushes every export."""

    def __init__(
        self,
        *,
        tracer: Optional[Tracer] = None,
        metrics: Optional[MetricsRegistry] = None,
        estimates: bool = False,
        mixing: bool = True,
        metrics_sink: Optional[str] = None,
    ) -> None:
        self.tracer = tracer
        self.metrics = metrics
        self.estimates = estimates
        self.mixing = mixing
        self.metrics_sink = metrics_sink
        #: The in-memory span sink, when one was requested (test inspection).
        self.spans: Optional[InMemorySpanProcessor] = None
        self._closed = False

    @classmethod
    def from_options(
        cls,
        *,
        trace: Optional[str] = None,
        metrics: Optional[str] = None,
        estimates: bool = False,
        mixing: bool = True,
        spans_in_memory: bool = False,
    ) -> "Observer":
        """Build an observer from the :class:`~repro.api.ObserverSpec` knobs."""
        processors: list[SpanProcessor] = []
        memory: Optional[InMemorySpanProcessor] = None
        if trace is not None:
            processors.append(JsonlSpanExporter(trace))
        if spans_in_memory:
            memory = InMemorySpanProcessor()
            processors.append(memory)
        tracer = Tracer(processors) if processors else None
        registry = MetricsRegistry() if metrics is not None else None
        observer = cls(
            tracer=tracer,
            metrics=registry,
            estimates=estimates,
            mixing=mixing,
            metrics_sink=metrics,
        )
        observer.spans = memory
        return observer

    # -- null-safe instrumentation helpers --------------------------------

    @property
    def tracing(self) -> bool:
        return self.tracer is not None

    def span(self, name: str, **attributes):
        """A span context manager, or a no-op one when tracing is off."""
        if self.tracer is None:
            return _NULL
        return self.tracer.span(name, **attributes)

    def count(self, name: str, amount: int = 1) -> None:
        if self.metrics is not None:
            self.metrics.counter(name).inc(amount)

    def gauge(self, name: str, value: float) -> None:
        if self.metrics is not None:
            self.metrics.gauge(name).set(value)

    def gauge_max(self, name: str, value: float) -> None:
        if self.metrics is not None:
            self.metrics.gauge(name).max(value)

    def observe(
        self, name: str, value: float, buckets: Optional[Sequence[float]] = None
    ) -> None:
        if self.metrics is not None:
            self.metrics.histogram(name, buckets).record(value)

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        """Flush spans and export the metrics summary (idempotent)."""
        if self._closed:
            return
        self._closed = True
        if self.tracer is not None:
            self.tracer.shutdown()
        if self.metrics is not None and self.metrics_sink is not None:
            if self.metrics_sink in ("console", "-"):
                print(self.metrics.render())
            else:
                self.metrics.export_json(self.metrics_sink)
