"""Error definitions used by the evaluation (§2, §6.2)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.metrics.dtw import dtw_path
from repro.pmu.sampling import PolledTrace
from repro.pmu.traces import EstimateTrace


def relative_series_error(
    estimate: Sequence[float],
    reference: Sequence[float],
    *,
    align: bool = True,
    window: Optional[int] = 8,
    cap: Optional[float] = None,
) -> float:
    """Mean relative error between an estimated and a reference series.

    When ``align`` is true the two series are first aligned with dynamic time
    warping (the paper's error definition); otherwise the comparison is
    pointwise.  ``cap`` optionally bounds each per-point relative error so a
    single near-zero reference value cannot dominate the mean (used for
    derived ratio metrics).
    """
    estimate = np.asarray(estimate, dtype=float)
    reference = np.asarray(reference, dtype=float)
    if estimate.size == 0 or reference.size == 0:
        raise ValueError("series must be non-empty")
    if cap is not None and cap <= 0:
        raise ValueError("cap must be positive")
    if not align:
        if estimate.size != reference.size:
            raise ValueError("pointwise comparison requires equal-length series")
        pairs = list(zip(range(estimate.size), range(reference.size)))
    else:
        pairs = dtw_path(estimate, reference, window=window)
    errors = []
    for i, j in pairs:
        denom = max(abs(reference[j]), 1e-12)
        error = abs(estimate[i] - reference[j]) / denom
        if cap is not None:
            error = min(error, cap)
        errors.append(error)
    return float(np.mean(errors))


@dataclass
class ErrorReport:
    """Per-event and aggregate relative error of one correction method."""

    method: str
    per_event: Dict[str, float] = field(default_factory=dict)

    @property
    def mean_error(self) -> float:
        """Mean relative error across events (as a fraction, not percent)."""
        if not self.per_event:
            return float("nan")
        return float(np.mean(list(self.per_event.values())))

    @property
    def mean_error_percent(self) -> float:
        return 100.0 * self.mean_error

    def worst_events(self, count: int = 5) -> Tuple[Tuple[str, float], ...]:
        """Events with the largest error."""
        ranked = sorted(self.per_event.items(), key=lambda item: item[1], reverse=True)
        return tuple(ranked[:count])


def trace_error(
    estimates: EstimateTrace,
    reference: PolledTrace,
    *,
    events: Optional[Sequence[str]] = None,
    align: bool = True,
    window: Optional[int] = 8,
    skip_ticks: int = 0,
    aggregate_ticks: int = 1,
    cap: Optional[float] = None,
) -> ErrorReport:
    """Relative error of an estimate trace against the polled reference.

    Parameters
    ----------
    estimates:
        Per-tick estimates from a correction method.
    reference:
        Polled reference trace.
    events:
        Events to evaluate; defaults to the intersection of the two traces.
    align, window:
        DTW alignment controls.
    skip_ticks:
        Number of leading warm-up ticks excluded from the comparison (every
        correction method needs one schedule rotation before it has seen each
        event at least once).
    aggregate_ticks:
        Number of consecutive quanta summed into one comparison point.  A
        monitoring tool reads the counters once per read interval, not once
        per multiplexing quantum, so errors are compared at that granularity
        (1 compares raw per-quantum series).
    """
    if skip_ticks < 0:
        raise ValueError("skip_ticks must be non-negative")
    if aggregate_ticks <= 0:
        raise ValueError("aggregate_ticks must be positive")
    if events is None:
        events = tuple(name for name in estimates.events() if name in reference.events)
    report = ErrorReport(method=estimates.method)
    for event in events:
        estimate_series = estimates.series(event)[skip_ticks:]
        reference_series = reference.series(event)[skip_ticks:]
        if estimate_series.size == 0 or np.all(np.isnan(estimate_series)):
            continue
        estimate_series = np.nan_to_num(estimate_series, nan=0.0)
        if aggregate_ticks > 1:
            estimate_series = _aggregate(estimate_series, aggregate_ticks)
            reference_series = _aggregate(reference_series, aggregate_ticks)
        report.per_event[event] = relative_series_error(
            estimate_series, reference_series, align=align, window=window, cap=cap
        )
    return report


def _aggregate(series: np.ndarray, chunk: int) -> np.ndarray:
    """Sum a series over non-overlapping chunks (dropping the ragged tail)."""
    usable = (series.size // chunk) * chunk
    if usable == 0:
        return series
    return series[:usable].reshape(-1, chunk).sum(axis=1)


def normalized_improvement(baseline: ErrorReport, improved: ErrorReport) -> float:
    """How many times smaller the improved method's mean error is."""
    improved_error = improved.mean_error
    if improved_error <= 0:
        return float("inf")
    return baseline.mean_error / improved_error
