"""Dynamic time warping (Berndt & Clifford, 1994).

Used to align the corrected time series with the polled reference before the
error is computed, exactly as the paper's error definition prescribes (§2).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np


def _cost_matrix(first: np.ndarray, second: np.ndarray, window: Optional[int]) -> np.ndarray:
    n, m = len(first), len(second)
    if window is None:
        window = max(n, m)
    window = max(window, abs(n - m))
    cost = np.full((n + 1, m + 1), np.inf)
    cost[0, 0] = 0.0
    for i in range(1, n + 1):
        lo = max(1, i - window)
        hi = min(m, i + window)
        for j in range(lo, hi + 1):
            distance = abs(first[i - 1] - second[j - 1])
            cost[i, j] = distance + min(cost[i - 1, j], cost[i, j - 1], cost[i - 1, j - 1])
    return cost


def dtw_distance(
    first: Sequence[float], second: Sequence[float], *, window: Optional[int] = None
) -> float:
    """DTW distance between two series with an optional Sakoe-Chiba window."""
    first = np.asarray(first, dtype=float)
    second = np.asarray(second, dtype=float)
    if first.size == 0 or second.size == 0:
        raise ValueError("DTW requires non-empty series")
    cost = _cost_matrix(first, second, window)
    return float(cost[len(first), len(second)])


def dtw_path(
    first: Sequence[float], second: Sequence[float], *, window: Optional[int] = None
) -> List[Tuple[int, int]]:
    """Optimal DTW alignment path as a list of (index_first, index_second)."""
    first = np.asarray(first, dtype=float)
    second = np.asarray(second, dtype=float)
    if first.size == 0 or second.size == 0:
        raise ValueError("DTW requires non-empty series")
    cost = _cost_matrix(first, second, window)
    i, j = len(first), len(second)
    path: List[Tuple[int, int]] = []
    while i > 0 and j > 0:
        path.append((i - 1, j - 1))
        moves = (
            (cost[i - 1, j - 1], i - 1, j - 1),
            (cost[i - 1, j], i - 1, j),
            (cost[i, j - 1], i, j - 1),
        )
        _, i, j = min(moves, key=lambda item: item[0])
    while i > 0:
        path.append((i - 1, 0))
        i -= 1
    while j > 0:
        path.append((0, j - 1))
        j -= 1
    path.reverse()
    return path
