"""Measurement-error metrics.

The paper defines HPC error as the difference between corresponding
measurements made in a sampling-mode run and a polling-mode run, with the
correspondence established by dynamic time warping (§2).  This package
implements DTW alignment and the error/improvement summaries used throughout
the evaluation.
"""

from repro.metrics.dtw import dtw_distance, dtw_path
from repro.metrics.error import (
    ErrorReport,
    normalized_improvement,
    relative_series_error,
    trace_error,
)

__all__ = [
    "dtw_distance",
    "dtw_path",
    "ErrorReport",
    "relative_series_error",
    "trace_error",
    "normalized_improvement",
]
