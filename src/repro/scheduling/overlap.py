"""The BayesPerf overlap-aware scheduler (§4.1).

Starting from the set of events a monitoring application registered, the
scheduler produces a cyclic sequence of valid configurations such that
consecutive configurations are statistically connected: they either share an
event outright (one counter slot per configuration is reserved for an overlap
event carried over from the previous slice) or their Markov blankets in the
relation factor graph overlap.  When neither holds, a chain of intermediate
configurations is inserted along the shortest path through the relation
graph, and redundant steps (those that do not change the Markov blanket) are
pruned.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

import networkx as nx

from repro.events.catalog import EventCatalog
from repro.fg.graph import FactorGraph
from repro.fg.markov import blankets_overlap, markov_blanket_of_set
from repro.invariants.library import InvariantLibrary, standard_invariants
from repro.invariants.relation import EventRelation
from repro.pmu.configuration import CounterConfiguration
from repro.pmu.constraints import ConfigurationError, ValidityChecker
from repro.scheduling.schedule import Schedule
from repro.scheduling.structure import (
    build_event_adjacency,
    build_structure_graph,
    connectivity_order,
    instantiate_relations,
)


def _closure(graph: FactorGraph, events: Sequence[str]) -> Set[str]:
    """An event set together with its Markov blanket."""
    present = [event for event in events if graph.has_variable(event)]
    return set(events) | set(markov_blanket_of_set(graph, present))


def remove_redundant_steps(
    configurations: Sequence[CounterConfiguration], structure: FactorGraph
) -> List[CounterConfiguration]:
    """Drop configurations that do not change the Markov blanket (§4.1, opt. 2)."""
    pruned: List[CounterConfiguration] = []
    previous_closure: Optional[Set[str]] = None
    for configuration in configurations:
        closure = _closure(structure, configuration.events)
        if previous_closure is not None and closure == previous_closure:
            continue
        pruned.append(configuration)
        previous_closure = closure
    return pruned if pruned else list(configurations[:1])


def condense_common_step(
    events: Sequence[str], structure: FactorGraph
) -> Tuple[str, ...]:
    """Condense an event set through a common blanket member (§4.1, opt. 1).

    If a single event ``e*`` lies in the Markov blanket of every event of the
    set, the set can be represented by ``e*`` alone for the purpose of
    carrying statistical information to the next slice.
    """
    events = [event for event in events if structure.has_variable(event)]
    if len(events) <= 1:
        return tuple(events)
    common: Optional[Set[str]] = None
    for event in events:
        blanket = set(structure.neighbors(event))
        common = blanket if common is None else (common & blanket)
        if not common:
            return tuple(events)
    # Prefer the highest-degree common event as the condensation point.
    best = max(common, key=lambda node: structure.degree(node))
    return (best,)


class BayesPerfScheduler:
    """Builds overlap-aware schedules and exposes the relation structure.

    Parameters
    ----------
    catalog:
        Event catalog of the monitored CPU.
    library:
        Invariant library (defaults to the standard library).
    checker:
        Validity checker; defaults to one built from the catalog.
    """

    def __init__(
        self,
        catalog: EventCatalog,
        *,
        library: Optional[InvariantLibrary] = None,
        checker: Optional[ValidityChecker] = None,
    ) -> None:
        self.catalog = catalog
        self.library = library if library is not None else standard_invariants()
        self.checker = checker if checker is not None else ValidityChecker(catalog)

    # -- structure -------------------------------------------------------

    def relations_for(self, events: Sequence[str]) -> Tuple[EventRelation, ...]:
        """All relations the catalog supports.

        The relation graph is built from the complete vendor-derived
        invariant library: two monitored events may be statistically
        connected through latent events that are not themselves monitored.
        """
        del events  # the full library is used regardless of the monitored set
        return instantiate_relations(self.catalog, library=self.library)

    def structure_graph(self, events: Sequence[str]) -> FactorGraph:
        """Structure-only factor graph over the monitored events."""
        return build_structure_graph(self.relations_for(events), events=events)

    # -- schedule construction --------------------------------------------

    def build(self, events: Sequence[str], *, quantum_ticks: int = 1) -> Schedule:
        """Build the overlap-aware schedule for the monitored events."""
        fixed, programmable = self.checker.split_events(events)
        if not programmable:
            raise ValueError("overlap scheduling needs at least one programmable event")
        relations = self.relations_for(events)
        adjacency = build_event_adjacency(relations, events=programmable)
        structure = build_structure_graph(relations, events=tuple(events))
        capacity = self.checker.n_counters

        if len(programmable) <= capacity:
            configuration = self.checker.build_configuration(programmable)
            return Schedule(
                configurations=(configuration,),
                quantum_ticks=quantum_ticks,
                name="bayesperf-overlap",
            )

        ordered = list(connectivity_order(adjacency, programmable))
        configurations = self._build_overlapping_groups(ordered, adjacency, capacity)
        configurations = self._ensure_transitive_connectivity(
            configurations, adjacency, structure, capacity
        )
        configurations = remove_redundant_steps(configurations, structure)
        built = [self.checker.build_configuration(list(c.events)) for c in configurations]
        return Schedule(
            configurations=tuple(built),
            quantum_ticks=quantum_ticks,
            name="bayesperf-overlap",
        )

    # -- helpers ----------------------------------------------------------

    def _build_overlapping_groups(
        self, ordered: List[str], adjacency: nx.Graph, capacity: int
    ) -> List[CounterConfiguration]:
        """Pack events into groups, reserving one slot for an overlap event."""
        configurations: List[CounterConfiguration] = []
        pending = list(ordered)
        previous_events: Optional[Tuple[str, ...]] = None
        while pending:
            group: List[str] = []
            if previous_events is not None:
                overlap = self._pick_overlap_event(previous_events, adjacency, group)
                if overlap is not None:
                    group.append(overlap)
            deferred: List[str] = []
            while pending and len(group) < capacity:
                candidate = pending.pop(0)
                if self.checker.can_schedule(group + [candidate]):
                    group.append(candidate)
                else:
                    deferred.append(candidate)
            pending = deferred + pending
            if not [event for event in group if previous_events is None or event not in previous_events]:
                # Could not make progress (only the overlap event fit);
                # drop the overlap slot to avoid an infinite loop.
                if pending:
                    forced = pending.pop(0)
                    if not self.checker.can_schedule([forced]):
                        raise ConfigurationError(f"event {forced!r} cannot be scheduled on any counter")
                    group = [forced]
                else:
                    break
            configurations.append(self.checker.build_configuration(group))
            previous_events = configurations[-1].events
        return configurations

    def _pick_overlap_event(
        self, previous_events: Sequence[str], adjacency: nx.Graph, group: Sequence[str]
    ) -> Optional[str]:
        """Choose the event from the previous slice to repeat in the next one."""
        candidates = sorted(
            previous_events,
            key=lambda event: adjacency.degree(event) if event in adjacency else 0,
            reverse=True,
        )
        for candidate in candidates:
            if self.checker.can_schedule(list(group) + [candidate]):
                return candidate
        return None

    def _ensure_transitive_connectivity(
        self,
        configurations: List[CounterConfiguration],
        adjacency: nx.Graph,
        structure: FactorGraph,
        capacity: int,
    ) -> List[CounterConfiguration]:
        """Insert chain configurations where consecutive slices are not connected."""
        if len(configurations) <= 1:
            return configurations
        result: List[CounterConfiguration] = []
        n = len(configurations)
        for index in range(n):
            current = configurations[index]
            result.append(current)
            following = configurations[(index + 1) % n]
            if index == n - 1:
                # The wrap-around pair is left unchained; the engine's temporal
                # prior carries information across rotation boundaries.
                break
            if current.overlap(following):
                continue
            if blankets_overlap(structure, current.events, following.events):
                continue
            chain = self._shortest_chain(current, following, adjacency)
            for intermediate in self._chain_to_configurations(chain, capacity):
                result.append(intermediate)
        return result

    def _shortest_chain(
        self,
        current: CounterConfiguration,
        following: CounterConfiguration,
        adjacency: nx.Graph,
    ) -> List[str]:
        """Shortest relation-graph path between two configurations' events."""
        best_path: Optional[List[str]] = None
        for source in current.events:
            if source not in adjacency:
                continue
            for target in following.events:
                if target not in adjacency:
                    continue
                try:
                    path = nx.dijkstra_path(adjacency, source, target)
                except nx.NetworkXNoPath:
                    continue
                if best_path is None or len(path) < len(best_path):
                    best_path = path
        return best_path[1:-1] if best_path else []

    def _chain_to_configurations(
        self, chain: Sequence[str], capacity: int
    ) -> List[CounterConfiguration]:
        """Turn a relation-graph path into intermediate configurations."""
        configurations: List[CounterConfiguration] = []
        step: List[str] = []
        for event in chain:
            if self.checker.catalog.get(event).is_fixed:
                continue
            if not self.checker.can_schedule(step + [event]) or len(step) >= capacity:
                if step:
                    configurations.append(self.checker.build_configuration(step))
                step = []
            if self.checker.can_schedule([event]):
                step.append(event)
        if step:
            configurations.append(self.checker.build_configuration(step))
        return configurations


def overlap_schedule(
    catalog: EventCatalog,
    events: Sequence[str],
    *,
    library: Optional[InvariantLibrary] = None,
    checker: Optional[ValidityChecker] = None,
    quantum_ticks: int = 1,
) -> Schedule:
    """Convenience wrapper building an overlap-aware schedule in one call."""
    scheduler = BayesPerfScheduler(catalog, library=library, checker=checker)
    return scheduler.build(events, quantum_ticks=quantum_ticks)
