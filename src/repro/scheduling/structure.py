"""Structural views of the invariant relations.

The scheduler only needs the *structure* of the statistical dependencies —
which events co-occur in a relation — not any measurement data.  Two views
are provided: a :class:`~repro.fg.graph.FactorGraph` whose factors are
placeholder constraints (for Markov-blanket queries), and a plain event
adjacency graph (for shortest-path chaining with Dijkstra's algorithm).
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence, Tuple

import networkx as nx

from repro.events.catalog import EventCatalog
from repro.fg.factors import LinearConstraintFactor
from repro.fg.graph import FactorGraph
from repro.invariants.library import InvariantLibrary, standard_invariants
from repro.invariants.relation import EventRelation


def instantiate_relations(
    catalog: EventCatalog,
    events: Optional[Sequence[str]] = None,
    library: Optional[InvariantLibrary] = None,
) -> Tuple[EventRelation, ...]:
    """Event-level relations for a catalog, restricted to *events* if given."""
    library = library if library is not None else standard_invariants()
    return library.for_catalog(catalog, events=events)


def build_structure_graph(
    relations: Iterable[EventRelation], events: Optional[Sequence[str]] = None
) -> FactorGraph:
    """Factor graph capturing only the structure of the relations.

    The constraint sigmas are placeholders (1.0); the graph is used purely
    for Markov-blanket and connectivity queries during scheduling.
    """
    graph = FactorGraph(variables=events)
    for relation in relations:
        graph.add_factor(
            LinearConstraintFactor(
                name=f"rel::{relation.name}",
                coefficients=relation.coefficients,
                sigma=1.0,
                description=relation.description,
            )
        )
    return graph


def build_event_adjacency(
    relations: Iterable[EventRelation], events: Optional[Sequence[str]] = None
) -> nx.Graph:
    """Undirected event graph: two events are adjacent if a relation joins them."""
    graph = nx.Graph()
    if events is not None:
        graph.add_nodes_from(events)
    for relation in relations:
        names = list(relation.events)
        graph.add_nodes_from(names)
        for i, first in enumerate(names):
            for second in names[i + 1 :]:
                graph.add_edge(first, second, relation=relation.name)
    return graph


def connectivity_order(adjacency: nx.Graph, events: Sequence[str]) -> Tuple[str, ...]:
    """Order *events* so that statistically related events appear near each other.

    A breadth-first traversal is run from the highest-degree event of each
    connected component; unrelated events (isolated nodes) are appended last
    in their original order.
    """
    remaining = [event for event in events if event in adjacency]
    isolated = [event for event in events if event not in adjacency]
    ordered = []
    visited = set()
    while remaining:
        start = max(remaining, key=lambda node: adjacency.degree(node))
        for node in nx.bfs_tree(adjacency, start):
            if node in visited or node not in remaining:
                continue
            visited.add(node)
            ordered.append(node)
        remaining = [event for event in remaining if event not in visited]
    return tuple(ordered + isolated)
