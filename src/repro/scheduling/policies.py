"""Scenario-grid scheduling policies beyond the seed pair.

The seed shipped two multiplexing policies — the paper's overlap-aware
scheduler (:class:`~repro.scheduling.overlap.BayesPerfScheduler`) and the
Linux-style :func:`~repro.scheduling.round_robin.round_robin_schedule`.  This
module adds the two policies that make the scenario grid interesting:

* :func:`invariant_aware_schedule` — groups events so that every
  configuration is a clique-ish neighbourhood of the vendor-manual invariant
  graph (:mod:`repro.invariants`): events only share a configuration when a
  linear relation joins them, so each time slice measures quantities the
  factor graph can actually cross-check.
* :func:`rl_schedule` — drives the same grouping decisions through the
  :mod:`repro.mlsched` actor-critic policy.  A small seeded agent is trained
  in-process on the event set (reward = invariant-overlap of its groupings)
  and the final schedule is its greedy rollout, so the result is a pure
  function of ``(catalog, events, seed)``.

Both builders respect :class:`~repro.pmu.constraints.ValidityChecker`
legality exactly like the seed schedulers and return ordinary immutable
:class:`~repro.scheduling.schedule.Schedule` objects, so samplers, engines
and the schedule cache treat them interchangeably.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.events.catalog import EventCatalog
from repro.invariants import InvariantLibrary
from repro.pmu.configuration import CounterConfiguration
from repro.pmu.constraints import ConfigurationError, ValidityChecker
from repro.scheduling.round_robin import _pack_events
from repro.scheduling.schedule import Schedule
from repro.scheduling.structure import (
    build_event_adjacency,
    connectivity_order,
    instantiate_relations,
)

__all__ = ["invariant_aware_schedule", "rl_schedule"]


def invariant_aware_schedule(
    catalog: EventCatalog,
    events: Sequence[str],
    *,
    library: Optional[InvariantLibrary] = None,
    checker: Optional[ValidityChecker] = None,
    quantum_ticks: int = 1,
) -> Schedule:
    """Group events into configurations connected by shared invariants.

    Events joined by a vendor-manual linear relation are scheduled together
    (up to the counter budget), so every configuration measures a set of
    quantities at least one invariant constrains jointly.  Events no relation
    touches are packed round-robin style into trailing configurations rather
    than wasting a full rotation slot each.
    """
    checker = checker if checker is not None else ValidityChecker(catalog)
    _, programmable = checker.split_events(events)
    if not programmable:
        raise ValueError("invariant-aware scheduling needs at least one programmable event")
    relations = instantiate_relations(catalog, events=programmable, library=library)
    adjacency = build_event_adjacency(relations, programmable)
    connected = [e for e in connectivity_order(adjacency, programmable) if adjacency.degree(e) > 0]
    isolated = [e for e in programmable if adjacency.degree(e) == 0]

    capacity = checker.n_counters
    configurations: List[CounterConfiguration] = []
    pending = list(connected)
    while pending:
        seed_event = pending.pop(0)
        if not checker.can_schedule([seed_event]):
            raise ConfigurationError(
                f"event {seed_event!r} cannot be scheduled on any counter"
            )
        group = [seed_event]
        # Grow the group only along invariant edges; a candidate must share a
        # relation with a member already in the group AND keep the
        # configuration legal.  First-fit over the connectivity order keeps
        # the build deterministic.
        grew = True
        while len(group) < capacity and grew:
            grew = False
            for candidate in pending:
                joined = any(adjacency.has_edge(candidate, member) for member in group)
                if joined and checker.can_schedule(group + [candidate]):
                    group.append(candidate)
                    pending.remove(candidate)
                    grew = True
                    break
        configurations.append(checker.build_configuration(group))
    if isolated:
        configurations.extend(_pack_events(isolated, checker, capacity))
    return Schedule(
        configurations=tuple(configurations),
        quantum_ticks=quantum_ticks,
        name="invariant-aware",
    )


def _rank_candidates(pending, group, adjacency, limit):
    """Top-*limit* pending events, most invariant-linked to *group* first."""

    def score(event):
        links = sum(1 for member in group if adjacency.has_edge(event, member))
        degree = adjacency.degree(event) if event in adjacency else 0
        return (-links, -degree)

    return sorted(pending, key=score)[:limit]


def rl_schedule(
    catalog: EventCatalog,
    events: Sequence[str],
    *,
    checker: Optional[ValidityChecker] = None,
    seed: int = 0,
    training_episodes: int = 3,
    n_candidates: int = 4,
    quantum_ticks: int = 1,
) -> Schedule:
    """Build a schedule with the :mod:`repro.mlsched` actor-critic policy.

    Each decision picks, from the top-``n_candidates`` invariant-ranked
    pending events, the one that joins the configuration under construction
    (closing it when the pick is illegal or the budget is full).  The agent
    is trained for ``training_episodes`` full builds with a reward favouring
    invariant overlap within and between consecutive configurations, then
    the schedule is its greedy rollout — deterministic for a fixed ``seed``.
    """
    import numpy as np

    # Lazy import: repro.scheduling must stay importable without pulling the
    # whole ML scheduling stack in for the seed policies.
    from repro.mlsched import ActorCriticScheduler

    checker = checker if checker is not None else ValidityChecker(catalog)
    _, programmable = checker.split_events(events)
    if not programmable:
        raise ValueError("rl scheduling needs at least one programmable event")
    relations = instantiate_relations(catalog, events=programmable)
    adjacency = build_event_adjacency(relations, programmable)
    ordered = list(connectivity_order(adjacency, programmable))
    capacity = checker.n_counters
    n_features = 3 * n_candidates + 2
    agent = ActorCriticScheduler(
        n_features,
        n_actions=n_candidates,
        hidden=(24, 12),
        learning_rate=0.05,
        seed=seed,
    )

    def features(candidates, group, pending):
        vector = np.zeros(n_features)
        for slot, event in enumerate(candidates):
            links = sum(1 for member in group if adjacency.has_edge(event, member))
            degree = adjacency.degree(event) if event in adjacency else 0
            base = 3 * slot
            vector[base] = links / max(capacity, 1)
            vector[base + 1] = degree / max(len(programmable), 1)
            vector[base + 2] = 1.0
        vector[-2] = len(group) / max(capacity, 1)
        vector[-1] = len(pending) / len(programmable)
        return vector

    def build(greedy):
        configurations: List[CounterConfiguration] = []
        pending = list(ordered)
        group: List[str] = []
        previous: List[str] = []
        rewards = 0.0
        while pending:
            candidates = _rank_candidates(pending, group, adjacency, n_candidates)
            observation = features(candidates, group, pending)
            action = agent.act(observation, greedy=greedy)
            choice = candidates[action % len(candidates)]
            fits = len(group) < capacity and checker.can_schedule(group + [choice])
            if not fits and group:
                configurations.append(checker.build_configuration(group))
                previous, group = group, []
                fits = checker.can_schedule([choice])
            if not fits:
                raise ConfigurationError(
                    f"event {choice!r} cannot be scheduled on any counter"
                )
            pending.remove(choice)
            group.append(choice)
            # Reward invariant overlap: links inside the group keep each
            # configuration jointly constrained, links back to the previous
            # configuration give the factor graph cross-slice anchors.
            links = sum(1 for member in group[:-1] if adjacency.has_edge(choice, member))
            carry = sum(1 for member in previous if adjacency.has_edge(choice, member))
            reward = (links + 0.5 * carry) / max(capacity, 1)
            rewards += reward
            if not greedy:
                agent.update(observation, action, reward)
        if group:
            configurations.append(checker.build_configuration(group))
        return configurations, rewards

    for _ in range(max(training_episodes, 0)):
        build(greedy=False)
    configurations, _ = build(greedy=True)
    return Schedule(
        configurations=tuple(configurations),
        quantum_ticks=quantum_ticks,
        name="rl",
    )
