"""Schedules: cyclic sequences of counter configurations."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.pmu.configuration import CounterConfiguration


@dataclass(frozen=True)
class Schedule:
    """A cyclic schedule of counter configurations.

    Parameters
    ----------
    configurations:
        Configurations executed in order, one per quantum, repeating.
    quantum_ticks:
        Number of machine ticks each configuration stays programmed.
    name:
        Identifier used in reports ("round-robin", "bayesperf-overlap", ...).
    """

    configurations: Tuple[CounterConfiguration, ...]
    quantum_ticks: int = 1
    name: str = "schedule"

    def __post_init__(self) -> None:
        if not self.configurations:
            raise ValueError("a schedule needs at least one configuration")
        if self.quantum_ticks <= 0:
            raise ValueError("quantum_ticks must be positive")

    def __len__(self) -> int:
        return len(self.configurations)

    @property
    def rotation_ticks(self) -> int:
        """Ticks needed to cycle through every configuration once."""
        return len(self.configurations) * self.quantum_ticks

    @property
    def events(self) -> Tuple[str, ...]:
        """Every event appearing in the schedule, in first-seen order."""
        seen: Dict[str, None] = {}
        for configuration in self.configurations:
            for event in configuration.events:
                seen.setdefault(event, None)
        return tuple(seen)

    def config_at(self, tick: int) -> CounterConfiguration:
        """Configuration active at machine tick *tick*."""
        if tick < 0:
            raise ValueError("tick must be non-negative")
        index = (tick // self.quantum_ticks) % len(self.configurations)
        return self.configurations[index]

    def consecutive_overlaps(self) -> Tuple[Tuple[str, ...], ...]:
        """Events shared by each pair of consecutive configurations (cyclic)."""
        overlaps: List[Tuple[str, ...]] = []
        n = len(self.configurations)
        for index in range(n):
            current = self.configurations[index]
            following = self.configurations[(index + 1) % n]
            overlaps.append(current.overlap(following))
        return tuple(overlaps)

    def min_overlap(self) -> int:
        """Smallest number of shared events between consecutive configurations."""
        if len(self.configurations) == 1:
            return len(self.configurations[0])
        return min(len(overlap) for overlap in self.consecutive_overlaps())

    def enabled_fraction(self, event: str) -> float:
        """Fraction of quanta in which *event* is scheduled."""
        count = sum(1 for configuration in self.configurations if event in configuration)
        return count / len(self.configurations)

    def describe(self) -> str:
        """Human-readable multi-line description of the schedule."""
        lines = [f"Schedule {self.name!r}: {len(self)} configurations, quantum={self.quantum_ticks} tick(s)"]
        for index, configuration in enumerate(self.configurations):
            lines.append(f"  C{index}: {', '.join(configuration.events)}")
        return "\n".join(lines)
