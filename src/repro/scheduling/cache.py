"""Process-wide schedule cache.

Building an overlap-aware schedule walks the relation structure graph
(shortest paths, Markov-blanket closures) and is pure: for a given catalog,
event set and scheduler kind the result is always the same immutable
:class:`~repro.scheduling.schedule.Schedule`.  Sessions and the fleet worker
pool construct schedules for the same (arch, event-set) key over and over, so
the cache turns that hot path into a dictionary lookup.
"""

from __future__ import annotations

from threading import Lock
from typing import Dict, Sequence, Tuple
from weakref import WeakKeyDictionary

from repro.events.catalog import EventCatalog
from repro.scheduling.overlap import BayesPerfScheduler
from repro.scheduling.policies import invariant_aware_schedule, rl_schedule
from repro.scheduling.round_robin import round_robin_schedule
from repro.scheduling.schedule import Schedule

#: Every schedule policy the grid knows; ``SchedulerSpec`` validates against
#: this tuple so the spec layer and the cache can never disagree.
SCHEDULE_KINDS = ("overlap", "round-robin", "rl", "invariant-aware")
_KINDS = SCHEDULE_KINDS

#: Keyed by catalog *identity* (not name): two different catalog objects that
#: happen to share a name must not see each other's schedules, and dropping a
#: catalog (e.g. ``clear_catalog_cache`` in tests) releases its schedules.
_CACHE: "WeakKeyDictionary[EventCatalog, Dict[Tuple[Tuple[str, ...], str, int], Schedule]]" = (
    WeakKeyDictionary()
)
_LOCK = Lock()
#: Cumulative (hits, misses) counters, exposed for tests and benchmarks.
_STATS = {"hits": 0, "misses": 0}


def build_schedule(
    catalog: EventCatalog, events: Sequence[str], *, kind: str = "overlap", seed: int = 0
) -> Schedule:
    """Build (uncached) the schedule for (catalog, events, kind, seed).

    ``kind`` selects the policy: ``"overlap"`` (the paper's overlap-aware
    scheduler, used by BayesPerf), ``"round-robin"`` (the Linux baseline
    behaviour), ``"rl"`` (the :mod:`repro.mlsched` actor-critic policy) or
    ``"invariant-aware"`` (:mod:`repro.invariants`-constrained groupings).
    ``seed`` only affects the ``"rl"`` policy; every builder is a pure
    function of its arguments.
    """
    if kind not in _KINDS:
        raise ValueError(f"unknown schedule kind {kind!r}; expected one of {_KINDS}")
    if kind == "overlap":
        return BayesPerfScheduler(catalog).build(list(events))
    if kind == "round-robin":
        return round_robin_schedule(catalog, list(events))
    if kind == "rl":
        return rl_schedule(catalog, list(events), seed=seed)
    return invariant_aware_schedule(catalog, list(events))


def cached_schedule(
    catalog: EventCatalog,
    events: Sequence[str],
    *,
    kind: str = "overlap",
    seed: int = 0,
) -> Schedule:
    """Return the schedule for (catalog, events, kind, seed), building it at most once.

    See :func:`build_schedule` for the policy names; the builders are pure,
    which is what makes caching by key sound.
    """
    if kind not in _KINDS:
        raise ValueError(f"unknown schedule kind {kind!r}; expected one of {_KINDS}")
    key = (tuple(events), kind, seed)
    with _LOCK:
        per_catalog = _CACHE.get(catalog)
        schedule = per_catalog.get(key) if per_catalog is not None else None
        if schedule is not None:
            _STATS["hits"] += 1
            return schedule
        _STATS["misses"] += 1
    schedule = build_schedule(catalog, events, kind=kind, seed=seed)
    with _LOCK:
        return _CACHE.setdefault(catalog, {}).setdefault(key, schedule)


def schedule_cache_stats() -> Dict[str, int]:
    """Snapshot of the cumulative cache hit/miss counters."""
    with _LOCK:
        return dict(_STATS)


def clear_schedule_cache() -> None:
    """Drop all cached schedules and reset the counters."""
    with _LOCK:
        _CACHE.clear()
        _STATS["hits"] = 0
        _STATS["misses"] = 0


def schedule_cache_size() -> int:
    """Number of cached schedules across all live catalogs."""
    with _LOCK:
        return sum(len(per_catalog) for per_catalog in _CACHE.values())
