"""Process-wide schedule cache.

Building an overlap-aware schedule walks the relation structure graph
(shortest paths, Markov-blanket closures) and is pure: for a given catalog,
event set and scheduler kind the result is always the same immutable
:class:`~repro.scheduling.schedule.Schedule`.  Sessions and the fleet worker
pool construct schedules for the same (arch, event-set) key over and over, so
the cache turns that hot path into a dictionary lookup.
"""

from __future__ import annotations

from threading import Lock
from typing import Dict, Sequence, Tuple
from weakref import WeakKeyDictionary

from repro.events.catalog import EventCatalog
from repro.scheduling.overlap import BayesPerfScheduler
from repro.scheduling.round_robin import round_robin_schedule
from repro.scheduling.schedule import Schedule

_KINDS = ("overlap", "round-robin")

#: Keyed by catalog *identity* (not name): two different catalog objects that
#: happen to share a name must not see each other's schedules, and dropping a
#: catalog (e.g. ``clear_catalog_cache`` in tests) releases its schedules.
_CACHE: "WeakKeyDictionary[EventCatalog, Dict[Tuple[Tuple[str, ...], str], Schedule]]" = (
    WeakKeyDictionary()
)
_LOCK = Lock()
#: Cumulative (hits, misses) counters, exposed for tests and benchmarks.
_STATS = {"hits": 0, "misses": 0}


def cached_schedule(
    catalog: EventCatalog, events: Sequence[str], *, kind: str = "overlap"
) -> Schedule:
    """Return the schedule for (catalog, events, kind), building it at most once.

    ``kind`` selects the scheduler: ``"overlap"`` (the paper's overlap-aware
    scheduler, used by BayesPerf) or ``"round-robin"`` (the Linux baseline
    behaviour used by every other method).
    """
    if kind not in _KINDS:
        raise ValueError(f"unknown schedule kind {kind!r}; expected one of {_KINDS}")
    key = (tuple(events), kind)
    with _LOCK:
        per_catalog = _CACHE.get(catalog)
        schedule = per_catalog.get(key) if per_catalog is not None else None
        if schedule is not None:
            _STATS["hits"] += 1
            return schedule
        _STATS["misses"] += 1
    if kind == "overlap":
        schedule = BayesPerfScheduler(catalog).build(list(events))
    else:
        schedule = round_robin_schedule(catalog, list(events))
    with _LOCK:
        return _CACHE.setdefault(catalog, {}).setdefault(key, schedule)


def schedule_cache_stats() -> Dict[str, int]:
    """Snapshot of the cumulative cache hit/miss counters."""
    with _LOCK:
        return dict(_STATS)


def clear_schedule_cache() -> None:
    """Drop all cached schedules and reset the counters."""
    with _LOCK:
        _CACHE.clear()
        _STATS["hits"] = 0
        _STATS["misses"] = 0


def schedule_cache_size() -> int:
    """Number of cached schedules across all live catalogs."""
    with _LOCK:
        return sum(len(per_catalog) for per_catalog in _CACHE.values())
