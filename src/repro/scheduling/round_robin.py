"""Round-robin scheduling (the Linux perf behaviour).

Events are packed into configurations in registration order, filling each
configuration up to the programmable-counter budget, and the configurations
rotate on a timer.  No statistical relationship between consecutive
configurations is guaranteed — which is exactly why the extrapolated values
drift (§2).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.events.catalog import EventCatalog
from repro.pmu.configuration import CounterConfiguration
from repro.pmu.constraints import ConfigurationError, ValidityChecker
from repro.scheduling.schedule import Schedule


def _pack_events(
    events: Sequence[str], checker: ValidityChecker, capacity: int
) -> List[CounterConfiguration]:
    """Greedily pack events into valid configurations of at most *capacity* events."""
    configurations: List[CounterConfiguration] = []
    pending = list(events)
    current: List[str] = []
    deferred: List[str] = []
    while pending or current:
        if pending and len(current) < capacity:
            candidate = pending.pop(0)
            if checker.can_schedule(current + [candidate]):
                current.append(candidate)
                continue
            deferred.append(candidate)
            continue
        if not current:
            # Nothing fits (a single event that cannot be scheduled at all).
            bad = deferred.pop(0) if deferred else pending.pop(0)
            raise ConfigurationError(f"event {bad!r} cannot be scheduled on any counter")
        configurations.append(checker.build_configuration(current))
        current = []
        pending = deferred + pending
        deferred = []
    return configurations


def round_robin_schedule(
    catalog: EventCatalog,
    events: Sequence[str],
    *,
    checker: Optional[ValidityChecker] = None,
    quantum_ticks: int = 1,
) -> Schedule:
    """Build a Linux-style round-robin schedule over *events*.

    Fixed events are excluded from the rotation (they are always collected by
    the fixed counters); programmable events are packed into configurations
    of at most the per-thread counter budget, in the order given.
    """
    checker = checker if checker is not None else ValidityChecker(catalog)
    _, programmable = checker.split_events(events)
    if not programmable:
        raise ValueError("round-robin scheduling needs at least one programmable event")
    configurations = _pack_events(programmable, checker, checker.n_counters)
    return Schedule(
        configurations=tuple(configurations),
        quantum_ticks=quantum_ticks,
        name="round-robin",
    )
