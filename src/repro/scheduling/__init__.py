"""Counter scheduling.

Two schedulers are provided:

* :func:`round_robin_schedule` — the Linux perf behaviour: events are rotated
  across configurations in registration order with no regard for statistical
  relationships.
* :class:`BayesPerfScheduler` — the paper's overlap-aware scheduler (§4.1):
  configurations are built so that consecutive time slices share events (or at
  least overlapping Markov blankets in the factor graph), enabling cross-slice
  Bayesian inference.
"""

from repro.scheduling.schedule import Schedule
from repro.scheduling.round_robin import round_robin_schedule
from repro.scheduling.structure import build_event_adjacency, build_structure_graph
from repro.scheduling.overlap import BayesPerfScheduler, overlap_schedule
from repro.scheduling.cache import cached_schedule, clear_schedule_cache, schedule_cache_stats

__all__ = [
    "Schedule",
    "round_robin_schedule",
    "build_structure_graph",
    "build_event_adjacency",
    "BayesPerfScheduler",
    "overlap_schedule",
    "cached_schedule",
    "clear_schedule_cache",
    "schedule_cache_stats",
]
