"""Counter scheduling — the policy axis of the scenario grid.

Four schedulers are provided, selectable by name through
``SchedulerSpec(policy=...)`` on :class:`repro.api.RunSpec` (resolved via
:data:`SCHEDULE_KINDS` / :func:`cached_schedule`):

* :func:`round_robin_schedule` (``"round-robin"``) — the Linux perf
  behaviour: events are rotated across configurations in registration order
  with no regard for statistical relationships.
* :class:`BayesPerfScheduler` (``"overlap"``) — the paper's overlap-aware
  scheduler (§4.1): configurations are built so that consecutive time slices
  share events (or at least overlapping Markov blankets in the factor
  graph), enabling cross-slice Bayesian inference.
* :func:`invariant_aware_schedule` (``"invariant-aware"``) — events only
  share a configuration when a :mod:`repro.invariants` relation joins them.
* :func:`rl_schedule` (``"rl"``) — the :mod:`repro.mlsched` actor-critic
  policy, trained in-process and rolled out greedily (seed-deterministic).
"""

from repro.scheduling.schedule import Schedule
from repro.scheduling.round_robin import round_robin_schedule
from repro.scheduling.structure import build_event_adjacency, build_structure_graph
from repro.scheduling.overlap import BayesPerfScheduler, overlap_schedule
from repro.scheduling.policies import invariant_aware_schedule, rl_schedule
from repro.scheduling.cache import (
    SCHEDULE_KINDS,
    build_schedule,
    cached_schedule,
    clear_schedule_cache,
    schedule_cache_stats,
)

__all__ = [
    "SCHEDULE_KINDS",
    "Schedule",
    "round_robin_schedule",
    "build_structure_graph",
    "build_event_adjacency",
    "BayesPerfScheduler",
    "overlap_schedule",
    "invariant_aware_schedule",
    "rl_schedule",
    "build_schedule",
    "cached_schedule",
    "clear_schedule_cache",
    "schedule_cache_stats",
]
