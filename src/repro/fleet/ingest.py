"""Fleet ingestion: per-host record streams feeding bounded ring buffers.

Each simulated (or replayed) host produces a stream of
:class:`~repro.pmu.sampling.SamplingRecord`s — what the kernel side of the
BayesPerf shim would push over the wire in a real deployment.  The ingestion
layer gives every host a bounded :class:`~repro.core.ringbuffer.RingBuffer`
with explicit backpressure accounting: when inference falls behind, new
records are dropped (never blocking the producer, exactly like the perf mmap
buffer) and a :class:`~repro.fleet.events.BackpressureDetected` event is
emitted.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

from repro.core.ringbuffer import RingBuffer
from repro.events.catalog import EventCatalog
from repro.events.registry import canonical_arch, catalog_for
from repro.fleet.events import (
    BackpressureDetected,
    EventDispatcher,
    MalformedRecordSkipped,
    SessionStarted,
)
from repro.fleet.tracefile import TraceFile
from repro.pmu.noise import NoiseModel
from repro.pmu.sampling import MultiplexedSampler, SamplingRecord
from repro.scheduling.cache import build_schedule, cached_schedule
from repro.uarch.machine import Machine, MachineConfig
from repro.uarch.profile import WorkloadSpec


class SyntheticHostSource:
    """Record stream for one simulated host.

    The machine trace and the multiplexed sampler are built lazily on first
    iteration, so constructing a large fleet is cheap and the simulation cost
    lands in the ingestion (pump) phase.
    """

    def __init__(
        self,
        host_id: str,
        spec: WorkloadSpec,
        *,
        arch: str = "x86",
        events: Tuple[str, ...],
        n_ticks: Optional[int] = None,
        seed: int = 0,
        samples_per_tick: int = 4,
        noise: Optional[NoiseModel] = None,
        machine_config: Optional[MachineConfig] = None,
        use_schedule_cache: bool = True,
    ) -> None:
        self.host_id = host_id
        self.spec = spec
        self.arch = canonical_arch(arch)
        self.events = tuple(events)
        self.seed = seed
        self.n_ticks = n_ticks if n_ticks is not None else spec.total_ticks
        self.samples_per_tick = samples_per_tick
        self.noise = noise
        self.machine_config = machine_config
        #: When false every host builds its own schedule — the per-host
        #: construction cost the fleet's shared caches exist to amortise
        #: (kept as the serial baseline's behaviour).
        self.use_schedule_cache = use_schedule_cache
        #: Multiplexing policy (a :data:`repro.scheduling.SCHEDULE_KINDS`
        #: name) and its seed.  Set by ``Pipeline.from_spec`` from
        #: ``SchedulerSpec`` after host registration — ``records()`` is
        #: lazy, so the policy lands before any record is pumped.
        self.schedule_policy = "overlap"
        self.schedule_seed = 0
        self.workload_name = spec.name

    def records(self) -> Iterator[SamplingRecord]:
        catalog: EventCatalog = catalog_for(self.arch)
        config = self.machine_config if self.machine_config is not None else MachineConfig(
            name=catalog.name
        )
        machine = Machine(config, self.spec, seed=self.seed)
        trace = machine.run(self.n_ticks)
        if self.use_schedule_cache:
            schedule = cached_schedule(
                catalog, self.events, kind=self.schedule_policy, seed=self.schedule_seed
            )
        else:
            schedule = build_schedule(
                catalog, self.events, kind=self.schedule_policy, seed=self.schedule_seed
            )
        sampler = MultiplexedSampler(
            catalog,
            schedule,
            noise=self.noise,
            samples_per_tick=self.samples_per_tick,
            seed=self.seed + 1,
        )
        yield from sampler.sample(trace).records


class ReplayHostSource:
    """Record stream backed by a recorded trace file.

    Malformed or partial lines the reader tolerated (a torn tail from a
    killed recorder, or mid-stream damage under ``read_trace(strict=False)``)
    surface as ``skipped_lines``/``torn_tail`` here; the host's channel
    announces them with one
    :class:`~repro.fleet.events.MalformedRecordSkipped` event when the
    stream opens, so a replay accounts for every record it dropped instead
    of raising mid-iteration.
    """

    def __init__(self, host_id: str, trace: TraceFile, *, workload_name: str = "") -> None:
        if trace.sampled is None:
            raise ValueError(
                f"trace for host {host_id!r} holds no sampled records; nothing to replay"
            )
        self.host_id = host_id
        self.trace = trace
        self.arch = canonical_arch(trace.arch) if trace.arch else trace.arch
        self.events = tuple(trace.events)
        self.seed = trace.seed
        self.n_ticks = trace.n_ticks
        self.samples_per_tick = trace.samples_per_tick
        self.workload_name = workload_name or trace.workload or "replay"
        #: Lines the reader skipped as malformed instead of raising.
        self.skipped_lines = len(trace.malformed_lines)
        self.torn_tail = trace.torn_tail

    def records(self) -> Iterator[SamplingRecord]:
        assert self.trace.sampled is not None
        yield from self.trace.sampled.records


@dataclass
class PumpStats:
    """Outcome of one pump round for one host."""

    accepted: int = 0
    dropped: int = 0
    exhausted: bool = False


class HostChannel:
    """One host's ingest state: its source iterator and its ring buffer."""

    def __init__(self, source, *, capacity: int, dispatcher: EventDispatcher) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.source = source
        self.host_id: str = source.host_id
        self.buffer: RingBuffer[SamplingRecord] = RingBuffer(capacity)
        self._dispatcher = dispatcher
        self._iterator: Optional[Iterator[SamplingRecord]] = None
        self._exhausted = False
        #: Records drawn from the source iterator so far (accepted + dropped)
        #: — the source position a WAL checkpoint records, so a resumed run
        #: can fast-forward a fresh iterator to exactly here.
        self.pulled = 0
        #: Set when a fault policy excised this host from the run.
        self.quarantined = False

    @property
    def exhausted(self) -> bool:
        """True when the source has no further records."""
        return self._exhausted

    @property
    def done(self) -> bool:
        """True when the source is exhausted and the buffer fully drained."""
        return self._exhausted and self.buffer.is_empty

    @property
    def dropped(self) -> int:
        """Total records dropped on the floor by backpressure so far."""
        return self.buffer.dropped

    def _open(self) -> Iterator[SamplingRecord]:
        """Open the source stream, announcing any tolerated damage once."""
        iterator = self.source.records()
        skipped = getattr(self.source, "skipped_lines", 0)
        if skipped:
            self._dispatcher.emit(
                MalformedRecordSkipped(
                    host=self.host_id,
                    n_lines=skipped,
                    torn_tail=bool(getattr(self.source, "torn_tail", False)),
                )
            )
        return iterator

    def pump(self, max_records: int) -> PumpStats:
        """Move up to *max_records* records from the source into the buffer.

        Producers never block: when the buffer is full the record is dropped,
        counted, and a backpressure event is emitted for the round.
        """
        if max_records <= 0:
            raise ValueError("max_records must be positive")
        stats = PumpStats()
        if self._exhausted:
            stats.exhausted = True
            return stats
        if self._iterator is None:
            self._iterator = self._open()
        for _ in range(max_records):
            record = next(self._iterator, None)
            if record is None:
                self._exhausted = True
                stats.exhausted = True
                break
            self.pulled += 1
            if self.buffer.push(record):
                stats.accepted += 1
            else:
                stats.dropped += 1
        if stats.dropped:
            self._dispatcher.emit(
                BackpressureDetected(
                    host=self.host_id,
                    dropped=stats.dropped,
                    total_dropped=self.buffer.dropped,
                    buffered=len(self.buffer),
                    capacity=self.buffer.capacity,
                )
            )
        return stats

    def take(self, max_records: int) -> List[SamplingRecord]:
        """Dequeue up to *max_records* buffered records (consumer side)."""
        if max_records <= 0:
            raise ValueError("max_records must be positive")
        records: List[SamplingRecord] = []
        while len(records) < max_records:
            record = self.buffer.pop()
            if record is None:
                break
            records.append(record)
        return records

    def abandon(self) -> None:
        """Excise this host from the run (quarantine).

        The source is marked exhausted and the buffer cleared, so ``done``
        holds and the drive loop's termination conditions see a finished
        host; backpressure totals are preserved for the final report.
        """
        self.quarantined = True
        self._exhausted = True
        self.buffer.drain()

    def restore(
        self,
        *,
        pulled: int,
        buffered: List[SamplingRecord],
        dropped: int = 0,
        exhausted: bool = False,
        quarantined: bool = False,
    ) -> None:
        """Re-materialise this channel from a WAL checkpoint's progress.

        A fresh source iterator is opened and fast-forwarded past the
        *pulled* records the crashed run already consumed (sources are
        deterministic, so the remaining stream is identical), then the
        checkpoint's *buffered* records re-fill the ring buffer and the
        backpressure/exhaustion counters are restored — the channel is
        indistinguishable from the one the crashed run checkpointed.
        """
        if self._iterator is not None or self.pulled:
            raise RuntimeError("restore() must run before the first pump")
        self._iterator = self._open()
        for _ in range(pulled):
            if next(self._iterator, None) is None:
                break
        self.pulled = pulled
        for record in buffered:
            self.buffer.push(record)
        self.buffer.dropped = dropped
        self._exhausted = exhausted
        self.quarantined = quarantined


class FleetIngest:
    """The fleet's front door: N host channels with bounded buffering."""

    def __init__(
        self, *, buffer_capacity: int = 256, dispatcher: Optional[EventDispatcher] = None
    ) -> None:
        self.buffer_capacity = buffer_capacity
        self.dispatcher = dispatcher if dispatcher is not None else EventDispatcher()
        self._channels: Dict[str, HostChannel] = {}

    def __len__(self) -> int:
        return len(self._channels)

    @property
    def channels(self) -> Tuple[HostChannel, ...]:
        return tuple(self._channels.values())

    def channel(self, host_id: str) -> HostChannel:
        return self._channels[host_id]

    def add(self, source) -> HostChannel:
        """Register a host source and announce its session on the stream."""
        if source.host_id in self._channels:
            raise ValueError(f"host {source.host_id!r} already registered")
        channel = HostChannel(
            source, capacity=self.buffer_capacity, dispatcher=self.dispatcher
        )
        self._channels[source.host_id] = channel
        self.dispatcher.emit(
            SessionStarted(
                host=source.host_id,
                arch=getattr(source, "arch", ""),
                workload=getattr(source, "workload_name", ""),
                n_events=len(getattr(source, "events", ())),
            )
        )
        return channel

    def pump_all(self, max_records_per_host: int) -> Dict[str, PumpStats]:
        """One ingestion round: pump every non-exhausted host."""
        return {
            host_id: channel.pump(max_records_per_host)
            for host_id, channel in self._channels.items()
            if not channel.exhausted
        }

    @property
    def all_done(self) -> bool:
        """True once every channel is exhausted and drained."""
        return all(channel.done for channel in self._channels.values())

    def drop_report(self) -> Dict[str, int]:
        """Per-host dropped-record counts (hosts with drops only)."""
        return {
            host_id: channel.dropped
            for host_id, channel in self._channels.items()
            if channel.dropped
        }
