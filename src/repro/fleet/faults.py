"""Worker fault policies: retry, timeout, backoff, quarantine.

A fleet-scale deployment treats worker faults as routine events: a corrupt
telemetry record, a solver that raises on a degenerate slice, a solve that
hangs past its deadline.  :class:`FaultPolicySpec` declares what happens —
how many attempts a slice gets, how long one attempt may take, how retries
back off, and what to do when attempts are exhausted — and the inference
workers (:mod:`repro.fleet.workers`) enforce it around every engine call.

The invariants the enforcement keeps:

* **No partial state leaks.**  Every attempt starts from the host's
  pre-attempt engine snapshot, so a failed (or timed-out) attempt never
  contaminates the temporal chain; a retry that succeeds is bit-identical
  to a first attempt that succeeded.
* **Deterministic backoff.**  Retry jitter is derived from the policy seed
  and the (host, tick, attempt) coordinates, never from wall-clock entropy,
  so two runs of the same faulty fleet sleep the same schedule.
* **Every fault is accounted.**  Each attempt failure, retry, skip and
  quarantine is emitted on the fleet event stream
  (:class:`~repro.fleet.events.SliceAttemptFailed` and friends) and counted
  by the metrics processor, so ``retries + skips + quarantines`` can be
  audited against an injected fault schedule exactly.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Optional

import numpy as np

__all__ = [
    "FaultPolicySpec",
    "SliceFailed",
    "SliceTimeout",
    "ON_EXHAUSTED",
]

#: Valid terminal dispositions for a slice whose attempts are exhausted.
ON_EXHAUSTED = ("raise", "skip", "quarantine")


class SliceTimeout(RuntimeError):
    """One solve attempt exceeded the policy's per-slice timeout.

    Raised *after* the attempt completes (the enforcement is cooperative:
    a single-process solve cannot be preempted mid-kernel; true preemption
    belongs to the multi-process sharding half of the roadmap item).  The
    attempt's outputs are discarded and the pre-attempt snapshot restored,
    so a timed-out attempt is indistinguishable from a raising one.
    """


class SliceFailed(RuntimeError):
    """A slice exhausted its attempts under an ``on_exhausted="raise"`` policy.

    Carries the coordinates of the failure; ``__cause__`` is the last
    attempt's error.
    """

    def __init__(self, host: str, tick: int, attempts: int, reason: str) -> None:
        super().__init__(
            f"slice {host}@t{tick} failed after {attempts} attempt(s): {reason}"
        )
        self.host = host
        self.tick = tick
        self.attempts = attempts
        self.reason = reason


@dataclass(frozen=True)
class FaultPolicySpec:
    """Retry/timeout policy enforced around every worker solve.

    ``max_attempts`` bounds how often one slice is tried (1 = no retries);
    ``timeout_seconds`` flags an attempt whose wall-clock solve exceeded it
    (``None`` = no deadline); retries sleep an exponential backoff
    (``backoff_base * backoff_factor**(attempt-1)``, capped at
    ``backoff_max``) stretched by a deterministic jitter in
    ``[1, 1 + jitter]`` seeded from ``(seed, host, tick, attempt)``.
    ``on_exhausted`` picks the terminal disposition: ``"raise"`` aborts the
    run (the write-ahead log makes it resumable), ``"skip"`` drops the one
    slice and continues the host, ``"quarantine"`` excises the whole host
    from the run.
    """

    max_attempts: int = 3
    timeout_seconds: Optional[float] = None
    backoff_base: float = 0.01
    backoff_factor: float = 2.0
    backoff_max: float = 1.0
    jitter: float = 0.1
    seed: int = 0
    on_exhausted: str = "raise"

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.timeout_seconds is not None and self.timeout_seconds <= 0:
            raise ValueError("timeout_seconds must be positive (or None)")
        if self.backoff_base < 0 or self.backoff_factor < 1 or self.backoff_max < 0:
            raise ValueError(
                "backoff_base/backoff_max must be >= 0 and backoff_factor >= 1"
            )
        if not 0 <= self.jitter:
            raise ValueError("jitter must be >= 0")
        if self.on_exhausted not in ON_EXHAUSTED:
            raise ValueError(
                f"unknown on_exhausted {self.on_exhausted!r}; "
                f"expected one of {ON_EXHAUSTED}"
            )

    def backoff_delay(self, host: str, tick: int, attempt: int) -> float:
        """Seconds to sleep before retrying *attempt* (the one that failed).

        Deterministic: the jitter draw is seeded from the policy seed and
        the (host, tick, attempt) coordinates, so repeated runs of the same
        faulty fleet produce the same delays (and the same event stream).
        """
        base = min(
            self.backoff_base * self.backoff_factor ** (attempt - 1), self.backoff_max
        )
        if base <= 0 or self.jitter <= 0:
            return base
        sequence = np.random.SeedSequence(
            [self.seed, zlib.crc32(host.encode("utf-8")), int(tick), int(attempt)]
        )
        stretch = 1.0 + self.jitter * np.random.default_rng(sequence).random()
        return base * stretch
