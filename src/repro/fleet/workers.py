"""Inference workers: shard hosts, batch slices, share engines.

A fleet runs many hosts whose monitoring configuration is frequently
identical — same microarchitecture, same registered event set.  Building a
:class:`~repro.core.engine.BayesPerfEngine` and an overlap-aware schedule per
host repeats identical work, so the pool keys both on ``(arch, event-set,
engine-kwargs)`` and shares one engine per key per worker.  Per-host temporal
state (the previous slice's posterior) is checkpointed with
:meth:`~repro.core.engine.BayesPerfEngine.snapshot` after each batch and
restored before the next, which makes the sharing exact: a host's estimates
are bit-identical to what a dedicated engine would produce (the snapshot
includes the RNG stream, so this holds for MCMC moment estimation too).

Hosts are sharded across workers round-robin; each worker drains its hosts'
ring buffers in batches.  Hosts sharing an engine are then solved *together*:
the worker transposes the per-host batches into per-slot multi-record
batches and hands each one to the engine's vectorized
:meth:`~repro.core.engine.BayesPerfEngine.process_batch`, which executes a
single array-native pass over all of them instead of one solve per host —
a compiled EP-kernel call for the analytic estimator, one
:class:`~repro.fg.mcmc.BatchedMCMC` chain sweep for
``engine_kwargs={"moment_estimator": "batched-mcmc"}`` (each record's chain
is seeded from that host's snapshotted RNG stream, so pooled and serial
stay bit-identical for sampled estimators too).
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor
from contextlib import nullcontext
from dataclasses import dataclass
from typing import Callable, Dict, Iterator, List, Optional, Tuple

from repro.core.engine import BayesPerfEngine, EngineState
from repro.fg.megabatch import KernelExecSpec
from repro.events.registry import canonical_arch, catalog_for
from repro.fleet.events import (
    EstimateReady,
    EventDispatcher,
    HostQuarantined,
    SessionCompleted,
    SliceAttemptFailed,
    SliceCompleted,
    SliceRetried,
    SliceSkipped,
)
from repro.fleet.faults import FaultPolicySpec, SliceFailed, SliceTimeout
from repro.fleet.ingest import FleetIngest, HostChannel
from repro.pmu.traces import EstimateTrace

#: Cache key: (canonical arch, monitored events, frozen engine kwargs).
EngineKey = Tuple[str, Tuple[str, ...], Tuple[Tuple[str, object], ...]]


def engine_key(
    arch: str, events: Tuple[str, ...], engine_kwargs: Optional[Dict] = None
) -> EngineKey:
    """Normalised cache key for an (arch, event-set, engine-config) triple."""
    frozen = tuple(sorted((engine_kwargs or {}).items()))
    return (canonical_arch(arch), tuple(events), frozen)


class EngineCache:
    """Engines and schedules shared across hosts with the same key."""

    def __init__(self) -> None:
        self._engines: Dict[EngineKey, BayesPerfEngine] = {}
        self.hits = 0
        self.misses = 0

    def engine_for(
        self, arch: str, events: Tuple[str, ...], engine_kwargs: Optional[Dict] = None
    ) -> BayesPerfEngine:
        return self.engine_for_key(engine_key(arch, events, engine_kwargs), engine_kwargs)

    def engine_for_key(
        self, key: EngineKey, engine_kwargs: Optional[Dict] = None
    ) -> BayesPerfEngine:
        """Lookup by a prebuilt key (the worker hot path: one dict get)."""
        engine = self._engines.get(key)
        if engine is not None:
            self.hits += 1
            return engine
        self.misses += 1
        catalog = catalog_for(key[0])
        engine = BayesPerfEngine(catalog, list(key[1]), **(engine_kwargs or {}))
        self._engines[key] = engine
        return engine

    def __len__(self) -> int:
        return len(self._engines)


@dataclass
class HostRun:
    """Per-host inference state owned by exactly one worker."""

    channel: HostChannel
    key: EngineKey
    estimates: EstimateTrace
    engine_state: Optional[EngineState] = None
    #: Dedicated engine used when sharing is disabled (the serial baseline
    #: constructs one engine per host instead of hitting the cache).
    private_engine: Optional[BayesPerfEngine] = None
    slices: int = 0
    completed: bool = False
    #: Slices dropped by an ``on_exhausted="skip"`` fault policy.
    skipped: int = 0
    #: Host excised from the run by an ``on_exhausted="quarantine"`` policy.
    quarantined: bool = False


class InferenceWorker:
    """Runs batched per-slice EP solves for its shard of hosts."""

    def __init__(
        self,
        worker_id: int,
        *,
        dispatcher: EventDispatcher,
        batch_size: int = 8,
        share_engines: bool = True,
        engine_kwargs: Optional[Dict] = None,
        observer=None,
        fault_policy: Optional[FaultPolicySpec] = None,
        chaos=None,
    ) -> None:
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        self.worker_id = worker_id
        self.dispatcher = dispatcher
        self.batch_size = batch_size
        self.share_engines = share_engines
        self.engine_kwargs = dict(engine_kwargs) if engine_kwargs else {}
        #: Optional :class:`~repro.obs.Observer`: ``slice.solve`` spans plus
        #: latency/occupancy metrics around every engine call.  ``None`` (the
        #: default) keeps the hot path untouched.
        self.observer = observer
        #: Optional retry/timeout/quarantine policy enforced around every
        #: solve; ``None`` (the default) keeps the hot path byte-identical.
        self.fault_policy = fault_policy
        #: Optional :class:`~repro.fleet.chaos.FaultInjector` (tests/demos).
        self.chaos = chaos
        self.cache = EngineCache()
        #: Engines constructed outside the cache (per-host baseline mode).
        self.private_builds = 0
        #: Optional per-slice hook ``(host_id, record, means, stds, report)``
        #: — the streaming pipeline's tap into the solve loop.  ``None``
        #: (the default) costs the hot path nothing.
        self.on_slice: Optional[Callable] = None
        self._runs: Dict[str, HostRun] = {}
        self._round_pool: Optional[ThreadPoolExecutor] = None

    def _kernel_exec(self) -> Optional[KernelExecSpec]:
        """The run's :class:`~repro.fg.megabatch.KernelExecSpec`, if any."""
        spec = self.engine_kwargs.get("kernel_exec")
        return spec if isinstance(spec, KernelExecSpec) else None

    def assign(self, channel: HostChannel, *, arch: str, events: Tuple[str, ...]) -> None:
        """Give this worker responsibility for one host."""
        key = engine_key(arch, events, self.engine_kwargs)
        self._runs[channel.host_id] = HostRun(
            channel=channel,
            key=key,
            estimates=EstimateTrace(method="bayesperf"),
        )

    @property
    def hosts(self) -> Tuple[str, ...]:
        return tuple(self._runs)

    def _engine_for(self, run: HostRun) -> BayesPerfEngine:
        if self.share_engines:
            return self.cache.engine_for_key(run.key, self.engine_kwargs)
        # Per-host construction baseline: every host gets its own engine.
        if run.private_engine is None:
            catalog = catalog_for(run.key[0])
            run.private_engine = BayesPerfEngine(
                catalog, list(run.key[1]), **self.engine_kwargs
            )
            self.private_builds += 1
        return run.private_engine

    def process_available(self) -> int:
        """Drain one batch per host; returns the number of slices processed.

        With shared engines, hosts on the same ``(arch, event-set, config)``
        key are solved *together*: the i-th pending record of every such
        host forms one multi-record batch handed to
        :meth:`~repro.core.engine.BayesPerfEngine.process_batch`, which runs
        a single vectorized EP-kernel pass instead of one EP solve per host.
        Slot-by-slot batching preserves each host's temporal chain (record
        ``i`` still completes before that host's record ``i+1``), and the
        per-slice results are bit-identical to the per-host serial path.
        """
        taken: Dict[str, List] = {}
        for run in self._runs.values():
            if run.completed:
                continue
            records = run.channel.take(self.batch_size)
            if records:
                taken[run.channel.host_id] = records

        if self.share_engines:
            processed = self._process_batched(taken)
        else:
            processed = sum(
                self._process_serial(self._runs[host_id], records)
                for host_id, records in taken.items()
            )

        for host_id, records in taken.items():
            self.dispatcher.emit(
                EstimateReady(
                    host=host_id,
                    first_tick=records[0].tick,
                    last_tick=records[-1].tick,
                    n_slices=len(records),
                )
            )
        for run in self._runs.values():
            if run.channel.done and not run.completed:
                run.completed = True
                self.dispatcher.emit(
                    SessionCompleted(host=run.channel.host_id, n_slices=run.slices)
                )
        return processed

    def _record_slice(self, run: HostRun, record, report) -> None:
        means, stds = report.means(), report.stds()
        run.estimates.append(means, stds)
        run.slices += 1
        if self.on_slice is not None:
            self.on_slice(run.channel.host_id, record, means, stds, report)
        self.dispatcher.emit(
            SliceCompleted(
                host=run.channel.host_id,
                tick=record.tick,
                worker=self.worker_id,
                n_measured=len(record.measured_events),
            )
        )

    def _process_batched(self, taken: Dict[str, List]) -> int:
        """One multi-record engine batch per (engine key, slot index).

        A heterogeneous fleet produces several engine keys per round, and
        the per-key rounds are independent (each key owns its engine and
        its hosts' temporal chains).  Under
        ``KernelExecSpec(partition="signature")`` with ``threads > 1`` the
        keys' slot loops therefore run concurrently on a thread pool —
        solves only; recording is deferred and replayed after the join in
        the deterministic key order, so estimates, events and stream order
        are byte-identical to the serial schedule.  Any guard (fault
        policy, chaos, observer) keeps the serial path.
        """
        processed = 0
        guarded = self.fault_policy is not None or self.chaos is not None
        by_key: Dict[EngineKey, List[str]] = {}
        for host_id in taken:
            by_key.setdefault(self._runs[host_id].key, []).append(host_id)

        spec = self._kernel_exec()
        parallel_keys = (
            not guarded
            and self.observer is None
            and spec is not None
            and spec.threads > 1
            and spec.partition == "signature"
            and len(by_key) > 1
        )
        if parallel_keys:
            pool = self._round_threads(spec.threads)
            futures = []
            for key, host_ids in by_key.items():
                # Cache lookups stay on the submitting thread (they bump the
                # hit/miss counters); the jobs get their engine handed in.
                for host_id in host_ids:
                    engine = self.cache.engine_for_key(key, self.engine_kwargs)
                futures.append(
                    pool.submit(self._solve_key_round, engine, host_ids, taken)
                )
            for future in futures:
                for run, record, report in future.result():
                    self._record_slice(run, record, report)
                    processed += 1
            return processed

        for key, host_ids in by_key.items():
            # One lookup per host, as the per-host path does: the hit/miss
            # counters keep measuring how many hosts reused a shared engine.
            for host_id in host_ids:
                engine = self.cache.engine_for_key(key, self.engine_kwargs)
            depth = max(len(taken[host_id]) for host_id in host_ids)
            for slot in range(depth):
                batch_hosts = [h for h in host_ids if slot < len(taken[h])]
                if guarded:
                    processed += self._process_slot_guarded(
                        engine, taken, batch_hosts, slot
                    )
                    continue
                items = [
                    (self._runs[h].engine_state, taken[h][slot]) for h in batch_hosts
                ]
                observer = self.observer
                if observer is None:
                    results = engine.process_batch(items)
                else:
                    with observer.span(
                        "slice.solve", worker=self.worker_id, n_records=len(items)
                    ):
                        start = time.perf_counter()
                        results = engine.process_batch(items)
                        elapsed = time.perf_counter() - start
                    self._observe_solve(elapsed, len(items))
                for host_id, (report, state) in zip(batch_hosts, results):
                    run = self._runs[host_id]
                    run.engine_state = state
                    self._record_slice(run, taken[host_id][slot], report)
                    processed += 1
        return processed

    def _round_threads(self, threads: int) -> ThreadPoolExecutor:
        """The worker's lazily created cross-key round pool."""
        if self._round_pool is None:
            self._round_pool = ThreadPoolExecutor(
                max_workers=threads, thread_name_prefix="repro-round"
            )
        return self._round_pool

    def _solve_key_round(
        self, engine: BayesPerfEngine, host_ids: List[str], taken: Dict[str, List]
    ) -> List[Tuple[HostRun, object, object]]:
        """One engine key's slot loop, with recording deferred to the caller.

        Solves every slot batch for one key exactly as the serial path would
        (same engine, same per-slot batching, host temporal chains advanced
        in order) but returns the ``(run, record, report)`` triples instead
        of recording them — the caller replays them post-join in the
        deterministic key order.  Only the per-key engine and this key's
        ``HostRun`` states are touched, so concurrent key rounds never
        share mutable state.
        """
        deferred: List[Tuple[HostRun, object, object]] = []
        depth = max(len(taken[host_id]) for host_id in host_ids)
        for slot in range(depth):
            batch_hosts = [h for h in host_ids if slot < len(taken[h])]
            items = [
                (self._runs[h].engine_state, taken[h][slot]) for h in batch_hosts
            ]
            results = engine.process_batch(items)
            for host_id, (report, state) in zip(batch_hosts, results):
                run = self._runs[host_id]
                run.engine_state = state
                deferred.append((run, taken[host_id][slot], report))
        return deferred

    # -- fault-policy enforcement -------------------------------------------

    def _process_slot_guarded(
        self, engine: BayesPerfEngine, taken: Dict[str, List], batch_hosts: List[str], slot: int
    ) -> int:
        """One slot's batch under an active fault policy / fault injector.

        Hosts with a scheduled fault pending (the chaos probe) are excised
        up front so the surviving hosts' batch solves untouched — the
        batch's engine-key signature is not poisoned by a faulty member.
        If the batch still raises (an *unscheduled* fault, e.g. a corrupt
        record), every member is re-solved per-record under the policy:
        ``B=1 == B=N`` bit-identity means the survivors' numbers are
        unchanged and the culprit is isolated to its own retry loop.
        """
        processed = 0
        live = [h for h in batch_hosts if not self._runs[h].quarantined]
        chaos = self.chaos
        direct = [
            h
            for h in live
            if chaos is None or not chaos.pending(h, taken[h][slot].tick, 1)
        ]
        per_record = [h for h in live if h not in direct]
        results = None
        if direct:
            items = [(self._runs[h].engine_state, taken[h][slot]) for h in direct]
            observer = self.observer
            try:
                if observer is None:
                    results = engine.process_batch(items)
                else:
                    with observer.span(
                        "slice.solve", worker=self.worker_id, n_records=len(items)
                    ):
                        start = time.perf_counter()
                        results = engine.process_batch(items)
                        elapsed = time.perf_counter() - start
                    self._observe_solve(elapsed, len(items))
            except Exception:
                results = None
        if results is not None:
            for host_id, (report, state) in zip(direct, results):
                run = self._runs[host_id]
                run.engine_state = state
                self._record_slice(run, taken[host_id][slot], report)
                processed += 1
        else:
            per_record = list(live)
        for host_id in per_record:
            run = self._runs[host_id]
            if run.quarantined:
                continue
            result = self._solve_with_policy(run, engine, taken[host_id][slot])
            if result is None:
                continue
            report, state = result
            run.engine_state = state
            self._record_slice(run, taken[host_id][slot], report)
            processed += 1
        return processed

    def _solve_with_policy(self, run: HostRun, engine: BayesPerfEngine, record):
        """One slice through the retry/timeout loop; ``None`` = dropped.

        Every attempt solves functionally from ``run.engine_state`` (the
        pre-attempt snapshot), so a failed or timed-out attempt never leaks
        partial state — a retry that succeeds is bit-identical to a first
        attempt that succeeded.  The per-slice timeout is cooperative: it is
        checked after the solve returns (an in-process solve cannot be
        preempted), and a flagged attempt's outputs are discarded.
        """
        policy = (
            self.fault_policy
            if self.fault_policy is not None
            else FaultPolicySpec(max_attempts=1)
        )
        host = run.channel.host_id
        observer = self.observer
        last_error: Optional[Exception] = None
        for attempt in range(1, policy.max_attempts + 1):
            try:
                start = time.perf_counter()
                if self.chaos is not None:
                    self.chaos.on_attempt(host, record.tick, attempt)
                if observer is None:
                    results = engine.process_batch([(run.engine_state, record)])
                else:
                    with observer.span(
                        "slice.solve", worker=self.worker_id, n_records=1, attempt=attempt
                    ):
                        results = engine.process_batch([(run.engine_state, record)])
                elapsed = time.perf_counter() - start
                if (
                    policy.timeout_seconds is not None
                    and elapsed > policy.timeout_seconds
                ):
                    raise SliceTimeout(
                        f"slice {host}@t{record.tick} attempt {attempt} took "
                        f"{elapsed:.3f}s (limit {policy.timeout_seconds}s)"
                    )
                if observer is not None:
                    self._observe_solve(elapsed, 1)
                return results[0]
            except Exception as error:
                last_error = error
                self.dispatcher.emit(
                    SliceAttemptFailed(
                        host=host,
                        tick=record.tick,
                        attempt=attempt,
                        error=f"{type(error).__name__}: {error}",
                    )
                )
                if observer is not None:
                    observer.count("slice.attempt_failures")
                if attempt < policy.max_attempts:
                    delay = policy.backoff_delay(host, record.tick, attempt)
                    if delay > 0:
                        time.sleep(delay)
                    self.dispatcher.emit(
                        SliceRetried(
                            host=host,
                            tick=record.tick,
                            attempt=attempt + 1,
                            delay_seconds=delay,
                        )
                    )
                    if observer is not None:
                        observer.count("slice.retries")
        return self._exhaust(run, record, policy, last_error)

    def _exhaust(
        self, run: HostRun, record, policy: FaultPolicySpec, error: Optional[Exception]
    ):
        """Terminal disposition for a slice whose attempts ran out."""
        host = run.channel.host_id
        reason = f"{type(error).__name__}: {error}" if error is not None else "unknown"
        if policy.on_exhausted == "skip":
            run.skipped += 1
            self.dispatcher.emit(
                SliceSkipped(
                    host=host,
                    tick=record.tick,
                    attempts=policy.max_attempts,
                    error=reason,
                )
            )
            if self.observer is not None:
                self.observer.count("slice.skips")
            return None
        if policy.on_exhausted == "quarantine":
            run.quarantined = True
            run.completed = True
            run.channel.abandon()
            self.dispatcher.emit(
                HostQuarantined(
                    host=host,
                    tick=record.tick,
                    attempts=policy.max_attempts,
                    error=reason,
                )
            )
            if self.observer is not None:
                self.observer.count("hosts.quarantined")
            return None
        raise SliceFailed(host, record.tick, policy.max_attempts, reason) from error

    def _observe_solve(self, elapsed: float, n_records: int) -> None:
        """Record one engine call's latency and occupancy metrics."""
        observer = self.observer
        per_slice = elapsed / n_records if n_records else 0.0
        for _ in range(n_records):
            observer.observe("slice.latency_seconds", per_slice)
        observer.observe(
            "batch.occupancy", n_records, buckets=(1, 2, 4, 8, 16, 32, 64, 128)
        )
        observer.count("slices.solved", n_records)

    def _process_serial(self, run: HostRun, records: List) -> int:
        """Per-host sequential solves (the dedicated-engine baseline)."""
        engine = self._engine_for(run)
        if self.fault_policy is not None or self.chaos is not None:
            # Policy enforcement needs functional per-record solves (the
            # pre-attempt snapshot stays untouched on failure); the batched
            # primitive with one item is bit-identical to process_record.
            processed = 0
            for record in records:
                result = self._solve_with_policy(run, engine, record)
                if result is None:
                    if run.quarantined:
                        break
                    continue
                report, state = result
                run.engine_state = state
                self._record_slice(run, record, report)
                processed += 1
            return processed
        if run.engine_state is not None:
            engine.restore(run.engine_state)
        else:
            engine.reset()
        observer = self.observer
        for record in records:
            if observer is None:
                report = engine.process_record(record)
            else:
                with observer.span(
                    "slice.solve", worker=self.worker_id, n_records=1
                ):
                    start = time.perf_counter()
                    report = engine.process_record(record)
                    elapsed = time.perf_counter() - start
                self._observe_solve(elapsed, 1)
            self._record_slice(run, record, report)
        run.engine_state = engine.snapshot()
        return len(records)

    @property
    def all_completed(self) -> bool:
        return all(run.completed for run in self._runs.values())

    def estimates(self) -> Dict[str, EstimateTrace]:
        return {host_id: run.estimates for host_id, run in self._runs.items()}


class WorkerPool:
    """Shards fleet hosts across N inference workers and drives them."""

    def __init__(
        self,
        n_workers: int = 4,
        *,
        dispatcher: Optional[EventDispatcher] = None,
        batch_size: int = 8,
        share_engines: bool = True,
        engine_kwargs: Optional[Dict] = None,
        observer=None,
        fault_policy: Optional[FaultPolicySpec] = None,
        chaos=None,
    ) -> None:
        if n_workers <= 0:
            raise ValueError("n_workers must be positive")
        self.dispatcher = dispatcher if dispatcher is not None else EventDispatcher()
        self.observer = observer
        self.workers: List[InferenceWorker] = [
            InferenceWorker(
                worker_id,
                dispatcher=self.dispatcher,
                batch_size=batch_size,
                share_engines=share_engines,
                engine_kwargs=engine_kwargs,
                observer=observer,
                fault_policy=fault_policy,
                chaos=chaos,
            )
            for worker_id in range(n_workers)
        ]
        self._next = 0

    def assign(self, channel: HostChannel, *, arch: str, events: Tuple[str, ...]) -> int:
        """Shard one host onto a worker (round-robin); returns the worker id."""
        worker = self.workers[self._next % len(self.workers)]
        worker.assign(channel, arch=arch, events=events)
        self._next += 1
        return worker.worker_id

    def set_on_slice(self, callback: Optional[Callable]) -> None:
        """Attach (or clear) the per-slice hook on every worker."""
        for worker in self.workers:
            worker.on_slice = callback

    def rounds(self, ingest: FleetIngest, *, pump_records: int = 16) -> Iterator[int]:
        """Alternate ingestion and inference rounds until the fleet drains.

        Yields the number of slices processed after every round — the
        streaming pipeline's pacing signal: per-slice results (via the
        ``on_slice`` hook) and buffered chain records can be handed off
        between rounds, so nothing has to accumulate for the whole run.

        With an observer attached each round runs inside a ``fleet.round``
        span (the consumer's between-round flush work is part of the round),
        and the ring-buffer high-water mark is tracked per round.
        """
        observer = self.observer
        index = 0
        while True:
            round_cm = (
                observer.span("fleet.round", round=index)
                if observer is not None
                else nullcontext()
            )
            with round_cm as round_span:
                pumped = ingest.pump_all(pump_records)
                round_accepted = sum(stats.accepted for stats in pumped.values())
                if observer is not None:
                    depth = max(
                        (len(channel.buffer) for channel in ingest.channels),
                        default=0,
                    )
                    observer.gauge_max("ring.depth.max", depth)
                    observer.count("rounds")
                round_processed = sum(
                    worker.process_available() for worker in self.workers
                )
                if round_span is not None:
                    round_span.set_attribute("processed", round_processed)
                # The consumer's flush work (estimate/chain records) happens
                # while this generator is suspended, inside the round span.
                yield round_processed
            index += 1
            if ingest.all_done and all(worker.all_completed for worker in self.workers):
                return
            if round_processed == 0 and round_accepted == 0:
                # Nothing moved and nothing can move any more — e.g. a channel
                # was registered with the ingest but never assigned to a
                # worker, so its buffer will never drain.  Bail out instead of
                # spinning.
                return

    def run_until_drained(self, ingest: FleetIngest, *, pump_records: int = 16) -> int:
        """Drive :meth:`rounds` to completion; returns total slices processed."""
        return sum(self.rounds(ingest, pump_records=pump_records))

    def estimates(self) -> Dict[str, EstimateTrace]:
        merged: Dict[str, EstimateTrace] = {}
        for worker in self.workers:
            merged.update(worker.estimates())
        return merged

    def runs(self) -> Dict[str, HostRun]:
        """Every host's run state across all workers (checkpoint/restore)."""
        merged: Dict[str, HostRun] = {}
        for worker in self.workers:
            merged.update(worker._runs)
        return merged

    def quarantined_hosts(self) -> Tuple[str, ...]:
        """Hosts excised from the run by a quarantine policy, sorted."""
        return tuple(
            sorted(host for host, run in self.runs().items() if run.quarantined)
        )

    def cache_stats(self) -> Dict[str, int]:
        """Aggregate engine statistics across workers.

        ``engines_built`` counts every engine construction (cache misses plus
        per-host baseline builds); ``hits`` counts cache reuses.
        """
        return {
            "engines_built": sum(
                worker.cache.misses + worker.private_builds for worker in self.workers
            ),
            "hits": sum(worker.cache.hits for worker in self.workers),
            "misses": sum(worker.cache.misses for worker in self.workers),
        }
