"""Write-ahead-log recovery: turn a crashed run's tracefile back into state.

A fleet run with checkpointing enabled streams three durable record kinds
into its tracefile (format version 4, :mod:`repro.fleet.tracefile`): every
completed slice's ``estimate`` record, one ``checkpoint`` record per host
per cadence round (the host's engine snapshot plus its ingest position),
and an fsynced ``commit`` marker sealing each full round of checkpoints.
The commit marker is the atomic recovery point — "if a step can be skipped
on resume, its outputs must be durable" holds at the slice boundary: every
slice at or before the last commit has its estimate on disk, and everything
after it is simply re-executed (sources, backoff jitter and engine RNG are
all deterministic, so the re-execution is bit-identical to what the crashed
run would have produced).

:func:`load_wal` scans the file once, tracking byte offsets, and returns
the last *committed* recovery point: the per-host checkpoint payloads, the
estimate records written up to the commit, and the byte offset to truncate
to.  :func:`truncate_to_commit` performs the standard WAL rollback — the
uncommitted suffix (torn tail included) is cut off, and the resumed writer
appends from the recovery point.

The per-host restore helpers (:func:`checkpoint_host` / :func:`restore_host`)
are the bridge between this module and the worker pool's
:class:`~repro.fleet.workers.HostRun` state.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from repro.core.engine import EngineState
from repro.fleet.tracefile import (
    FORMAT_NAME,
    TraceFormatError,
    parse_sample,
    sample_line,
)
from repro.fleet.workers import HostRun

__all__ = [
    "WalState",
    "checkpoint_host",
    "engine_state_from_json",
    "engine_state_to_json",
    "load_wal",
    "restore_host",
    "truncate_to_commit",
]


def engine_state_to_json(state: Optional[EngineState]) -> Optional[Dict]:
    """JSON form of an engine snapshot (``None`` for a host yet to solve).

    The RNG state (a NumPy bit-generator state dict of ints/strings) is JSON
    round-trip exact, so a restored engine continues the identical stream.
    """
    if state is None:
        return None
    return {
        "prior_mean": {
            event: (None if value is None else float(value))
            for event, value in state.prior_mean.items()
        },
        "scale": {event: float(value) for event, value in state.scale.items()},
        "tick": int(state.tick),
        "rng_state": state.rng_state,
    }


def engine_state_from_json(payload: Optional[Dict]) -> Optional[EngineState]:
    """Inverse of :func:`engine_state_to_json`."""
    if payload is None:
        return None
    return EngineState(
        prior_mean={
            event: (None if value is None else float(value))
            for event, value in payload.get("prior_mean", {}).items()
        },
        scale={
            event: float(value) for event, value in payload.get("scale", {}).items()
        },
        tick=int(payload.get("tick", 0)),
        rng_state=payload.get("rng_state"),
    )


def checkpoint_host(run: HostRun) -> Tuple[Optional[Dict], Dict]:
    """One host's WAL checkpoint: (engine-state JSON, ingest progress).

    The progress payload captures everything the estimate stream does not:
    the source position (records pulled), the serialized ring-buffer
    contents, backpressure/exhaustion counters and the policy dispositions
    (skips, quarantine) — together with the engine snapshot this makes the
    host's resumed state exact even mid-backpressure.
    """
    channel = run.channel
    progress = {
        "slices": run.slices,
        "skipped": run.skipped,
        "completed": run.completed,
        "quarantined": run.quarantined,
        "pulled": channel.pulled,
        "dropped": channel.buffer.dropped,
        "exhausted": channel.exhausted,
        "buffered": [sample_line(record) for record in channel.buffer.snapshot()],
    }
    if hasattr(channel.source, "byte_offset"):
        # Real-trace hosts: pin the ingest position as a file offset into
        # the capture too (informational — restore fast-forwards by pulled
        # count, which is exact for any deterministic source).
        progress["file_offset"] = channel.source.byte_offset(channel.pulled)
    return engine_state_to_json(run.engine_state), progress


def restore_host(
    run: HostRun,
    state_payload: Optional[Dict],
    progress: Dict,
    estimates: List[Dict],
) -> None:
    """Re-materialise one host's run state from its committed checkpoint.

    *estimates* is the host's committed estimate payloads in write order —
    they refill :attr:`HostRun.estimates` so the final trace is the
    uninterrupted run's, not just the post-resume suffix.
    """
    run.engine_state = engine_state_from_json(state_payload)
    run.slices = int(progress.get("slices", 0))
    run.skipped = int(progress.get("skipped", 0))
    run.completed = bool(progress.get("completed", False))
    run.quarantined = bool(progress.get("quarantined", False))
    run.channel.restore(
        pulled=int(progress.get("pulled", 0)),
        buffered=[parse_sample(payload) for payload in progress.get("buffered", ())],
        dropped=int(progress.get("dropped", 0)),
        exhausted=bool(progress.get("exhausted", False)),
        quarantined=run.quarantined,
    )
    for payload in estimates:
        run.estimates.append(payload["values"], payload.get("sigma"))


@dataclass
class WalState:
    """The last committed recovery point of one write-ahead log."""

    path: Path
    header: Dict
    #: Round index of the last commit marker (``None`` = nothing committed:
    #: the run must restart from scratch).
    last_commit_round: Optional[int]
    #: Byte offset just past the last commit line — everything after it is
    #: uncommitted and rolled back by :func:`truncate_to_commit`.
    commit_offset: int
    #: Per-host checkpoint payloads of the last committed round:
    #: ``host -> {"state": ..., "progress": ...}``.
    checkpoints: Dict[str, Dict] = field(default_factory=dict)
    #: Committed estimate payloads per host, in write order.
    host_estimates: Dict[str, List[Dict]] = field(default_factory=dict)
    resumes: int = 0
    aborted: Optional[str] = None
    torn_tail: bool = False

    @property
    def run_spec(self) -> Optional[Dict]:
        """The serialized :class:`~repro.api.RunSpec` stamped at write time."""
        return self.header.get("metadata", {}).get("run_spec")


def load_wal(path: Union[str, Path]) -> WalState:
    """Scan a WAL tracefile and return its last committed recovery point.

    The scan is byte-offset exact (the file is read in binary) and crash
    tolerant: a torn final line is noted, not fatal, and any malformed line
    is skipped — a recovery reader must survive whatever a killed writer
    left behind.  Only state sealed by a commit marker is returned; records
    after the last commit are ignored (they will be re-executed).
    """
    path = Path(path)
    raw = path.read_bytes()
    lines: List[Tuple[int, bytes]] = []  # (end_offset, line_bytes)
    offset = 0
    for line in raw.splitlines(keepends=True):
        offset += len(line)
        lines.append((offset, line))
    if not lines:
        raise TraceFormatError(f"{path} is empty")

    def _parse(line: bytes) -> Optional[Dict]:
        try:
            payload = json.loads(line.decode("utf-8"))
        except (json.JSONDecodeError, UnicodeDecodeError):
            return None
        return payload if isinstance(payload, dict) else None

    header = _parse(lines[0][1])
    if header is None or header.get("format") != FORMAT_NAME:
        raise TraceFormatError(f"{path}: not a {FORMAT_NAME} file")
    if header.get("version") != 4:
        raise TraceFormatError(
            f"{path}: version {header.get('version')!r} is not a write-ahead "
            f"log (checkpoint records need version 4)"
        )

    state = WalState(
        path=path,
        header=header,
        last_commit_round=None,
        commit_offset=lines[0][0],
    )
    #: Checkpoints seen since the last commit, keyed (round, host).
    pending: Dict[int, Dict[str, Dict]] = {}
    #: (host, payload) estimate stream in write order; committed prefix
    #: length is snapshotted at each commit.
    estimates: List[Tuple[str, Dict]] = []
    committed_estimates = 0
    last_index = len(lines) - 1
    for index, (end_offset, line) in enumerate(lines[1:], start=1):
        if not line.strip():
            continue
        payload = _parse(line)
        if payload is None:
            if index == last_index:
                state.torn_tail = True
            continue
        kind = payload.get("type")
        if kind == "checkpoint":
            pending.setdefault(int(payload.get("round", -1)), {})[
                str(payload.get("host", ""))
            ] = payload
        elif kind == "commit":
            round_idx = int(payload.get("round", -1))
            state.last_commit_round = round_idx
            state.commit_offset = end_offset
            state.checkpoints = dict(pending.get(round_idx, {}))
            committed_estimates = len(estimates)
            pending.clear()
        elif kind == "estimate" and "host" in payload:
            estimates.append((str(payload["host"]), payload))
        elif kind == "resume":
            state.resumes += 1
        elif kind == "aborted":
            state.aborted = str(payload.get("error", ""))
    for host, payload in estimates[:committed_estimates]:
        state.host_estimates.setdefault(host, []).append(payload)
    return state


def truncate_to_commit(state: WalState) -> int:
    """Roll the log back to its recovery point; returns bytes discarded.

    Everything after the last commit marker — uncommitted checkpoints,
    estimate records the re-execution will re-emit, a torn tail, an
    ``aborted`` marker — is cut off, so a resumed writer opened in append
    mode continues from a consistent prefix.
    """
    size = state.path.stat().st_size
    discarded = size - state.commit_offset
    if discarded > 0:
        with state.path.open("r+b") as stream:
            stream.truncate(state.commit_offset)
    return max(discarded, 0)
