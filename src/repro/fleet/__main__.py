"""Command-line front end for the fleet service (``python -m repro.fleet``).

Six subcommands:

* ``demo`` — run a synthetic fleet and report throughput for the serial
  baseline vs. the sharded worker pool; ``--estimator`` selects any
  registered moment estimator (unknown names list the registry),
  ``--stream`` consumes the run incrementally through
  :meth:`repro.api.Pipeline.stream`, ``--metrics`` prints the observability
  metrics-registry summary at the end of the run, and ``--trace-out`` writes
  the run's span tree as JSONL;
* ``record`` — run one monitoring session and write a replayable trace file;
* ``replay`` — feed a recorded trace back through the service and (when the
  file carries the original estimates) verify the round-trip is exact;
* ``report`` — chain-health (mixing) analysis and run-log summary of a
  recorded trace file, without re-running inference;
* ``resume`` — continue a crashed checkpointed run from its write-ahead
  log (format version 4) to completion;
* ``ingest`` — preview a real ``perf`` capture (``perf stat -I -x,`` CSV,
  ``perf script`` text, or JSONL counter dumps): the schema mapping onto
  the event catalog, skip-and-account totals, and the first few lowered
  quanta; ``--convert`` writes the capture as a replayable trace file.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.api import (
    ContentionSpec,
    EstimatorSpec,
    HostSpec,
    ObserverSpec,
    Pipeline,
    RunSpec,
    SchedulerSpec,
    baseline_names,
)
from repro.fg.registry import engine_estimator_names, get_estimator
from repro.fleet.service import FleetService
from repro.fleet.tracefile import (
    TraceFile,
    TraceFormatError,
    read_trace,
    record_session_trace,
    write_trace,
)
from repro.obs.mixing import analyze_chain
from repro.perfio import PERF_FORMATS, UNKNOWN_POLICIES
from repro.scheduling import SCHEDULE_KINDS
from repro.workloads.registry import available_workloads, get_workload


def _estimator_name(value: str) -> str:
    """argparse type for ``--estimator``: resolves through the registry.

    Unknown names list the whole registry (engines *and* baselines — the
    registry error carries it); a known-but-baseline name gets a pointer to
    ``--baselines``, since baselines are comparators, not engines.
    """
    try:
        entry = get_estimator(value)
    except ValueError as error:
        # The registry's message already lists the registered names.
        raise argparse.ArgumentTypeError(str(error)) from None
    if entry.baseline:
        raise argparse.ArgumentTypeError(
            f"{value!r} is a baseline correction method, not a moment "
            f"estimator; pass it to --baselines to compare it against the "
            f"engine (engine estimators: {', '.join(engine_estimator_names())})"
        )
    return value


def _workload_name(value: str) -> str:
    """argparse type for ``--workload``: resolves through the registry.

    Unknown names list :func:`~repro.workloads.registry.available_workloads`
    — the same contract unknown estimators get from ``--estimator`` — so a
    typo fails as a clean usage error instead of a mid-run traceback.
    """
    try:
        get_workload(value)
    except KeyError:
        raise argparse.ArgumentTypeError(
            f"unknown workload {value!r} "
            f"(available: {', '.join(sorted(available_workloads()))})"
        ) from None
    return value


def _baseline_list(value: str) -> tuple:
    """argparse type for ``--baselines``: comma-separated registry names."""
    names = tuple(name for name in value.split(",") if name)
    for name in names:
        try:
            entry = get_estimator(name)
        except ValueError as error:
            raise argparse.ArgumentTypeError(str(error)) from None
        if not entry.baseline:
            raise argparse.ArgumentTypeError(
                f"{name!r} is a moment estimator, not a baseline correction "
                f"method (baselines: {', '.join(baseline_names())})"
            )
    return names


def _add_demo_parser(subparsers) -> None:
    parser = subparsers.add_parser("demo", help="run the synthetic fleet demo")
    parser.add_argument("--hosts", type=int, default=64, help="number of simulated hosts")
    parser.add_argument("--ticks", type=int, default=6, help="scheduler quanta per host")
    parser.add_argument("--workers", type=int, default=4, help="inference workers")
    parser.add_argument("--arch", default="x86", help="microarchitecture")
    parser.add_argument(
        "--workload",
        type=_workload_name,
        default="steady",
        help="workload driven on every host",
    )
    parser.add_argument(
        "--derived-metrics",
        default="ipc,l1d_mpki",
        help="comma-separated derived metrics selecting the monitored events",
    )
    parser.add_argument(
        "--metrics",
        action="store_true",
        help="print the observability metrics-registry summary after the run",
    )
    parser.add_argument(
        "--trace-out",
        default=None,
        metavar="PATH",
        help="write the run's spans (OTLP-shaped JSONL) to PATH",
    )
    parser.add_argument(
        "--estimator",
        type=_estimator_name,
        default="analytic",
        help=(
            "registered moment estimator to run "
            f"(one of: {', '.join(engine_estimator_names())})"
        ),
    )
    parser.add_argument(
        "--scheduler",
        choices=SCHEDULE_KINDS,
        default="overlap",
        help="multiplexing policy rotating events across the counters",
    )
    parser.add_argument(
        "--baselines",
        type=_baseline_list,
        default=(),
        metavar="NAMES",
        help=(
            "comma-separated baseline correction methods to score against "
            f"BayesPerf (registered: {', '.join(baseline_names())}); "
            "prints the comparison table after the run"
        ),
    )
    parser.add_argument(
        "--contention",
        type=int,
        default=0,
        metavar="N",
        help="background PCIe streams (0-5) throttling every host's workload",
    )
    parser.add_argument(
        "--serial", action="store_true", help="also run the per-host serial baseline"
    )
    parser.add_argument(
        "--stream",
        action="store_true",
        help="consume per-slice results incrementally via Pipeline.stream()",
    )


def _demo_observer(args) -> Optional[ObserverSpec]:
    """The demo's observability opt-in, from the CLI flags."""
    if not args.metrics and args.trace_out is None:
        return None
    return ObserverSpec(
        trace=args.trace_out,
        metrics="console" if args.metrics else None,
    )


def _build_demo_service(args, *, n_workers: int, observe: bool = True) -> FleetService:
    metrics = tuple(m for m in args.derived_metrics.split(",") if m) or None
    service = FleetService(
        args.arch,
        metrics=metrics,
        n_workers=n_workers,
        estimator=EstimatorSpec(args.estimator),
        observer=_demo_observer(args) if observe else None,
    )
    for index in range(args.hosts):
        service.add_host(args.workload, seed=index, n_ticks=args.ticks)
    return service


def _run_demo_stream(args) -> int:
    """Streaming demo: per-slice results arrive while the fleet runs."""
    pipeline = Pipeline(_build_demo_service(args, n_workers=args.workers))
    shown = 0
    total = 0
    for result in pipeline.stream():
        total += 1
        if shown < 3:
            shown += 1
            head = ", ".join(f"{k}={v:.3g}" for k, v in list(result.values.items())[:3])
            print(f"  slice {result.host}@t{result.tick}: {head}")
    fleet = pipeline.fleet_result
    print(
        f"  streamed {total} slices at {fleet.slices_per_second:.1f} slices/s "
        f"({args.estimator} estimator, {fleet.n_hosts} hosts)"
    )
    if args.trace_out is not None:
        print(f"  spans written to {args.trace_out}")
    return 0


def _run_demo_grid(args) -> int:
    """Scenario-grid demo: one spec-driven run, throughput + comparison table."""
    metrics = tuple(m for m in args.derived_metrics.split(",") if m) or None
    spec = RunSpec(
        arch=args.arch,
        metrics=metrics,
        hosts=tuple(
            HostSpec(workload=args.workload, seed=index, n_ticks=args.ticks)
            for index in range(args.hosts)
        ),
        estimator=EstimatorSpec(args.estimator),
        observer=_demo_observer(args),
        n_workers=args.workers,
        scheduler=(
            SchedulerSpec(policy=args.scheduler) if args.scheduler != "overlap" else None
        ),
        contention=(
            ContentionSpec(background=args.contention) if args.contention else None
        ),
        baselines=tuple(args.baselines),
    )
    result = Pipeline.from_spec(spec).run()
    fleet = result.fleet
    print(
        f"  scenario: scheduler={args.scheduler} contention={args.contention} "
        f"-> {fleet.total_slices} slices at {fleet.slices_per_second:.1f} slices/s"
    )
    if result.comparison is not None:
        for line in result.comparison.render().splitlines():
            print(f"  {line}")
    if args.trace_out is not None:
        print(f"  spans written to {args.trace_out}")
    return 0


def _run_demo(args) -> int:
    print(
        f"Fleet demo: {args.hosts} hosts x {args.ticks} quanta on {args.arch} "
        f"({args.workload!r}, {args.estimator} estimator)"
    )
    if args.baselines or args.scheduler != "overlap" or args.contention:
        # Any scenario-grid flag routes through the spec'd pipeline: the
        # grid axes are RunSpec fields, not service kwargs.
        return _run_demo_grid(args)
    if args.stream:
        return _run_demo_stream(args)
    results = {}
    modes = (("pool", args.workers),) + ((("serial", 1),) if args.serial else ())
    for mode, workers in modes:
        # Only the pool run is observed: a second observer would reopen (and
        # clobber) the same span-trace file for the serial baseline.
        service = _build_demo_service(args, n_workers=workers, observe=mode == "pool")
        results[mode] = service.run(mode=mode)
    if args.trace_out is not None:
        print(f"  spans written to {args.trace_out}")
    for mode, result in results.items():
        cache = result.engine_cache
        print(
            f"  {mode:6s}: {result.total_slices} slices in "
            f"{result.elapsed_seconds:.2f}s = {result.slices_per_second:7.1f} slices/s "
            f"(engines built: {cache['engines_built']}, cache hits: {cache['hits']}, "
            f"dropped: {result.total_dropped})"
        )
    if "serial" in results:
        speedup = results["pool"].slices_per_second / max(
            results["serial"].slices_per_second, 1e-9
        )
        print(f"  worker pool speedup over per-host serial construction: {speedup:.2f}x")
    sample_host = next(iter(results["pool"].estimates))
    estimates = results["pool"].estimates[sample_host]
    last = estimates.at(len(estimates) - 1)
    shown = ", ".join(f"{k}={v:.3g}" for k, v in list(last.items())[:3])
    print(f"  e.g. {sample_host} final slice: {shown}")
    return 0


def _run_record(args) -> int:
    trace = record_session_trace(
        args.output,
        args.workload,
        arch=args.arch,
        n_ticks=args.ticks,
        seed=args.seed,
    )
    print(
        f"Recorded {trace.n_ticks} quanta of {trace.workload!r} ({trace.arch}) "
        f"-> {args.output}"
    )
    return 0


def _run_replay(args) -> int:
    trace = read_trace(args.trace)
    service = FleetService(trace.arch or "x86", events=trace.events, n_workers=1)
    host_id = service.add_trace(trace)
    result = service.run()
    estimates = result.estimates[host_id]
    print(
        f"Replayed {len(estimates)} quanta of {trace.workload!r} ({trace.arch}) at "
        f"{result.slices_per_second:.1f} slices/s"
    )
    if trace.estimates is not None:
        recorded_method = trace.metadata.get("method", trace.estimates.method)
        if recorded_method != "bayesperf":
            # The fleet always replays through the BayesPerf engine, so
            # estimates recorded by another correction method are expected to
            # differ — comparing them would be misleading, not a failure.
            print(
                f"Round-trip check skipped: the file's estimates were recorded "
                f"with method {recorded_method!r}, replay uses 'bayesperf'"
            )
        elif estimates.values_equal(trace.estimates):
            print("Round-trip check: replayed estimates match the recorded ones exactly")
        else:
            print("Round-trip check FAILED: replayed estimates differ from the file")
            return 1
    return 0


def _run_resume(args) -> int:
    """Continue a crashed checkpointed run from its write-ahead log."""
    try:
        pipeline = Pipeline.resume(args.trace)
    except (TraceFormatError, ValueError) as error:
        print(f"Cannot resume: {error}")
        return 1
    result = pipeline.run_fleet()
    print(
        f"Resumed {args.trace}: {result.total_slices} slices re-executed at "
        f"{result.slices_per_second:.1f} slices/s "
        f"({result.n_hosts} hosts, {len(result.quarantined)} quarantined)"
    )
    for host_id in sorted(result.estimates)[:3]:
        estimates = result.estimates[host_id]
        if not len(estimates):
            continue
        last = estimates.at(len(estimates) - 1)
        shown = ", ".join(f"{k}={v:.3g}" for k, v in list(last.items())[:3])
        print(f"  {host_id} final slice: {shown}")
    return 0


def _run_ingest(args) -> int:
    """Preview (and optionally convert) a real perf capture."""
    from repro.perfio import PerfTraceSource

    try:
        source = PerfTraceSource(
            "ingest-preview",
            args.file,
            format=args.format,
            arch=args.arch,
            on_unknown=args.on_unknown,
        )
    except (OSError, KeyError, ValueError) as error:
        print(f"Cannot ingest {args.file}: {error}")
        return 1
    stats = source.stats
    print(
        f"Ingested {args.file} ({stats.format}, {args.arch}): "
        f"{stats.n_ticks} quanta over {len(source.events)} events"
    )
    print("  schema mapping (raw perf name -> catalog event):")
    for raw in sorted(source.mapping):
        print(f"    {raw:32s} -> {source.mapping[raw]}")
    print(
        f"  lines: {stats.total_lines} total, {stats.parsed_samples} parsed, "
        f"{stats.skipped_lines} malformed skipped"
    )
    if stats.unknown_events:
        dropped = ", ".join(
            f"{raw} x{count}" for raw, count in sorted(stats.unknown_events.items())
        )
        print(f"  unknown events skipped: {dropped}")
    if stats.not_counted:
        print(f"  <not counted> readings: {stats.not_counted}")
    if stats.empty_ticks:
        print(f"  empty quanta skipped: {stats.empty_ticks}")
    if stats.torn_tail:
        print("  torn tail: final line truncated mid-write (recoverable)")
    for record in list(source.records())[: args.limit]:
        head = ", ".join(
            f"{event}={record.total(event):.4g}"
            for event in list(record.samples)[:4]
        )
        mux = (
            " (mux " + ", ".join(
                f"{event}={fraction:.0%}"
                for event, fraction in list(record.mux_fraction.items())[:4]
            ) + ")"
            if record.mux_fraction
            else ""
        )
        print(f"    quantum {record.tick}: {head}{mux}")
    if args.convert is not None:
        trace = TraceFile(
            arch=source.arch,
            events=source.events,
            workload=source.workload_name,
            samples_per_tick=source.samples_per_tick,
            metadata={"source": str(args.file), "format": stats.format},
            sampled=source.sampled_trace(),
        )
        write_trace(args.convert, trace)
        print(f"  wrote replayable tracefile -> {args.convert}")
    return 0


def _run_report(args) -> int:
    """Summarise a trace file's run log and analyse its chain health."""
    trace = read_trace(args.trace, strict=False)
    print(
        f"Trace {args.trace}: arch={trace.arch or '?'} "
        f"workload={trace.workload or '?'}"
    )
    if trace.checkpoints or trace.aborted or trace.torn_tail or trace.resumes:
        commit = (
            f"last commit round {trace.last_commit_round}"
            if trace.last_commit_round is not None
            else "no committed round"
        )
        print(
            f"  write-ahead log: {trace.checkpoints} checkpoint(s), "
            f"{commit}, {trace.resumes} resume(s)"
        )
        if trace.aborted:
            print(f"  aborted: {trace.aborted}")
        if trace.torn_tail:
            print("  torn tail: final line truncated mid-write (recoverable)")
    if trace.malformed_lines:
        print(f"  malformed lines skipped: {len(trace.malformed_lines)}")
    if trace.sampled is not None:
        print(f"  samples: {trace.n_ticks} quanta")
    if trace.estimates is not None:
        print(f"  estimates: {len(trace.estimates)} ticks ({trace.estimates.method})")
    if trace.host_estimates:
        n_slices = sum(len(t) for t in trace.host_estimates.values())
        print(f"  run log: {n_slices} slices over {len(trace.host_estimates)} hosts")
        for host_id in sorted(trace.host_estimates)[:3]:
            host_trace = trace.host_estimates[host_id]
            last = host_trace.at(len(host_trace) - 1)
            shown = ", ".join(f"{k}={v:.3g}" for k, v in list(last.items())[:3])
            print(f"    {host_id} final slice: {shown}")
    if trace.chain is None:
        print("  chain records: none (mixing analysis needs a version >= 2 trace)")
        return 0
    report = analyze_chain(trace.chain)
    for line in report.render().splitlines():
        print(f"  {line}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-fleet", description="BayesPerf fleet telemetry service"
    )
    subparsers = parser.add_subparsers(dest="command", required=True)
    _add_demo_parser(subparsers)

    record = subparsers.add_parser("record", help="record a replayable trace file")
    record.add_argument("-o", "--output", required=True, help="trace file to write")
    record.add_argument("--workload", default="steady", help="workload to record")
    record.add_argument("--arch", default="x86", help="microarchitecture")
    record.add_argument("--ticks", type=int, default=None, help="quanta to record")
    record.add_argument("--seed", type=int, default=0, help="simulation seed")

    replay = subparsers.add_parser("replay", help="replay a recorded trace file")
    replay.add_argument("trace", help="trace file to replay")

    report = subparsers.add_parser(
        "report", help="chain-health and run-log report over a trace file"
    )
    report.add_argument("trace", help="trace file to analyse")

    resume = subparsers.add_parser(
        "resume", help="continue a crashed checkpointed run from its write-ahead log"
    )
    resume.add_argument("trace", help="write-ahead log (version 4 trace file)")

    ingest = subparsers.add_parser(
        "ingest", help="preview a real perf capture (stat-csv / script / jsonl)"
    )
    ingest.add_argument("file", help="perf output file to ingest")
    ingest.add_argument(
        "--format",
        choices=("auto",) + PERF_FORMATS,
        default="auto",
        help="capture format (auto-detected from the first parseable line)",
    )
    ingest.add_argument("--arch", default="x86", help="catalog to map events onto")
    ingest.add_argument(
        "--on-unknown",
        dest="on_unknown",
        choices=UNKNOWN_POLICIES,
        default="raise",
        help="what to do with perf events the catalog cannot resolve",
    )
    ingest.add_argument(
        "--limit", type=int, default=5, help="scheduling quanta to preview"
    )
    ingest.add_argument(
        "--convert",
        default=None,
        metavar="OUT",
        help="also write the capture as a replayable repro tracefile",
    )

    args = parser.parse_args(argv)
    if args.command == "demo":
        return _run_demo(args)
    if args.command == "record":
        return _run_record(args)
    if args.command == "report":
        return _run_report(args)
    if args.command == "resume":
        return _run_resume(args)
    if args.command == "ingest":
        return _run_ingest(args)
    return _run_replay(args)


if __name__ == "__main__":
    sys.exit(main())
