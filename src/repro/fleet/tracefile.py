"""Versioned JSONL trace files: record once, replay anywhere.

The format follows the ``perf script`` philosophy — a self-describing line
stream that external tooling can grep, filter and post-process — while
staying replayable: a recorded sampled trace fed back through a fresh engine
reproduces the original estimates exactly (analytic moments are
deterministic).

Layout (one JSON object per line):

* line 1 — header: ``{"format": "bayesperf-trace", "version": 1, "arch": ...,
  "events": [...], "workload": ..., "seed": ..., ...}``
* ``{"type": "sample", "tick": t, "config": [...], "samples": {event: [...]}}``
  — one multiplexed scheduler quantum (the engine's input).
* ``{"type": "poll", "tick": t, "values": {...}}`` — one polled reference
  reading (optional; lets a replay re-score errors).
* ``{"type": "estimate", "tick": t, "values": {...}, "sigma": {...}}`` — one
  tick of a correction method's output (optional; lets a replay verify
  round-trip fidelity without re-running inference).
* ``{"type": "chain", "seq": i, "slice": s, ...}`` — one per-site tilted-MCMC
  chain run captured by a :class:`~repro.fg.mcmc.ChainTrace` recorder
  (format version 2; the accelerator co-simulation's input).

Version history: version 1 files carry sample/poll/estimate records only;
version 2 adds ``chain`` records (optionally carrying a per-window burn-in
acceptance trajectory under ``"windows"``); version 3 adds *host-keyed*
``estimate`` records (``{"type": "estimate", "host": "h12", ...}``) so one
fleet trace can carry the complete per-slice run log for every host next to
the chain records it replays from; version 4 promotes the stream to a
write-ahead log with four durability record kinds —
``{"type": "checkpoint", "host": ..., "round": r, "state": {...}}`` (one
host's engine snapshot plus ingest progress), ``{"type": "commit",
"round": r}`` (fsynced after a full round of checkpoints: the atomic
recovery point), ``{"type": "resume", "round": r}`` (a resumed run took
over here) and ``{"type": "aborted", "error": ...}`` (the writer was
closed by a propagating exception — a *dirty* shutdown, distinguishable
from both a clean close and a hard kill).  Writers stamp the lowest
version that covers the records present, and the reader accepts all four.

Crash tolerance: a process killed mid-write leaves a torn final line; the
reader truncates it (``TraceFile.torn_tail``) instead of raising, and
``strict=False`` extends the same tolerance to malformed lines anywhere in
the stream (``TraceFile.malformed_lines``) — the ingestion-hardening
posture for replaying traces of unknown provenance.

Two writers exist: :func:`write_trace` serialises a materialised
:class:`TraceFile` in one pass, and :class:`TraceWriter` streams — the
header first, then ``chain`` records appended as each inference round
completes, which is how ``Pipeline.stream()`` keeps the chain recorder's
memory bounded.

Recorded traces can be registered as replayable workloads
(:func:`register_trace_workload`), after which any fleet host can be backed
by the file instead of the simulator.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.fg.mcmc import ChainSiteVisit, ChainTrace
from repro.pmu.configuration import CounterConfiguration
from repro.pmu.sampling import PolledTrace, SampledTrace, SamplingRecord
from repro.pmu.traces import EstimateTrace
from repro.workloads.registry import register_workload

FORMAT_NAME = "bayesperf-trace"
FORMAT_VERSION = 4
#: Versions this reader understands (1 = pre-chain-record files, 2 =
#: pre-host-keyed-estimate files, 3 = pre-write-ahead-log files).
READABLE_VERSIONS = (1, 2, 3, 4)


class TraceFormatError(ValueError):
    """Raised when a trace file is malformed or has an unsupported version."""


@dataclass
class TraceFile:
    """In-memory form of one trace file."""

    arch: str
    events: tuple
    workload: str = ""
    seed: int = 0
    samples_per_tick: int = 0
    metadata: Dict = field(default_factory=dict)
    sampled: Optional[SampledTrace] = None
    polled: Optional[PolledTrace] = None
    estimates: Optional[EstimateTrace] = None
    #: Per-site MCMC chain records (version 2), if the trace carries any.
    chain: Optional[ChainTrace] = None
    #: Host-keyed per-slice estimate logs (version 3) — the fleet run log.
    host_estimates: Dict[str, EstimateTrace] = field(default_factory=dict)
    #: Write-ahead-log bookkeeping (version 4): per-host checkpoint records
    #: seen, the last *committed* checkpoint round (``None`` when no full
    #: round of checkpoints was followed by a commit), and resume markers.
    checkpoints: int = 0
    last_commit_round: Optional[int] = None
    resumes: int = 0
    #: Error string from an ``aborted`` marker — the writer was closed by a
    #: propagating exception (dirty shutdown).  ``None`` means either a
    #: clean close or a hard kill (no marker could be written).
    aborted: Optional[str] = None
    #: The final line was torn (a partial write from a killed process) and
    #: was truncated by the reader instead of parsed.
    torn_tail: bool = False
    #: 1-based line numbers skipped as malformed (``strict=False`` reads).
    malformed_lines: Tuple[int, ...] = ()

    @property
    def n_ticks(self) -> int:
        """Number of recorded sampled quanta (0 when the trace is output-only)."""
        return len(self.sampled.records) if self.sampled is not None else 0


@dataclass
class TraceWorkload:
    """A recorded trace registered as a replayable workload.

    Quacks enough like a :class:`~repro.uarch.profile.WorkloadSpec` for
    registry listings (``name``, ``total_ticks``) but is replayed by the
    fleet ingestion layer rather than simulated by the machine model.
    """

    name: str
    trace: TraceFile

    @property
    def total_ticks(self) -> int:
        return self.trace.n_ticks


# -- writing ----------------------------------------------------------------


def _trace_version(trace: TraceFile) -> int:
    """Lowest format version covering the record kinds *trace* carries.

    Chain-free, host-free traces keep stamping version 1 so previously
    recorded files and freshly written ones stay byte-comparable.
    """
    if trace.host_estimates:
        return 3
    if trace.chain is not None:
        return 2
    return 1


def _header(trace: TraceFile) -> Dict:
    header = {
        "format": FORMAT_NAME,
        "version": _trace_version(trace),
        "arch": trace.arch,
        "events": list(trace.events),
        "workload": trace.workload,
        "seed": trace.seed,
        "samples_per_tick": trace.samples_per_tick,
        "metadata": trace.metadata,
    }
    if trace.chain is not None and trace.chain.params:
        header["chain_params"] = dict(trace.chain.params)
    return header


def sample_line(record: SamplingRecord) -> Dict:
    """The JSON shape of one sampled quantum (shared with WAL checkpoints,
    which serialise a channel's buffered records in exactly this form)."""
    line = {
        "type": "sample",
        "tick": record.tick,
        "config": list(record.configuration.events),
        "samples": {
            event: [float(v) for v in samples]
            for event, samples in record.samples.items()
        },
    }
    if record.mux_fraction:
        # Real-trace multiplexing fractions; omitted when absent so files
        # written from synthetic streams stay byte-stable.
        line["mux"] = {
            event: float(fraction)
            for event, fraction in record.mux_fraction.items()
        }
    return line


def parse_sample(payload: Dict) -> SamplingRecord:
    """Inverse of :func:`sample_line`."""
    record = SamplingRecord(
        tick=int(payload["tick"]),
        configuration=CounterConfiguration(events=tuple(payload["config"])),
    )
    for event, values in payload["samples"].items():
        record.samples[event] = np.asarray(values, dtype=float)
    for event, fraction in (payload.get("mux") or {}).items():
        record.mux_fraction[event] = float(fraction)
    return record


def _chain_line(visit: ChainSiteVisit) -> Dict:
    line = {
        "type": "chain",
        "seq": int(visit.sequence),
        "slice": int(visit.slice_id),
        "tick": int(visit.tick),
        "iter": int(visit.iteration),
        "site": visit.site,
        "site_index": int(visit.site_index),
        "width": int(visit.width),
        "factors": int(visit.n_factors),
        "steps": int(visit.n_steps),
        "burn_in": int(visit.burn_in),
        "accepted": int(visit.accepted),
        "scale": float(visit.step_scale),
    }
    if visit.windows:
        # Per-window burn-in acceptance trajectory (adaptation pricing);
        # omitted when the chain ran unadapted, keeping old files byte-stable.
        line["windows"] = [int(w) for w in visit.windows]
    return line


def write_trace(path: Union[str, Path], trace: TraceFile) -> Path:
    """Serialise *trace* to JSONL at *path* (parent directories must exist)."""
    path = Path(path)
    with path.open("w", encoding="utf-8") as stream:
        stream.write(json.dumps(_header(trace)) + "\n")
        if trace.sampled is not None:
            for record in trace.sampled.records:
                stream.write(json.dumps(sample_line(record)) + "\n")
        if trace.polled is not None:
            for tick, values in enumerate(trace.polled.values):
                stream.write(
                    json.dumps({"type": "poll", "tick": tick, "values": values}) + "\n"
                )
        if trace.estimates is not None:
            for record in trace.estimates.to_records():
                line = {"type": "estimate", "method": trace.estimates.method, **record}
                stream.write(json.dumps(line) + "\n")
        if trace.chain is not None:
            for visit in trace.chain.visits:
                stream.write(json.dumps(_chain_line(visit)) + "\n")
        for host_id in sorted(trace.host_estimates):
            host_trace = trace.host_estimates[host_id]
            for record in host_trace.to_records():
                line = {
                    "type": "estimate",
                    "host": host_id,
                    "method": host_trace.method,
                    **record,
                }
                stream.write(json.dumps(line) + "\n")
    return path


class TraceWriter:
    """Incremental JSONL trace writer (the streaming side of the format).

    The batch API (:func:`write_trace`) serialises a fully materialised
    :class:`TraceFile`; this writer instead opens the file up front, writes
    the header, and appends ``chain`` records as the run produces them — so
    a producer can flush its :class:`~repro.fg.mcmc.ChainTrace` recorder
    after every inference round (``recorder.drain()``) and never hold more
    than one round's visits in memory.  :meth:`repro.api.Pipeline.stream`
    is the canonical caller; the resulting file reads back with
    :func:`read_trace` exactly like a batch-written one.

    ``wal=True`` turns the stream into a write-ahead log (format version
    4): :meth:`write_checkpoint` appends per-host engine snapshots,
    :meth:`commit_checkpoint` seals a round of them with an fsynced commit
    marker (the atomic recovery point — everything after the last commit is
    re-executed on resume), and ``mode="a"`` reopens an existing log to
    continue it (:meth:`write_resume` stamps the takeover).  The writer is
    crash-safe on exception paths: leaving the ``with`` block with an
    exception propagating appends an ``aborted`` marker and flushes/fsyncs
    it best-effort, so readers can tell a dirty shutdown from a clean one.
    ``stream_wrapper`` (chaos injection) wraps the underlying file object
    before anything is written.
    """

    def __init__(
        self,
        path: Union[str, Path],
        *,
        arch: str = "",
        events: Sequence[str] = (),
        workload: str = "",
        seed: int = 0,
        samples_per_tick: int = 0,
        metadata: Optional[Dict] = None,
        chain_params: Optional[Dict] = None,
        estimates: bool = False,
        wal: bool = False,
        mode: str = "w",
        stream_wrapper: Optional[Callable] = None,
    ) -> None:
        if mode not in ("w", "a"):
            raise ValueError(f"mode must be 'w' or 'a', not {mode!r}")
        self.path = Path(path)
        self.wal = wal
        header = {
            "format": FORMAT_NAME,
            # Streamed traces exist to carry chain records, so the header
            # stamps at least version 2 up front (readers accept chain-free
            # v2 files); opting into host-keyed estimate records bumps to 3
            # and write-ahead logging to 4.
            "version": FORMAT_VERSION if wal else (3 if estimates else 2),
            "arch": arch,
            "events": list(events),
            "workload": workload,
            "seed": seed,
            "samples_per_tick": samples_per_tick,
            "metadata": dict(metadata or {}),
        }
        if chain_params:
            header["chain_params"] = dict(chain_params)
        self._stream = self.path.open(mode, encoding="utf-8")
        if stream_wrapper is not None:
            self._stream = stream_wrapper(self._stream)
        self._closed = False
        #: Chain records appended so far.
        self.chain_records = 0
        #: Host-keyed estimate records appended so far.
        self.estimate_records = 0
        #: Checkpoint commits appended so far.
        self.commits = 0
        if mode == "w":
            self._stream.write(json.dumps(header) + "\n")

    def write_visits(self, visits: Sequence[ChainSiteVisit]) -> int:
        """Append chain records for *visits*; returns how many were written."""
        if self._closed:
            raise ValueError("trace writer is closed")
        for visit in visits:
            self._stream.write(json.dumps(_chain_line(visit)) + "\n")
        self.chain_records += len(visits)
        return len(visits)

    def flush_chain(self, chain: ChainTrace) -> int:
        """Drain *chain*'s buffered visits into the file (one flush round)."""
        return self.write_visits(chain.drain())

    def write_estimate(
        self,
        host: str,
        tick: int,
        values: Dict[str, float],
        sigma: Optional[Dict[str, float]] = None,
        *,
        method: str = "bayesperf",
    ) -> None:
        """Append one host's per-slice estimate record (format version 3)."""
        if self._closed:
            raise ValueError("trace writer is closed")
        line: Dict = {
            "type": "estimate",
            "host": str(host),
            "method": method,
            "tick": int(tick),
            "values": {name: float(v) for name, v in values.items()},
        }
        if sigma:
            line["sigma"] = {name: float(v) for name, v in sigma.items()}
        self._stream.write(json.dumps(line) + "\n")
        self.estimate_records += 1

    # -- write-ahead-log records (format version 4) -------------------------

    def write_checkpoint(
        self,
        host: str,
        state: Optional[Dict],
        round_idx: int,
        *,
        progress: Optional[Dict] = None,
    ) -> None:
        """Append one host's engine-snapshot checkpoint for *round_idx*.

        *state* is the JSON form of an
        :class:`~repro.core.engine.EngineState` (see
        :func:`repro.fleet.wal.engine_state_to_json`; ``None`` for a host
        that has not solved a slice yet) and *progress* carries the host's
        ingest/inference position (records pulled, slices solved, buffered
        records, quarantine flags).  A round's checkpoints are not a valid
        recovery point until :meth:`commit_checkpoint` seals them.
        """
        if self._closed:
            raise ValueError("trace writer is closed")
        line: Dict = {
            "type": "checkpoint",
            "host": str(host),
            "round": int(round_idx),
            "state": state,
        }
        if progress:
            line["progress"] = progress
        self._stream.write(json.dumps(line) + "\n")

    def commit_checkpoint(self, round_idx: int, *, fsync: bool = True) -> None:
        """Seal the round's checkpoints: write the commit marker durably.

        The marker only hits the line after every per-host checkpoint of
        the round, and the stream is flushed (and fsynced by default)
        before this returns — so a commit record present in the file
        guarantees the full checkpoint set before it is present too.
        """
        if self._closed:
            raise ValueError("trace writer is closed")
        self._stream.write(json.dumps({"type": "commit", "round": int(round_idx)}) + "\n")
        self._stream.flush()
        if fsync:
            os.fsync(self._stream.fileno())
        self.commits += 1

    def write_resume(self, round_idx: int) -> None:
        """Stamp that a resumed run took over after committed *round_idx*."""
        if self._closed:
            raise ValueError("trace writer is closed")
        self._stream.write(json.dumps({"type": "resume", "round": int(round_idx)}) + "\n")
        self._stream.flush()

    # -- lifecycle -----------------------------------------------------------

    def _flush_best_effort(self, fsync: bool) -> None:
        try:
            self._stream.flush()
            if fsync:
                os.fsync(self._stream.fileno())
        except (OSError, ValueError):
            # A crashed/injected stream must not mask the original error.
            pass

    def close(self) -> None:
        """Flush, fsync and close (idempotent, safe on broken streams)."""
        if not self._closed:
            self._closed = True
            self._flush_best_effort(fsync=True)
            try:
                self._stream.close()
            except (OSError, ValueError):
                pass

    def __enter__(self) -> "TraceWriter":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is not None and not self._closed:
            # Dirty shutdown: mark the tail so readers can distinguish an
            # aborted run from a cleanly closed (or hard-killed) one.  All
            # best-effort — the stream itself may be the thing that failed.
            try:
                self._stream.write(
                    json.dumps({"type": "aborted", "error": f"{exc_type.__name__}: {exc}"})
                    + "\n"
                )
            except Exception:
                pass
            self._flush_best_effort(fsync=True)
        self.close()


# -- reading ----------------------------------------------------------------


def _parse_header(line: str) -> Dict:
    try:
        header = json.loads(line)
    except json.JSONDecodeError as error:
        raise TraceFormatError(f"trace header is not valid JSON: {error}") from error
    if not isinstance(header, dict) or header.get("format") != FORMAT_NAME:
        raise TraceFormatError(f"not a {FORMAT_NAME} file (bad header line)")
    version = header.get("version")
    if version not in READABLE_VERSIONS:
        raise TraceFormatError(
            f"unsupported trace version {version!r} (this reader understands "
            f"versions {READABLE_VERSIONS})"
        )
    return header


def _host_estimate_trace(method: str, records: List[Dict]) -> EstimateTrace:
    """Build one host's estimate log, tolerating gaps and re-emissions.

    Unlike :meth:`EstimateTrace.from_records` (which rejects non-consecutive
    ticks), a fleet run log legitimately has holes: a skipped slice under an
    ``on_exhausted="skip"`` policy, or a backpressure-dropped record, leaves
    no estimate for its tick.  Holes become empty dicts (NaN in the series
    views) so the trace stays index-addressed; a duplicated tick (a resumed
    run re-emitting a slice the crashed run already logged) keeps the last
    occurrence.
    """
    trace = EstimateTrace(method=method)
    ordered = sorted(enumerate(records), key=lambda pair: (pair[1]["tick"], pair[0]))
    base = ordered[0][1]["tick"]
    for _, record in ordered:
        index = record["tick"] - base
        while len(trace.estimates) < index:
            trace.append({})
        if len(trace.estimates) == index:
            trace.append(record["values"], record.get("sigma"))
        else:  # duplicate tick: last occurrence wins
            trace.estimates[index] = {k: float(v) for k, v in record["values"].items()}
            sigma = record.get("sigma")
            trace.uncertainties[index] = (
                {k: float(v) for k, v in sigma.items()} if sigma else {}
            )
    return trace


def read_trace(path: Union[str, Path], *, strict: bool = True) -> TraceFile:
    """Parse a JSONL trace file back into a :class:`TraceFile`.

    A torn final line — the signature of a process killed mid-write — is
    always truncated rather than raised on (``TraceFile.torn_tail`` marks
    it): the write-ahead-log recovery path depends on a killed run's file
    still being readable.  With ``strict=False`` the same tolerance covers
    malformed or unknown-type lines *anywhere* in the stream; each skipped
    line's number lands in ``TraceFile.malformed_lines`` so replay layers
    can account for every record they dropped.
    """
    path = Path(path)
    with path.open("r", encoding="utf-8") as stream:
        lines = stream.readlines()
    if not lines or not lines[0].strip():
        raise TraceFormatError(f"{path} is empty")
    header = _parse_header(lines[0])
    trace = TraceFile(
        arch=header.get("arch", ""),
        events=tuple(header.get("events", ())),
        workload=header.get("workload", ""),
        seed=int(header.get("seed", 0)),
        samples_per_tick=int(header.get("samples_per_tick", 0)),
        metadata=dict(header.get("metadata", {})),
    )
    samples: List[SamplingRecord] = []
    polled_lines: List[Dict] = []
    estimate_lines: List[Dict] = []
    chain_lines: List[Dict] = []
    host_estimate_lines: Dict[str, List[Dict]] = {}
    estimate_method = "replay"
    malformed: List[int] = []
    checkpoints_seen = 0
    last_lineno = len(lines)

    def _skip(lineno: int, detail: str) -> None:
        if lineno == last_lineno:
            # The torn tail: a partial final line is truncated, not fatal —
            # even strict readers must survive a killed writer.
            trace.torn_tail = True
            malformed.append(lineno)
        elif strict:
            raise TraceFormatError(f"{path}:{lineno}: {detail}")
        else:
            malformed.append(lineno)

    for lineno, line in enumerate(lines[1:], start=2):
        if not line.strip():
            continue
        try:
            payload = json.loads(line)
        except json.JSONDecodeError as error:
            _skip(lineno, f"invalid JSON: {error}")
            continue
        kind = payload.get("type") if isinstance(payload, dict) else None
        if kind == "sample":
            samples.append(parse_sample(payload))
        elif kind == "poll":
            polled_lines.append(payload)
        elif kind == "estimate":
            if "host" in payload:
                # Version 3: the fleet run log, keyed by host.
                host_estimate_lines.setdefault(str(payload["host"]), []).append(payload)
            else:
                estimate_method = payload.get("method", estimate_method)
                estimate_lines.append(payload)
        elif kind == "chain":
            chain_lines.append(payload)
        elif kind == "checkpoint":
            checkpoints_seen += 1
        elif kind == "commit":
            trace.last_commit_round = int(payload.get("round", -1))
        elif kind == "resume":
            trace.resumes += 1
        elif kind == "aborted":
            trace.aborted = str(payload.get("error", ""))
        else:
            _skip(lineno, f"unknown record type {kind!r}")
    trace.checkpoints = checkpoints_seen
    trace.malformed_lines = tuple(malformed)

    if samples:
        samples.sort(key=lambda record: record.tick)
        sampled = SampledTrace(catalog_name=trace.arch, events=trace.events)
        for record in samples:
            sampled.records.append(record)
            for event in record.samples:
                sampled.enabled_ticks[event] = sampled.enabled_ticks.get(event, 0) + 1
        trace.sampled = sampled
    if polled_lines:
        polled_lines.sort(key=lambda payload: payload["tick"])
        events = tuple(polled_lines[0]["values"]) if polled_lines else ()
        polled = PolledTrace(catalog_name=trace.arch, events=events)
        polled.values.extend(
            {name: float(value) for name, value in payload["values"].items()}
            for payload in polled_lines
        )
        trace.polled = polled
    if estimate_lines:
        trace.estimates = EstimateTrace.from_records(estimate_method, estimate_lines)
    for host_id in sorted(host_estimate_lines):
        payloads = host_estimate_lines[host_id]
        method = payloads[0].get("method", "replay")
        trace.host_estimates[host_id] = _host_estimate_trace(method, payloads)
    if chain_lines:
        chain_lines.sort(key=lambda payload: payload["seq"])
        # Resume the slice counter past the replayed ids so the trace can
        # be handed straight back to a sampler as its recorder without new
        # recordings colliding with replayed slices.
        chain = ChainTrace(
            params=dict(header.get("chain_params", {})),
            _next_slice=1 + max(int(payload["slice"]) for payload in chain_lines),
            _next_sequence=1 + max(int(payload["seq"]) for payload in chain_lines),
        )
        for payload in chain_lines:
            chain.visits.append(
                ChainSiteVisit(
                    sequence=int(payload["seq"]),
                    slice_id=int(payload["slice"]),
                    tick=int(payload["tick"]),
                    iteration=int(payload["iter"]),
                    site=str(payload["site"]),
                    site_index=int(payload["site_index"]),
                    width=int(payload["width"]),
                    n_factors=int(payload["factors"]),
                    n_steps=int(payload["steps"]),
                    burn_in=int(payload["burn_in"]),
                    accepted=int(payload["accepted"]),
                    step_scale=float(payload["scale"]),
                    windows=tuple(int(w) for w in payload.get("windows", ())),
                )
            )
        chain.peak_buffered = len(chain.visits)
        trace.chain = chain
    return trace


# -- recording helpers ------------------------------------------------------


def chain_trace_file(
    chain: ChainTrace,
    *,
    arch: str = "",
    events: Sequence[str] = (),
    workload: str = "",
    seed: int = 0,
    metadata: Optional[Dict] = None,
) -> TraceFile:
    """Wrap a recorded :class:`~repro.fg.mcmc.ChainTrace` for serialisation.

    The returned :class:`TraceFile` carries only chain records (a version-2
    file); ``write_trace``/``read_trace`` round-trip it losslessly, which is
    what lets the accelerator co-simulation reproduce its estimates exactly
    from a replayed file.
    """
    return TraceFile(
        arch=arch,
        events=tuple(events),
        workload=workload,
        seed=seed,
        metadata=dict(metadata or {}),
        chain=chain,
    )


def record_session_trace(
    path: Union[str, Path],
    workload: str = "steady",
    *,
    arch: str = "x86",
    events: Optional[Sequence[str]] = None,
    metrics: Optional[Sequence[str]] = None,
    n_ticks: Optional[int] = None,
    seed: int = 0,
    include_polled: bool = True,
    include_estimates: bool = True,
    method: str = "bayesperf",
) -> TraceFile:
    """Run one :class:`~repro.core.session.PerfSession` and record it.

    The sampled quanta (and optionally the polled reference and the method's
    estimates) are written to *path*; the returned :class:`TraceFile` is the
    in-memory equivalent.
    """
    from repro.core.session import PerfSession  # local import: avoids a cycle

    session = PerfSession(arch, method=method, events=events, metrics=metrics)
    result = session.run(workload, n_ticks=n_ticks, seed=seed)
    # The header records the *registered* event set (what the monitoring
    # application asked for): replaying must rebuild the engine over exactly
    # this set, in this order, to reproduce the recorded estimates.
    trace = TraceFile(
        arch=arch,
        events=tuple(session.events),
        workload=result.workload,
        seed=seed,
        samples_per_tick=session.samples_per_tick,
        metadata={"method": method, "schedule": result.schedule.name},
        sampled=result.sampled,
        polled=result.polled if include_polled else None,
        estimates=result.estimates if include_estimates else None,
    )
    write_trace(path, trace)
    return trace


def register_trace_workload(
    name: str, path: Union[str, Path], *, overwrite: bool = False
) -> None:
    """Register the trace at *path* as a replayable workload named *name*.

    The file is re-read on every lookup so a re-recorded trace is picked up
    without re-registering.
    """
    path = Path(path)
    read_trace(path)  # validate eagerly so registration fails fast
    register_workload(name, lambda: TraceWorkload(name=name, trace=read_trace(path)), overwrite=overwrite)
