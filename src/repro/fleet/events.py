"""Unified observability event stream for the fleet service.

Events are the primitive; processors consume them.  Every stage of the fleet
pipeline (ingestion, workers, service) emits plain dataclass events into one
:class:`EventDispatcher`, and pluggable :class:`EventProcessor` instances
handle logging, metrics aggregation or buffering.  Consumption is push-based
(implement ``on_event``) or pull-based (attach an :class:`EventLog` and walk
its ``iter()``).

Dispatch is best-effort: a failing processor never breaks the data path.
"""

from __future__ import annotations

import logging
from collections import Counter, deque
from dataclasses import dataclass
from typing import Deque, Dict, Iterator, List, Optional, Sequence, Tuple

logger = logging.getLogger(__name__)


# -- event types ------------------------------------------------------------


@dataclass(frozen=True)
class FleetEvent:
    """Base class: every fleet event names the host it concerns."""

    host: str


@dataclass(frozen=True)
class SessionStarted(FleetEvent):
    """A host joined the fleet and its record stream is open."""

    arch: str = ""
    workload: str = ""
    n_events: int = 0


@dataclass(frozen=True)
class SliceCompleted(FleetEvent):
    """One scheduler time slice of one host went through inference."""

    tick: int = 0
    worker: int = -1
    n_measured: int = 0


@dataclass(frozen=True)
class EstimateReady(FleetEvent):
    """A batch of posterior estimates for a host is available to consumers."""

    first_tick: int = 0
    last_tick: int = 0
    n_slices: int = 0


@dataclass(frozen=True)
class BackpressureDetected(FleetEvent):
    """A host's ingest ring buffer dropped records while full."""

    dropped: int = 0
    total_dropped: int = 0
    buffered: int = 0
    capacity: int = 0


@dataclass(frozen=True)
class SessionCompleted(FleetEvent):
    """A host's record stream is exhausted and fully processed."""

    n_slices: int = 0


@dataclass(frozen=True)
class ChainHealthFlagged(FleetEvent):
    """The end-of-run mixing analysis flagged a chain pathology.

    ``host`` carries the slice's host id when the flag is per-slice, or
    ``"fleet"`` for fleet-wide findings (acceptance-rate outliers).
    """

    reason: str = ""
    slice_id: int = -1
    site: str = ""
    value: float = 0.0
    detail: str = ""


@dataclass(frozen=True)
class SliceAttemptFailed(FleetEvent):
    """One solve attempt for one slice failed (raised or timed out)."""

    tick: int = 0
    attempt: int = 0
    error: str = ""


@dataclass(frozen=True)
class SliceRetried(FleetEvent):
    """A failed slice attempt is being retried after its backoff delay."""

    tick: int = 0
    attempt: int = 0
    delay_seconds: float = 0.0


@dataclass(frozen=True)
class SliceSkipped(FleetEvent):
    """A slice exhausted its attempts under an ``on_exhausted="skip"`` policy."""

    tick: int = 0
    attempts: int = 0
    error: str = ""


@dataclass(frozen=True)
class HostQuarantined(FleetEvent):
    """A host was excised from the run after exhausting a slice's attempts."""

    tick: int = 0
    attempts: int = 0
    error: str = ""


@dataclass(frozen=True)
class MalformedRecordSkipped(FleetEvent):
    """A replayed source skipped malformed/partial record lines."""

    n_lines: int = 0
    torn_tail: bool = False


@dataclass(frozen=True)
class CheckpointWritten(FleetEvent):
    """A full round of per-host checkpoints was committed to the WAL.

    ``host`` is ``"fleet"``: the commit marker covers every host.
    """

    round_idx: int = 0
    n_hosts: int = 0


# -- processors -------------------------------------------------------------


class EventProcessor:
    """Base class for push-based event consumers.

    Subclass and override :meth:`on_event` to receive every event, or use
    :class:`TypedEventProcessor` for per-type dispatch.
    """

    def on_event(self, event: FleetEvent) -> None:
        """Called for every event.  Override in subclasses."""

    def shutdown(self) -> None:
        """Called once when the run completes.  Override to flush buffers."""


#: Event type -> typed handler method name.  Keyed on the class itself (not
#: its name) so dispatch survives renames and follows subclassing via the MRO.
_EVENT_HANDLERS: Dict[type, str] = {
    SessionStarted: "on_session_started",
    SliceCompleted: "on_slice_completed",
    EstimateReady: "on_estimate_ready",
    BackpressureDetected: "on_backpressure",
    SessionCompleted: "on_session_completed",
    ChainHealthFlagged: "on_chain_health_flagged",
    SliceAttemptFailed: "on_slice_attempt_failed",
    SliceRetried: "on_slice_retried",
    SliceSkipped: "on_slice_skipped",
    HostQuarantined: "on_host_quarantined",
    MalformedRecordSkipped: "on_malformed_record_skipped",
    CheckpointWritten: "on_checkpoint_written",
}


class TypedEventProcessor(EventProcessor):
    """Dispatches :meth:`on_event` to typed handlers; unknown types are ignored.

    Dispatch walks the event's MRO, so a subclass of a known event type
    reaches the parent type's handler unless a more specific one is mapped.
    """

    def on_event(self, event: FleetEvent) -> None:
        for klass in type(event).__mro__:
            method_name = _EVENT_HANDLERS.get(klass)
            if method_name is not None:
                getattr(self, method_name)(event)
                return

    def on_session_started(self, event: SessionStarted) -> None: ...

    def on_slice_completed(self, event: SliceCompleted) -> None: ...

    def on_estimate_ready(self, event: EstimateReady) -> None: ...

    def on_backpressure(self, event: BackpressureDetected) -> None: ...

    def on_session_completed(self, event: SessionCompleted) -> None: ...

    def on_chain_health_flagged(self, event: ChainHealthFlagged) -> None: ...

    def on_slice_attempt_failed(self, event: SliceAttemptFailed) -> None: ...

    def on_slice_retried(self, event: SliceRetried) -> None: ...

    def on_slice_skipped(self, event: SliceSkipped) -> None: ...

    def on_host_quarantined(self, event: HostQuarantined) -> None: ...

    def on_malformed_record_skipped(self, event: MalformedRecordSkipped) -> None: ...

    def on_checkpoint_written(self, event: CheckpointWritten) -> None: ...


class LoggingProcessor(EventProcessor):
    """Writes every event to a :mod:`logging` logger (one line per event)."""

    def __init__(
        self, log: Optional[logging.Logger] = None, *, level: int = logging.INFO
    ) -> None:
        self.log = log if log is not None else logger
        self.level = level

    def on_event(self, event: FleetEvent) -> None:
        self.log.log(self.level, "%s %s", type(event).__name__, event)


class MetricsProcessor(TypedEventProcessor):
    """In-memory aggregation of the event stream into fleet-level metrics."""

    def __init__(self) -> None:
        self.events_by_kind: Counter = Counter()
        self.slices_by_host: Counter = Counter()
        self.dropped_by_host: Counter = Counter()
        self.backpressure_events = 0
        self.hosts_started = 0
        self.hosts_completed = 0
        self.mixing_flags: Counter = Counter()
        self.attempt_failures: Counter = Counter()
        self.retries_by_host: Counter = Counter()
        self.skips_by_host: Counter = Counter()
        self.quarantined_hosts: Counter = Counter()
        self.malformed_records = 0
        self.checkpoints_committed = 0

    def on_event(self, event: FleetEvent) -> None:
        self.events_by_kind[type(event).__name__] += 1
        super().on_event(event)

    def on_session_started(self, event: SessionStarted) -> None:
        self.hosts_started += 1

    def on_slice_completed(self, event: SliceCompleted) -> None:
        self.slices_by_host[event.host] += 1

    def on_backpressure(self, event: BackpressureDetected) -> None:
        self.backpressure_events += 1
        self.dropped_by_host[event.host] = event.total_dropped

    def on_session_completed(self, event: SessionCompleted) -> None:
        self.hosts_completed += 1

    def on_chain_health_flagged(self, event: ChainHealthFlagged) -> None:
        self.mixing_flags[event.reason] += 1

    def on_slice_attempt_failed(self, event: SliceAttemptFailed) -> None:
        self.attempt_failures[event.host] += 1

    def on_slice_retried(self, event: SliceRetried) -> None:
        self.retries_by_host[event.host] += 1

    def on_slice_skipped(self, event: SliceSkipped) -> None:
        self.skips_by_host[event.host] += 1

    def on_host_quarantined(self, event: HostQuarantined) -> None:
        self.quarantined_hosts[event.host] += 1

    def on_malformed_record_skipped(self, event: MalformedRecordSkipped) -> None:
        self.malformed_records += event.n_lines

    def on_checkpoint_written(self, event: CheckpointWritten) -> None:
        self.checkpoints_committed += 1

    @property
    def total_slices(self) -> int:
        return sum(self.slices_by_host.values())

    @property
    def total_dropped(self) -> int:
        return sum(self.dropped_by_host.values())

    def summary(self) -> Dict[str, int]:
        """Scalar counters, ready for printing or assertions."""
        return {
            "hosts_started": self.hosts_started,
            "hosts_completed": self.hosts_completed,
            "total_slices": self.total_slices,
            "total_dropped": self.total_dropped,
            "backpressure_events": self.backpressure_events,
            "mixing_flags": sum(self.mixing_flags.values()),
            "slice_retries": sum(self.retries_by_host.values()),
            "slice_skips": sum(self.skips_by_host.values()),
            "hosts_quarantined": len(self.quarantined_hosts),
            "malformed_records": self.malformed_records,
            "checkpoints_committed": self.checkpoints_committed,
        }


class EventLog(EventProcessor):
    """Bounded buffer over the stream, for pull-based consumption.

    ``iter()`` drains buffered events in arrival order; events arriving while
    iterating are seen by the same iterator.  When the buffer overflows the
    oldest events are discarded (``discarded`` counts them).
    """

    def __init__(self, maxlen: Optional[int] = 65536) -> None:
        self._buffer: Deque[FleetEvent] = deque(maxlen=maxlen)
        self.discarded = 0

    def on_event(self, event: FleetEvent) -> None:
        if self._buffer.maxlen is not None and len(self._buffer) == self._buffer.maxlen:
            self.discarded += 1
        self._buffer.append(event)

    def __len__(self) -> int:
        return len(self._buffer)

    def iter(self) -> Iterator[FleetEvent]:
        """Drain buffered events (pull-based consumption)."""
        while self._buffer:
            yield self._buffer.popleft()

    def snapshot(self) -> Tuple[FleetEvent, ...]:
        """Buffered events without consuming them."""
        return tuple(self._buffer)


# -- dispatcher -------------------------------------------------------------


class EventDispatcher:
    """Fans events out to registered processors, best-effort.

    A failing processor is logged once (per processor type) and counted
    thereafter, so a processor that throws on every event cannot flood the
    log from the hot path; the suppressed totals are reported at shutdown.
    """

    def __init__(self, processors: Optional[Sequence[EventProcessor]] = None) -> None:
        self._processors: List[EventProcessor] = list(processors) if processors else []
        self._failures: Counter = Counter()

    @property
    def active(self) -> bool:
        """True when at least one processor is registered."""
        return bool(self._processors)

    def add(self, processor: EventProcessor) -> None:
        self._processors.append(processor)

    def emit(self, event: FleetEvent) -> None:
        """Send *event* to every processor; a failing processor is logged."""
        for processor in self._processors:
            try:
                processor.on_event(event)
            except Exception:
                name = type(processor).__name__
                self._failures[name] += 1
                if self._failures[name] == 1:
                    logger.warning(
                        "EventProcessor %s failed on %s (further failures of "
                        "this processor are counted, not logged)",
                        name,
                        type(event).__name__,
                        exc_info=True,
                    )

    def shutdown(self) -> None:
        """Shut every processor down, best-effort; report suppressed failures."""
        for name, count in self._failures.items():
            if count > 1:
                logger.warning(
                    "EventProcessor %s failed on %d events during the run "
                    "(only the first failure was logged)",
                    name,
                    count,
                )
        for processor in self._processors:
            try:
                processor.shutdown()
            except Exception:
                logger.warning(
                    "EventProcessor %s failed during shutdown",
                    type(processor).__name__,
                    exc_info=True,
                )
