"""Deterministic fault injection for the fleet pipeline.

Production fault tolerance is only as trustworthy as its tests, and faults
that depend on real crashes or timing races make terrible tests.  This
module injects the three fault families the fleet's recovery paths handle —
corrupt telemetry records, raising/hanging solves, and mid-write crashes of
the trace writer — from an explicit (or seeded) schedule, so every recovery
path is exercised deterministically and the run's retry/skip/quarantine
accounting can be checked against the schedule exactly.

Seams (all opt-in, all zero-cost when no injector is attached):

* **Sources** — :meth:`FaultInjector.wrap_source` proxies a host source and
  replaces scheduled records' samples with non-numeric garbage, the
  in-memory equivalent of a corrupt wire record (the engine's array
  conversion raises on it, every attempt).
* **Engines** — the workers call :meth:`FaultInjector.on_attempt` at the
  top of every solve attempt; a scheduled ``"raise"`` fault throws
  :class:`InjectedFault`, a ``"hang"`` fault sleeps past the policy's
  per-slice timeout before letting the solve proceed.
* **The writer's file object** — :meth:`FaultInjector.wrap_stream` wraps
  the trace writer's stream in a :class:`CrashingStream` that dies after a
  scheduled number of writes, optionally leaving a torn partial line —
  either by raising :class:`InjectedCrash` (in-process tests) or by
  SIGKILLing its own process (``hard=True``: a real no-cleanup death for
  the crash-resume demo).
"""

from __future__ import annotations

import os
import signal
import time
from collections import Counter
from dataclasses import dataclass
from typing import Dict, Iterator, Optional, Sequence, Tuple

import numpy as np

from repro.pmu.sampling import SamplingRecord

__all__ = [
    "ChaosHostSource",
    "CrashingStream",
    "Fault",
    "FaultInjector",
    "InjectedCrash",
    "InjectedFault",
]

#: Payload injected into corrupted records: the engine's float conversion
#: raises ``ValueError`` on it deterministically, on every attempt.
_CORRUPT_PAYLOAD = "<corrupt>"


class InjectedFault(RuntimeError):
    """A scheduled solve fault fired."""


class InjectedCrash(OSError):
    """A scheduled writer crash fired (the in-process stand-in for SIGKILL)."""


@dataclass(frozen=True)
class Fault:
    """One scheduled fault.

    ``kind``: ``"raise"`` (solve attempt throws), ``"hang"`` (solve attempt
    sleeps ``duration`` seconds first, for timeout policies to flag) or
    ``"corrupt"`` (the host's record at ``tick`` is replaced with garbage
    that fails engine-side conversion — a permanent per-record fault).
    ``attempts`` bounds how many consecutive attempts a transient
    ``raise``/``hang`` fault affects; a ``corrupt`` fault is permanent by
    construction (the record itself is damaged).
    """

    kind: str
    host: str
    tick: int
    attempts: int = 1
    duration: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in ("raise", "hang", "corrupt"):
            raise ValueError(f"unknown fault kind {self.kind!r}")
        if self.attempts < 1:
            raise ValueError("attempts must be >= 1")


class FaultInjector:
    """Injects a deterministic fault schedule into one fleet run.

    ``injected`` counts every fault that actually fired, by kind — the
    ledger tests audit the run's retry/skip/quarantine events against.
    """

    def __init__(
        self,
        faults: Sequence[Fault] = (),
        *,
        crash_after_writes: Optional[int] = None,
        crash_partial_line: bool = True,
        crash_hard: bool = False,
    ) -> None:
        self.solve_faults: Dict[Tuple[str, int], Fault] = {}
        self.corrupt_faults: Dict[Tuple[str, int], Fault] = {}
        for fault in faults:
            table = self.corrupt_faults if fault.kind == "corrupt" else self.solve_faults
            key = (fault.host, fault.tick)
            if key in table:
                raise ValueError(f"duplicate fault scheduled for {key}")
            table[key] = fault
        self.crash_after_writes = crash_after_writes
        self.crash_partial_line = crash_partial_line
        self.crash_hard = crash_hard
        #: Faults that fired so far, by kind (``corrupt`` counts records
        #: handed out, ``crash`` counts writer crashes).
        self.injected: Counter = Counter()

    @classmethod
    def seeded(
        cls,
        seed: int,
        hosts: Sequence[str],
        n_ticks: int,
        *,
        n_raise: int = 0,
        n_hang: int = 0,
        n_corrupt: int = 0,
        attempts: int = 1,
        hang_duration: float = 0.2,
        **kwargs,
    ) -> "FaultInjector":
        """A random-but-reproducible schedule over ``hosts x ticks``.

        Distinct (host, tick) cells are drawn without replacement from a
        seeded RNG, so the same seed always yields the same schedule.
        """
        cells = [(host, tick) for host in hosts for tick in range(n_ticks)]
        total = n_raise + n_hang + n_corrupt
        if total > len(cells):
            raise ValueError(
                f"schedule wants {total} faults but only {len(cells)} cells exist"
            )
        rng = np.random.default_rng(seed)
        chosen = rng.choice(len(cells), size=total, replace=False)
        faults = []
        for position, index in enumerate(chosen):
            host, tick = cells[int(index)]
            if position < n_raise:
                faults.append(Fault("raise", host, tick, attempts=attempts))
            elif position < n_raise + n_hang:
                faults.append(
                    Fault("hang", host, tick, attempts=attempts, duration=hang_duration)
                )
            else:
                faults.append(Fault("corrupt", host, tick))
        return cls(faults, **kwargs)

    # -- the engine seam (called by the workers) ---------------------------

    def pending(self, host: str, tick: int, attempt: int) -> bool:
        """Would :meth:`on_attempt` disrupt this (host, tick, attempt)?

        The batched worker path probes with this before assembling a batch,
        so scheduled-faulty slices are excised into the per-record retry
        path and the surviving hosts' batch solves untouched.
        """
        fault = self.solve_faults.get((host, tick))
        return fault is not None and attempt <= fault.attempts

    def on_attempt(self, host: str, tick: int, attempt: int) -> None:
        """Fire the scheduled fault for this attempt, if any."""
        fault = self.solve_faults.get((host, tick))
        if fault is None or attempt > fault.attempts:
            return
        self.injected[fault.kind] += 1
        if fault.kind == "hang":
            # The solve proceeds after the stall; a timeout policy flags the
            # attempt, discards its output and retries from the snapshot.
            time.sleep(fault.duration)
            return
        raise InjectedFault(
            f"injected solve fault for {host}@t{tick} (attempt {attempt})"
        )

    # -- the source seam ---------------------------------------------------

    def wrap_source(self, source):
        """Proxy *source* so scheduled records come out corrupted."""
        host_id = source.host_id
        if not any(host == host_id for host, _ in self.corrupt_faults):
            return source
        return ChaosHostSource(source, self)

    def corrupt(self, record: SamplingRecord) -> SamplingRecord:
        """A copy of *record* whose sample arrays fail float conversion."""
        self.injected["corrupt"] += 1
        damaged = SamplingRecord(tick=record.tick, configuration=record.configuration)
        for event in record.samples:
            damaged.samples[event] = [_CORRUPT_PAYLOAD]
        return damaged

    # -- the writer seam ---------------------------------------------------

    def wrap_stream(self, stream):
        """Wrap a trace writer's file object with the scheduled crash."""
        if self.crash_after_writes is None:
            return stream
        return CrashingStream(
            stream,
            self,
            after_writes=self.crash_after_writes,
            partial_line=self.crash_partial_line,
            hard=self.crash_hard,
        )

    # -- accounting --------------------------------------------------------

    def expected_disruptions(self) -> int:
        """How many slices the schedule disrupts (one per scheduled fault)."""
        return len(self.solve_faults) + len(self.corrupt_faults)


class ChaosHostSource:
    """Source proxy replacing scheduled records with corrupted ones."""

    def __init__(self, source, injector: FaultInjector) -> None:
        self._source = source
        self._injector = injector

    def __getattr__(self, name):
        return getattr(self._source, name)

    def records(self) -> Iterator[SamplingRecord]:
        host_id = self._source.host_id
        for record in self._source.records():
            if (host_id, record.tick) in self._injector.corrupt_faults:
                yield self._injector.corrupt(record)
            else:
                yield record


class CrashingStream:
    """File-object proxy that dies after a scheduled number of writes.

    The crash fires at the start of the (N+1)-th write: optionally a torn
    prefix of that line is flushed first (exercising the reader's torn-tail
    recovery), then the stream either raises :class:`InjectedCrash` (soft,
    for in-process tests) or SIGKILLs its own process (``hard=True`` — a
    genuine no-cleanup death for the crash-resume demo; nothing below this
    line runs, exactly like a machine losing power mid-write).
    """

    def __init__(
        self,
        stream,
        injector: Optional[FaultInjector] = None,
        *,
        after_writes: int,
        partial_line: bool = True,
        hard: bool = False,
    ) -> None:
        if after_writes < 0:
            raise ValueError("after_writes must be >= 0")
        self._stream = stream
        self._injector = injector
        self._after_writes = after_writes
        self._partial_line = partial_line
        self._hard = hard
        self.writes = 0
        self.crashed = False

    def __getattr__(self, name):
        return getattr(self._stream, name)

    def _crash(self, payload: str) -> None:
        self.crashed = True
        if self._injector is not None:
            self._injector.injected["crash"] += 1
        if self._partial_line and payload:
            # A torn tail: the first half of the line reaches the disk, the
            # newline never does.
            self._stream.write(payload[: max(1, len(payload) // 2)].rstrip("\n"))
            self._stream.flush()
        if self._hard:
            os.kill(os.getpid(), signal.SIGKILL)
        raise InjectedCrash(
            f"injected writer crash after {self.writes} completed writes"
        )

    def write(self, payload: str) -> int:
        if self.crashed:
            # Dead streams stay dead: the writer's abort/close path cannot
            # sneak markers past a crash.
            raise InjectedCrash("stream already crashed")
        if self.writes >= self._after_writes:
            self._crash(payload)
        self.writes += 1
        return self._stream.write(payload)

    def flush(self) -> None:
        self._stream.flush()

    def fileno(self) -> int:
        return self._stream.fileno()

    def close(self) -> None:
        self._stream.close()

    @property
    def closed(self) -> bool:
        return self._stream.closed
