"""The fleet telemetry service: many concurrent BayesPerf corrections.

:class:`FleetService` is the facade over the whole subsystem: it owns the
event dispatcher, the ingestion layer and the worker pool, and exposes the
two-call workflow the examples and benchmarks use::

    service = FleetService("x86", metrics=("ipc", "l1d_mpki"), n_workers=4)
    for i in range(64):
        service.add_host(seed=i, n_ticks=8)
    result = service.run()
    print(result.slices_per_second, result.estimates["host-000"])

Hosts can be synthetic (driven by the simulated machine, like
:class:`~repro.core.session.PerfSession`) or replayed from recorded trace
files (:mod:`repro.fleet.tracefile`).  ``mode="serial"`` runs the same fleet
with per-host engine and schedule construction and no sharding — the
baseline the worker pool is benchmarked against.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Optional, Sequence, Tuple, Union

from repro.events.catalog import EventCatalog
from repro.events.profiles import standard_profiling_events
from repro.events.registry import canonical_arch, catalog_for
from repro.fg.mcmc import ChainTrace
from repro.fleet.events import EventDispatcher, EventProcessor, MetricsProcessor
from repro.fleet.ingest import FleetIngest, ReplayHostSource, SyntheticHostSource
from repro.fleet.tracefile import TraceFile, TraceWorkload, read_trace
from repro.fleet.workers import WorkerPool
from repro.obs.observer import Observer
from repro.pmu.noise import NoiseModel
from repro.pmu.traces import EstimateTrace
from repro.uarch.machine import MachineConfig
from repro.uarch.profile import WorkloadSpec
from repro.workloads.registry import get_workload

_MODES = ("pool", "serial")


@dataclass
class FleetResult:
    """Everything one fleet run produces."""

    mode: str
    n_hosts: int
    total_slices: int
    elapsed_seconds: float
    estimates: Dict[str, EstimateTrace] = field(default_factory=dict)
    dropped_records: Dict[str, int] = field(default_factory=dict)
    engine_cache: Dict[str, int] = field(default_factory=dict)
    metrics: Dict[str, int] = field(default_factory=dict)
    #: Hosts excised mid-run by an ``on_exhausted="quarantine"`` policy.
    quarantined: Tuple[str, ...] = ()
    #: The service's shared chain recorder (populated when the fleet ran a
    #: per-site MCMC estimator with one attached), ``None`` otherwise.
    chain_trace: Optional[ChainTrace] = None

    @property
    def slices_per_second(self) -> float:
        """Inference throughput of the run."""
        return self.total_slices / self.elapsed_seconds if self.elapsed_seconds > 0 else 0.0

    @property
    def total_dropped(self) -> int:
        return sum(self.dropped_records.values())


class FleetService:
    """Multi-host BayesPerf correction service.

    Parameters
    ----------
    arch:
        Default microarchitecture for synthetic hosts.
    metrics, events:
        Default monitored event set, resolved exactly like
        :class:`~repro.core.session.PerfSession` (standard profiling set when
        neither is given).
    n_workers, batch_size:
        Worker-pool sharding and per-host batch size.
    buffer_capacity:
        Per-host ingest ring-buffer capacity (backpressure threshold).
    pump_records:
        Records moved from each host's source per ingestion round.  Defaults
        to ``batch_size`` so a keeping-up consumer never sees drops; raise it
        (or shrink the buffer) to exercise backpressure.
    samples_per_tick, noise, machine_config, engine_kwargs:
        Forwarded to the underlying PMU, machine and engine models.
    estimator:
        Optional :class:`~repro.api.EstimatorSpec` selecting a registered
        moment estimator and its sampling effort — the preferred front door
        for estimator configuration (explicit ``engine_kwargs`` entries
        still win).
    recorder:
        Chain-trace capture: a :class:`~repro.api.RecorderSpec` (optionally
        naming a tracefile ``sink`` that streaming runs flush to
        incrementally) or a ready-made :class:`~repro.fg.mcmc.ChainTrace`
        shared by every engine the pool builds.  With the ``"mcmc"``
        estimator it captures the whole fleet's per-site chain schedule,
        and the run's :class:`FleetResult.chain_trace` points back at it —
        the measured workload the :mod:`repro.accelerator` co-simulation
        consumes.
    observer:
        Optional observability bundle: a :class:`repro.obs.Observer` or a
        :class:`~repro.api.ObserverSpec` (built on the spot).  When present
        it is threaded through the worker pool and every engine — spans
        over rounds/slices/kernel stages, the metrics registry — and the
        drive loop runs the end-of-run chain-health analysis.  ``None``
        (the default) leaves the hot path untouched.
    chain_recorder:
        Deprecated alias for ``recorder`` (emits ``DeprecationWarning``;
        behaviour is unchanged).
    processors:
        Extra :class:`~repro.fleet.events.EventProcessor`s attached to the
        event stream (a :class:`~repro.fleet.events.MetricsProcessor` is
        always attached and feeds :class:`FleetResult.metrics`).
    """

    def __init__(
        self,
        arch: str = "x86",
        *,
        metrics: Optional[Sequence[str]] = None,
        events: Optional[Sequence[str]] = None,
        n_workers: int = 4,
        batch_size: int = 8,
        buffer_capacity: int = 256,
        pump_records: Optional[int] = None,
        samples_per_tick: int = 4,
        noise: Optional[NoiseModel] = None,
        machine_config: Optional[MachineConfig] = None,
        engine_kwargs: Optional[Dict] = None,
        estimator=None,
        recorder=None,
        observer=None,
        fault_policy=None,
        chaos=None,
        chain_recorder: Optional[ChainTrace] = None,
        processors: Sequence[EventProcessor] = (),
    ) -> None:
        self.arch = canonical_arch(arch)
        self.catalog: EventCatalog = catalog_for(self.arch)
        self._explicit_events: Optional[Tuple[str, ...]] = (
            tuple(events) if events is not None else None
        )
        self._metrics: Optional[Tuple[str, ...]] = (
            tuple(metrics) if metrics is not None else None
        )
        self.events: Tuple[str, ...] = self._resolve_events(self.catalog, None)
        self.n_workers = n_workers
        self.batch_size = batch_size
        # Each inference round drains up to batch_size records per host, so a
        # larger default pump rate would overflow any long stream's buffer
        # even when the consumer keeps up.
        self.pump_records = pump_records if pump_records is not None else batch_size
        self.samples_per_tick = samples_per_tick
        self.noise = noise
        self.machine_config = machine_config
        self.engine_kwargs = dict(engine_kwargs) if engine_kwargs else {}
        if estimator is not None:
            # An EstimatorSpec (anything exposing engine_kwargs()): resolved
            # through the fg registry; explicit engine_kwargs entries win.
            for key, value in estimator.engine_kwargs().items():
                self.engine_kwargs.setdefault(key, value)
        if chain_recorder is not None:
            warnings.warn(
                "FleetService(chain_recorder=...) is deprecated; pass "
                "recorder=RecorderSpec(...) or recorder=<ChainTrace>",
                DeprecationWarning,
                stacklevel=2,
            )
            if recorder is None:
                recorder = chain_recorder
        #: Streaming tracefile path chain records are flushed to (set by a
        #: RecorderSpec with a sink; consumed by Pipeline.stream()).
        self.chain_sink: Optional[str] = None
        if recorder is not None:
            if isinstance(recorder, ChainTrace):
                trace = recorder
            else:  # a RecorderSpec
                trace = recorder.build()
                self.chain_sink = recorder.sink
            self.engine_kwargs.setdefault("chain_recorder", trace)
        #: The recorder the engines will actually share (an explicit
        #: engine_kwargs entry wins over the recorder parameter).
        self.chain_recorder = self.engine_kwargs.get("chain_recorder")
        #: The run's observability bundle (``None`` = observers off).
        if observer is not None and not isinstance(observer, Observer):
            observer = observer.build()  # an ObserverSpec
        self.observer: Optional[Observer] = observer
        if observer is not None:
            if observer.estimates and self.chain_sink is None:
                raise ValueError(
                    "ObserverSpec(estimates=True) streams per-slice estimate "
                    "records into the trace sink; configure "
                    "recorder=RecorderSpec(sink=...) too"
                )
            # Engines share the same observer instance, so kernel-stage spans
            # and cache counters land in the run's tracer/registry.
            self.engine_kwargs.setdefault("observer", observer)
        #: Retry/timeout/quarantine policy enforced around every worker
        #: solve (a :class:`~repro.fleet.faults.FaultPolicySpec`); ``None``
        #: (the default) keeps the hot path byte-identical.
        self.fault_policy = fault_policy
        #: Fault injector (:class:`~repro.fleet.chaos.FaultInjector`) for
        #: tests and demos: wraps host sources at pool build time and is
        #: probed by the workers around every solve attempt.
        self.chaos = chaos

        self.metrics_processor = MetricsProcessor()
        self.dispatcher = EventDispatcher([self.metrics_processor, *processors])
        self.ingest = FleetIngest(
            buffer_capacity=buffer_capacity, dispatcher=self.dispatcher
        )
        self._hosts: Dict[str, Tuple[str, Tuple[str, ...]]] = {}
        self._ran = False

    # -- host registration --------------------------------------------------

    def _resolve_events(
        self, catalog: EventCatalog, events: Optional[Sequence[str]]
    ) -> Tuple[str, ...]:
        """Monitored events for one host, resolved against *its* catalog.

        Metric selections are re-derived per catalog so a host that overrides
        ``arch`` monitors that architecture's counterpart events; explicit
        event names are validated eagerly so a misconfigured host fails at
        registration, not mid-run.
        """
        if events is not None:
            resolved = tuple(events)
        elif self._explicit_events is not None:
            resolved = self._explicit_events
        elif self._metrics is not None:
            resolved = catalog.events_for_derived(self._metrics)
        else:
            resolved = standard_profiling_events(catalog)
        for name in resolved:
            catalog.get(name)  # raises KeyError naming the offending event
        return resolved

    def _next_host_id(self) -> str:
        return f"host-{len(self._hosts):03d}"

    def add_host(
        self,
        workload: Union[str, WorkloadSpec, TraceWorkload] = "steady",
        *,
        host_id: Optional[str] = None,
        seed: Optional[int] = None,
        n_ticks: Optional[int] = None,
        arch: Optional[str] = None,
        events: Optional[Sequence[str]] = None,
    ) -> str:
        """Register one host; returns its id.

        *workload* may be a registered workload name (including replayable
        trace workloads), a :class:`WorkloadSpec`, or a
        :class:`TraceWorkload`.  Synthetic hosts simulate ``n_ticks`` quanta
        with the given seed; replayed hosts stream their recorded records
        (and therefore reject ``seed``/``n_ticks``/``arch``/``events``
        overrides).
        """
        if self._ran:
            raise RuntimeError("cannot add hosts after run()")
        host_id = host_id if host_id is not None else self._next_host_id()
        spec = get_workload(workload) if isinstance(workload, str) else workload
        if isinstance(spec, TraceWorkload):
            overridden = [
                name
                for name, value in (
                    ("seed", seed), ("n_ticks", n_ticks), ("arch", arch), ("events", events)
                )
                if value is not None
            ]
            if overridden:
                raise ValueError(
                    f"replayed trace workload {spec.name!r} streams its recorded "
                    f"records; {', '.join(overridden)} cannot be overridden"
                )
            return self.add_trace(spec.trace, host_id=host_id, workload_name=spec.name)
        if not isinstance(spec, WorkloadSpec):
            raise TypeError(f"cannot build a fleet host from {type(spec).__name__}")
        host_arch = canonical_arch(arch) if arch is not None else self.arch
        host_events = self._resolve_events(catalog_for(host_arch), events)
        source = SyntheticHostSource(
            host_id,
            spec,
            arch=host_arch,
            events=host_events,
            n_ticks=n_ticks,
            seed=seed if seed is not None else 0,
            samples_per_tick=self.samples_per_tick,
            noise=self.noise,
            machine_config=self.machine_config,
        )
        self.ingest.add(source)
        self._hosts[host_id] = (host_arch, host_events)
        return host_id

    def add_trace(
        self,
        trace: Union[str, Path, TraceFile],
        *,
        host_id: Optional[str] = None,
        workload_name: str = "",
    ) -> str:
        """Register a host that replays a recorded trace (path or object)."""
        if self._ran:
            raise RuntimeError("cannot add hosts after run()")
        if not isinstance(trace, TraceFile):
            trace = read_trace(trace)
        host_id = host_id if host_id is not None else self._next_host_id()
        source = ReplayHostSource(host_id, trace, workload_name=workload_name)
        self.ingest.add(source)
        self._hosts[host_id] = (source.arch or self.arch, source.events)
        return host_id

    def add_perf(
        self,
        path: Union[str, Path],
        *,
        format: str = "auto",
        host_id: Optional[str] = None,
        arch: Optional[str] = None,
        events: Optional[Sequence[str]] = None,
        on_unknown: str = "raise",
    ) -> str:
        """Register a host that replays a real perf capture.

        *path* names a ``perf stat -I ... -x,`` CSV, ``perf script``
        output, or JSONL counter dump (*format* selects, ``"auto"``
        sniffs); the capture is parsed, schema-mapped onto *arch*'s event
        catalog and lowered to a deterministic record stream at
        registration time (:class:`~repro.perfio.PerfTraceSource`), so a
        bad capture fails here, not mid-run.  *events* optionally
        restricts monitoring to a canonical-event subset; *on_unknown*
        is the mapper's unknown-event policy (``"raise"``/``"skip"``).
        """
        from repro.perfio.source import PerfTraceSource

        if self._ran:
            raise RuntimeError("cannot add hosts after run()")
        host_id = host_id if host_id is not None else self._next_host_id()
        host_arch = canonical_arch(arch) if arch is not None else self.arch
        source = PerfTraceSource(
            host_id,
            path,
            format=format,
            arch=host_arch,
            events=tuple(events) if events is not None else None,
            on_unknown=on_unknown,
        )
        self.ingest.add(source)
        self._hosts[host_id] = (host_arch, source.events)
        return host_id

    @property
    def n_hosts(self) -> int:
        return len(self._hosts)

    # -- execution ----------------------------------------------------------

    def _build_pool(self, mode: str) -> WorkerPool:
        """Validate the run, mark the service consumed and shard the hosts.

        The drive loop itself lives in :class:`repro.api.Pipeline`; this is
        the service's half of the contract — everything that depends on the
        registration state.
        """
        if mode not in _MODES:
            raise ValueError(f"unknown mode {mode!r}; expected one of {_MODES}")
        if not self._hosts:
            raise RuntimeError("add at least one host before run()")
        if self._ran:
            raise RuntimeError("a FleetService instance runs once; build a new one")
        self._ran = True

        share = mode == "pool"
        pool = WorkerPool(
            self.n_workers if share else 1,
            dispatcher=self.dispatcher,
            batch_size=self.batch_size,
            share_engines=share,
            engine_kwargs=self.engine_kwargs,
            observer=self.observer,
            fault_policy=self.fault_policy,
            chaos=self.chaos,
        )
        if self.chaos is not None:
            # Scheduled record corruption: proxy each host's source before
            # any iterator is opened.
            for channel in self.ingest.channels:
                channel.source = self.chaos.wrap_source(channel.source)
        if not share:
            # The serial baseline also pays the per-host schedule build.
            for channel in self.ingest.channels:
                source = channel.source
                if isinstance(source, SyntheticHostSource):
                    source.use_schedule_cache = False
        for channel in self.ingest.channels:
            host_arch, host_events = self._hosts[channel.host_id]
            pool.assign(channel, arch=host_arch, events=host_events)
        return pool

    def _build_result(
        self, mode: str, total: int, elapsed: float, pool: WorkerPool
    ) -> FleetResult:
        """Assemble the :class:`FleetResult` for one completed drive loop."""
        return FleetResult(
            mode=mode,
            n_hosts=self.n_hosts,
            total_slices=total,
            elapsed_seconds=elapsed,
            estimates=pool.estimates(),
            dropped_records=self.ingest.drop_report(),
            engine_cache=pool.cache_stats(),
            metrics=self.metrics_processor.summary(),
            quarantined=pool.quarantined_hosts(),
            # The recorder the engines actually used: an explicit
            # engine_kwargs entry wins over the service-level parameter.
            chain_trace=self.chain_recorder,
        )

    def run(self, mode: str = "pool") -> FleetResult:
        """Drive every host's stream through inference until drained.

        ``mode="pool"`` shards hosts across the configured workers and shares
        cached engines/schedules per (arch, event-set) key; ``mode="serial"``
        runs a single worker that constructs a dedicated engine and schedule
        per host (the pre-fleet baseline).  Estimates are identical in both
        modes; only throughput differs.

        This is a thin shim over :class:`repro.api.Pipeline` — the unified
        drive loop — collecting everything into a :class:`FleetResult`.
        Use ``Pipeline.from_spec(...).stream()`` (or ``Pipeline(service)``)
        for incremental per-slice results and bounded-memory chain capture.
        """
        from repro.api.pipeline import Pipeline  # local import: api sits above fleet

        return Pipeline(self, mode=mode).run_fleet()
