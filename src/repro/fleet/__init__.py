"""Fleet telemetry service: many concurrent BayesPerf corrections.

The paper corrects one host's multiplexed counters; production profile
collection aggregates counters from whole fleets.  This subsystem scales the
reproduction accordingly:

* :mod:`repro.fleet.ingest` — per-host record streams feeding bounded ring
  buffers with explicit backpressure accounting;
* :mod:`repro.fleet.workers` — hosts sharded across inference workers that
  batch per-slice EP solves and share one engine + cached catalog/schedule
  per (arch, event-set) key;
* :mod:`repro.fleet.tracefile` — a versioned JSONL record/replay format, so
  externally captured or previously recorded runs become replayable
  workloads;
* :mod:`repro.fleet.events` — a unified observability event stream with
  push-based processors and pull-based iteration;
* :mod:`repro.fleet.faults` — worker retry/timeout/backoff/quarantine
  policies (:class:`FaultPolicySpec`);
* :mod:`repro.fleet.wal` — write-ahead-log recovery: load a crashed run's
  checkpoint state and roll back its uncommitted suffix;
* :mod:`repro.fleet.chaos` — the deterministic fault-injection harness
  (:class:`FaultInjector`) the fault-tolerance tests run on;
* :mod:`repro.fleet.service` — the :class:`FleetService` facade tying it all
  together.

Run the synthetic demo, replay a trace, or resume a crashed checkpointed
run from the command line with ``python -m repro.fleet``.
"""

from repro.fleet.chaos import Fault, FaultInjector, InjectedCrash, InjectedFault
from repro.fleet.events import (
    BackpressureDetected,
    CheckpointWritten,
    EstimateReady,
    EventDispatcher,
    EventLog,
    EventProcessor,
    FleetEvent,
    HostQuarantined,
    LoggingProcessor,
    MalformedRecordSkipped,
    MetricsProcessor,
    SessionCompleted,
    SessionStarted,
    SliceAttemptFailed,
    SliceCompleted,
    SliceRetried,
    SliceSkipped,
    TypedEventProcessor,
)
from repro.fleet.faults import FaultPolicySpec, SliceFailed, SliceTimeout
from repro.fleet.ingest import FleetIngest, HostChannel, ReplayHostSource, SyntheticHostSource
from repro.fleet.service import FleetResult, FleetService
from repro.fleet.tracefile import (
    TraceFile,
    TraceFormatError,
    TraceWorkload,
    TraceWriter,
    chain_trace_file,
    read_trace,
    record_session_trace,
    register_trace_workload,
    write_trace,
)
from repro.fleet.wal import WalState, load_wal, truncate_to_commit
from repro.fleet.workers import EngineCache, InferenceWorker, WorkerPool

__all__ = [
    "BackpressureDetected",
    "CheckpointWritten",
    "EstimateReady",
    "EventDispatcher",
    "EventLog",
    "EventProcessor",
    "FleetEvent",
    "HostQuarantined",
    "LoggingProcessor",
    "MalformedRecordSkipped",
    "MetricsProcessor",
    "SessionCompleted",
    "SessionStarted",
    "SliceAttemptFailed",
    "SliceCompleted",
    "SliceRetried",
    "SliceSkipped",
    "TypedEventProcessor",
    "Fault",
    "FaultInjector",
    "FaultPolicySpec",
    "InjectedCrash",
    "InjectedFault",
    "SliceFailed",
    "SliceTimeout",
    "FleetIngest",
    "HostChannel",
    "ReplayHostSource",
    "SyntheticHostSource",
    "FleetResult",
    "FleetService",
    "TraceFile",
    "TraceFormatError",
    "TraceWorkload",
    "TraceWriter",
    "chain_trace_file",
    "read_trace",
    "record_session_trace",
    "register_trace_workload",
    "write_trace",
    "WalState",
    "load_wal",
    "truncate_to_commit",
    "EngineCache",
    "InferenceWorker",
    "WorkerPool",
]
