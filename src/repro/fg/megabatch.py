"""Cross-signature mega-batching and multicore execution of the EP kernel.

Batched EP (:meth:`~repro.fg.compiled.CompiledEPKernel.run_stacked`) solves
``B`` records in one vectorized pass — but only records sharing one graph
*structure*, i.e. one measured-event signature.  A heterogeneous fleet
round fragments into many small per-signature batches (one per schedule
rotation position), and each fragment pays the kernel's fixed per-call
cost: Python dispatch over ~10² numpy ops per EP sweep dwarfs the
per-record arithmetic when ``B`` is 2–4.

This module removes the fragmentation with **shape canonicalization**.
Within one engine the variable set is fixed (every monitored + latent
event) and the constraint topology is signature-invariant — only the
observation site's width varies with the signature.  So every signature
embeds into one *canonical* structure-of-arrays layout whose observation
site spans the full variable width:

* measured lanes scatter each record's projected observation moments into
  their canonical slots — the same ``1/σ²`` / ``μ/σ²`` values the
  per-signature binder produces, landing on the same global matrix entries;
* padded lanes carry **exact zeros** (precision ``1/∞ = 0``, shift
  ``0/∞ = 0``), which makes them no-ops through the whole kernel: damping
  of zero is zero, the scatter-add contributes ``+0.0``, and the
  ``max(|·|)`` convergence reductions are insensitive to extra zero lanes.

The one step where a padded block is *not* automatically a no-op is the
kernel's positive-definiteness repair: a diagonal with zero entries fails
the Cholesky probe and the eigenvalue fallback would bump *every* lane.
Mega-batch eligibility therefore certifies the observation block up front
(:func:`observation_certified`: every measured lane's precision finite and
strictly positive — exactly the condition under which the per-signature
stack passes its Cholesky probe untouched) and the kernel skips the probe
for the certified site (``certified_sites``).  Together this makes the
mega-batched solve **bit-identical** to the per-signature batched solves
it replaces; ``tests/test_megabatch.py`` pins the equivalence on
hypothesis-randomized heterogeneous fleets.

**Multicore execution** rides on the same per-record independence.
:class:`KernelExecSpec` selects a thread count and a partition axis:

* ``partition="lane"`` splits the batch axis into fixed contiguous chunks
  (:func:`lane_chunks` — a pure function of ``(batch, threads)``) and runs
  the serial kernel per chunk on a thread pool.  numpy's LAPACK gufuncs
  release the GIL, every kernel op is element-wise or per-record, and the
  chunk boundaries never depend on timing — so results are bit-identical
  for any thread count, including 1.
* ``partition="signature"`` parallelises across independent solve groups
  (per-signature groups inside an engine batch, per-engine-key rounds in
  the worker pool) with recording deferred to a deterministic post-join
  order.

Nothing here imports an engine: the canonicalization is expressed against
the compiled binder/kernel layer so any caller with per-signature arrays
can mega-batch.
"""

from __future__ import annotations

import os
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.fg.compiled import CompiledEPKernel, CompiledEPResult

__all__ = [
    "KernelExecSpec",
    "THREADS_ENV_VAR",
    "bind_bucketed_observation",
    "concat_results",
    "kernel_exec_from_env",
    "lane_chunks",
    "observation_certified",
    "padding_slots",
    "run_lane_partitioned",
]

#: Environment variable giving the default ``KernelExecSpec.threads`` when a
#: run does not set one explicitly — CI uses it to sweep the whole tier-1
#: suite under ``threads=4`` on one matrix leg.
THREADS_ENV_VAR = "REPRO_KERNEL_THREADS"


@dataclass(frozen=True)
class KernelExecSpec:
    """How the batched EP kernel spreads work across threads.

    ``threads=1`` (the default) is the serial kernel.  ``partition`` picks
    the split axis: ``"lane"`` chunks the batch (record) axis inside one
    kernel call, ``"signature"`` parallelises across independent solve
    groups.  Both partitions are fixed functions of the workload shape, so
    results are bit-identical regardless of thread count — threads change
    wall-clock only, never numerics.

    Frozen and hashable: the spec participates in engine-cache keys and
    round-trips through ``RunSpec.to_dict()``/``from_dict()``.
    """

    threads: int = 1
    partition: str = "lane"

    def __post_init__(self) -> None:
        if self.threads < 1:
            raise ValueError("threads must be at least 1")
        if self.partition not in ("lane", "signature"):
            raise ValueError(
                f"unknown partition {self.partition!r} (expected 'lane' or 'signature')"
            )


def kernel_exec_from_env() -> Optional[KernelExecSpec]:
    """Default exec spec from ``REPRO_KERNEL_THREADS``, or ``None``."""
    raw = os.environ.get(THREADS_ENV_VAR, "").strip()
    if not raw:
        return None
    return KernelExecSpec(threads=int(raw))


# -- shape canonicalization ----------------------------------------------------


def observation_certified(variance: np.ndarray) -> bool:
    """Whether an observation block may skip the kernel's PD probe.

    ``variance`` holds a signature group's projected observation variances
    (any shape; the measured lanes only).  When every entry is finite and
    strictly positive, the per-signature observation block is a diagonal
    with strictly positive entries — its Cholesky probe succeeds and the
    PD repair passes it through untouched.  Only then may the canonical
    (padded) block skip the probe and remain bit-identical.
    """
    values = np.asarray(variance)
    if values.size == 0:
        return False
    return bool(np.isfinite(values).all() and (values > 0).all())


def padding_slots(width: int, slots: np.ndarray, n_variables: int) -> np.ndarray:
    """Distinct global slots for a signature's padded lanes.

    A bucketed observation block of width ``width`` holding a signature
    with ``len(slots)`` measured events needs ``width - len(slots)``
    padding lanes, and each lane needs its *own* global slot (the kernel's
    fancy-indexed scatter must see distinct indices per record).  The
    padded contributions are exact zeros, so *which* unmeasured slots they
    land on is irrelevant — the smallest unmeasured slot ids are chosen
    for determinism.  Always enough exist: the bucket is never wider than
    the variable count.
    """
    pad = width - len(slots)
    if pad == 0:
        return np.empty(0, dtype=np.intp)
    measured = set(int(s) for s in slots)
    free = [slot for slot in range(n_variables) if slot not in measured]
    if pad > len(free):
        raise ValueError(
            f"bucket width {width} exceeds the variable count {n_variables}"
        )
    return np.array(free[:pad], dtype=np.intp)


def bind_bucketed_observation(
    width: int,
    batch: int,
    blocks: Sequence[Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]],
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Canonical bucketed observation site for a mega-batch.

    ``blocks`` carries one ``(rows, slots, pad_slots, mean, variance)``
    tuple per signature group — ``rows`` are the group's record indices in
    the mega-batch, ``slots`` the global variable slots of its measured
    events (in record order), ``pad_slots`` the distinct unmeasured slots
    absorbing its padded lanes (:func:`padding_slots`), and ``mean`` /
    ``variance`` its ``(G, E)`` projected moments.  ``width`` is the
    bucket's canonical width — the widest merged signature.

    Returns ``(precision, shift, slot_table)``: a ``(B, width, width)``
    diagonal precision block and ``(B, width)`` shift whose populated lanes
    hold the very same ``1/σ²`` / ``μ/σ²`` floats the per-signature binder
    produces and whose padded lanes are exact zeros, plus the per-record
    ``(B, width)`` global-slot table to pass as the site's
    ``site_index_overrides`` entry.  Padded lanes scatter ``+0.0`` onto
    unmeasured slots — no-ops — so the mega-batched solve is bit-identical
    to the per-signature solves it merges.
    """
    precision = np.zeros((batch, width, width))
    shift = np.zeros((batch, width))
    slot_table = np.zeros((batch, width), dtype=np.intp)
    for rows, slots, pad_slots, mean, variance in blocks:
        lanes = np.arange(len(slots))
        precision[rows[:, None], lanes[None, :], lanes[None, :]] = 1.0 / variance
        shift[rows[:, None], lanes[None, :]] = mean / variance
        slot_table[rows[:, None], lanes[None, :]] = slots
        if len(slots) < width:
            pad_lanes = np.arange(len(slots), width)
            slot_table[rows[:, None], pad_lanes[None, :]] = pad_slots
    return precision, shift, slot_table


# -- multicore execution -------------------------------------------------------


def lane_chunks(batch: int, threads: int) -> List[Tuple[int, int]]:
    """Fixed contiguous partition of the batch axis into ``<= threads`` chunks.

    A pure function of ``(batch, threads)`` — never of timing — so the
    partition (and with it the numerics, which are per-record anyway) is
    deterministic.  Chunk sizes differ by at most one record.
    """
    chunks = min(threads, batch)
    base, extra = divmod(batch, chunks)
    bounds: List[Tuple[int, int]] = []
    start = 0
    for i in range(chunks):
        stop = start + base + (1 if i < extra else 0)
        bounds.append((start, stop))
        start = stop
    return bounds


def concat_results(results: Sequence[CompiledEPResult]) -> CompiledEPResult:
    """Concatenate per-chunk kernel results back into one batch result."""
    if len(results) == 1:
        return results[0]
    return CompiledEPResult(
        variables=results[0].variables,
        posterior_precision=np.concatenate([r.posterior_precision for r in results]),
        posterior_shift=np.concatenate([r.posterior_shift for r in results]),
        means=np.concatenate([r.means for r in results]),
        variances=np.concatenate([r.variances for r in results]),
        iterations=np.concatenate([r.iterations for r in results]),
        converged=np.concatenate([r.converged for r in results]),
        max_delta=np.concatenate([r.max_delta for r in results]),
    )


def run_lane_partitioned(
    kernel: CompiledEPKernel,
    stacked: Sequence[Tuple[np.ndarray, np.ndarray]],
    prior_precision: np.ndarray,
    prior_shift: np.ndarray,
    certified_sites: Sequence[int],
    pool: ThreadPoolExecutor,
    threads: int,
    site_index_overrides: Optional[dict] = None,
    repair_groups: Optional[Sequence[np.ndarray]] = None,
) -> CompiledEPResult:
    """``run_stacked`` with the batch axis chunked across a thread pool.

    The PD repair runs *before* the split, on the full batch: its Cholesky
    probe is all-or-nothing per call, so chunk-local probes could repair a
    record differently than the serial call would — the one kernel step
    whose outcome depends on batch composition.  With repaired targets in
    hand every remaining kernel op is element-wise or a per-record linalg
    gufunc, so each chunk computes exactly the lanes it would inside the
    full batch — concatenating the chunk results is bit-identical to the
    serial call whatever ``threads`` is.  Chunks are submitted over
    *views* of the repaired arrays (no copies); numpy releases the GIL
    inside the LAPACK calls, which is where the parallelism comes from.
    """
    batch = prior_shift.shape[0]
    targets = kernel._repaired_targets(stacked, certified_sites, repair_groups)
    # Chunks must not re-probe: every site is already repaired.
    all_certified = range(len(targets))
    bounds = lane_chunks(batch, threads)
    if len(bounds) == 1:
        return kernel.run_stacked(
            targets,
            prior_precision,
            prior_shift,
            all_certified,
            site_index_overrides,
        )
    futures = [
        pool.submit(
            kernel.run_stacked,
            [(precision[a:b], shift[a:b]) for precision, shift in targets],
            prior_precision[a:b],
            prior_shift[a:b],
            all_certified,
            None
            if site_index_overrides is None
            else {k: table[a:b] for k, table in site_index_overrides.items()},
        )
        for a, b in bounds
    ]
    return concat_results([future.result() for future in futures])
