"""Cholesky-based linear algebra shared by the Gaussian types and the kernel.

Every helper accepts either a single matrix ``(n, n)`` or a stack
``(..., n, n)`` and applies the operation slice-wise through numpy's linalg
gufuncs.  Crucially, the batched and the single-matrix paths execute the
*same* per-slice LAPACK calls, so a computation run with batch size 1 is
bit-identical to the same slice inside a larger batch — the fleet worker
pool relies on this to keep batched and per-record inference exactly equal.

Only numpy is required: the triangular factor is inverted with
``np.linalg.inv`` (one LAPACK call on an ``n x n`` triangle) instead of
scipy's ``solve_triangular``, which keeps the package importable in minimal
environments while preserving the Cholesky route's positive-definiteness
check and symmetric result.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

__all__ = [
    "cholesky_inverse",
    "cholesky_mean_and_variance",
    "cholesky_moments",
]


def cholesky_inverse(precision: np.ndarray) -> np.ndarray:
    """Inverse of a symmetric positive-definite matrix (or stack of them).

    Factors ``P = L L^T`` and returns ``L^{-T} L^{-1}``, which is exactly
    symmetric by construction (no explicit symmetrisation pass needed).
    Raises :class:`numpy.linalg.LinAlgError` when any slice is not positive
    definite — callers use that as the cheap PD probe that replaces an
    unconditional eigendecomposition.
    """
    factor = np.linalg.cholesky(precision)
    factor_inv = np.linalg.inv(factor)
    return np.swapaxes(factor_inv, -1, -2) @ factor_inv


def cholesky_moments(
    precision: np.ndarray, shift: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """(mean, covariance) of an information-form Gaussian via Cholesky.

    ``shift`` has shape ``(..., n)`` matching the batch shape of
    ``precision``.  Raises ``LinAlgError`` when a slice is not PD.
    """
    cov = cholesky_inverse(precision)
    mean = (cov @ shift[..., None])[..., 0]
    return mean, cov


def cholesky_mean_and_variance(
    precision: np.ndarray, shift: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Posterior mean and marginal variances without forming the covariance.

    With ``P = L L^T``: the mean solves ``P m = h`` as
    ``m = L^{-T} (L^{-1} h)`` and the marginal variances are the column
    norms of ``L^{-1}`` (``diag(L^{-T} L^{-1})``).  One factorisation, no
    ``n x n`` covariance materialised — this is the compiled kernel's final
    read-out of a batch of posteriors.
    """
    factor = np.linalg.cholesky(precision)
    factor_inv = np.linalg.inv(factor)
    half = factor_inv @ shift[..., None]
    mean = (np.swapaxes(factor_inv, -1, -2) @ half)[..., 0]
    variance = np.sum(factor_inv * factor_inv, axis=-2)
    return mean, variance
