"""Scalar probability distributions used by the BayesPerf model."""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np
from scipy.special import gammaln

_LOG_2PI = math.log(2.0 * math.pi)


def student_t_moment_variance(scale, df):
    """Moment-matched Gaussian variance of a Student-t, vectorized.

    Mirrors :meth:`StudentT.variance` (including the finite surrogate for
    ``df <= 2``) over ndarray inputs, so the array-native observation
    pipeline projects batches of summaries with the exact arithmetic of the
    per-object path.
    """
    scale = np.asarray(scale, dtype=float)
    df = np.asarray(df, dtype=float)
    safe_df = np.where(df > 2, df, 3.0)  # avoid 0-division in the dead branch
    return np.where(df > 2, scale**2 * safe_df / (safe_df - 2.0), scale**2 * 3.0)


def student_t_log_pdf(x, loc, scale, df):
    """Student-t log pdf, vectorized over ndarray inputs.

    The same formula as :meth:`StudentT.log_pdf`; ``scipy.special.gammaln``
    replaces ``math.lgamma`` so whole batches evaluate in one pass.
    """
    x = np.asarray(x, dtype=float)
    loc = np.asarray(loc, dtype=float)
    scale = np.asarray(scale, dtype=float)
    df = np.asarray(df, dtype=float)
    z = (x - loc) / scale
    half = (df + 1.0) / 2.0
    return (
        gammaln(half)
        - gammaln(df / 2.0)
        - 0.5 * np.log(df * np.pi)
        - np.log(scale)
        - half * np.log1p(z * z / df)
    )


@dataclass(frozen=True)
class Gaussian1D:
    """A univariate Gaussian parameterised by mean and variance."""

    mean: float
    variance: float

    def __post_init__(self) -> None:
        if self.variance <= 0:
            raise ValueError(f"variance must be positive, got {self.variance}")

    @property
    def std(self) -> float:
        return math.sqrt(self.variance)

    @property
    def precision(self) -> float:
        return 1.0 / self.variance

    def log_pdf(self, x: float) -> float:
        z = (x - self.mean) ** 2 / self.variance
        return -0.5 * (z + math.log(self.variance) + _LOG_2PI)

    def pdf(self, x: float) -> float:
        return math.exp(self.log_pdf(x))

    def sample(self, rng: np.random.Generator, size: int = 1) -> np.ndarray:
        return rng.normal(self.mean, self.std, size=size)

    def multiply(self, other: "Gaussian1D") -> "Gaussian1D":
        """Product of two Gaussians (unnormalised), itself Gaussian."""
        precision = self.precision + other.precision
        mean = (self.mean * self.precision + other.mean * other.precision) / precision
        return Gaussian1D(mean=mean, variance=1.0 / precision)

    def divide(self, other: "Gaussian1D") -> "Gaussian1D":
        """Quotient of two Gaussians; requires the result to be proper."""
        precision = self.precision - other.precision
        if precision <= 0:
            raise ValueError("Gaussian division yields a non-positive precision")
        mean = (self.mean * self.precision - other.mean * other.precision) / precision
        return Gaussian1D(mean=mean, variance=1.0 / precision)

    def interval(self, confidence: float = 0.95) -> tuple:
        """Symmetric credible interval at the given confidence level."""
        from scipy import stats

        half = stats.norm.ppf(0.5 + confidence / 2.0) * self.std
        return (self.mean - half, self.mean + half)


@dataclass(frozen=True)
class StudentT:
    """A scaled and shifted Student-t distribution.

    The paper models the unknown true counter value from ``N`` noisy samples
    as ``loc + scale * Student(df = N - 1)`` where ``loc`` is the sample mean
    and ``scale = S / sqrt(N)`` for sample standard deviation ``S`` (§4.2).
    """

    loc: float
    scale: float
    df: float

    def __post_init__(self) -> None:
        if self.scale <= 0:
            raise ValueError(f"scale must be positive, got {self.scale}")
        if self.df <= 0:
            raise ValueError(f"degrees of freedom must be positive, got {self.df}")

    def log_pdf(self, x: float) -> float:
        z = (x - self.loc) / self.scale
        half = (self.df + 1.0) / 2.0
        return (
            math.lgamma(half)
            - math.lgamma(self.df / 2.0)
            - 0.5 * math.log(self.df * math.pi)
            - math.log(self.scale)
            - half * math.log1p(z * z / self.df)
        )

    def pdf(self, x: float) -> float:
        return math.exp(self.log_pdf(x))

    def sample(self, rng: np.random.Generator, size: int = 1) -> np.ndarray:
        return self.loc + self.scale * rng.standard_t(self.df, size=size)

    @property
    def mean(self) -> float:
        """Mean of the distribution (equals ``loc`` for df > 1)."""
        return self.loc

    @property
    def variance(self) -> float:
        """Variance, inflated for low degrees of freedom to stay finite.

        For df <= 2 the variance is undefined/infinite; a conservative
        finite surrogate keeps moment-matching possible.  The arithmetic is
        shared with the vectorized :func:`student_t_moment_variance` so the
        object and array observation pipelines project identically.
        """
        if self.df > 2:
            return self.scale**2 * self.df / (self.df - 2.0)
        return self.scale**2 * 3.0

    def to_gaussian(self) -> Gaussian1D:
        """Moment-matched Gaussian approximation of this Student-t."""
        return Gaussian1D(mean=self.mean, variance=self.variance)

    def interval(self, confidence: float = 0.95) -> tuple:
        """Symmetric credible interval at the given confidence level."""
        from scipy import stats

        half = stats.t.ppf(0.5 + confidence / 2.0, self.df) * self.scale
        return (self.loc - half, self.loc + half)

    @classmethod
    def from_samples(cls, samples: np.ndarray, *, min_scale: float = 1e-9) -> "StudentT":
        """Posterior over the mean of noisy samples (paper's §4.2 model).

        With fewer than two samples the distribution degenerates; a wide
        pseudo-posterior centred on the single sample is returned instead so
        callers never have to special-case tiny windows.
        """
        samples = np.asarray(samples, dtype=float)
        n = samples.size
        if n == 0:
            raise ValueError("at least one sample is required")
        mean = float(np.mean(samples))
        if n == 1:
            scale = max(abs(mean) * 0.25, min_scale)
            return cls(loc=mean, scale=scale, df=1.0)
        std = float(np.std(samples, ddof=1))
        scale = max(std / math.sqrt(n), min_scale, abs(mean) * 1e-6)
        return cls(loc=mean, scale=scale, df=float(n - 1))
