"""Factor types composing the BayesPerf factor graph.

Three families of factors appear in the model (§4):

* **Observation factors** tie an event variable to its noisy measurements —
  a Student-t in the paper's formulation, with a Gaussian variant used for
  ablation and for the analytic EP backend.
* **Linear constraint factors** encode microarchitectural invariants as soft
  Gaussian potentials on the relation residual.
* **Prior factors** carry either a weak prior or the previous time slice's
  posterior into the current slice (the ``e_b^{t-1}`` term of §3).
"""

from __future__ import annotations

import math
from typing import Dict, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.fg.distributions import Gaussian1D, StudentT
from repro.fg.gaussian import GaussianDensity

_LOG_2PI = math.log(2.0 * math.pi)


class Factor:
    """Base class for factors over a set of named scalar variables."""

    def __init__(self, name: str, variables: Sequence[str]) -> None:
        if not name:
            raise ValueError("factor name must be non-empty")
        if not variables:
            raise ValueError(f"factor {name!r} must reference at least one variable")
        self.name = name
        self.variables: Tuple[str, ...] = tuple(variables)

    def log_density(self, values: Mapping[str, float]) -> float:
        """Unnormalised log potential at the given assignment."""
        raise NotImplementedError

    def to_gaussian(self, anchor: Optional[Mapping[str, float]] = None) -> GaussianDensity:
        """Gaussian (information-form) approximation of the factor.

        ``anchor`` supplies linearisation/centring values when needed; purely
        Gaussian factors ignore it.
        """
        raise NotImplementedError

    @property
    def is_gaussian(self) -> bool:
        """Whether :meth:`to_gaussian` is exact rather than an approximation."""
        return False

    @property
    def anchor_free(self) -> bool:
        """Whether :meth:`to_gaussian` ignores the linearisation anchor.

        Anchor-free sites make the analytic EP update independent of the
        cavity (the tilted/cavity division cancels algebraically), which is
        what lets both the reference loop and the compiled kernel compute
        it exactly.  Factor types that linearise around the anchor must
        leave this ``False`` so EP keeps anchoring them at the cavity mean.
        """
        return False

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}({self.name!r}, vars={list(self.variables)})"


class GaussianObservation(Factor):
    """Observation ``x ~ N(observed, sigma^2)`` of a single variable."""

    def __init__(self, name: str, variable: str, observed: float, sigma: float) -> None:
        super().__init__(name, [variable])
        if sigma <= 0:
            raise ValueError(f"observation {name!r} sigma must be positive")
        self.variable = variable
        self.observed = float(observed)
        self.sigma = float(sigma)

    def log_density(self, values: Mapping[str, float]) -> float:
        z = (float(values[self.variable]) - self.observed) / self.sigma
        return -0.5 * (z * z + 2.0 * math.log(self.sigma) + _LOG_2PI)

    def to_gaussian(self, anchor: Optional[Mapping[str, float]] = None) -> GaussianDensity:
        var = self.sigma**2
        return GaussianDensity.diagonal({self.variable: self.observed}, {self.variable: var})

    @property
    def is_gaussian(self) -> bool:
        return True

    @property
    def anchor_free(self) -> bool:
        return True


class StudentTObservation(Factor):
    """Observation of a single variable through the paper's Student-t model."""

    def __init__(self, name: str, variable: str, distribution: StudentT) -> None:
        super().__init__(name, [variable])
        self.variable = variable
        self.distribution = distribution

    @classmethod
    def from_samples(cls, name: str, variable: str, samples: np.ndarray) -> "StudentTObservation":
        return cls(name, variable, StudentT.from_samples(samples))

    def log_density(self, values: Mapping[str, float]) -> float:
        return self.distribution.log_pdf(float(values[self.variable]))

    def to_gaussian(self, anchor: Optional[Mapping[str, float]] = None) -> GaussianDensity:
        gaussian = self.distribution.to_gaussian()
        return GaussianDensity.diagonal(
            {self.variable: gaussian.mean}, {self.variable: gaussian.variance}
        )

    @property
    def is_gaussian(self) -> bool:
        return False

    @property
    def anchor_free(self) -> bool:
        # The moment-matched projection depends only on the distribution.
        return True


class LinearConstraintFactor(Factor):
    """Soft linear constraint ``sum(coef_i * x_i) ~ N(0, sigma^2)``."""

    def __init__(
        self,
        name: str,
        coefficients: Mapping[str, float],
        sigma: float,
        description: str = "",
    ) -> None:
        super().__init__(name, list(coefficients))
        if sigma <= 0:
            raise ValueError(f"constraint {name!r} sigma must be positive")
        self.coefficients: Dict[str, float] = dict(coefficients)
        self.sigma = float(sigma)
        self.description = description
        #: Coefficients as a vector in ``self.variables`` order — computed
        #: once so binding a record does not rebuild it per factor.
        self.coefficient_array: np.ndarray = np.array(
            [self.coefficients[v] for v in self.variables], dtype=float
        )

    def residual(self, values: Mapping[str, float]) -> float:
        return float(sum(c * float(values[v]) for v, c in self.coefficients.items()))

    def log_density(self, values: Mapping[str, float]) -> float:
        z = self.residual(values) / self.sigma
        return -0.5 * (z * z + 2.0 * math.log(self.sigma) + _LOG_2PI)

    def to_gaussian(self, anchor: Optional[Mapping[str, float]] = None) -> GaussianDensity:
        a = self.coefficient_array
        precision = np.outer(a, a) / (self.sigma**2)
        shift = np.zeros(len(self.variables))
        return GaussianDensity(self.variables, precision, shift)

    @property
    def is_gaussian(self) -> bool:
        return True

    @property
    def anchor_free(self) -> bool:
        return True


class GaussianPriorFactor(Factor):
    """Independent Gaussian prior over one or more variables."""

    def __init__(self, name: str, means: Mapping[str, float], variances: Mapping[str, float]) -> None:
        super().__init__(name, list(means))
        if set(means) != set(variances):
            raise ValueError(f"prior {name!r} means/variances must cover the same variables")
        self.means: Dict[str, float] = {k: float(v) for k, v in means.items()}
        self.variances: Dict[str, float] = {}
        for key, var in variances.items():
            if var <= 0:
                raise ValueError(f"prior {name!r} variance for {key!r} must be positive")
            self.variances[key] = float(var)

    def log_density(self, values: Mapping[str, float]) -> float:
        total = 0.0
        for key, mean in self.means.items():
            var = self.variances[key]
            z = (float(values[key]) - mean) ** 2 / var
            total += -0.5 * (z + math.log(var) + _LOG_2PI)
        return total

    def to_gaussian(self, anchor: Optional[Mapping[str, float]] = None) -> GaussianDensity:
        return GaussianDensity.diagonal(self.means, self.variances)

    @property
    def is_gaussian(self) -> bool:
        return True

    @property
    def anchor_free(self) -> bool:
        return True
