"""Compiled, vectorized execution of analytic EP (Alg. 1).

The reference :class:`~repro.fg.ep.ExpectationPropagation` walks dict-keyed
:class:`~repro.fg.gaussian.GaussianDensity` objects: every cavity, tilted
distribution and site update allocates fresh matrices, re-derives variable
alignments, and inverts or eigendecomposes per step.  That is the right
shape for experimentation but it is the fleet service's hot path — every
corrected slice runs it.

This module splits the work the way a compiler would:

**Compilation** (:func:`compile_factor_graph`, once per graph *structure*)
lowers a factor graph plus its EP site partition into flat index arrays: a
variable slot table, per-site global-index arrays, and per-factor assembly
ops that know where each factor's natural-parameter block lands inside its
site.  Structures are independent of the observed values, so the engine
caches one per (measured-event-set) signature and reuses it for every slice
in the same schedule rotation position.

**Execution** (:class:`CompiledEPKernel`, once per record or per batch) runs
the EP iteration entirely on preallocated ``(B, ...)`` ndarray buffers:

* Site tilted-moment projections are assembled once per record by
  scatter-adding each factor's natural-parameter block into its site array.
  All factor families in the repository (Gaussian/Student-t observations,
  linear constraints, Gaussian priors) project to Gaussians *independently
  of the linearisation anchor*, so the reference's per-iteration
  ``tilted = cavity x factors`` / ``new_site = tilted / cavity`` round trip
  cancels analytically — the site target is the factor-block sum itself and
  the per-iteration cavity solve is dead weight the kernel skips.
  Compilation refuses (returns ``None``) any factor type outside this
  anchor-free set, which routes those graphs back to the reference
  implementation.
* Positive-definiteness repair of site targets attempts a Cholesky
  factorisation first and only falls back to the eigendecomposition repair
  of the reference's ``_safe_divide`` when it fails, so the common PD case
  costs one factorisation.
* Damping, convergence deltas and global scatter-add updates run the exact
  arithmetic of the reference loop, element-wise over the whole batch, with
  per-record convergence masks so each record reports the same iteration
  count the reference would.
* Final posterior moments use one batched Cholesky solve
  (:func:`~repro.fg.linalg.cholesky_mean_and_variance`) instead of a full
  matrix inversion.

Everything is expressed through numpy's batched linalg gufuncs, which apply
the same per-slice LAPACK routine whatever the batch size — a record solved
alone (``B=1``) is bit-identical to the same record inside a fleet batch.
The worker pool's "batched == per-record" exactness guarantee rests on
this.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.fg.ep import EPSite
from repro.fg.factors import (
    Factor,
    GaussianObservation,
    GaussianPriorFactor,
    LinearConstraintFactor,
    StudentTObservation,
)
from repro.fg.gaussian import GaussianDensity
from repro.fg.graph import FactorGraph
from repro.fg.linalg import cholesky_mean_and_variance
from repro.fg.registry import register_estimator

__all__ = [
    "CompiledBinder",
    "CompiledEPKernel",
    "CompiledEPResult",
    "CompiledGraph",
    "CompiledSite",
    "ConstraintSiteBinder",
    "ObservationSiteBinder",
    "compile_factor_graph",
    "site_factor_lists",
]


# -- factor assembly ops -------------------------------------------------------
#
# One op per factor: compiled index plumbing plus a value extractor that
# scatter-adds the factor's information-form block into the site arrays.
# The arithmetic mirrors Factor.to_gaussian()/GaussianDensity.diagonal()
# exactly so compiled and reference projections agree to the last bit.


class _GaussianObservationOp:
    __slots__ = ("slot",)

    def __init__(self, slot: int) -> None:
        self.slot = slot

    def add_to(self, factor: GaussianObservation, precision: np.ndarray, shift: np.ndarray) -> None:
        variance = factor.sigma**2
        precision[self.slot, self.slot] += 1.0 / variance
        shift[self.slot] += factor.observed / variance


class _StudentTObservationOp:
    __slots__ = ("slot",)

    def __init__(self, slot: int) -> None:
        self.slot = slot

    def add_to(self, factor: StudentTObservation, precision: np.ndarray, shift: np.ndarray) -> None:
        distribution = factor.distribution
        variance = distribution.variance  # moment-matched Gaussian projection
        precision[self.slot, self.slot] += 1.0 / variance
        shift[self.slot] += distribution.mean / variance


class _LinearConstraintOp:
    __slots__ = ("rows", "cols")

    def __init__(self, slots: np.ndarray) -> None:
        self.rows = slots[:, None]
        self.cols = slots[None, :]

    def add_to(self, factor: LinearConstraintFactor, precision: np.ndarray, shift: np.ndarray) -> None:
        a = factor.coefficient_array
        precision[self.rows, self.cols] += np.outer(a, a) / (factor.sigma**2)


class _GaussianPriorOp:
    __slots__ = ("slots",)

    def __init__(self, slots: np.ndarray) -> None:
        self.slots = slots

    def add_to(self, factor: GaussianPriorFactor, precision: np.ndarray, shift: np.ndarray) -> None:
        for slot, name in zip(self.slots, factor.variables):
            variance = factor.variances[name]
            precision[slot, slot] += 1.0 / variance
            shift[slot] += factor.means[name] / variance


#: Factor types whose Gaussian projection ignores the linearisation anchor.
#: Anything else makes the graph non-compilable (reference EP handles it).
_ANCHOR_FREE_OPS = {
    GaussianObservation: lambda slots: _GaussianObservationOp(int(slots[0])),
    StudentTObservation: lambda slots: _StudentTObservationOp(int(slots[0])),
    LinearConstraintFactor: _LinearConstraintOp,
    GaussianPriorFactor: _GaussianPriorOp,
}


@dataclass(frozen=True)
class CompiledSite:
    """Index-compiled form of one EP site."""

    name: str
    variables: Tuple[str, ...]
    #: Global variable slots of this site's variables, in site order.
    index: np.ndarray
    #: One assembly op per factor, in the site's factor order.
    ops: Tuple[object, ...]

    @property
    def width(self) -> int:
        return len(self.variables)


@dataclass(frozen=True)
class CompiledGraph:
    """Flat index structures for one factor-graph + site-partition shape.

    Value-free: holds slot tables and assembly plumbing only, so one
    instance serves every record whose graph has the same structure.
    """

    variables: Tuple[str, ...]
    sites: Tuple[CompiledSite, ...]

    def bind(self, site_factors: Sequence[Sequence[Factor]]) -> Tuple[Tuple[np.ndarray, np.ndarray], ...]:
        """Evaluate one record's factors into per-site natural-parameter blocks.

        ``site_factors`` lists each site's factors in compile order; the
        result is one ``(precision, shift)`` pair per site, in site-local
        coordinates.
        """
        if len(site_factors) != len(self.sites):
            raise ValueError(
                f"binding expects {len(self.sites)} factor lists, got {len(site_factors)}"
            )
        blocks: List[Tuple[np.ndarray, np.ndarray]] = []
        for site, factors in zip(self.sites, site_factors):
            if len(factors) != len(site.ops):
                raise ValueError(
                    f"site {site.name!r} expects {len(site.ops)} factors, got {len(factors)}"
                )
            precision = np.zeros((site.width, site.width))
            shift = np.zeros(site.width)
            for op, factor in zip(site.ops, factors):
                op.add_to(factor, precision, shift)
            blocks.append((precision, shift))
        return tuple(blocks)


def site_factor_lists(graph: FactorGraph, sites: Sequence[EPSite]) -> List[List[Factor]]:
    """Each site's factor objects in site order (the ``bind`` input shape)."""
    return [[graph.factor(name) for name in site.factor_names] for site in sites]


# -- array-native binding ------------------------------------------------------
#
# CompiledGraph.bind walks Python factor objects per record: the per-slice
# model must first be materialised as GaussianObservation / StudentT /
# LinearConstraintFactor instances just so the ops can read their fields
# back out.  The binders below skip the objects entirely: a record (or a
# whole batch of records) is described by plain ndarrays — observation
# moments and per-variable normalisation scales — and every site's
# natural-parameter block comes out of one vectorized expression.  All ops
# are element-wise or gufunc matmuls, so a record bound alone (B=1) is
# bit-identical to the same record inside a batch.


@dataclass(frozen=True)
class ObservationSiteBinder:
    """Vectorized binding of one observation site (one factor per event)."""

    #: Index of the site inside the compiled structure.
    site: int
    #: Site-local slot of each observed event, in observation order.
    slots: np.ndarray
    width: int

    def bind(self, mean: np.ndarray, variance: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Site blocks for ``(B, E)`` projected observation moments.

        ``mean`` / ``variance`` are the moment-matched Gaussian projections
        of the batch's observations (already normalised); the arithmetic
        matches ``_GaussianObservationOp`` / ``_StudentTObservationOp``.
        """
        batch = mean.shape[0]
        precision = np.zeros((batch, self.width, self.width))
        shift = np.zeros((batch, self.width))
        precision[:, self.slots, self.slots] = 1.0 / variance
        shift[:, self.slots] = mean / variance
        return precision, shift


@dataclass(frozen=True)
class ConstraintSiteBinder:
    """Vectorized binding of one constraint-group site.

    Holds the group's *unscaled* invariant coefficients stacked as one
    ``(R, w)`` matrix; binding applies each record's per-variable
    normalisation scales and accumulates every relation's soft-constraint
    block in a single batched ``A^T A`` product.
    """

    site: int
    #: ``(R, w)`` relation coefficients over the site's local variables.
    coefficients: np.ndarray
    #: ``(R,)`` per-relation tolerance (already multiplied by the engine's
    #: tolerance scale), applied to the scaled coefficient magnitude.
    tolerances: np.ndarray
    width: int

    def bind(self, scales: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Site blocks for ``(B, w)`` per-record variable scales."""
        # ascontiguousarray pins the broadcast product's memory layout:
        # numpy lays the (B, R, w) result out differently for B=1 than for
        # B>1, and the reduction below follows memory order, which would
        # break the B=1 == B=N bit-identity the worker pool relies on.
        scaled = np.ascontiguousarray(
            self.coefficients[None, :, :] * scales[:, None, :]
        )  # (B, R, w)
        magnitude = np.abs(scaled).sum(axis=-1)  # (B, R)
        sigma = np.maximum(self.tolerances[None, :] * magnitude, 1e-9)
        rows = scaled / sigma[..., None]
        # Accumulate each relation's outer product element-wise rather than
        # through a batched GEMM: BLAS picks batch-size-dependent blocking,
        # which would break the B=1 == B=N bit-identity the worker pool
        # relies on.  Relation order matches the object path's op loop.
        precision = np.zeros((scaled.shape[0], self.width, self.width))
        for relation in range(rows.shape[1]):
            row = rows[:, relation, :]
            precision += row[:, :, None] * row[:, None, :]
        shift = np.zeros((scaled.shape[0], self.width))
        return precision, shift


@dataclass(frozen=True)
class CompiledBinder:
    """Array-native evaluation of every site block for one graph structure.

    The value-level twin of :meth:`CompiledGraph.bind`: cached per
    measured-event signature alongside the compiled kernel, it turns a
    batch of records — observation moments plus normalisation scales —
    into stacked per-site ``(precision, shift)`` targets without building
    a single factor object.
    """

    structure: CompiledGraph
    observation: Optional[ObservationSiteBinder]
    constraints: Tuple[ConstraintSiteBinder, ...]

    def bind_batch(
        self,
        obs_mean: np.ndarray,
        obs_variance: np.ndarray,
        scales: np.ndarray,
    ) -> List[Tuple[np.ndarray, np.ndarray]]:
        """Stacked site blocks for a batch of records.

        ``obs_mean`` / ``obs_variance`` are ``(B, E)`` projected observation
        moments in the signature's event order; ``scales`` is the ``(B, n)``
        per-record normalisation scale of every structure variable.
        Returns one ``((B, w, w), (B, w))`` pair per compiled site, in site
        order — exactly the shape :meth:`CompiledEPKernel.run_stacked`
        consumes.
        """
        blocks: List[Optional[Tuple[np.ndarray, np.ndarray]]] = [None] * len(
            self.structure.sites
        )
        if self.observation is not None:
            blocks[self.observation.site] = self.observation.bind(obs_mean, obs_variance)
        for binder in self.constraints:
            site = self.structure.sites[binder.site]
            blocks[binder.site] = binder.bind(scales[:, site.index])
        if any(block is None for block in blocks):
            raise ValueError("binder does not cover every compiled site")
        return blocks  # type: ignore[return-value]


def compile_factor_graph(
    graph: FactorGraph,
    sites: Sequence[EPSite],
    variables: Optional[Sequence[str]] = None,
) -> Optional[CompiledGraph]:
    """Lower a factor graph + site partition into flat index structures.

    Returns ``None`` when any site factor falls outside the anchor-free
    family — the caller should fall back to the reference implementation.
    Site variable ordering replicates the reference's first-appearance
    dedup so compiled and reference posteriors stay aligned.
    """
    if not sites:
        raise ValueError("EP requires at least one site")
    ordering = tuple(variables) if variables is not None else graph.variables
    slot_of: Dict[str, int] = {name: i for i, name in enumerate(ordering)}
    compiled_sites: List[CompiledSite] = []
    for site in sites:
        site_vars: List[str] = []
        seen = set()
        for factor_name in site.factor_names:
            for variable in graph.factor(factor_name).variables:
                if variable not in seen:
                    seen.add(variable)
                    site_vars.append(variable)
        local_of = {name: i for i, name in enumerate(site_vars)}
        ops: List[object] = []
        for factor_name in site.factor_names:
            factor = graph.factor(factor_name)
            make_op = _ANCHOR_FREE_OPS.get(type(factor))
            if make_op is None or not factor.anchor_free:
                return None
            slots = np.array([local_of[v] for v in factor.variables], dtype=np.intp)
            ops.append(make_op(slots))
        missing = [v for v in site_vars if v not in slot_of]
        if missing:
            raise ValueError(f"site {site.name!r} uses variables outside the graph: {missing}")
        compiled_sites.append(
            CompiledSite(
                name=site.name,
                variables=tuple(site_vars),
                index=np.array([slot_of[v] for v in site_vars], dtype=np.intp),
                ops=tuple(ops),
            )
        )
    return CompiledGraph(variables=ordering, sites=tuple(compiled_sites))


# -- execution ----------------------------------------------------------------


@dataclass
class CompiledEPResult:
    """Batched outcome of a kernel run (leading axis = record)."""

    variables: Tuple[str, ...]
    posterior_precision: np.ndarray  # (B, n, n)
    posterior_shift: np.ndarray  # (B, n)
    means: np.ndarray  # (B, n)
    variances: np.ndarray  # (B, n)
    iterations: np.ndarray  # (B,)
    converged: np.ndarray  # (B,)
    max_delta: np.ndarray  # (B,)

    def __len__(self) -> int:
        return self.means.shape[0]

    def mean_dict(self, record: int = 0) -> Dict[str, float]:
        return {name: float(v) for name, v in zip(self.variables, self.means[record])}

    def variance_dict(self, record: int = 0) -> Dict[str, float]:
        return {name: float(v) for name, v in zip(self.variables, self.variances[record])}

    def posterior(self, record: int = 0) -> GaussianDensity:
        return GaussianDensity(
            self.variables,
            self.posterior_precision[record],
            self.posterior_shift[record],
        )


@register_estimator(
    "analytic",
    compiled_path=True,
    default_adapt=False,
    megabatch=True,
    description="exact Gaussian tilted-moment projections on the compiled kernel",
)
class CompiledEPKernel:
    """Vectorized analytic-EP executor over one compiled graph structure.

    One kernel serves any number of records sharing the structure; a call
    with ``B`` bindings solves all of them in a single vectorized pass.
    """

    def __init__(
        self,
        structure: CompiledGraph,
        *,
        damping: float = 0.5,
        max_iterations: int = 25,
        tolerance: float = 1e-6,
    ) -> None:
        if not 0.0 < damping <= 1.0:
            raise ValueError("damping must lie in (0, 1]")
        if max_iterations < 1:
            raise ValueError("max_iterations must be at least 1")
        self.structure = structure
        self.damping = damping
        self.max_iterations = max_iterations
        self.tolerance = tolerance
        n = len(structure.variables)
        self._jitter = 1e-12 * np.eye(n)
        self._site_eyes = [np.eye(site.width) for site in structure.sites]

    # -- site targets -----------------------------------------------------

    def _repaired_targets(
        self,
        stacked: Sequence[Tuple[np.ndarray, np.ndarray]],
        certified_sites: Sequence[int] = (),
        repair_groups: Optional[Sequence[np.ndarray]] = None,
    ) -> List[Tuple[np.ndarray, np.ndarray]]:
        """PD-repair every site's factor-block precision (Cholesky first).

        Reproduces ``_safe_divide``: when the (symmetrised) precision has a
        non-positive eigenvalue, add ``(|lambda_min| + 1e-9) I``.  A
        successful Cholesky factorisation certifies PD without the
        eigendecomposition; on failure the eigenvalue repair runs per
        record, so mixed batches behave exactly like the reference.

        ``certified_sites`` names site indices whose blocks the caller has
        already certified PD-on-the-populated-lanes (the mega-batch path's
        padded observation site: a diagonal block whose measured lanes are
        strictly positive and whose padded lanes are exactly zero).  Such a
        block would fail the full-width Cholesky probe even though every
        populated lane is fine, and the eigenvalue repair would bump *all*
        lanes — so certified sites pass through untouched, exactly as the
        per-signature (unpadded) stack would have.

        ``repair_groups`` partitions the batch axis into the record-index
        groups that would each have been one ``run_stacked`` call on their
        own (the mega-batch path's merged signature groups).  The probe is
        all-or-nothing *per call*: one failing record sends every record in
        its call through the eigenvalue repair, and the repair can bump a
        Cholesky-healthy record whose smallest eigenvalue rounds to ``<= 0``.
        Repair outcomes therefore depend on how records are grouped into
        calls — so a merged batch must re-run the probe at the original
        group granularity to stay bit-identical to the per-signature calls
        it replaces.  A full-batch Cholesky success short-circuits (every
        subset of a PD stack is PD); only on failure does the per-group
        probe run.
        """
        certified = frozenset(certified_sites)
        repaired: List[Tuple[np.ndarray, np.ndarray]] = []
        for k, (precision, shift) in enumerate(stacked):
            if k in certified:
                repaired.append((precision, shift))
                continue
            try:
                np.linalg.cholesky(precision)
                repaired.append((precision, shift))
                continue
            except np.linalg.LinAlgError:
                pass
            if repair_groups is None:
                symmetric = 0.5 * (precision + np.swapaxes(precision, -1, -2))
                smallest = np.linalg.eigvalsh(symmetric)[..., 0]
                bump = np.where(smallest <= 0, np.abs(smallest) + 1e-9, 0.0)
                repaired.append(
                    (precision + bump[:, None, None] * self._site_eyes[k], shift)
                )
                continue
            out = precision.copy()
            failing: List[np.ndarray] = []
            for rows in repair_groups:
                try:
                    np.linalg.cholesky(precision[rows])
                except np.linalg.LinAlgError:
                    failing.append(rows)
            if failing:
                # One batched eigendecomposition over every failing group:
                # the gufunc factorises each matrix independently, so this
                # is bit-identical to repairing group by group.
                rows = np.concatenate(failing)
                block = precision[rows]
                symmetric = 0.5 * (block + np.swapaxes(block, -1, -2))
                smallest = np.linalg.eigvalsh(symmetric)[..., 0]
                bump = np.where(smallest <= 0, np.abs(smallest) + 1e-9, 0.0)
                out[rows] = block + bump[:, None, None] * self._site_eyes[k]
            repaired.append((out, shift))
        return repaired

    # -- main entry points -------------------------------------------------

    def run(
        self,
        bindings: Sequence[Tuple[Tuple[np.ndarray, np.ndarray], ...]],
        priors: Sequence[GaussianDensity],
    ) -> CompiledEPResult:
        """Solve a batch of records sharing this kernel's graph structure.

        ``bindings[b]`` is :meth:`CompiledGraph.bind` output for record
        ``b``; ``priors[b]`` is that record's proper Gaussian prior over the
        structure's variables (identical ordering required).
        """
        batch = len(bindings)
        if batch == 0 or len(priors) != batch:
            raise ValueError("run() needs one prior per binding (and at least one)")
        variables = self.structure.variables
        for prior in priors:
            if prior.variables != variables:
                raise ValueError("prior variables must match the compiled ordering")
        stacked = [
            (
                np.stack([bindings[b][k][0] for b in range(batch)]),
                np.stack([bindings[b][k][1] for b in range(batch)]),
            )
            for k in range(len(self.structure.sites))
        ]
        return self.run_stacked(
            stacked,
            np.stack([prior.precision for prior in priors]),
            np.stack([prior.shift for prior in priors]),
        )

    def run_stacked(
        self,
        stacked: Sequence[Tuple[np.ndarray, np.ndarray]],
        prior_precision: np.ndarray,
        prior_shift: np.ndarray,
        certified_sites: Sequence[int] = (),
        site_index_overrides: Optional[Mapping[int, np.ndarray]] = None,
        repair_groups: Optional[Sequence[np.ndarray]] = None,
    ) -> CompiledEPResult:
        """Solve a batch given already-stacked site blocks and priors.

        ``stacked[k]`` is one ``((B, w, w), (B, w))`` pair per compiled site
        (the :meth:`CompiledBinder.bind_batch` output); ``prior_precision``
        and ``prior_shift`` are the ``(B, n, n)`` / ``(B, n)`` proper
        Gaussian priors in the structure's variable ordering.  This is the
        array-native hot entry — :meth:`run` is the object-level wrapper.
        ``certified_sites`` is forwarded to the PD repair (see
        :meth:`_repaired_targets`); padded mega-batch observation sites use
        it to keep padded lanes exact no-ops.

        ``site_index_overrides`` maps a site position to a per-record
        ``(B, w)`` global-slot table replacing that site's compiled
        ``index`` — the mega-batch path's bucketed observation site, where
        each record scatters its own measured lanes.  Every record's slots
        must be distinct (the scatter uses buffered fancy indexing); the
        block width ``w`` may differ from the compiled site's width, since
        a certified overridden site touches no other per-site structure.
        ``repair_groups`` makes the PD repair probe at the original
        per-signature call granularity (see :meth:`_repaired_targets`).
        """
        sites = self.structure.sites
        if len(stacked) != len(sites):
            raise ValueError(
                f"run_stacked expects {len(sites)} site blocks, got {len(stacked)}"
            )
        batch = prior_shift.shape[0]
        variables = self.structure.variables
        overrides: Mapping[int, np.ndarray] = site_index_overrides or {}

        # PD-repair the site targets once: anchor-free factors make the site
        # target iteration-invariant (see module docstring).
        targets = self._repaired_targets(stacked, certified_sites, repair_groups)

        # Preallocated state buffers.
        global_precision = prior_precision.copy()
        global_shift = prior_shift.copy()
        site_precision = [np.zeros_like(t[0]) for t in targets]
        site_shift = [np.zeros_like(t[1]) for t in targets]

        eta = self.damping
        active = np.ones(batch, dtype=bool)
        converged = np.zeros(batch, dtype=bool)
        iterations = np.zeros(batch, dtype=np.intp)
        max_delta = np.full(batch, np.inf)

        # Hoist the per-record scatter indices for overridden sites: they
        # are iteration-invariant, and broadcasting them once keeps the
        # inner loop allocation-free on the index side.
        override_index = {
            k: (
                np.arange(batch)[:, None, None],
                table[:, :, None],
                table[:, None, :],
            )
            for k, table in overrides.items()
        }

        for iteration in range(1, self.max_iterations + 1):
            iteration_delta = np.zeros(batch)
            for k, site in enumerate(sites):
                old_precision, old_shift = site_precision[k], site_shift[k]
                target_precision, target_shift = targets[k]
                damped_precision = (1 - eta) * old_precision + eta * target_precision
                damped_shift = (1 - eta) * old_shift + eta * target_shift

                # Reference _natural_parameter_delta, element-wise over B.
                old_pmax = np.abs(old_precision).max(axis=(-2, -1))
                new_pmax = np.abs(damped_precision).max(axis=(-2, -1))
                scale_p = np.maximum(np.maximum(old_pmax, new_pmax), 1.0)
                delta_p = np.abs(old_precision - damped_precision).max(axis=(-2, -1)) / scale_p
                old_smax = np.abs(old_shift).max(axis=-1)
                new_smax = np.abs(damped_shift).max(axis=-1)
                scale_s = np.maximum(np.maximum(old_smax, new_smax), 1.0)
                delta_s = np.abs(old_shift - damped_shift).max(axis=-1) / scale_s
                iteration_delta = np.maximum(iteration_delta, np.maximum(delta_p, delta_s))

                # Scatter-add the masked update into the site and global
                # buffers (records that already converged stay frozen, as
                # the reference's break does).
                diff_precision = np.where(
                    active[:, None, None], damped_precision - old_precision, 0.0
                )
                diff_shift = np.where(active[:, None], damped_shift - old_shift, 0.0)
                site_precision[k] = old_precision + diff_precision
                site_shift[k] = old_shift + diff_shift
                override = overrides.get(k)
                if override is None:
                    rows = site.index[:, None]
                    cols = site.index[None, :]
                    global_precision[:, rows, cols] += diff_precision
                    global_shift[:, site.index] += diff_shift
                else:
                    # Per-record slot tables: each record's block scatters
                    # onto its own global entries.  Slots are distinct
                    # within every record, so the buffered ``+=`` loses no
                    # contribution.
                    records, table_rows, table_cols = override_index[k]
                    global_precision[records, table_rows, table_cols] += diff_precision
                    global_shift[records[:, :, 0], override] += diff_shift

            iterations = np.where(active, iteration, iterations)
            max_delta = np.where(active, iteration_delta, max_delta)
            newly_converged = active & (iteration_delta < self.tolerance)
            converged |= newly_converged
            active &= ~newly_converged
            if not active.any():
                break

        means, variances = self.read_out(global_precision, global_shift)
        return CompiledEPResult(
            variables=variables,
            posterior_precision=global_precision,
            posterior_shift=global_shift,
            means=means,
            variances=variances,
            iterations=iterations,
            converged=converged,
            max_delta=max_delta,
        )

    def assemble_global(
        self,
        stacked: Sequence[Tuple[np.ndarray, np.ndarray]],
        prior_precision: np.ndarray,
        prior_shift: np.ndarray,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Scatter-add raw site blocks into global natural parameters.

        Returns the information form of ``prior x product(site factors)``
        for the whole batch — the *exact* Gaussian part of each record's
        density (no PD repair, no damping).  The batched MCMC estimator
        targets this density and uses :meth:`read_out` of the same buffers
        as its control-variate baseline.
        """
        precision = prior_precision.copy()
        shift = prior_shift.copy()
        for site, (block_precision, block_shift) in zip(self.structure.sites, stacked):
            rows = site.index[:, None]
            cols = site.index[None, :]
            precision[:, rows, cols] += block_precision
            shift[:, site.index] += block_shift
        return precision, shift

    def read_out(
        self, precision: np.ndarray, shift: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Posterior means and marginal variances for the whole batch."""
        jittered = precision + self._jitter
        try:
            return cholesky_mean_and_variance(jittered, shift)
        except np.linalg.LinAlgError:
            pass
        # Rare: some record's posterior is not PD.  Solve per record so the
        # healthy ones still take the (bit-identical) Cholesky route.
        batch, n = shift.shape
        means = np.empty((batch, n))
        variances = np.empty((batch, n))
        for b in range(batch):
            try:
                means[b], variances[b] = cholesky_mean_and_variance(jittered[b], shift[b])
            except np.linalg.LinAlgError:
                cov = np.linalg.inv(jittered[b])
                cov = 0.5 * (cov + cov.T)
                means[b] = cov @ shift[b]
                variances[b] = np.diag(cov)
        return means, variances
