"""Point estimates and credible intervals from Gaussian posteriors.

The BayesPerf system reports the maximum-likelihood value of each event under
its posterior (§6.2 uses an MLE when comparing against polling traces) plus an
uncertainty interval derived from the posterior spread.
"""

from __future__ import annotations

import math
from typing import Dict, Mapping, Tuple

from scipy import stats

from repro.fg.gaussian import GaussianDensity


def map_estimate(posterior: GaussianDensity) -> Dict[str, float]:
    """Posterior mode of every variable (equal to the mean for a Gaussian)."""
    return posterior.mean()


def posterior_std(posterior: GaussianDensity) -> Dict[str, float]:
    """Posterior standard deviation of every variable."""
    return {name: math.sqrt(var) for name, var in posterior.variance().items()}


def credible_interval(
    posterior: GaussianDensity, variable: str, confidence: float = 0.95
) -> Tuple[float, float]:
    """Symmetric credible interval for one variable."""
    if not 0.0 < confidence < 1.0:
        raise ValueError("confidence must lie in (0, 1)")
    mean = posterior.mean()[variable]
    std = math.sqrt(posterior.variance()[variable])
    half = stats.norm.ppf(0.5 + confidence / 2.0) * std
    return (mean - half, mean + half)


def credible_intervals(
    posterior: GaussianDensity, confidence: float = 0.95
) -> Dict[str, Tuple[float, float]]:
    """Credible intervals for every variable in the posterior."""
    if not 0.0 < confidence < 1.0:
        raise ValueError("confidence must lie in (0, 1)")
    means = posterior.mean()
    variances = posterior.variance()
    z = stats.norm.ppf(0.5 + confidence / 2.0)
    out: Dict[str, Tuple[float, float]] = {}
    for name, mean in means.items():
        half = z * math.sqrt(variances[name])
        out[name] = (mean - half, mean + half)
    return out


def coefficient_of_variation(posterior: GaussianDensity) -> Dict[str, float]:
    """Posterior relative uncertainty (std / |mean|) per variable."""
    means = posterior.mean()
    variances = posterior.variance()
    out: Dict[str, float] = {}
    for name, mean in means.items():
        denom = max(abs(mean), 1e-12)
        out[name] = math.sqrt(variances[name]) / denom
    return out
