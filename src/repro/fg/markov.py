"""Markov-blanket queries on factor graphs.

The scheduler (§4.1) decides whether two consecutive counter configurations
are statistically connected by testing whether the Markov blankets of their
event sets overlap.
"""

from __future__ import annotations

from typing import Iterable, Set, Tuple

from repro.fg.graph import FactorGraph


def markov_blanket(graph: FactorGraph, variable: str) -> Tuple[str, ...]:
    """Variables rendering *variable* conditionally independent of the rest.

    In a factor graph the Markov blanket of a variable is the set of other
    variables sharing at least one factor with it.
    """
    return graph.neighbors(variable)


def markov_blanket_of_set(graph: FactorGraph, variables: Iterable[str]) -> Tuple[str, ...]:
    """Union of Markov blankets of a set of variables, minus the set itself."""
    variables = [v for v in variables if graph.has_variable(v)]
    requested: Set[str] = set(variables)
    blanket: Set[str] = set()
    for variable in variables:
        blanket.update(graph.neighbors(variable))
    return tuple(sorted(blanket - requested))


def blankets_overlap(graph: FactorGraph, first: Iterable[str], second: Iterable[str]) -> bool:
    """Whether two event sets are statistically connected (§4.1).

    The sets are connected when they share an event directly, or when the
    closure of one set (the set plus its Markov blanket) intersects the
    closure of the other.
    """
    first = [v for v in first if graph.has_variable(v)]
    second = [v for v in second if graph.has_variable(v)]
    first_set = set(first)
    second_set = set(second)
    if first_set & second_set:
        return True
    first_closure = first_set | set(markov_blanket_of_set(graph, first))
    second_closure = second_set | set(markov_blanket_of_set(graph, second))
    return bool(first_closure & second_closure)
