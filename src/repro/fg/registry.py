"""Moment-estimator registry: one catalogue for every tilted-moment engine.

Historically each front door (``BayesPerfEngine``, ``PerfSession``,
``FleetService``, the fleet CLI) carried its own copy of the
``moment_estimator`` string table and its own validation message, so adding
an estimator meant touching all of them.  The registry inverts that: the
estimator implementations in :mod:`repro.fg.mcmc` / :mod:`repro.fg.compiled`
self-register under their public names with :func:`register_estimator`, their
object-walking twins attach with :func:`register_reference`, and every layer
— engine validation and dispatch, spec resolution in :mod:`repro.api`, the
``--estimator`` CLI flag — resolves names through :func:`get_estimator`.

An entry records everything the engine needs to wire an estimator in:

* ``batched`` — the array-native implementation driven on the compiled
  kernel's buffers (``None`` for the analytic estimator, which *is* the
  kernel);
* ``reference`` — the object-walking differential twin selected by
  ``use_compiled_kernel=False``;
* ``compiled_path`` — whether the estimator solves through the compiled
  kernel's array path at all;
* ``default_adapt`` — the estimator's default for burn-in proposal-scale
  adaptation (see ``BayesPerfEngine.mcmc_adapt``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

__all__ = [
    "EstimatorEntry",
    "baseline_names",
    "engine_estimator_names",
    "estimator_names",
    "get_estimator",
    "register_estimator",
    "register_reference",
]


@dataclass
class EstimatorEntry:
    """One registered moment estimator and its differential pairing."""

    name: str
    #: Solves through the compiled kernel's array path (vs. reference-only).
    compiled_path: bool = True
    #: Default for burn-in proposal-scale adaptation when the engine's
    #: ``mcmc_adapt`` is left unset.
    default_adapt: bool = False
    #: Supports cross-signature mega-batched solves
    #: (:mod:`repro.fg.megabatch`): the estimator's batched path is a pure
    #: function of the stacked site arrays, so padded no-op lanes embed a
    #: heterogeneous round into one canonical kernel call.
    megabatch: bool = False
    #: A baseline *correction method* (:mod:`repro.baselines`), not a tilted
    #: moment engine: it consumes a whole ``SampledTrace`` through
    #: ``.correct()`` instead of solving sites on the kernel.  Baseline
    #: entries are listed alongside estimators (one registry, one front
    #: door) but are rejected by ``EstimatorSpec`` — they run through the
    #: scenario-grid comparison (``RunSpec.baselines``).
    baseline: bool = False
    description: str = ""
    #: Array-native implementation class (``None`` for the analytic
    #: estimator, whose batched path is the compiled kernel itself).
    batched: Optional[type] = None
    #: Object-walking reference twin (``use_compiled_kernel=False``).
    reference: Optional[type] = None


_ESTIMATORS: Dict[str, EstimatorEntry] = {}


def register_estimator(
    name: str,
    *,
    compiled_path: bool = True,
    default_adapt: bool = False,
    megabatch: bool = False,
    baseline: bool = False,
    description: str = "",
):
    """Class decorator registering *name* with the decorated implementation.

    The decorated class becomes the entry's ``batched`` implementation (the
    analytic estimator registers its compiled kernel; a ``baseline=True``
    entry registers its :class:`repro.baselines.CorrectionMethod`).
    Re-registering a name replaces the implementation but keeps any attached
    reference twin, so decoration order between a sampler and its twin does
    not matter.
    """

    def decorate(cls: type) -> type:
        entry = _ESTIMATORS.get(name)
        if entry is None:
            entry = EstimatorEntry(name=name)
            _ESTIMATORS[name] = entry
        entry.compiled_path = compiled_path
        entry.default_adapt = default_adapt
        entry.megabatch = megabatch
        entry.baseline = baseline
        entry.description = description
        entry.batched = cls
        return cls

    return decorate


def register_reference(name: str):
    """Class decorator attaching the decorated class as *name*'s twin."""

    def decorate(cls: type) -> type:
        entry = _ESTIMATORS.get(name)
        if entry is None:
            entry = EstimatorEntry(name=name)
            _ESTIMATORS[name] = entry
        entry.reference = cls
        return cls

    return decorate


def estimator_names() -> Tuple[str, ...]:
    """All registered names (engines *and* baselines), sorted for stable listings."""
    return tuple(sorted(_ESTIMATORS))


def engine_estimator_names() -> Tuple[str, ...]:
    """Names that can drive the engine (``moment_estimator`` candidates)."""
    return tuple(sorted(name for name, entry in _ESTIMATORS.items() if not entry.baseline))


def baseline_names() -> Tuple[str, ...]:
    """Registered baseline correction methods (scenario-grid comparators)."""
    return tuple(sorted(name for name, entry in _ESTIMATORS.items() if entry.baseline))


def get_estimator(name: str) -> EstimatorEntry:
    """Look up a registered estimator; unknown names raise with the list."""
    try:
        return _ESTIMATORS[name]
    except KeyError:
        raise ValueError(
            f"unknown moment estimator {name!r}; "
            f"registered estimators: {', '.join(estimator_names())}"
        ) from None
