"""Multivariate Gaussian densities in information (natural-parameter) form.

EP's site approximations, cavity distributions and the global approximation
are all Gaussians over a named set of variables.  The information form
(precision matrix ``L`` and shift vector ``h``, with density proportional to
``exp(-0.5 x'Lx + h'x)``) makes products and quotients additive, which is
exactly what Alg. 1 needs.
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.fg.linalg import cholesky_inverse, cholesky_moments


class GaussianDensity:
    """A (possibly improper) multivariate Gaussian over named variables."""

    def __init__(self, variables: Sequence[str], precision: np.ndarray, shift: np.ndarray) -> None:
        self.variables: Tuple[str, ...] = tuple(variables)
        n = len(self.variables)
        precision = np.asarray(precision, dtype=float)
        shift = np.asarray(shift, dtype=float).reshape(-1)
        if precision.shape != (n, n):
            raise ValueError(f"precision must be {n}x{n}, got {precision.shape}")
        if shift.shape != (n,):
            raise ValueError(f"shift must have length {n}, got {shift.shape}")
        self.precision = precision
        self.shift = shift
        self._index: Dict[str, int] = {name: i for i, name in enumerate(self.variables)}
        if len(self._index) != n:
            raise ValueError("duplicate variable names")

    # -- constructors ----------------------------------------------------

    @classmethod
    def uninformative(cls, variables: Sequence[str]) -> "GaussianDensity":
        """A flat (zero-precision) density over the variables."""
        n = len(tuple(variables))
        return cls(variables, np.zeros((n, n)), np.zeros(n))

    @classmethod
    def from_moments(
        cls, variables: Sequence[str], mean: np.ndarray, cov: np.ndarray, *, jitter: float = 0.0
    ) -> "GaussianDensity":
        """Build from mean vector and covariance matrix."""
        variables = tuple(variables)
        mean = np.asarray(mean, dtype=float).reshape(-1)
        cov = np.asarray(cov, dtype=float)
        n = len(variables)
        if mean.shape != (n,) or cov.shape != (n, n):
            raise ValueError("mean/cov shapes do not match the variable list")
        if jitter:
            cov = cov + jitter * np.eye(n)
        precision = np.linalg.inv(cov)
        precision = 0.5 * (precision + precision.T)
        shift = precision @ mean
        return cls(variables, precision, shift)

    @classmethod
    def diagonal(cls, means: Mapping[str, float], variances: Mapping[str, float]) -> "GaussianDensity":
        """Independent Gaussian over the keys of *means*."""
        variables = tuple(means)
        prec = np.zeros((len(variables), len(variables)))
        shift = np.zeros(len(variables))
        for i, name in enumerate(variables):
            var = float(variances[name])
            if var <= 0:
                raise ValueError(f"variance for {name!r} must be positive")
            prec[i, i] = 1.0 / var
            shift[i] = means[name] / var
        return cls(variables, prec, shift)

    # -- basic properties -------------------------------------------------

    def __len__(self) -> int:
        return len(self.variables)

    def index_of(self, name: str) -> int:
        return self._index[name]

    @property
    def is_proper(self) -> bool:
        """Whether the precision matrix is positive definite."""
        try:
            np.linalg.cholesky(self.precision + 0.0)
        except np.linalg.LinAlgError:
            return False
        return True

    def copy(self) -> "GaussianDensity":
        return GaussianDensity(self.variables, self.precision.copy(), self.shift.copy())

    # -- moments -----------------------------------------------------------

    def moments(self, *, jitter: float = 1e-12) -> Tuple[np.ndarray, np.ndarray]:
        """Return (mean, covariance).  Raises if the density is improper."""
        n = len(self.variables)
        precision = self.precision + jitter * np.eye(n)
        try:
            # Cholesky solve: one factorisation, PD check included, and the
            # covariance comes out exactly symmetric.
            return cholesky_moments(precision, self.shift)
        except np.linalg.LinAlgError:
            pass
        # Not positive definite.  EP cavities are occasionally indefinite yet
        # invertible; keep the historical LU route for them and only raise
        # when the precision is outright singular.
        try:
            cov = np.linalg.inv(precision)
        except np.linalg.LinAlgError as exc:
            raise ValueError("cannot compute moments of an improper Gaussian") from exc
        cov = 0.5 * (cov + cov.T)
        mean = cov @ self.shift
        return mean, cov

    def mean(self) -> Dict[str, float]:
        """Mean of every variable as a dictionary."""
        mean, _ = self.moments()
        return {name: float(mean[i]) for i, name in enumerate(self.variables)}

    def variance(self) -> Dict[str, float]:
        """Marginal variance of every variable as a dictionary."""
        _, cov = self.moments()
        return {name: float(cov[i, i]) for i, name in enumerate(self.variables)}

    def marginal(self, names: Sequence[str]) -> "GaussianDensity":
        """Marginal density over a subset of variables (by moment projection)."""
        names = tuple(names)
        mean, cov = self.moments()
        idx = [self._index[name] for name in names]
        sub_mean = mean[idx]
        sub_cov = cov[np.ix_(idx, idx)] + 1e-12 * np.eye(len(idx))
        # Back to information form directly from the projected moments —
        # one d x d inversion instead of from_moments' validate/jitter/invert
        # round trip on data we just computed.
        try:
            sub_precision = cholesky_inverse(sub_cov)
        except np.linalg.LinAlgError:
            sub_precision = np.linalg.inv(sub_cov)
            sub_precision = 0.5 * (sub_precision + sub_precision.T)
        return GaussianDensity(names, sub_precision, sub_precision @ sub_mean)

    # -- algebra in information form ---------------------------------------

    def _aligned(self, other: "GaussianDensity") -> Tuple[np.ndarray, np.ndarray]:
        """Other's parameters embedded into this density's variable ordering."""
        prec = np.zeros_like(self.precision)
        shift = np.zeros_like(self.shift)
        idx = [self._index[name] for name in other.variables]
        prec[np.ix_(idx, idx)] = other.precision
        shift[idx] = other.shift
        return prec, shift

    def multiply(self, other: "GaussianDensity") -> "GaussianDensity":
        """Product of densities; *other* may be defined on a variable subset."""
        if not set(other.variables) <= set(self.variables):
            raise ValueError("multiply requires other's variables to be a subset")
        prec, shift = self._aligned(other)
        return GaussianDensity(self.variables, self.precision + prec, self.shift + shift)

    def divide(self, other: "GaussianDensity") -> "GaussianDensity":
        """Quotient of densities; the result may be improper (EP cavity)."""
        if not set(other.variables) <= set(self.variables):
            raise ValueError("divide requires other's variables to be a subset")
        prec, shift = self._aligned(other)
        return GaussianDensity(self.variables, self.precision - prec, self.shift - shift)

    def damped_towards(self, target: "GaussianDensity", damping: float) -> "GaussianDensity":
        """Convex combination in natural parameters (EP damping)."""
        if not 0.0 <= damping <= 1.0:
            raise ValueError("damping must be within [0, 1]")
        if target.variables != self.variables:
            raise ValueError("damped_towards requires identical variable ordering")
        precision = (1 - damping) * self.precision + damping * target.precision
        shift = (1 - damping) * self.shift + damping * target.shift
        return GaussianDensity(self.variables, precision, shift)

    def log_density(self, values: Mapping[str, float]) -> float:
        """Unnormalised log density at the given point."""
        x = np.array([float(values[name]) for name in self.variables])
        return float(-0.5 * x @ self.precision @ x + self.shift @ x)

    def regularized(self, epsilon: float) -> "GaussianDensity":
        """Add ``epsilon`` to the diagonal of the precision (ridge)."""
        return GaussianDensity(
            self.variables, self.precision + epsilon * np.eye(len(self.variables)), self.shift
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"GaussianDensity(n={len(self.variables)})"
