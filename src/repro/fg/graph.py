"""Bipartite factor graph over event variables.

The graph ``G = (E ∪ {Pr_1..Pr_n}, {(e, Pr_i) | e ∈ S_i})`` of §4.1: variable
nodes are event names, factor nodes are the joint/conditional distributions
derived from microarchitectural invariants and from observations.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

import networkx as nx

from repro.fg.factors import Factor
from repro.fg.gaussian import GaussianDensity


class FactorGraph:
    """A collection of named variables and the factors connecting them."""

    def __init__(self, variables: Optional[Iterable[str]] = None) -> None:
        self._variables: List[str] = []
        self._variable_set: Set[str] = set()
        self._factors: Dict[str, Factor] = {}
        self._factors_of_variable: Dict[str, List[str]] = {}
        if variables is not None:
            for name in variables:
                self.add_variable(name)

    # -- construction ------------------------------------------------------

    def add_variable(self, name: str) -> None:
        """Register a variable node (idempotent)."""
        if not name:
            raise ValueError("variable name must be non-empty")
        if name not in self._variable_set:
            self._variable_set.add(name)
            self._variables.append(name)
            self._factors_of_variable[name] = []

    def add_factor(self, factor: Factor) -> None:
        """Register a factor node; unknown variables are added automatically."""
        if factor.name in self._factors:
            raise ValueError(f"duplicate factor {factor.name!r}")
        for variable in factor.variables:
            self.add_variable(variable)
        self._factors[factor.name] = factor
        for variable in factor.variables:
            self._factors_of_variable[variable].append(factor.name)

    # -- queries -----------------------------------------------------------

    @property
    def variables(self) -> Tuple[str, ...]:
        return tuple(self._variables)

    @property
    def factors(self) -> Tuple[Factor, ...]:
        return tuple(self._factors.values())

    def factor(self, name: str) -> Factor:
        try:
            return self._factors[name]
        except KeyError:
            raise KeyError(f"unknown factor {name!r}") from None

    def has_variable(self, name: str) -> bool:
        return name in self._variable_set

    def factors_of(self, variable: str) -> Tuple[Factor, ...]:
        """All factors adjacent to *variable*."""
        if variable not in self._variable_set:
            raise KeyError(f"unknown variable {variable!r}")
        return tuple(self._factors[name] for name in self._factors_of_variable[variable])

    def neighbors(self, variable: str) -> Tuple[str, ...]:
        """Variables sharing at least one factor with *variable* (excluding it)."""
        seen: Set[str] = set()
        ordered: List[str] = []
        for factor in self.factors_of(variable):
            for other in factor.variables:
                if other != variable and other not in seen:
                    seen.add(other)
                    ordered.append(other)
        return tuple(ordered)

    def degree(self, variable: str) -> int:
        """Number of factors adjacent to *variable*."""
        return len(self.factors_of(variable))

    def connected_components(self) -> Tuple[Tuple[str, ...], ...]:
        """Variable connected components induced by shared factors."""
        graph = self.to_networkx()
        components = []
        for component in nx.connected_components(graph):
            variables = tuple(sorted(n for n in component if graph.nodes[n]["bipartite"] == 0))
            if variables:
                components.append(variables)
        return tuple(sorted(components))

    # -- densities -----------------------------------------------------------

    def log_density(self, values: Mapping[str, float]) -> float:
        """Sum of all factor log potentials at the given assignment."""
        return float(sum(factor.log_density(values) for factor in self._factors.values()))

    def log_density_of(self, factor_names: Sequence[str], values: Mapping[str, float]) -> float:
        """Sum of the listed factors' log potentials."""
        return float(sum(self._factors[name].log_density(values) for name in factor_names))

    def gaussian_projection(
        self, anchor: Optional[Mapping[str, float]] = None
    ) -> GaussianDensity:
        """Product of every factor's Gaussian projection over all variables."""
        density = GaussianDensity.uninformative(self.variables)
        for factor in self._factors.values():
            density = density.multiply(factor.to_gaussian(anchor))
        return density

    # -- export -----------------------------------------------------------

    def to_networkx(self) -> nx.Graph:
        """Bipartite networkx graph (variables have ``bipartite=0``)."""
        graph = nx.Graph()
        for variable in self._variables:
            graph.add_node(variable, bipartite=0, kind="variable")
        for factor in self._factors.values():
            node = f"factor::{factor.name}"
            graph.add_node(node, bipartite=1, kind="factor")
            for variable in factor.variables:
                graph.add_edge(variable, node)
        return graph

    def subgraph(self, factor_names: Sequence[str]) -> "FactorGraph":
        """New graph containing only the listed factors (and their variables)."""
        sub = FactorGraph()
        for name in factor_names:
            sub.add_factor(self._factors[name])
        return sub

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"FactorGraph(variables={len(self._variables)}, factors={len(self._factors)})"
