"""Expectation Propagation (Alg. 1 of the paper).

EP approximates the target density ``f(θ) = Π f_k(θ)`` — the factor graph
with its observation and constraint factors partitioned into *sites* — by a
product of Gaussian site approximations ``g(θ) = Π g_k(θ)``.  Each iteration
forms the cavity ``g_-k = g / g_k``, estimates the moments of the tilted
distribution ``f_k · g_-k`` (analytically for Gaussian sites, or by MCMC),
and updates the site approximation and the global approximation.

Sites correspond to scheduler time slices in the BayesPerf system: EP's
partition-friendliness is precisely why the paper chose it (§4.3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.fg.factors import Factor
from repro.fg.gaussian import GaussianDensity
from repro.fg.graph import FactorGraph
from repro.fg.mcmc import RandomWalkMetropolis


@dataclass
class EPSite:
    """One EP site: a named partition of the graph's factors."""

    name: str
    factor_names: Tuple[str, ...]

    def __post_init__(self) -> None:
        if not self.factor_names:
            raise ValueError(f"EP site {self.name!r} must contain at least one factor")


@dataclass
class EPResult:
    """Outcome of an EP run."""

    posterior: GaussianDensity
    iterations: int
    converged: bool
    site_approximations: Dict[str, GaussianDensity] = field(default_factory=dict)
    max_delta: float = float("nan")

    def mean(self) -> Dict[str, float]:
        return self.posterior.mean()

    def variance(self) -> Dict[str, float]:
        return self.posterior.variance()


class ExpectationPropagation:
    """EP over a factor graph with a Gaussian approximating family.

    Parameters
    ----------
    graph:
        The factor graph holding observation, constraint and prior factors.
    sites:
        Partition of (a subset of) the graph's factors into EP sites.  Factors
        not covered by any site are treated as part of the prior if they are
        Gaussian-projectable.
    prior:
        Proper Gaussian base density over every graph variable.  In the
        BayesPerf engine this carries the previous time slice's posterior.
    moment_estimator:
        ``"analytic"`` (Gaussian projection of the site factors — exact for
        linear-Gaussian sites) or ``"mcmc"`` (random-walk Metropolis moment
        estimation, the paper's accelerator workload).
    damping:
        Damping coefficient applied to site updates (1.0 = undamped).
    max_iterations, tolerance:
        Convergence controls on the change in site natural parameters.
    mcmc_samples, mcmc_burn_in:
        Sampling effort per site when using the MCMC estimator.
    rng:
        Random generator used by the MCMC estimator.
    """

    def __init__(
        self,
        graph: FactorGraph,
        sites: Sequence[EPSite],
        prior: GaussianDensity,
        *,
        moment_estimator: str = "analytic",
        damping: float = 0.5,
        max_iterations: int = 25,
        tolerance: float = 1e-6,
        mcmc_samples: int = 400,
        mcmc_burn_in: int = 200,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        if moment_estimator not in ("analytic", "mcmc"):
            raise ValueError(f"unknown moment estimator {moment_estimator!r}")
        if not sites:
            raise ValueError("EP requires at least one site")
        if not 0.0 < damping <= 1.0:
            raise ValueError("damping must lie in (0, 1]")
        self.graph = graph
        self.sites = list(sites)
        self.prior = prior
        self.moment_estimator = moment_estimator
        self.damping = damping
        self.max_iterations = max_iterations
        self.tolerance = tolerance
        self.mcmc_samples = mcmc_samples
        self.mcmc_burn_in = mcmc_burn_in
        self._rng = rng if rng is not None else np.random.default_rng(0)

        covered = set()
        for site in self.sites:
            for name in site.factor_names:
                self.graph.factor(name)  # validates existence
                covered.add(name)
        self._site_variables: Dict[str, Tuple[str, ...]] = {}
        self._site_anchor_free: Dict[str, bool] = {}
        for site in self.sites:
            variables: List[str] = []
            seen = set()
            for factor_name in site.factor_names:
                for variable in self.graph.factor(factor_name).variables:
                    if variable not in seen:
                        seen.add(variable)
                        variables.append(variable)
            self._site_variables[site.name] = tuple(variables)
            self._site_anchor_free[site.name] = all(
                self.graph.factor(name).anchor_free for name in site.factor_names
            )

    # -- moment estimation -------------------------------------------------

    def _analytic_tilted(
        self, site: EPSite, cavity_marginal: GaussianDensity
    ) -> GaussianDensity:
        """Gaussian projection of the tilted distribution (cavity x site factors)."""
        anchor = cavity_marginal.mean()
        tilted = cavity_marginal.copy()
        for factor_name in site.factor_names:
            factor = self.graph.factor(factor_name)
            tilted = tilted.multiply(factor.to_gaussian(anchor))
        return tilted

    def _analytic_site_update(self, site: EPSite) -> GaussianDensity:
        """Exact analytic site update: the product of the site's projections.

        Every factor family projects to a Gaussian independently of the
        linearisation anchor, so the ``tilted = cavity x factors`` /
        ``new_site = tilted / cavity`` round trip cancels algebraically.
        Computing the factor product directly skips the cancellation —
        which matters numerically, not just for speed: with tight
        constraint factors the cavity precision dwarfs the site block, and
        ``(cavity + site) - cavity`` in floating point would smear
        ``eps * |cavity|``-sized noise over the update.  (The MCMC
        estimator keeps the explicit division: its tilted moments really do
        depend on the cavity.)
        """
        product = GaussianDensity.uninformative(self._site_variables[site.name])
        for factor_name in site.factor_names:
            product = product.multiply(self.graph.factor(factor_name).to_gaussian(None))
        return product

    def _mcmc_tilted(self, site: EPSite, cavity_marginal: GaussianDensity) -> GaussianDensity:
        """MCMC moment estimate of the tilted distribution.

        The chain is seeded from the Gaussian projection of the tilted
        distribution (the accelerator similarly reuses previous samples as
        Markov-chain starting points, §5) and its proposal scales follow the
        projected marginal standard deviations, which keeps mixing healthy
        even when a site contains very tight observation factors.
        """
        variables = cavity_marginal.variables
        factor_names = site.factor_names

        def log_density(values: Mapping[str, float]) -> float:
            return cavity_marginal.log_density(values) + self.graph.log_density_of(
                factor_names, values
            )

        seed_density = self._analytic_tilted(site, cavity_marginal)
        seed_mean_map = seed_density.mean()
        seed_variance = seed_density.variance()
        steps = {name: max(np.sqrt(seed_variance[name]) * 0.7, 1e-9) for name in variables}
        sampler = RandomWalkMetropolis(
            log_density,
            variables,
            initial=seed_mean_map,
            step_scales=steps,
            rng=self._rng,
        )
        result = sampler.run(self.mcmc_samples, burn_in=self.mcmc_burn_in)
        sample_mean = np.array([result.mean()[name] for name in variables])
        cov = result.covariance()
        # Blend in a fraction of the projected covariance so the Gaussian
        # projection stays proper even with short chains.
        _, seed_cov = seed_density.moments()
        cov = cov + 0.05 * seed_cov + np.eye(len(variables)) * 1e-9
        return GaussianDensity.from_moments(variables, sample_mean, cov)

    # -- main loop -----------------------------------------------------------

    def run(self) -> EPResult:
        """Execute Alg. 1 and return the Gaussian posterior approximation."""
        variables = self.prior.variables
        site_approx: Dict[str, GaussianDensity] = {
            site.name: GaussianDensity.uninformative(variables) for site in self.sites
        }
        global_approx = self.prior.copy()
        for approx in site_approx.values():
            global_approx = global_approx.multiply(approx)

        converged = False
        max_delta = float("inf")
        iteration = 0
        for iteration in range(1, self.max_iterations + 1):
            max_delta = 0.0
            for site in self.sites:
                current_site = site_approx[site.name]
                site_vars = self._site_variables[site.name]

                if self.moment_estimator == "analytic" and self._site_anchor_free[site.name]:
                    # Anchor-free analytic site: the tilted/cavity division
                    # cancels exactly (see _analytic_site_update); only PD
                    # repair remains of lines 3-6.
                    new_site_marginal = _pd_repaired(self._analytic_site_update(site))
                else:
                    # Cavity distribution: g_-k = g / g_k  (line 3 of Alg. 1).
                    cavity = global_approx.divide(current_site)
                    try:
                        cavity_marginal = cavity.marginal(site_vars)
                    except (ValueError, np.linalg.LinAlgError):
                        # Improper cavity: fall back to the prior's marginal.
                        cavity_marginal = self.prior.marginal(site_vars)
                    # Tilted moments (line 4: MCMC sampling, or the Gaussian
                    # projection anchored at the cavity mean), then the local
                    # update (lines 5-6): new site approx = tilted / cavity.
                    if self.moment_estimator == "mcmc":
                        tilted = self._mcmc_tilted(site, cavity_marginal)
                    else:
                        tilted = self._analytic_tilted(site, cavity_marginal)
                    new_site_marginal = _safe_divide(tilted, cavity_marginal)

                # Embed the site marginal back into the full variable space.
                new_site = _embed(new_site_marginal, variables)
                damped_site = site_approx[site.name].damped_towards(new_site, self.damping)

                delta = _natural_parameter_delta(site_approx[site.name], damped_site)
                max_delta = max(max_delta, delta)

                # Global update (line 7): g <- g * (g_k_new / g_k_old).
                global_approx = global_approx.divide(site_approx[site.name]).multiply(damped_site)
                site_approx[site.name] = damped_site

            if max_delta < self.tolerance:
                converged = True
                break

        return EPResult(
            posterior=global_approx,
            iterations=iteration,
            converged=converged,
            site_approximations=site_approx,
            max_delta=max_delta,
        )


def _safe_divide(numerator: GaussianDensity, denominator: GaussianDensity) -> GaussianDensity:
    """Quotient of two Gaussians that clips non-positive-definite results.

    EP site updates occasionally produce negative precisions (a well-known EP
    artefact); clipping to a tiny positive precision keeps the algorithm
    stable, matching common EP implementations.
    """
    return _pd_repaired(numerator.divide(denominator))


def _pd_repaired(density: GaussianDensity) -> GaussianDensity:
    """Clip a density's precision to positive definiteness (EP site repair).

    A Cholesky factorisation certifies the common PD case at the cost of one
    factorisation; only on failure does the eigendecomposition repair of the
    historical implementation run.
    """
    precision = density.precision
    symmetric = 0.5 * (precision + precision.T)
    try:
        np.linalg.cholesky(symmetric)
        return density
    except np.linalg.LinAlgError:
        pass
    eigenvalues = np.linalg.eigvalsh(symmetric)
    if eigenvalues.min() <= 0:
        precision = precision + (abs(eigenvalues.min()) + 1e-9) * np.eye(len(density.variables))
    return GaussianDensity(density.variables, precision, density.shift)


def _embed(density: GaussianDensity, variables: Sequence[str]) -> GaussianDensity:
    """Embed a density over a variable subset into the full variable space."""
    variables = tuple(variables)
    full = GaussianDensity.uninformative(variables)
    return full.multiply(density)


def _natural_parameter_delta(old: GaussianDensity, new: GaussianDensity) -> float:
    """Largest relative change in natural parameters between two densities."""
    if not len(old.variables):
        return 0.0
    scale_precision = max(np.max(np.abs(old.precision)), np.max(np.abs(new.precision)), 1.0)
    scale_shift = max(np.max(np.abs(old.shift)), np.max(np.abs(new.shift)), 1.0)
    delta_precision = np.max(np.abs(old.precision - new.precision)) / scale_precision
    delta_shift = np.max(np.abs(old.shift - new.shift)) / scale_shift
    return float(max(delta_precision, delta_shift))
