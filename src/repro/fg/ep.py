"""Expectation Propagation (Alg. 1 of the paper).

EP approximates the target density ``f(θ) = Π f_k(θ)`` — the factor graph
with its observation and constraint factors partitioned into *sites* — by a
product of Gaussian site approximations ``g(θ) = Π g_k(θ)``.  Each iteration
forms the cavity ``g_-k = g / g_k``, estimates the moments of the tilted
distribution ``f_k · g_-k`` (analytically for Gaussian sites, or by MCMC),
and updates the site approximation and the global approximation.

Sites correspond to scheduler time slices in the BayesPerf system: EP's
partition-friendliness is precisely why the paper chose it (§4.3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.fg.factors import Factor
from repro.fg.gaussian import GaussianDensity
from repro.fg.graph import FactorGraph
from repro.fg.linalg import cholesky_inverse
from repro.fg.mcmc import (
    _adapted_scales,
    ChainTrace,
    RandomWalkMetropolis,
    SiteMCMCMoments,
)
from repro.fg.registry import register_reference


@dataclass
class EPSite:
    """One EP site: a named partition of the graph's factors."""

    name: str
    factor_names: Tuple[str, ...]

    def __post_init__(self) -> None:
        if not self.factor_names:
            raise ValueError(f"EP site {self.name!r} must contain at least one factor")


@dataclass
class EPResult:
    """Outcome of an EP run."""

    posterior: GaussianDensity
    iterations: int
    converged: bool
    site_approximations: Dict[str, GaussianDensity] = field(default_factory=dict)
    max_delta: float = float("nan")

    def mean(self) -> Dict[str, float]:
        return self.posterior.mean()

    def variance(self) -> Dict[str, float]:
        return self.posterior.variance()


@register_reference("analytic")
class ExpectationPropagation:
    """EP over a factor graph with a Gaussian approximating family.

    Parameters
    ----------
    graph:
        The factor graph holding observation, constraint and prior factors.
    sites:
        Partition of (a subset of) the graph's factors into EP sites.  Factors
        not covered by any site are treated as part of the prior if they are
        Gaussian-projectable.
    prior:
        Proper Gaussian base density over every graph variable.  In the
        BayesPerf engine this carries the previous time slice's posterior.
    moment_estimator:
        ``"analytic"`` (Gaussian projection of the site factors — exact for
        linear-Gaussian sites) or ``"mcmc"`` (random-walk Metropolis moment
        estimation, the paper's accelerator workload).
    damping:
        Damping coefficient applied to site updates (1.0 = undamped).
    max_iterations, tolerance:
        Convergence controls on the change in site natural parameters.
    mcmc_samples, mcmc_burn_in:
        Sampling effort per site when using the MCMC estimator.
    rng:
        Random generator used by the MCMC estimator.
    """

    def __init__(
        self,
        graph: FactorGraph,
        sites: Sequence[EPSite],
        prior: GaussianDensity,
        *,
        moment_estimator: str = "analytic",
        damping: float = 0.5,
        max_iterations: int = 25,
        tolerance: float = 1e-6,
        mcmc_samples: int = 400,
        mcmc_burn_in: int = 200,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        if moment_estimator not in ("analytic", "mcmc"):
            raise ValueError(f"unknown moment estimator {moment_estimator!r}")
        if not sites:
            raise ValueError("EP requires at least one site")
        if not 0.0 < damping <= 1.0:
            raise ValueError("damping must lie in (0, 1]")
        self.graph = graph
        self.sites = list(sites)
        self.prior = prior
        self.moment_estimator = moment_estimator
        self.damping = damping
        self.max_iterations = max_iterations
        self.tolerance = tolerance
        self.mcmc_samples = mcmc_samples
        self.mcmc_burn_in = mcmc_burn_in
        self._rng = rng if rng is not None else np.random.default_rng(0)

        covered = set()
        for site in self.sites:
            for name in site.factor_names:
                self.graph.factor(name)  # validates existence
                covered.add(name)
        self._site_variables: Dict[str, Tuple[str, ...]] = {}
        self._site_anchor_free: Dict[str, bool] = {}
        for site in self.sites:
            variables: List[str] = []
            seen = set()
            for factor_name in site.factor_names:
                for variable in self.graph.factor(factor_name).variables:
                    if variable not in seen:
                        seen.add(variable)
                        variables.append(variable)
            self._site_variables[site.name] = tuple(variables)
            self._site_anchor_free[site.name] = all(
                self.graph.factor(name).anchor_free for name in site.factor_names
            )

    # -- moment estimation -------------------------------------------------

    def _analytic_tilted(
        self, site: EPSite, cavity_marginal: GaussianDensity
    ) -> GaussianDensity:
        """Gaussian projection of the tilted distribution (cavity x site factors)."""
        anchor = cavity_marginal.mean()
        tilted = cavity_marginal.copy()
        for factor_name in site.factor_names:
            factor = self.graph.factor(factor_name)
            tilted = tilted.multiply(factor.to_gaussian(anchor))
        return tilted

    def _analytic_site_update(self, site: EPSite) -> GaussianDensity:
        """Exact analytic site update: the product of the site's projections.

        Every factor family projects to a Gaussian independently of the
        linearisation anchor, so the ``tilted = cavity x factors`` /
        ``new_site = tilted / cavity`` round trip cancels algebraically.
        Computing the factor product directly skips the cancellation —
        which matters numerically, not just for speed: with tight
        constraint factors the cavity precision dwarfs the site block, and
        ``(cavity + site) - cavity`` in floating point would smear
        ``eps * |cavity|``-sized noise over the update.  (The MCMC
        estimator keeps the explicit division: its tilted moments really do
        depend on the cavity.)
        """
        product = GaussianDensity.uninformative(self._site_variables[site.name])
        for factor_name in site.factor_names:
            product = product.multiply(self.graph.factor(factor_name).to_gaussian(None))
        return product

    def _mcmc_tilted(self, site: EPSite, cavity_marginal: GaussianDensity) -> GaussianDensity:
        """MCMC moment estimate of the tilted distribution.

        The chain is seeded from the Gaussian projection of the tilted
        distribution (the accelerator similarly reuses previous samples as
        Markov-chain starting points, §5) and its proposal scales follow the
        projected marginal standard deviations, which keeps mixing healthy
        even when a site contains very tight observation factors.
        """
        variables = cavity_marginal.variables
        factor_names = site.factor_names

        def log_density(values: Mapping[str, float]) -> float:
            return cavity_marginal.log_density(values) + self.graph.log_density_of(
                factor_names, values
            )

        seed_density = self._analytic_tilted(site, cavity_marginal)
        seed_mean_map = seed_density.mean()
        seed_variance = seed_density.variance()
        steps = {name: max(np.sqrt(seed_variance[name]) * 0.7, 1e-9) for name in variables}
        sampler = RandomWalkMetropolis(
            log_density,
            variables,
            initial=seed_mean_map,
            step_scales=steps,
            rng=self._rng,
        )
        result = sampler.run(self.mcmc_samples, burn_in=self.mcmc_burn_in)
        sample_mean = np.array([result.mean()[name] for name in variables])
        cov = result.covariance()
        # Blend in a fraction of the projected covariance so the Gaussian
        # projection stays proper even with short chains.
        _, seed_cov = seed_density.moments()
        cov = cov + 0.05 * seed_cov + np.eye(len(variables)) * 1e-9
        return GaussianDensity.from_moments(variables, sample_mean, cov)

    # -- main loop -----------------------------------------------------------

    def run(self) -> EPResult:
        """Execute Alg. 1 and return the Gaussian posterior approximation."""
        variables = self.prior.variables
        site_approx: Dict[str, GaussianDensity] = {
            site.name: GaussianDensity.uninformative(variables) for site in self.sites
        }
        global_approx = self.prior.copy()
        for approx in site_approx.values():
            global_approx = global_approx.multiply(approx)

        converged = False
        max_delta = float("inf")
        iteration = 0
        for iteration in range(1, self.max_iterations + 1):
            max_delta = 0.0
            for site in self.sites:
                current_site = site_approx[site.name]
                site_vars = self._site_variables[site.name]

                if self.moment_estimator == "analytic" and self._site_anchor_free[site.name]:
                    # Anchor-free analytic site: the tilted/cavity division
                    # cancels exactly (see _analytic_site_update); only PD
                    # repair remains of lines 3-6.
                    new_site_marginal = _pd_repaired(self._analytic_site_update(site))
                else:
                    # Cavity distribution: g_-k = g / g_k  (line 3 of Alg. 1).
                    cavity = global_approx.divide(current_site)
                    try:
                        cavity_marginal = cavity.marginal(site_vars)
                    except (ValueError, np.linalg.LinAlgError):
                        # Improper cavity: fall back to the prior's marginal.
                        cavity_marginal = self.prior.marginal(site_vars)
                    # Tilted moments (line 4: MCMC sampling, or the Gaussian
                    # projection anchored at the cavity mean), then the local
                    # update (lines 5-6): new site approx = tilted / cavity.
                    if self.moment_estimator == "mcmc":
                        tilted = self._mcmc_tilted(site, cavity_marginal)
                    else:
                        tilted = self._analytic_tilted(site, cavity_marginal)
                    new_site_marginal = _safe_divide(tilted, cavity_marginal)

                # Embed the site marginal back into the full variable space.
                new_site = _embed(new_site_marginal, variables)
                damped_site = site_approx[site.name].damped_towards(new_site, self.damping)

                delta = _natural_parameter_delta(site_approx[site.name], damped_site)
                max_delta = max(max_delta, delta)

                # Global update (line 7): g <- g * (g_k_new / g_k_old).
                global_approx = global_approx.divide(site_approx[site.name]).multiply(damped_site)
                site_approx[site.name] = damped_site

            if max_delta < self.tolerance:
                converged = True
                break

        return EPResult(
            posterior=global_approx,
            iterations=iteration,
            converged=converged,
            site_approximations=site_approx,
            max_delta=max_delta,
        )


@register_reference("mcmc")
class ReferenceSiteMCMC:
    """Object-based reference twin of :class:`~repro.fg.mcmc.BatchedSiteMCMC`.

    Runs the identical per-site tilted-MCMC EP loop for one record, the
    slow, readable way: cavities are formed by dividing
    :class:`~repro.fg.gaussian.GaussianDensity` objects, marginals go
    through the object moment projection, and every chain step walks the
    site's Python factor objects with a ``{variable: value}`` mapping.  The
    differential test harness (and the tilted-MCMC benchmark) pin
    :class:`~repro.fg.mcmc.BatchedSiteMCMC` against this twin; burn-in
    proposal-scale adaptation applies the same module-level rule, so the
    pair stays step-for-step coupled.

    ``run`` derives everything from its RNG argument and mutates no sampler
    state — repeated explicitly-seeded runs reproduce exactly.

    Parameters
    ----------
    site_factors:
        ``(site name, factor objects)`` pairs in site order — the shape
        :meth:`BayesPerfEngine._site_factor_lists` produces.
    prior:
        Proper Gaussian prior over every variable, in the same ordering the
        compiled kernel would use.
    damping, max_iterations, tolerance:
        EP loop controls (must match the compiled kernel's).
    n_samples, burn_in, step_scale, adapt, target_acceptance, adapt_window:
        Chain controls, mirroring :class:`BatchedSiteMCMC`.
    recorder:
        Optional :class:`~repro.fg.mcmc.ChainTrace` capturing every site
        chain, exactly like the batched sampler's.
    """

    def __init__(
        self,
        site_factors: Sequence[Tuple[str, Sequence[Factor]]],
        prior: GaussianDensity,
        *,
        n_samples: int = 300,
        burn_in: int = 200,
        step_scale: float = 2.38,
        adapt: bool = True,
        target_acceptance: float = 0.35,
        adapt_window: int = 50,
        damping: float = 1.0,
        max_iterations: int = 8,
        tolerance: float = 1e-6,
        seed: int = 0,
        recorder: Optional[ChainTrace] = None,
    ) -> None:
        if n_samples <= 0:
            raise ValueError("n_samples must be positive")
        if burn_in < 0:
            raise ValueError("burn_in must be non-negative")
        if not 0.0 < damping <= 1.0:
            raise ValueError("damping must lie in (0, 1]")
        if max_iterations < 1:
            raise ValueError("max_iterations must be at least 1")
        if not site_factors:
            raise ValueError("per-site MCMC requires at least one site")
        self.prior = prior
        self.n_samples = n_samples
        self.burn_in = burn_in
        self.step_scale = step_scale
        self.adapt = adapt
        self.target_acceptance = target_acceptance
        self.adapt_window = adapt_window
        self.damping = damping
        self.max_iterations = max_iterations
        self.tolerance = tolerance
        self.recorder = recorder
        self._seed = seed

        self._sites: List[Tuple[str, List[Factor], Tuple[str, ...], GaussianDensity]] = []
        for name, factors in site_factors:
            factors = list(factors)
            not_projectable = [f.name for f in factors if not f.anchor_free]
            if not_projectable:
                raise ValueError(
                    f"ReferenceSiteMCMC requires anchor-free factors, got {not_projectable}"
                )
            variables: List[str] = []
            seen = set()
            for factor in factors:
                for variable in factor.variables:
                    if variable not in seen:
                        seen.add(variable)
                        variables.append(variable)
            # The site's analytic target: the product of its factor
            # projections in site-local coordinates (the compiled binder's
            # block, assembled from objects).
            block = GaussianDensity.uninformative(variables)
            for factor in factors:
                block = block.multiply(factor.to_gaussian(None))
            self._sites.append((name, factors, tuple(variables), block))

    @staticmethod
    def _as_dict(variables: Tuple[str, ...], state: np.ndarray) -> Dict[str, float]:
        return {name: float(state[i]) for i, name in enumerate(variables)}

    def _site_chain(
        self,
        factors: List[Factor],
        variables: Tuple[str, ...],
        cavity_marginal: GaussianDensity,
        projection: GaussianDensity,
        g_mean: np.ndarray,
        g_cov: np.ndarray,
        rng: np.random.Generator,
    ) -> Tuple[np.ndarray, np.ndarray, int, np.ndarray, List[int]]:
        """Coupled chain pair for one site visit.

        ``(d, D, accepted, scales, windows)`` — the scalar mirror of
        :meth:`BatchedSiteMCMC._site_chain`, including the per-window
        burn-in acceptance trajectory.
        """
        width = len(variables)
        scales = (self.step_scale / np.sqrt(width)) * np.sqrt(
            np.maximum(np.diag(g_cov), 1e-30)
        )

        def true_log_density(state: np.ndarray) -> float:
            values = self._as_dict(variables, state)
            total = cavity_marginal.log_density(values)
            for factor in factors:
                total += factor.log_density(values)
            return total

        def gaussian_part(state: np.ndarray) -> float:
            return projection.log_density(self._as_dict(variables, state))

        chain = g_mean.copy()
        shadow = g_mean.copy()
        chain_logp = true_log_density(chain)
        shadow_logp = gaussian_part(shadow)

        sum_chain = np.zeros(width)
        sum_shadow = np.zeros(width)
        sum_chain_outer = np.zeros((width, width))
        sum_shadow_outer = np.zeros((width, width))
        accepted = 0
        window_accepts = 0
        window_history: List[int] = []

        total_steps = self.burn_in + self.n_samples
        for step in range(total_steps):
            noise = rng.standard_normal(width)
            log_uniform = np.log(rng.random())
            offset = scales * noise
            chain_proposal = chain + offset
            shadow_proposal = shadow + offset

            chain_proposal_logp = true_log_density(chain_proposal)
            shadow_proposal_logp = gaussian_part(shadow_proposal)
            if log_uniform < (chain_proposal_logp - chain_logp):
                chain = chain_proposal
                chain_logp = chain_proposal_logp
                accepted += 1
                window_accepts += 1
            if log_uniform < (shadow_proposal_logp - shadow_logp):
                shadow = shadow_proposal
                shadow_logp = shadow_proposal_logp

            if self.adapt and step < self.burn_in:
                if (step + 1) % self.adapt_window == 0:
                    window_history.append(window_accepts)
                    scales = _adapted_scales(
                        scales, window_accepts / self.adapt_window, self.target_acceptance
                    )
                    window_accepts = 0

            if step >= self.burn_in:
                sum_chain += chain
                sum_shadow += shadow
                sum_chain_outer += np.outer(chain, chain)
                sum_shadow_outer += np.outer(shadow, shadow)

        count = float(self.n_samples)
        d = (sum_chain - sum_shadow) / count
        moment_diff = (sum_chain_outer - sum_shadow_outer) / count
        cross = np.outer(g_mean, d)
        covariance_correction = moment_diff - (cross + cross.T + np.outer(d, d))
        return d, covariance_correction, accepted, scales, window_history

    def run(self, *, rng: Optional[np.random.Generator] = None, tick: int = -1) -> SiteMCMCMoments:
        """Estimate the record's posterior via per-site tilted MCMC EP."""
        rng = np.random.default_rng(self._seed) if rng is None else rng
        variables = self.prior.variables
        site_approx: Dict[str, GaussianDensity] = {
            name: GaussianDensity.uninformative(variables) for name, _, _, _ in self._sites
        }
        global_approx = self.prior.copy()

        recorder = self.recorder
        slice_id = recorder.reserve_slices(1) if recorder is not None else 0
        chain_steps = self.burn_in + self.n_samples
        accepted_total = 0
        steps_total = 0

        converged = False
        max_delta = float("inf")
        iteration = 0
        for iteration in range(1, self.max_iterations + 1):
            max_delta = 0.0
            for site_index, (name, factors, site_vars, block) in enumerate(self._sites):
                current = site_approx[name]
                cavity = global_approx.divide(current)
                try:
                    cavity_marginal = cavity.marginal(site_vars)
                except (ValueError, np.linalg.LinAlgError):
                    cavity_marginal = self.prior.marginal(site_vars)

                projection = cavity_marginal.multiply(block)
                g_mean, g_cov = projection.moments()
                d, covariance_correction, accepted, scales, windows = self._site_chain(
                    factors, site_vars, cavity_marginal, projection, g_mean, g_cov, rng
                )
                accepted_total += accepted
                steps_total += chain_steps

                tilted_cov = g_cov + covariance_correction
                try:
                    np.linalg.cholesky(tilted_cov)
                except np.linalg.LinAlgError:
                    covariance_correction = np.zeros_like(covariance_correction)
                    tilted_cov = g_cov
                inverse_tilted = cholesky_inverse(tilted_cov)
                delta_precision = -(projection.precision @ covariance_correction @ inverse_tilted)
                delta_precision = 0.5 * (delta_precision + delta_precision.T)
                tilted_mean = g_mean + d
                delta_shift = projection.precision @ d + delta_precision @ tilted_mean
                target = _pd_repaired(
                    GaussianDensity(
                        site_vars,
                        block.precision + delta_precision,
                        block.shift + delta_shift,
                    )
                )

                new_site = _embed(target, variables)
                damped_site = current.damped_towards(new_site, self.damping)
                delta = _natural_parameter_delta(current, damped_site)
                max_delta = max(max_delta, delta)
                global_approx = global_approx.divide(current).multiply(damped_site)
                site_approx[name] = damped_site

                if recorder is not None:
                    recorder.record(
                        slice_id=slice_id,
                        tick=int(tick),
                        iteration=iteration,
                        site=name,
                        site_index=site_index,
                        width=len(site_vars),
                        n_factors=len(factors),
                        n_steps=chain_steps,
                        burn_in=self.burn_in,
                        accepted=int(accepted),
                        step_scale=float(scales.mean()),
                        windows=tuple(int(w) for w in windows),
                    )

            if max_delta < self.tolerance:
                converged = True
                break

        mean, cov = global_approx.moments()
        return SiteMCMCMoments(
            variables=variables,
            means=mean,
            variances=np.diag(cov).copy(),
            iterations=iteration,
            converged=converged,
            acceptance_rate=accepted_total / steps_total if steps_total else 0.0,
            n_samples=self.n_samples,
        )


def _safe_divide(numerator: GaussianDensity, denominator: GaussianDensity) -> GaussianDensity:
    """Quotient of two Gaussians that clips non-positive-definite results.

    EP site updates occasionally produce negative precisions (a well-known EP
    artefact); clipping to a tiny positive precision keeps the algorithm
    stable, matching common EP implementations.
    """
    return _pd_repaired(numerator.divide(denominator))


def _pd_repaired(density: GaussianDensity) -> GaussianDensity:
    """Clip a density's precision to positive definiteness (EP site repair).

    A Cholesky factorisation certifies the common PD case at the cost of one
    factorisation; only on failure does the eigendecomposition repair of the
    historical implementation run.
    """
    precision = density.precision
    symmetric = 0.5 * (precision + precision.T)
    try:
        np.linalg.cholesky(symmetric)
        return density
    except np.linalg.LinAlgError:
        pass
    eigenvalues = np.linalg.eigvalsh(symmetric)
    if eigenvalues.min() <= 0:
        precision = precision + (abs(eigenvalues.min()) + 1e-9) * np.eye(len(density.variables))
    return GaussianDensity(density.variables, precision, density.shift)


def _embed(density: GaussianDensity, variables: Sequence[str]) -> GaussianDensity:
    """Embed a density over a variable subset into the full variable space."""
    variables = tuple(variables)
    full = GaussianDensity.uninformative(variables)
    return full.multiply(density)


def _natural_parameter_delta(old: GaussianDensity, new: GaussianDensity) -> float:
    """Largest relative change in natural parameters between two densities."""
    if not len(old.variables):
        return 0.0
    scale_precision = max(np.max(np.abs(old.precision)), np.max(np.abs(new.precision)), 1.0)
    scale_shift = max(np.max(np.abs(old.shift)), np.max(np.abs(new.shift)), 1.0)
    delta_precision = np.max(np.abs(old.precision - new.precision)) / scale_precision
    delta_shift = np.max(np.abs(old.shift - new.shift)) / scale_shift
    return float(max(delta_precision, delta_shift))
