"""Random-walk Metropolis MCMC over factor-graph densities.

Inside each EP site, the paper estimates the tilted distribution's moments by
Markov chain Monte Carlo (line 4 of Alg. 1); the accelerator implements many
such samplers in hardware.  This module provides the software equivalents:

* :class:`RandomWalkMetropolis` — the adaptive per-site sampler EP's
  ``moment_estimator="mcmc"`` drives over a callable log density.
* :class:`BatchedMCMC` — an array-native posterior-moment estimator that
  drives the compiled EP kernel's site/global buffers: vectorized proposals
  and log-density evaluation over ``B`` records sharing one graph structure.
* :class:`ReferenceMCMC` — the object-based reference twin of
  :class:`BatchedMCMC`, walking Python factor objects per step.  Slow by
  design; the differential test harness pins the two together.

The batched/reference pair shares one estimator: a random-walk chain on the
record's *true* density coupled (common random numbers) to a shadow chain on
its Gaussian projection, whose exactly-known moments act as a control
variate.  When the record's density *is* Gaussian — every factor's
projection exact — the two chains coincide step for step, the sampled
correction is identically zero, and the estimator returns the analytic
moments exactly; the sampling machinery still runs, it just cannot drift.
With Student-t observations the coupled correction captures the heavy-tail
deviation from the projection at a fraction of naive-MCMC variance.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.fg.distributions import student_t_log_pdf


@dataclass
class MCMCResult:
    """Samples and summary statistics from one MCMC run."""

    variables: Tuple[str, ...]
    samples: np.ndarray
    acceptance_rate: float
    n_steps: int

    def mean(self) -> Dict[str, float]:
        means = self.samples.mean(axis=0)
        return {name: float(means[i]) for i, name in enumerate(self.variables)}

    def covariance(self) -> np.ndarray:
        if self.samples.shape[0] < 2:
            return np.zeros((len(self.variables), len(self.variables)))
        return np.cov(self.samples, rowvar=False).reshape(len(self.variables), len(self.variables))

    def variance(self) -> Dict[str, float]:
        cov = self.covariance()
        return {name: float(cov[i, i]) for i, name in enumerate(self.variables)}

    def quantile(self, q: float) -> Dict[str, float]:
        values = np.quantile(self.samples, q, axis=0)
        return {name: float(values[i]) for i, name in enumerate(self.variables)}


class RandomWalkMetropolis:
    """Adaptive random-walk Metropolis sampler over named scalar variables.

    Parameters
    ----------
    log_density:
        Callable mapping ``{variable: value}`` to an unnormalised log density.
    variables:
        Ordered variable names defining the state vector.
    initial:
        Starting state.  Variables missing from the mapping start at zero.
    step_scales:
        Per-variable proposal standard deviations.  Defaults to 5% of the
        starting magnitude (floored at ``min_step``).
    rng:
        NumPy random generator (seeded by the caller for determinism).
    target_acceptance:
        Desired acceptance rate for the adaptive step-size tuning.
    """

    def __init__(
        self,
        log_density: Callable[[Mapping[str, float]], float],
        variables: Sequence[str],
        initial: Mapping[str, float],
        *,
        step_scales: Optional[Mapping[str, float]] = None,
        rng: Optional[np.random.Generator] = None,
        target_acceptance: float = 0.35,
        min_step: float = 1e-6,
    ) -> None:
        self._log_density = log_density
        self.variables: Tuple[str, ...] = tuple(variables)
        if not self.variables:
            raise ValueError("MCMC needs at least one variable")
        self._rng = rng if rng is not None else np.random.default_rng(0)
        self._state = np.array([float(initial.get(name, 0.0)) for name in self.variables])
        if step_scales is None:
            # 5% of the starting magnitude, falling back to unit steps for
            # variables starting at zero (adaptation refines this further).
            magnitudes = np.where(np.abs(self._state) > 0, np.abs(self._state) * 0.05, 1.0)
            self._steps = np.maximum(magnitudes, min_step)
        else:
            self._steps = np.array(
                [max(float(step_scales.get(name, min_step)), min_step) for name in self.variables]
            )
        self._target_acceptance = target_acceptance
        self._min_step = min_step

    def _as_dict(self, state: np.ndarray) -> Dict[str, float]:
        return {name: float(state[i]) for i, name in enumerate(self.variables)}

    def run(
        self,
        n_samples: int,
        *,
        burn_in: int = 200,
        thin: int = 1,
        adapt: bool = True,
    ) -> MCMCResult:
        """Run the chain and return post-burn-in, thinned samples."""
        if n_samples <= 0:
            raise ValueError("n_samples must be positive")
        if thin <= 0:
            raise ValueError("thin must be positive")
        total_steps = burn_in + n_samples * thin
        dim = len(self.variables)
        samples = np.empty((n_samples, dim))
        current = self._state.copy()
        current_logp = self._log_density(self._as_dict(current))
        accepted = 0
        collected = 0
        adapt_window = max(50, dim * 10)
        window_accepts = 0

        for step in range(total_steps):
            proposal = current + self._rng.normal(0.0, self._steps, size=dim)
            proposal_logp = self._log_density(self._as_dict(proposal))
            log_ratio = proposal_logp - current_logp
            if log_ratio >= 0 or np.log(self._rng.random()) < log_ratio:
                current = proposal
                current_logp = proposal_logp
                accepted += 1
                window_accepts += 1

            if adapt and step < burn_in and (step + 1) % adapt_window == 0:
                rate = window_accepts / adapt_window
                if rate < self._target_acceptance * 0.8:
                    self._steps *= 0.6
                elif rate > self._target_acceptance * 1.2:
                    self._steps *= 1.7
                self._steps = np.maximum(self._steps, self._min_step)
                window_accepts = 0

            if step >= burn_in and (step - burn_in) % thin == 0 and collected < n_samples:
                samples[collected] = current
                collected += 1

        self._state = current
        return MCMCResult(
            variables=self.variables,
            samples=samples[:collected],
            acceptance_rate=accepted / total_steps,
            n_steps=total_steps,
        )


# -- posterior-moment estimation (batched kernel + reference twin) ------------


@dataclass
class MCMCMoments:
    """Posterior moments estimated by one coupled-chain MCMC run."""

    variables: Tuple[str, ...]
    means: np.ndarray  # (n,)
    variances: np.ndarray  # (n,)
    #: Analytic moments of the Gaussian projection (the control variate).
    baseline_means: np.ndarray
    baseline_variances: np.ndarray
    acceptance_rate: float
    n_samples: int

    def mean(self) -> Dict[str, float]:
        return {name: float(v) for name, v in zip(self.variables, self.means)}

    def variance(self) -> Dict[str, float]:
        return {name: float(v) for name, v in zip(self.variables, self.variances)}


@dataclass
class BatchedMCMCResult:
    """Batched outcome of a :class:`BatchedMCMC` run (leading axis = record)."""

    variables: Tuple[str, ...]
    means: np.ndarray  # (B, n)
    variances: np.ndarray  # (B, n)
    baseline_means: np.ndarray  # (B, n)
    baseline_variances: np.ndarray  # (B, n)
    acceptance_rates: np.ndarray  # (B,)
    n_samples: int

    def __len__(self) -> int:
        return self.means.shape[0]

    def mean_dict(self, record: int = 0) -> Dict[str, float]:
        return {name: float(v) for name, v in zip(self.variables, self.means[record])}

    def variance_dict(self, record: int = 0) -> Dict[str, float]:
        return {name: float(v) for name, v in zip(self.variables, self.variances[record])}


@dataclass(frozen=True)
class StudentTTail:
    """Non-Gaussian log-density correction for Student-t observations.

    Evaluates ``sum_e [t_logpdf(x_e) - gaussian_projection_logpdf(x_e)]``
    over a batch of states — the exact difference between each record's true
    observation terms and the moment-matched Gaussian blocks already inside
    the kernel's buffers (up to per-record constants, which cancel in every
    Metropolis ratio).
    """

    #: Global variable slot of each Student-t-observed event.
    slots: np.ndarray
    loc: np.ndarray  # (B, E)
    scale: np.ndarray  # (B, E)
    df: np.ndarray  # (B, E)
    #: Moment-matched Gaussian variance per observation, (B, E).
    variance: np.ndarray

    def __call__(self, x: np.ndarray) -> np.ndarray:
        values = x[:, self.slots]
        tail = student_t_log_pdf(values, self.loc, self.scale, self.df)
        gaussian = -0.5 * (values - self.loc) ** 2 / self.variance
        return (tail - gaussian).sum(axis=-1)


class BatchedMCMC:
    """Coupled-chain MCMC moment estimator over a compiled graph structure.

    Drives the compiled kernel's buffers: site blocks from the array-native
    binder are scattered into per-record global natural parameters
    (:meth:`~repro.fg.compiled.CompiledEPKernel.assemble_global`), whose
    Cholesky read-out seeds the chains, scales the proposals and serves as
    the control-variate baseline.  One ``run`` advances ``B`` chains (plus
    their ``B`` Gaussian shadow chains) in lock-step with vectorized
    log-density evaluation; randomness is drawn per record from that
    record's own seed, so a record solved alone is bit-identical to the
    same record inside a batch.

    Parameters
    ----------
    kernel:
        A :class:`~repro.fg.compiled.CompiledEPKernel` (only its structure
        and read-out are used).
    n_samples, burn_in:
        Post-burn-in sample count and burn-in steps per chain.
    step_scale:
        Proposal standard deviations are
        ``step_scale / sqrt(n) * posterior_std`` — the classic random-walk
        scaling with ``step_scale = 2.38``.
    """

    def __init__(
        self,
        kernel,
        *,
        n_samples: int = 300,
        burn_in: int = 200,
        step_scale: float = 2.38,
    ) -> None:
        if n_samples <= 0:
            raise ValueError("n_samples must be positive")
        if burn_in < 0:
            raise ValueError("burn_in must be non-negative")
        if step_scale <= 0:
            raise ValueError("step_scale must be positive")
        self.kernel = kernel
        self.n_samples = n_samples
        self.burn_in = burn_in
        self.step_scale = step_scale

    def run(
        self,
        stacked: Sequence[Tuple[np.ndarray, np.ndarray]],
        prior_precision: np.ndarray,
        prior_shift: np.ndarray,
        *,
        seeds: Sequence[int],
        extra_log_density: Optional[Callable[[np.ndarray], np.ndarray]] = None,
    ) -> BatchedMCMCResult:
        """Estimate posterior moments for a batch of records.

        ``stacked`` / ``prior_precision`` / ``prior_shift`` take the exact
        shapes of :meth:`CompiledEPKernel.run_stacked`; ``seeds`` gives one
        RNG seed per record; ``extra_log_density`` adds each record's
        non-Gaussian correction (e.g. :class:`StudentTTail`) to the true
        chain's target.
        """
        precision, shift = self.kernel.assemble_global(
            stacked, prior_precision, prior_shift
        )
        batch, dim = shift.shape
        if len(seeds) != batch:
            raise ValueError("run() needs one seed per record")
        baseline_mean, baseline_var = self.kernel.read_out(precision, shift)
        scales = (self.step_scale / np.sqrt(dim)) * np.sqrt(
            np.maximum(baseline_var, 1e-30)
        )
        rngs = [np.random.default_rng(int(seed)) for seed in seeds]

        def gaussian_part(state: np.ndarray) -> np.ndarray:
            product = (precision @ state[..., None])[..., 0]
            return -0.5 * np.sum(state * product, axis=-1) + np.sum(shift * state, axis=-1)

        def true_log_density(state: np.ndarray) -> np.ndarray:
            value = gaussian_part(state)
            if extra_log_density is not None:
                value = value + extra_log_density(state)
            return value

        chain = baseline_mean.copy()
        shadow = baseline_mean.copy()
        chain_logp = true_log_density(chain)
        shadow_logp = gaussian_part(shadow)

        sum_chain = np.zeros((batch, dim))
        sum_chain_sq = np.zeros((batch, dim))
        sum_shadow = np.zeros((batch, dim))
        sum_shadow_sq = np.zeros((batch, dim))
        accepted = np.zeros(batch)

        total_steps = self.burn_in + self.n_samples
        for step in range(total_steps):
            # Per-record draws keep each record's stream independent of the
            # batch composition (and aligned with the reference twin's).
            noise = np.stack([rng.standard_normal(dim) for rng in rngs])
            log_uniform = np.log(np.array([rng.random() for rng in rngs]))
            offset = scales * noise
            chain_proposal = chain + offset
            shadow_proposal = shadow + offset

            chain_proposal_logp = true_log_density(chain_proposal)
            shadow_proposal_logp = gaussian_part(shadow_proposal)
            accept_chain = log_uniform < (chain_proposal_logp - chain_logp)
            accept_shadow = log_uniform < (shadow_proposal_logp - shadow_logp)

            chain = np.where(accept_chain[:, None], chain_proposal, chain)
            chain_logp = np.where(accept_chain, chain_proposal_logp, chain_logp)
            shadow = np.where(accept_shadow[:, None], shadow_proposal, shadow)
            shadow_logp = np.where(accept_shadow, shadow_proposal_logp, shadow_logp)
            accepted += accept_chain

            if step >= self.burn_in:
                sum_chain += chain
                sum_chain_sq += chain * chain
                sum_shadow += shadow
                sum_shadow_sq += shadow * shadow

        count = float(self.n_samples)
        means = baseline_mean + (sum_chain - sum_shadow) / count
        variances = np.maximum(
            baseline_var
            + (sum_chain_sq - sum_shadow_sq) / count
            - (means * means - baseline_mean * baseline_mean),
            1e-12,
        )
        return BatchedMCMCResult(
            variables=self.kernel.structure.variables,
            means=means,
            variances=variances,
            baseline_means=baseline_mean,
            baseline_variances=baseline_var,
            acceptance_rates=accepted / total_steps,
            n_samples=self.n_samples,
        )


class ReferenceMCMC:
    """Object-based reference twin of :class:`BatchedMCMC` (one record).

    Runs the identical coupled-chain estimator, but the slow, readable way:
    the Gaussian projection is assembled by multiplying
    :class:`~repro.fg.gaussian.GaussianDensity` objects, and every
    log-density evaluation walks the record's Python factor objects with a
    ``{variable: value}`` mapping.  The differential test harness (and the
    MCMC benchmark) pin :class:`BatchedMCMC` against this twin.

    Seed handling: ``run`` derives *everything* from its RNG argument and
    mutates no sampler state, so repeated calls with equally-seeded
    generators reproduce each other exactly — unlike
    :class:`RandomWalkMetropolis`, whose ``run`` continues the previous
    chain.
    """

    def __init__(
        self,
        factors: Sequence,
        prior,
        *,
        n_samples: int = 300,
        burn_in: int = 200,
        step_scale: float = 2.38,
        seed: int = 0,
    ) -> None:
        if n_samples <= 0:
            raise ValueError("n_samples must be positive")
        if burn_in < 0:
            raise ValueError("burn_in must be non-negative")
        self._factors = list(factors)
        not_projectable = [
            factor.name for factor in self._factors if not factor.anchor_free
        ]
        if not_projectable:
            raise ValueError(
                f"ReferenceMCMC requires anchor-free factors, got {not_projectable}"
            )
        self.n_samples = n_samples
        self.burn_in = burn_in
        self.step_scale = step_scale
        self._seed = seed
        # Gaussian projection of the whole record: prior x every factor's
        # (anchor-free) projection.  Exact when all factors are Gaussian.
        gaussian = prior.copy()
        for factor in self._factors:
            gaussian = gaussian.multiply(factor.to_gaussian(None))
        self._gaussian = gaussian
        #: (factor, projection) pairs whose true density is non-Gaussian.
        self._corrections = [
            (factor, factor.to_gaussian(None))
            for factor in self._factors
            if not factor.is_gaussian
        ]
        self.variables: Tuple[str, ...] = gaussian.variables

    def _as_dict(self, state: np.ndarray) -> Dict[str, float]:
        return {name: float(state[i]) for i, name in enumerate(self.variables)}

    def _log_density(self, values: Mapping[str, float]) -> float:
        total = self._gaussian.log_density(values)
        for factor, projection in self._corrections:
            total += factor.log_density(values) - projection.log_density(values)
        return total

    def run(self, *, rng: Optional[np.random.Generator] = None) -> MCMCMoments:
        """Estimate the record's posterior moments.

        A fresh chain is built from scratch on every call: with an
        explicitly seeded ``rng`` (or none — the constructor seed is used),
        repeated runs are bit-for-bit reproducible.
        """
        rng = np.random.default_rng(self._seed) if rng is None else rng
        dim = len(self.variables)
        baseline_mean, baseline_cov = self._gaussian.moments()
        baseline_var = np.diag(baseline_cov).copy()
        scales = (self.step_scale / np.sqrt(dim)) * np.sqrt(
            np.maximum(baseline_var, 1e-30)
        )

        chain = baseline_mean.copy()
        shadow = baseline_mean.copy()
        chain_logp = self._log_density(self._as_dict(chain))
        shadow_logp = self._gaussian.log_density(self._as_dict(shadow))

        sum_chain = np.zeros(dim)
        sum_chain_sq = np.zeros(dim)
        sum_shadow = np.zeros(dim)
        sum_shadow_sq = np.zeros(dim)
        accepted = 0

        total_steps = self.burn_in + self.n_samples
        for step in range(total_steps):
            noise = rng.standard_normal(dim)
            log_uniform = np.log(rng.random())
            offset = scales * noise
            chain_proposal = chain + offset
            shadow_proposal = shadow + offset

            chain_proposal_logp = self._log_density(self._as_dict(chain_proposal))
            shadow_proposal_logp = self._gaussian.log_density(self._as_dict(shadow_proposal))
            if log_uniform < (chain_proposal_logp - chain_logp):
                chain = chain_proposal
                chain_logp = chain_proposal_logp
                accepted += 1
            if log_uniform < (shadow_proposal_logp - shadow_logp):
                shadow = shadow_proposal
                shadow_logp = shadow_proposal_logp

            if step >= self.burn_in:
                sum_chain += chain
                sum_chain_sq += chain * chain
                sum_shadow += shadow
                sum_shadow_sq += shadow * shadow

        count = float(self.n_samples)
        means = baseline_mean + (sum_chain - sum_shadow) / count
        variances = np.maximum(
            baseline_var
            + (sum_chain_sq - sum_shadow_sq) / count
            - (means * means - baseline_mean * baseline_mean),
            1e-12,
        )
        return MCMCMoments(
            variables=self.variables,
            means=means,
            variances=variances,
            baseline_means=baseline_mean,
            baseline_variances=baseline_var,
            acceptance_rate=accepted / total_steps,
            n_samples=self.n_samples,
        )
