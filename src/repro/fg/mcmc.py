"""Random-walk Metropolis MCMC over factor-graph densities.

Inside each EP site, the paper estimates the tilted distribution's moments by
Markov chain Monte Carlo (line 4 of Alg. 1); the accelerator implements many
such samplers in hardware.  This module provides the software equivalents:

* :class:`RandomWalkMetropolis` — the adaptive sampler the historical
  :class:`~repro.fg.ep.ExpectationPropagation` ``moment_estimator="mcmc"``
  path drives over a callable log density.
* :class:`BatchedMCMC` — an array-native posterior-moment estimator that
  drives the compiled EP kernel's site/global buffers: vectorized proposals
  and log-density evaluation over ``B`` records sharing one graph structure.
* :class:`BatchedSiteMCMC` — the per-site tilted-moment EP loop (the
  accelerator's actual inner loop, lines 3-6 of Alg. 1) batched over ``B``
  records on the compiled kernel's buffers: every site update estimates its
  tilted moments with a coupled pair of chains, with per-record
  proposal-scale adaptation during burn-in.
* :class:`ReferenceMCMC` — the object-based reference twin of
  :class:`BatchedMCMC`, walking Python factor objects per step.  Slow by
  design; the differential test harness pins the two together.
  (:class:`~repro.fg.ep.ReferenceSiteMCMC` is the corresponding twin of
  :class:`BatchedSiteMCMC`.)
* :class:`ChainTrace` — the chain-trace capture layer: both site samplers
  append one :class:`ChainSiteVisit` per (record, EP iteration, site) chain
  they run.  Serialised through :mod:`repro.fleet.tracefile`, these traces
  drive the :mod:`repro.accelerator` co-simulation, grounding its
  cycle/energy estimates in measured site-visit schedules and acceptance
  rates instead of analytical assumptions.

The batched/reference pair shares one estimator: a random-walk chain on the
record's *true* density coupled (common random numbers) to a shadow chain on
its Gaussian projection, whose exactly-known moments act as a control
variate.  When the record's density *is* Gaussian — every factor's
projection exact — the two chains coincide step for step, the sampled
correction is identically zero, and the estimator returns the analytic
moments exactly; the sampling machinery still runs, it just cannot drift.
With Student-t observations the coupled correction captures the heavy-tail
deviation from the projection at a fraction of naive-MCMC variance.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.fg.distributions import student_t_log_pdf
from repro.fg.linalg import cholesky_inverse, cholesky_moments
from repro.fg.registry import register_estimator, register_reference

# Shared burn-in proposal-scale adaptation constants.  The batched samplers
# and their object-based reference twins must apply the *identical* rule, so
# the constants live here rather than in each implementation: every
# ``adapt_window`` burn-in steps, a record whose windowed acceptance rate
# falls below ``_ADAPT_LOW x target`` shrinks its proposal scales by
# ``_ADAPT_SHRINK``; above ``_ADAPT_HIGH x target`` they grow by
# ``_ADAPT_GROW`` (the asymmetric pair RandomWalkMetropolis historically
# used); scales never drop below ``_SCALE_FLOOR``.
_ADAPT_SHRINK = 0.6
_ADAPT_GROW = 1.7
_ADAPT_LOW = 0.8
_ADAPT_HIGH = 1.2
_SCALE_FLOOR = 1e-12


def _adapted_scales(scales: np.ndarray, rate, target: float) -> np.ndarray:
    """Apply one window's adaptation to the proposal scales.

    The single implementation every sampler and twin calls: ``rate`` is a
    scalar for the object-walking twins or a ``(B,)`` per-record array for
    the batched samplers (broadcast over the trailing state axis).  The
    selected branch computes the identical product either way, keeping the
    twins step-for-step coupled.
    """
    rate = np.asarray(rate)
    shrink = rate < target * _ADAPT_LOW
    grow = rate > target * _ADAPT_HIGH
    if rate.ndim:
        shrink = shrink[:, None]
        grow = grow[:, None]
    adapted = np.where(
        shrink, scales * _ADAPT_SHRINK, np.where(grow, scales * _ADAPT_GROW, scales)
    )
    return np.maximum(adapted, _SCALE_FLOOR)


# -- chain-trace capture -------------------------------------------------------


@dataclass(frozen=True)
class ChainSiteVisit:
    """One per-site tilted-MCMC chain run, as recorded in a chain trace.

    This is the atom of the accelerator co-simulation: everything the
    device model needs to price one hardware site update — how wide the
    state was, how many factors were folded, how many chain steps actually
    ran and how many proposals were accepted — measured from the software
    sampler rather than assumed.
    """

    #: Global emission order (co-simulation processes visits in this order).
    sequence: int
    #: Which inference problem (slice) this visit belongs to.
    slice_id: int
    #: The slice's scheduler tick (-1 when the caller provided none).
    tick: int
    #: EP iteration the visit ran in (1-based).
    iteration: int
    site: str
    site_index: int
    #: State width: number of variables in the site.
    width: int
    n_factors: int
    #: Total chain steps taken (burn-in included — the hardware pays them).
    n_steps: int
    burn_in: int
    #: Accepted proposals of the true chain over all ``n_steps``.
    accepted: int
    #: Mean per-variable proposal scale after burn-in adaptation.
    step_scale: float
    #: Per-window acceptance trajectory during burn-in adaptation: the true
    #: chain's accepted proposals in each completed adaptation window, in
    #: window order.  Empty when the sampler ran without adaptation (or the
    #: burn-in was shorter than one window) — the co-simulation prices the
    #: adaptation hardware only when a trajectory is present.
    windows: Tuple[int, ...] = ()

    @property
    def acceptance_rate(self) -> float:
        return self.accepted / self.n_steps if self.n_steps else 0.0

    @property
    def n_adaptations(self) -> int:
        """Burn-in adaptation windows this visit's chain completed."""
        return len(self.windows)


@dataclass(eq=False)  # identity semantics: recorders ride inside cache keys
class ChainTrace:
    """Append-only record of every per-site chain a sampler ran.

    One instance can be shared by many engines (the fleet worker pool's
    shared-engine batches all append to the same recorder); ``slice_id``
    namespaces records so replays reconstruct the exact schedule.

    The buffered visits can be handed off incrementally with :meth:`drain`
    (the streaming tracefile sink's contract): sequence and slice counters
    survive a drain, so a drained-and-concatenated stream is identical to
    the trace an undrained recorder would have accumulated, while the
    recorder's memory stays bounded by one flush interval.
    """

    visits: List[ChainSiteVisit] = field(default_factory=list)
    #: Sampler configuration (n_samples, burn_in, adaptation, ...).
    params: Dict = field(default_factory=dict)
    _next_slice: int = 0
    _next_sequence: int = 0
    #: High-water mark of buffered visits (bounded-memory assertions).
    peak_buffered: int = 0

    def reserve_slices(self, count: int) -> int:
        """Allocate ``count`` consecutive slice ids; returns the first."""
        base = self._next_slice
        self._next_slice += count
        return base

    def record(self, **fields) -> None:
        """Append one visit; the sequence number is assigned here."""
        self.visits.append(ChainSiteVisit(sequence=self._next_sequence, **fields))
        self._next_sequence += 1
        if len(self.visits) > self.peak_buffered:
            self.peak_buffered = len(self.visits)

    def drain(self) -> List[ChainSiteVisit]:
        """Hand off (and forget) the buffered visits, keeping all counters.

        Streaming consumers call this after every flush interval; summary
        properties (:attr:`n_visits`, :meth:`acceptance_rate`, ...) then
        reflect only the still-buffered tail, while :attr:`total_recorded`
        keeps counting every visit ever recorded.
        """
        taken = self.visits
        self.visits = []
        return taken

    @property
    def total_recorded(self) -> int:
        """Visits recorded over the trace's lifetime, drains included."""
        return self._next_sequence

    # -- summaries (used by the accelerator model and the demo) -----------

    @property
    def n_visits(self) -> int:
        return len(self.visits)

    @property
    def n_slices(self) -> int:
        return len({visit.slice_id for visit in self.visits})

    @property
    def total_steps(self) -> int:
        return sum(visit.n_steps for visit in self.visits)

    def acceptance_rate(self) -> float:
        """Step-weighted mean acceptance rate over the whole trace."""
        steps = self.total_steps
        if not steps:
            return 0.0
        return sum(visit.accepted for visit in self.visits) / steps

    def sites(self) -> Tuple[str, ...]:
        ordered: List[str] = []
        for visit in self.visits:
            if visit.site not in ordered:
                ordered.append(visit.site)
        return tuple(ordered)


@dataclass
class MCMCResult:
    """Samples and summary statistics from one MCMC run."""

    variables: Tuple[str, ...]
    samples: np.ndarray
    acceptance_rate: float
    n_steps: int

    def mean(self) -> Dict[str, float]:
        means = self.samples.mean(axis=0)
        return {name: float(means[i]) for i, name in enumerate(self.variables)}

    def covariance(self) -> np.ndarray:
        if self.samples.shape[0] < 2:
            return np.zeros((len(self.variables), len(self.variables)))
        return np.cov(self.samples, rowvar=False).reshape(len(self.variables), len(self.variables))

    def variance(self) -> Dict[str, float]:
        cov = self.covariance()
        return {name: float(cov[i, i]) for i, name in enumerate(self.variables)}

    def quantile(self, q: float) -> Dict[str, float]:
        values = np.quantile(self.samples, q, axis=0)
        return {name: float(values[i]) for i, name in enumerate(self.variables)}


class RandomWalkMetropolis:
    """Adaptive random-walk Metropolis sampler over named scalar variables.

    Parameters
    ----------
    log_density:
        Callable mapping ``{variable: value}`` to an unnormalised log density.
    variables:
        Ordered variable names defining the state vector.
    initial:
        Starting state.  Variables missing from the mapping start at zero.
    step_scales:
        Per-variable proposal standard deviations.  Defaults to 5% of the
        starting magnitude (floored at ``min_step``).
    rng:
        NumPy random generator (seeded by the caller for determinism).
    target_acceptance:
        Desired acceptance rate for the adaptive step-size tuning.
    """

    def __init__(
        self,
        log_density: Callable[[Mapping[str, float]], float],
        variables: Sequence[str],
        initial: Mapping[str, float],
        *,
        step_scales: Optional[Mapping[str, float]] = None,
        rng: Optional[np.random.Generator] = None,
        target_acceptance: float = 0.35,
        min_step: float = 1e-6,
    ) -> None:
        self._log_density = log_density
        self.variables: Tuple[str, ...] = tuple(variables)
        if not self.variables:
            raise ValueError("MCMC needs at least one variable")
        self._rng = rng if rng is not None else np.random.default_rng(0)
        self._state = np.array([float(initial.get(name, 0.0)) for name in self.variables])
        if step_scales is None:
            # 5% of the starting magnitude, falling back to unit steps for
            # variables starting at zero (adaptation refines this further).
            magnitudes = np.where(np.abs(self._state) > 0, np.abs(self._state) * 0.05, 1.0)
            self._steps = np.maximum(magnitudes, min_step)
        else:
            self._steps = np.array(
                [max(float(step_scales.get(name, min_step)), min_step) for name in self.variables]
            )
        self._target_acceptance = target_acceptance
        self._min_step = min_step

    def _as_dict(self, state: np.ndarray) -> Dict[str, float]:
        return {name: float(state[i]) for i, name in enumerate(self.variables)}

    def run(
        self,
        n_samples: int,
        *,
        burn_in: int = 200,
        thin: int = 1,
        adapt: bool = True,
    ) -> MCMCResult:
        """Run the chain and return post-burn-in, thinned samples."""
        if n_samples <= 0:
            raise ValueError("n_samples must be positive")
        if thin <= 0:
            raise ValueError("thin must be positive")
        total_steps = burn_in + n_samples * thin
        dim = len(self.variables)
        samples = np.empty((n_samples, dim))
        current = self._state.copy()
        current_logp = self._log_density(self._as_dict(current))
        accepted = 0
        collected = 0
        adapt_window = max(50, dim * 10)
        window_accepts = 0

        for step in range(total_steps):
            proposal = current + self._rng.normal(0.0, self._steps, size=dim)
            proposal_logp = self._log_density(self._as_dict(proposal))
            log_ratio = proposal_logp - current_logp
            if log_ratio >= 0 or np.log(self._rng.random()) < log_ratio:
                current = proposal
                current_logp = proposal_logp
                accepted += 1
                window_accepts += 1

            if adapt and step < burn_in and (step + 1) % adapt_window == 0:
                rate = window_accepts / adapt_window
                if rate < self._target_acceptance * 0.8:
                    self._steps *= 0.6
                elif rate > self._target_acceptance * 1.2:
                    self._steps *= 1.7
                self._steps = np.maximum(self._steps, self._min_step)
                window_accepts = 0

            if step >= burn_in and (step - burn_in) % thin == 0 and collected < n_samples:
                samples[collected] = current
                collected += 1

        self._state = current
        return MCMCResult(
            variables=self.variables,
            samples=samples[:collected],
            acceptance_rate=accepted / total_steps,
            n_steps=total_steps,
        )


# -- posterior-moment estimation (batched kernel + reference twin) ------------


@dataclass
class MCMCMoments:
    """Posterior moments estimated by one coupled-chain MCMC run."""

    variables: Tuple[str, ...]
    means: np.ndarray  # (n,)
    variances: np.ndarray  # (n,)
    #: Analytic moments of the Gaussian projection (the control variate).
    baseline_means: np.ndarray
    baseline_variances: np.ndarray
    acceptance_rate: float
    n_samples: int

    def mean(self) -> Dict[str, float]:
        return {name: float(v) for name, v in zip(self.variables, self.means)}

    def variance(self) -> Dict[str, float]:
        return {name: float(v) for name, v in zip(self.variables, self.variances)}


@dataclass
class BatchedMCMCResult:
    """Batched outcome of a :class:`BatchedMCMC` run (leading axis = record)."""

    variables: Tuple[str, ...]
    means: np.ndarray  # (B, n)
    variances: np.ndarray  # (B, n)
    baseline_means: np.ndarray  # (B, n)
    baseline_variances: np.ndarray  # (B, n)
    acceptance_rates: np.ndarray  # (B,)
    n_samples: int

    def __len__(self) -> int:
        return self.means.shape[0]

    def mean_dict(self, record: int = 0) -> Dict[str, float]:
        return {name: float(v) for name, v in zip(self.variables, self.means[record])}

    def variance_dict(self, record: int = 0) -> Dict[str, float]:
        return {name: float(v) for name, v in zip(self.variables, self.variances[record])}


@dataclass(frozen=True)
class StudentTTail:
    """Non-Gaussian log-density correction for Student-t observations.

    Evaluates ``sum_e [t_logpdf(x_e) - gaussian_projection_logpdf(x_e)]``
    over a batch of states — the exact difference between each record's true
    observation terms and the moment-matched Gaussian blocks already inside
    the kernel's buffers (up to per-record constants, which cancel in every
    Metropolis ratio).
    """

    #: Global variable slot of each Student-t-observed event.
    slots: np.ndarray
    loc: np.ndarray  # (B, E)
    scale: np.ndarray  # (B, E)
    df: np.ndarray  # (B, E)
    #: Moment-matched Gaussian variance per observation, (B, E).
    variance: np.ndarray

    def __call__(self, x: np.ndarray) -> np.ndarray:
        values = x[:, self.slots]
        tail = student_t_log_pdf(values, self.loc, self.scale, self.df)
        gaussian = -0.5 * (values - self.loc) ** 2 / self.variance
        return (tail - gaussian).sum(axis=-1)


@register_estimator(
    "batched-mcmc",
    compiled_path=True,
    default_adapt=False,
    description="full-posterior coupled-chain sampling over the kernel's buffers",
)
class BatchedMCMC:
    """Coupled-chain MCMC moment estimator over a compiled graph structure.

    Drives the compiled kernel's buffers: site blocks from the array-native
    binder are scattered into per-record global natural parameters
    (:meth:`~repro.fg.compiled.CompiledEPKernel.assemble_global`), whose
    Cholesky read-out seeds the chains, scales the proposals and serves as
    the control-variate baseline.  One ``run`` advances ``B`` chains (plus
    their ``B`` Gaussian shadow chains) in lock-step with vectorized
    log-density evaluation; randomness is drawn per record from that
    record's own seed, so a record solved alone is bit-identical to the
    same record inside a batch.

    Parameters
    ----------
    kernel:
        A :class:`~repro.fg.compiled.CompiledEPKernel` (only its structure
        and read-out are used).
    n_samples, burn_in:
        Post-burn-in sample count and burn-in steps per chain.
    step_scale:
        Proposal standard deviations are
        ``step_scale / sqrt(n) * posterior_std`` — the classic random-walk
        scaling with ``step_scale = 2.38``.
    adapt:
        Adapt each record's proposal scales to its own acceptance rate
        during burn-in (windowed, per record — see the module constants).
        Defaults to *off* so existing golden-trace numerics are unchanged
        unless callers opt in; :class:`ReferenceMCMC` mirrors the flag.
    target_acceptance, adapt_window:
        Adaptation target rate and window length (ignored unless ``adapt``).
    """

    def __init__(
        self,
        kernel,
        *,
        n_samples: int = 300,
        burn_in: int = 200,
        step_scale: float = 2.38,
        adapt: bool = False,
        target_acceptance: float = 0.35,
        adapt_window: int = 50,
    ) -> None:
        if n_samples <= 0:
            raise ValueError("n_samples must be positive")
        if burn_in < 0:
            raise ValueError("burn_in must be non-negative")
        if step_scale <= 0:
            raise ValueError("step_scale must be positive")
        if not 0.0 < target_acceptance < 1.0:
            raise ValueError("target_acceptance must lie in (0, 1)")
        if adapt_window <= 0:
            raise ValueError("adapt_window must be positive")
        self.kernel = kernel
        self.n_samples = n_samples
        self.burn_in = burn_in
        self.step_scale = step_scale
        self.adapt = adapt
        self.target_acceptance = target_acceptance
        self.adapt_window = adapt_window

    def run(
        self,
        stacked: Sequence[Tuple[np.ndarray, np.ndarray]],
        prior_precision: np.ndarray,
        prior_shift: np.ndarray,
        *,
        seeds: Sequence[int],
        extra_log_density: Optional[Callable[[np.ndarray], np.ndarray]] = None,
    ) -> BatchedMCMCResult:
        """Estimate posterior moments for a batch of records.

        ``stacked`` / ``prior_precision`` / ``prior_shift`` take the exact
        shapes of :meth:`CompiledEPKernel.run_stacked`; ``seeds`` gives one
        RNG seed per record; ``extra_log_density`` adds each record's
        non-Gaussian correction (e.g. :class:`StudentTTail`) to the true
        chain's target.
        """
        precision, shift = self.kernel.assemble_global(
            stacked, prior_precision, prior_shift
        )
        batch, dim = shift.shape
        if len(seeds) != batch:
            raise ValueError("run() needs one seed per record")
        baseline_mean, baseline_var = self.kernel.read_out(precision, shift)
        scales = (self.step_scale / np.sqrt(dim)) * np.sqrt(
            np.maximum(baseline_var, 1e-30)
        )
        rngs = [np.random.default_rng(int(seed)) for seed in seeds]

        def gaussian_part(state: np.ndarray) -> np.ndarray:
            product = (precision @ state[..., None])[..., 0]
            return -0.5 * np.sum(state * product, axis=-1) + np.sum(shift * state, axis=-1)

        def true_log_density(state: np.ndarray) -> np.ndarray:
            value = gaussian_part(state)
            if extra_log_density is not None:
                value = value + extra_log_density(state)
            return value

        chain = baseline_mean.copy()
        shadow = baseline_mean.copy()
        chain_logp = true_log_density(chain)
        shadow_logp = gaussian_part(shadow)

        sum_chain = np.zeros((batch, dim))
        sum_chain_sq = np.zeros((batch, dim))
        sum_shadow = np.zeros((batch, dim))
        sum_shadow_sq = np.zeros((batch, dim))
        accepted = np.zeros(batch)
        window_accepts = np.zeros(batch)

        total_steps = self.burn_in + self.n_samples
        for step in range(total_steps):
            # Per-record draws keep each record's stream independent of the
            # batch composition (and aligned with the reference twin's).
            noise = np.stack([rng.standard_normal(dim) for rng in rngs])
            log_uniform = np.log(np.array([rng.random() for rng in rngs]))
            offset = scales * noise
            chain_proposal = chain + offset
            shadow_proposal = shadow + offset

            chain_proposal_logp = true_log_density(chain_proposal)
            shadow_proposal_logp = gaussian_part(shadow_proposal)
            accept_chain = log_uniform < (chain_proposal_logp - chain_logp)
            accept_shadow = log_uniform < (shadow_proposal_logp - shadow_logp)

            chain = np.where(accept_chain[:, None], chain_proposal, chain)
            chain_logp = np.where(accept_chain, chain_proposal_logp, chain_logp)
            shadow = np.where(accept_shadow[:, None], shadow_proposal, shadow)
            shadow_logp = np.where(accept_shadow, shadow_proposal_logp, shadow_logp)
            accepted += accept_chain

            if self.adapt and step < self.burn_in:
                # Per-record windowed adaptation: each record tunes its own
                # scales to its own acceptance rate, so a badly-conditioned
                # slice cannot drag the whole batch's step size down.
                window_accepts += accept_chain
                if (step + 1) % self.adapt_window == 0:
                    scales = _adapted_scales(
                        scales, window_accepts / self.adapt_window, self.target_acceptance
                    )
                    window_accepts = np.zeros(batch)

            if step >= self.burn_in:
                sum_chain += chain
                sum_chain_sq += chain * chain
                sum_shadow += shadow
                sum_shadow_sq += shadow * shadow

        count = float(self.n_samples)
        means = baseline_mean + (sum_chain - sum_shadow) / count
        variances = np.maximum(
            baseline_var
            + (sum_chain_sq - sum_shadow_sq) / count
            - (means * means - baseline_mean * baseline_mean),
            1e-12,
        )
        return BatchedMCMCResult(
            variables=self.kernel.structure.variables,
            means=means,
            variances=variances,
            baseline_means=baseline_mean,
            baseline_variances=baseline_var,
            acceptance_rates=accepted / total_steps,
            n_samples=self.n_samples,
        )


# -- per-site tilted MCMC (the accelerator's inner loop, batched) -------------


def _information_moments(
    precision: np.ndarray, shift: np.ndarray
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Batched mirror of :meth:`GaussianDensity.moments`.

    Same arithmetic — ``1e-12`` diagonal jitter, Cholesky first, LU inverse
    fallback — applied record-wise so a record inside a batch sees the exact
    computation it would see alone.  Returns ``(mean, cov, proper)`` where
    ``proper[b]`` is False for records whose precision is outright singular
    (the case where the object path raises and EP falls back to the prior).
    """
    batch, n = shift.shape
    jittered = precision + 1e-12 * np.eye(n)
    try:
        mean, cov = cholesky_moments(jittered, shift)
        return mean, cov, np.ones(batch, dtype=bool)
    except np.linalg.LinAlgError:
        pass
    means = np.empty_like(shift)
    covs = np.empty_like(jittered)
    proper = np.ones(batch, dtype=bool)
    for b in range(batch):
        try:
            means[b], covs[b] = cholesky_moments(jittered[b], shift[b])
            continue
        except np.linalg.LinAlgError:
            pass
        try:
            cov_b = np.linalg.inv(jittered[b])
        except np.linalg.LinAlgError:
            proper[b] = False
            means[b] = 0.0
            covs[b] = np.eye(n)
            continue
        cov_b = 0.5 * (cov_b + cov_b.T)
        covs[b] = cov_b
        means[b] = cov_b @ shift[b]
    return means, covs, proper


def _marginal_information(
    mean: np.ndarray, cov: np.ndarray, index: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Batched mirror of :meth:`GaussianDensity.marginal` (moment projection).

    Projects full-space moments onto the ``index`` slots and converts back
    to information form with the same jitter/Cholesky/inverse sequence the
    object path uses.  Returns ``(precision, shift)`` in site-local order.
    """
    width = len(index)
    sub_mean = mean[:, index]
    sub_cov = cov[:, index[:, None], index[None, :]] + 1e-12 * np.eye(width)
    try:
        sub_precision = cholesky_inverse(sub_cov)
    except np.linalg.LinAlgError:
        sub_precision = np.empty_like(sub_cov)
        for b in range(sub_cov.shape[0]):
            try:
                sub_precision[b] = cholesky_inverse(sub_cov[b])
            except np.linalg.LinAlgError:
                inverse = np.linalg.inv(sub_cov[b])
                sub_precision[b] = 0.5 * (inverse + inverse.T)
    sub_shift = (sub_precision @ sub_mean[..., None])[..., 0]
    return sub_precision, sub_shift


def _repaired_precision(precision: np.ndarray, eye: np.ndarray) -> np.ndarray:
    """Batched PD repair of site targets (the reference ``_safe_divide``).

    Cholesky certifies the common PD case; on failure the eigenvalue bump
    of the historical implementation runs record-wise.
    """
    try:
        np.linalg.cholesky(precision)
        return precision
    except np.linalg.LinAlgError:
        pass
    symmetric = 0.5 * (precision + np.swapaxes(precision, -1, -2))
    smallest = np.linalg.eigvalsh(symmetric)[..., 0]
    bump = np.where(smallest <= 0, np.abs(smallest) + 1e-9, 0.0)
    return precision + bump[:, None, None] * eye


@dataclass
class SiteMCMCMoments:
    """Posterior moments from one per-site tilted-MCMC EP run (one record).

    Returned by :class:`~repro.fg.ep.ReferenceSiteMCMC`, the object-walking
    twin of :class:`BatchedSiteMCMC`.
    """

    variables: Tuple[str, ...]
    means: np.ndarray  # (n,)
    variances: np.ndarray  # (n,)
    iterations: int
    converged: bool
    #: Step-weighted true-chain acceptance rate over every site chain.
    acceptance_rate: float
    n_samples: int

    def mean(self) -> Dict[str, float]:
        return {name: float(v) for name, v in zip(self.variables, self.means)}

    def variance(self) -> Dict[str, float]:
        return {name: float(v) for name, v in zip(self.variables, self.variances)}


@dataclass
class BatchedSiteMCMCResult:
    """Batched outcome of a :class:`BatchedSiteMCMC` run (leading axis = record)."""

    variables: Tuple[str, ...]
    means: np.ndarray  # (B, n)
    variances: np.ndarray  # (B, n)
    iterations: np.ndarray  # (B,)
    converged: np.ndarray  # (B,)
    #: Step-weighted true-chain acceptance rate per record, over every site
    #: chain the record ran.
    acceptance_rates: np.ndarray  # (B,)
    n_samples: int

    def __len__(self) -> int:
        return self.means.shape[0]

    def mean_dict(self, record: int = 0) -> Dict[str, float]:
        return {name: float(v) for name, v in zip(self.variables, self.means[record])}

    def variance_dict(self, record: int = 0) -> Dict[str, float]:
        return {name: float(v) for name, v in zip(self.variables, self.variances[record])}


@register_estimator(
    "mcmc",
    compiled_path=True,
    default_adapt=True,
    description="per-site tilted MCMC inside the EP loop (the accelerator workload)",
)
class BatchedSiteMCMC:
    """Per-site tilted-moment MCMC inside EP, batched over records.

    This is the paper's accelerator workload proper: lines 3-6 of Alg. 1
    with the tilted moments of every site estimated by a Markov chain, run
    for ``B`` records sharing one compiled graph structure.  Each site
    update forms the cavity (batched Schur marginalisation of the global
    buffers), runs a coupled pair of random-walk chains on the tilted
    distribution — the true chain on ``cavity x site factors``, a
    common-random-numbers shadow chain on its Gaussian projection, whose
    analytically-known natural parameters act as a control variate — and
    folds the sampled correction back into the site's natural parameters.
    On purely Gaussian sites the chains coincide step for step and the
    update reduces *exactly* to the analytic factor-block target; with
    Student-t observations the coupled correction captures the heavy-tail
    deviation per site.

    Proposal scales start at ``step_scale / sqrt(w) x projected std`` and,
    with ``adapt`` (default on), each *record* retunes its own scales to
    its own acceptance rate during burn-in — the per-record adaptation the
    fixed-scale :class:`BatchedMCMC` lacks.  All randomness is drawn per
    record from that record's seed, so a record solved alone is
    bit-identical to the same record inside a batch.

    :class:`~repro.fg.ep.ReferenceSiteMCMC` is the object-walking twin the
    differential harness pins this class against; a :class:`ChainTrace`
    passed as ``recorder`` captures every site chain for the accelerator
    co-simulation.
    """

    def __init__(
        self,
        kernel,
        *,
        n_samples: int = 300,
        burn_in: int = 200,
        step_scale: float = 2.38,
        adapt: bool = True,
        target_acceptance: float = 0.35,
        adapt_window: int = 50,
        recorder: Optional[ChainTrace] = None,
    ) -> None:
        if n_samples <= 0:
            raise ValueError("n_samples must be positive")
        if burn_in < 0:
            raise ValueError("burn_in must be non-negative")
        if step_scale <= 0:
            raise ValueError("step_scale must be positive")
        if not 0.0 < target_acceptance < 1.0:
            raise ValueError("target_acceptance must lie in (0, 1)")
        if adapt_window <= 0:
            raise ValueError("adapt_window must be positive")
        self.kernel = kernel
        self.n_samples = n_samples
        self.burn_in = burn_in
        self.step_scale = step_scale
        self.adapt = adapt
        self.target_acceptance = target_acceptance
        self.adapt_window = adapt_window
        self.recorder = recorder

    def _site_chain(
        self,
        g_precision: np.ndarray,
        g_shift: np.ndarray,
        g_mean: np.ndarray,
        g_cov: np.ndarray,
        rngs: Sequence[np.random.Generator],
        active: np.ndarray,
        tail: Optional[Callable[[np.ndarray], np.ndarray]],
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, List[np.ndarray]]:
        """Run the coupled chain pair for one site; returns the corrections.

        ``(d, D, accepted, scales, windows)``: mean correction ``(B, w)``,
        covariance correction ``(B, w, w)``, true-chain acceptance counts
        ``(B,)``, the (possibly adapted) final proposal scales, and the
        per-window burn-in acceptance trajectory — one ``(B,)`` count array
        per completed adaptation window (empty without adaptation).
        """
        batch, width = g_mean.shape
        zero = np.zeros(width)
        scales = (self.step_scale / np.sqrt(width)) * np.sqrt(
            np.maximum(np.diagonal(g_cov, axis1=-2, axis2=-1), 1e-30)
        )

        def gaussian_part(state: np.ndarray) -> np.ndarray:
            product = (g_precision @ state[..., None])[..., 0]
            return -0.5 * np.sum(state * product, axis=-1) + np.sum(g_shift * state, axis=-1)

        def true_log_density(state: np.ndarray) -> np.ndarray:
            value = gaussian_part(state)
            if tail is not None:
                value = value + tail(state)
            return value

        chain = g_mean.copy()
        shadow = g_mean.copy()
        chain_logp = true_log_density(chain)
        shadow_logp = gaussian_part(shadow)

        sum_chain = np.zeros((batch, width))
        sum_shadow = np.zeros((batch, width))
        sum_chain_outer = np.zeros((batch, width, width))
        sum_shadow_outer = np.zeros((batch, width, width))
        accepted = np.zeros(batch)
        window_accepts = np.zeros(batch)
        window_history: List[np.ndarray] = []

        total_steps = self.burn_in + self.n_samples
        for step in range(total_steps):
            # Per-record draws: a converged (inactive) record stops
            # consuming its stream, exactly like the twin breaking out of
            # its EP loop; everyone else's stream is untouched by it.
            noise = np.stack(
                [
                    rng.standard_normal(width) if act else zero
                    for rng, act in zip(rngs, active)
                ]
            )
            log_uniform = np.array(
                [np.log(rng.random()) if act else 0.0 for rng, act in zip(rngs, active)]
            )
            offset = scales * noise
            chain_proposal = chain + offset
            shadow_proposal = shadow + offset

            chain_proposal_logp = true_log_density(chain_proposal)
            shadow_proposal_logp = gaussian_part(shadow_proposal)
            accept_chain = active & (log_uniform < (chain_proposal_logp - chain_logp))
            accept_shadow = active & (log_uniform < (shadow_proposal_logp - shadow_logp))

            chain = np.where(accept_chain[:, None], chain_proposal, chain)
            chain_logp = np.where(accept_chain, chain_proposal_logp, chain_logp)
            shadow = np.where(accept_shadow[:, None], shadow_proposal, shadow)
            shadow_logp = np.where(accept_shadow, shadow_proposal_logp, shadow_logp)
            accepted += accept_chain

            if self.adapt and step < self.burn_in:
                window_accepts += accept_chain
                if (step + 1) % self.adapt_window == 0:
                    window_history.append(window_accepts.copy())
                    scales = _adapted_scales(
                        scales, window_accepts / self.adapt_window, self.target_acceptance
                    )
                    window_accepts = np.zeros(batch)

            if step >= self.burn_in:
                sum_chain += chain
                sum_shadow += shadow
                sum_chain_outer += chain[:, :, None] * chain[:, None, :]
                sum_shadow_outer += shadow[:, :, None] * shadow[:, None, :]

        count = float(self.n_samples)
        d = (sum_chain - sum_shadow) / count
        moment_diff = (sum_chain_outer - sum_shadow_outer) / count
        # Full-covariance control variate: tilted_cov = G_cov + D with
        # D = (M_chain - M_shadow) - (mean x d + d x mean + d x d), which is
        # identically zero whenever the chains stayed coupled.
        cross = g_mean[:, :, None] * d[:, None, :]
        covariance_correction = moment_diff - (
            cross + np.swapaxes(cross, -1, -2) + d[:, :, None] * d[:, None, :]
        )
        return d, covariance_correction, accepted, scales, window_history

    def run(
        self,
        stacked: Sequence[Tuple[np.ndarray, np.ndarray]],
        prior_precision: np.ndarray,
        prior_shift: np.ndarray,
        *,
        seeds: Sequence[int],
        site_tails: Optional[Mapping[int, Callable[[np.ndarray], np.ndarray]]] = None,
        ticks: Optional[Sequence[int]] = None,
    ) -> BatchedSiteMCMCResult:
        """Run per-site tilted-MCMC EP for a batch of records.

        ``stacked`` / ``prior_precision`` / ``prior_shift`` take the exact
        shapes of :meth:`CompiledEPKernel.run_stacked`; ``seeds`` gives one
        RNG seed per record; ``site_tails`` maps a compiled-site index to
        that site's non-Gaussian log-density correction in *site-local*
        coordinates (e.g. a :class:`StudentTTail` built over local slots);
        ``ticks`` labels each record's chain-trace entries.
        """
        sites = self.kernel.structure.sites
        if len(stacked) != len(sites):
            raise ValueError(
                f"run() expects {len(sites)} site blocks, got {len(stacked)}"
            )
        batch, n = prior_shift.shape
        if len(seeds) != batch:
            raise ValueError("run() needs one seed per record")
        tick_labels = list(ticks) if ticks is not None else [-1] * batch
        if len(tick_labels) != batch:
            raise ValueError("run() needs one tick label per record")
        tails = dict(site_tails) if site_tails else {}
        rngs = [np.random.default_rng(int(seed)) for seed in seeds]
        recorder = self.recorder
        slice_base = recorder.reserve_slices(batch) if recorder is not None else 0

        prior_mean, prior_cov, prior_proper = _information_moments(
            prior_precision, prior_shift
        )
        if not prior_proper.all():
            raise ValueError("per-site MCMC requires a proper prior for every record")

        global_precision = prior_precision.copy()
        global_shift = prior_shift.copy()
        site_precision = [np.zeros_like(p) for p, _ in stacked]
        site_shift = [np.zeros_like(s) for _, s in stacked]
        site_eyes = [np.eye(site.width) for site in sites]

        eta = self.kernel.damping
        active = np.ones(batch, dtype=bool)
        converged = np.zeros(batch, dtype=bool)
        iterations = np.zeros(batch, dtype=np.intp)
        max_delta = np.full(batch, np.inf)
        accepted_total = np.zeros(batch)
        steps_total = np.zeros(batch)
        chain_steps = self.burn_in + self.n_samples

        for iteration in range(1, self.kernel.max_iterations + 1):
            iteration_delta = np.zeros(batch)
            for k, site in enumerate(sites):
                index = site.index
                rows = index[:, None]
                cols = index[None, :]

                # Cavity: g / g_k in the full space, then the site marginal
                # (moment projection, mirroring GaussianDensity.marginal);
                # an outright-singular cavity falls back to the prior's
                # marginal, as the reference EP loop does.
                cavity_precision = global_precision.copy()
                cavity_precision[:, rows, cols] -= site_precision[k]
                cavity_shift = global_shift.copy()
                cavity_shift[:, index] -= site_shift[k]
                cavity_mean, cavity_cov, proper = _information_moments(
                    cavity_precision, cavity_shift
                )
                if not proper.all():
                    cavity_mean = np.where(proper[:, None], cavity_mean, prior_mean)
                    cavity_cov = np.where(proper[:, None, None], cavity_cov, prior_cov)
                marginal_precision, marginal_shift = _marginal_information(
                    cavity_mean, cavity_cov, index
                )

                # Gaussian projection of the tilted distribution: cavity
                # marginal x the site's (raw) factor blocks.
                block_precision, block_shift = stacked[k]
                g_precision = marginal_precision + block_precision
                g_shift = marginal_shift + block_shift
                g_mean, g_cov, g_proper = _information_moments(g_precision, g_shift)
                if not g_proper.all():
                    raise np.linalg.LinAlgError(
                        "tilted projection is singular for some record"
                    )

                d, covariance_correction, accepted, scales, windows = self._site_chain(
                    g_precision, g_shift, g_mean, g_cov, rngs, active, tails.get(k)
                )
                accepted_total += np.where(active, accepted, 0.0)
                steps_total += np.where(active, float(chain_steps), 0.0)

                # Records whose sampled covariance correction breaks the
                # tilted covariance's positive definiteness drop D (keeping
                # the mean correction) — the projection is the fallback.
                tilted_cov = g_cov + covariance_correction
                try:
                    np.linalg.cholesky(tilted_cov)
                except np.linalg.LinAlgError:
                    keep = np.ones(batch, dtype=bool)
                    for b in range(batch):
                        try:
                            np.linalg.cholesky(tilted_cov[b])
                        except np.linalg.LinAlgError:
                            keep[b] = False
                    covariance_correction = np.where(
                        keep[:, None, None], covariance_correction, 0.0
                    )
                    tilted_cov = g_cov + covariance_correction

                # Natural-parameter form of the sampled correction, without
                # the moments->natural round trip:  inv(A+D) - inv(A) =
                # -inv(A) D inv(A+D), so the site target is the analytic
                # factor block plus a term that is *exactly* zero when the
                # chains never decoupled (Gaussian sites solve exactly).
                inverse_tilted = cholesky_inverse(tilted_cov)
                delta_precision = -(g_precision @ covariance_correction @ inverse_tilted)
                delta_precision = 0.5 * (
                    delta_precision + np.swapaxes(delta_precision, -1, -2)
                )
                tilted_mean = g_mean + d
                delta_shift = (g_precision @ d[..., None])[..., 0] + (
                    delta_precision @ tilted_mean[..., None]
                )[..., 0]
                target_precision = _repaired_precision(
                    block_precision + delta_precision, site_eyes[k]
                )
                target_shift = block_shift + delta_shift

                # Damping, convergence delta and masked scatter-add: the
                # exact arithmetic of CompiledEPKernel.run_stacked.
                old_precision, old_shift = site_precision[k], site_shift[k]
                damped_precision = (1 - eta) * old_precision + eta * target_precision
                damped_shift = (1 - eta) * old_shift + eta * target_shift

                old_pmax = np.abs(old_precision).max(axis=(-2, -1))
                new_pmax = np.abs(damped_precision).max(axis=(-2, -1))
                scale_p = np.maximum(np.maximum(old_pmax, new_pmax), 1.0)
                delta_p = np.abs(old_precision - damped_precision).max(axis=(-2, -1)) / scale_p
                old_smax = np.abs(old_shift).max(axis=-1)
                new_smax = np.abs(damped_shift).max(axis=-1)
                scale_s = np.maximum(np.maximum(old_smax, new_smax), 1.0)
                delta_s = np.abs(old_shift - damped_shift).max(axis=-1) / scale_s
                iteration_delta = np.maximum(iteration_delta, np.maximum(delta_p, delta_s))

                diff_precision = np.where(
                    active[:, None, None], damped_precision - old_precision, 0.0
                )
                diff_shift = np.where(active[:, None], damped_shift - old_shift, 0.0)
                site_precision[k] = old_precision + diff_precision
                site_shift[k] = old_shift + diff_shift
                global_precision[:, rows, cols] += diff_precision
                global_shift[:, index] += diff_shift

                if recorder is not None:
                    mean_scales = scales.mean(axis=-1)
                    for b in range(batch):
                        if active[b]:
                            recorder.record(
                                slice_id=slice_base + b,
                                tick=int(tick_labels[b]),
                                iteration=iteration,
                                site=site.name,
                                site_index=k,
                                width=site.width,
                                n_factors=len(site.ops),
                                n_steps=chain_steps,
                                burn_in=self.burn_in,
                                accepted=int(accepted[b]),
                                step_scale=float(mean_scales[b]),
                                windows=tuple(int(w[b]) for w in windows),
                            )

            iterations = np.where(active, iteration, iterations)
            max_delta = np.where(active, iteration_delta, max_delta)
            newly_converged = active & (iteration_delta < self.kernel.tolerance)
            converged |= newly_converged
            active &= ~newly_converged
            if not active.any():
                break

        means, variances = self.kernel.read_out(global_precision, global_shift)
        return BatchedSiteMCMCResult(
            variables=self.kernel.structure.variables,
            means=means,
            variances=variances,
            iterations=iterations,
            converged=converged,
            acceptance_rates=accepted_total / np.maximum(steps_total, 1.0),
            n_samples=self.n_samples,
        )


@register_reference("batched-mcmc")
class ReferenceMCMC:
    """Object-based reference twin of :class:`BatchedMCMC` (one record).

    Runs the identical coupled-chain estimator, but the slow, readable way:
    the Gaussian projection is assembled by multiplying
    :class:`~repro.fg.gaussian.GaussianDensity` objects, and every
    log-density evaluation walks the record's Python factor objects with a
    ``{variable: value}`` mapping.  The differential test harness (and the
    MCMC benchmark) pin :class:`BatchedMCMC` against this twin.

    Seed handling: ``run`` derives *everything* from its RNG argument and
    mutates no sampler state, so repeated calls with equally-seeded
    generators reproduce each other exactly — unlike
    :class:`RandomWalkMetropolis`, whose ``run`` continues the previous
    chain.
    """

    def __init__(
        self,
        factors: Sequence,
        prior,
        *,
        n_samples: int = 300,
        burn_in: int = 200,
        step_scale: float = 2.38,
        adapt: bool = False,
        target_acceptance: float = 0.35,
        adapt_window: int = 50,
        seed: int = 0,
    ) -> None:
        if n_samples <= 0:
            raise ValueError("n_samples must be positive")
        if burn_in < 0:
            raise ValueError("burn_in must be non-negative")
        self.adapt = adapt
        self.target_acceptance = target_acceptance
        self.adapt_window = adapt_window
        self._factors = list(factors)
        not_projectable = [
            factor.name for factor in self._factors if not factor.anchor_free
        ]
        if not_projectable:
            raise ValueError(
                f"ReferenceMCMC requires anchor-free factors, got {not_projectable}"
            )
        self.n_samples = n_samples
        self.burn_in = burn_in
        self.step_scale = step_scale
        self._seed = seed
        # Gaussian projection of the whole record: prior x every factor's
        # (anchor-free) projection.  Exact when all factors are Gaussian.
        gaussian = prior.copy()
        for factor in self._factors:
            gaussian = gaussian.multiply(factor.to_gaussian(None))
        self._gaussian = gaussian
        #: (factor, projection) pairs whose true density is non-Gaussian.
        self._corrections = [
            (factor, factor.to_gaussian(None))
            for factor in self._factors
            if not factor.is_gaussian
        ]
        self.variables: Tuple[str, ...] = gaussian.variables

    def _as_dict(self, state: np.ndarray) -> Dict[str, float]:
        return {name: float(state[i]) for i, name in enumerate(self.variables)}

    def _log_density(self, values: Mapping[str, float]) -> float:
        total = self._gaussian.log_density(values)
        for factor, projection in self._corrections:
            total += factor.log_density(values) - projection.log_density(values)
        return total

    def run(self, *, rng: Optional[np.random.Generator] = None) -> MCMCMoments:
        """Estimate the record's posterior moments.

        A fresh chain is built from scratch on every call: with an
        explicitly seeded ``rng`` (or none — the constructor seed is used),
        repeated runs are bit-for-bit reproducible.
        """
        rng = np.random.default_rng(self._seed) if rng is None else rng
        dim = len(self.variables)
        baseline_mean, baseline_cov = self._gaussian.moments()
        baseline_var = np.diag(baseline_cov).copy()
        scales = (self.step_scale / np.sqrt(dim)) * np.sqrt(
            np.maximum(baseline_var, 1e-30)
        )

        chain = baseline_mean.copy()
        shadow = baseline_mean.copy()
        chain_logp = self._log_density(self._as_dict(chain))
        shadow_logp = self._gaussian.log_density(self._as_dict(shadow))

        sum_chain = np.zeros(dim)
        sum_chain_sq = np.zeros(dim)
        sum_shadow = np.zeros(dim)
        sum_shadow_sq = np.zeros(dim)
        accepted = 0
        window_accepts = 0

        total_steps = self.burn_in + self.n_samples
        for step in range(total_steps):
            noise = rng.standard_normal(dim)
            log_uniform = np.log(rng.random())
            offset = scales * noise
            chain_proposal = chain + offset
            shadow_proposal = shadow + offset

            chain_proposal_logp = self._log_density(self._as_dict(chain_proposal))
            shadow_proposal_logp = self._gaussian.log_density(self._as_dict(shadow_proposal))
            if log_uniform < (chain_proposal_logp - chain_logp):
                chain = chain_proposal
                chain_logp = chain_proposal_logp
                accepted += 1
                window_accepts += 1
            if log_uniform < (shadow_proposal_logp - shadow_logp):
                shadow = shadow_proposal
                shadow_logp = shadow_proposal_logp

            if self.adapt and step < self.burn_in:
                # Scalar-rate mirror of BatchedMCMC's per-record adaptation.
                if (step + 1) % self.adapt_window == 0:
                    scales = _adapted_scales(
                        scales, window_accepts / self.adapt_window, self.target_acceptance
                    )
                    window_accepts = 0

            if step >= self.burn_in:
                sum_chain += chain
                sum_chain_sq += chain * chain
                sum_shadow += shadow
                sum_shadow_sq += shadow * shadow

        count = float(self.n_samples)
        means = baseline_mean + (sum_chain - sum_shadow) / count
        variances = np.maximum(
            baseline_var
            + (sum_chain_sq - sum_shadow_sq) / count
            - (means * means - baseline_mean * baseline_mean),
            1e-12,
        )
        return MCMCMoments(
            variables=self.variables,
            means=means,
            variances=variances,
            baseline_means=baseline_mean,
            baseline_variances=baseline_var,
            acceptance_rate=accepted / total_steps,
            n_samples=self.n_samples,
        )
