"""Random-walk Metropolis MCMC over factor-graph densities.

Inside each EP site, the paper estimates the tilted distribution's moments by
Markov chain Monte Carlo (line 4 of Alg. 1); the accelerator implements many
such samplers in hardware.  This module provides the software equivalent: an
adaptive random-walk Metropolis sampler over a callable log density.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Mapping, Optional, Sequence, Tuple

import numpy as np


@dataclass
class MCMCResult:
    """Samples and summary statistics from one MCMC run."""

    variables: Tuple[str, ...]
    samples: np.ndarray
    acceptance_rate: float
    n_steps: int

    def mean(self) -> Dict[str, float]:
        means = self.samples.mean(axis=0)
        return {name: float(means[i]) for i, name in enumerate(self.variables)}

    def covariance(self) -> np.ndarray:
        if self.samples.shape[0] < 2:
            return np.zeros((len(self.variables), len(self.variables)))
        return np.cov(self.samples, rowvar=False).reshape(len(self.variables), len(self.variables))

    def variance(self) -> Dict[str, float]:
        cov = self.covariance()
        return {name: float(cov[i, i]) for i, name in enumerate(self.variables)}

    def quantile(self, q: float) -> Dict[str, float]:
        values = np.quantile(self.samples, q, axis=0)
        return {name: float(values[i]) for i, name in enumerate(self.variables)}


class RandomWalkMetropolis:
    """Adaptive random-walk Metropolis sampler over named scalar variables.

    Parameters
    ----------
    log_density:
        Callable mapping ``{variable: value}`` to an unnormalised log density.
    variables:
        Ordered variable names defining the state vector.
    initial:
        Starting state.  Variables missing from the mapping start at zero.
    step_scales:
        Per-variable proposal standard deviations.  Defaults to 5% of the
        starting magnitude (floored at ``min_step``).
    rng:
        NumPy random generator (seeded by the caller for determinism).
    target_acceptance:
        Desired acceptance rate for the adaptive step-size tuning.
    """

    def __init__(
        self,
        log_density: Callable[[Mapping[str, float]], float],
        variables: Sequence[str],
        initial: Mapping[str, float],
        *,
        step_scales: Optional[Mapping[str, float]] = None,
        rng: Optional[np.random.Generator] = None,
        target_acceptance: float = 0.35,
        min_step: float = 1e-6,
    ) -> None:
        self._log_density = log_density
        self.variables: Tuple[str, ...] = tuple(variables)
        if not self.variables:
            raise ValueError("MCMC needs at least one variable")
        self._rng = rng if rng is not None else np.random.default_rng(0)
        self._state = np.array([float(initial.get(name, 0.0)) for name in self.variables])
        if step_scales is None:
            # 5% of the starting magnitude, falling back to unit steps for
            # variables starting at zero (adaptation refines this further).
            magnitudes = np.where(np.abs(self._state) > 0, np.abs(self._state) * 0.05, 1.0)
            self._steps = np.maximum(magnitudes, min_step)
        else:
            self._steps = np.array(
                [max(float(step_scales.get(name, min_step)), min_step) for name in self.variables]
            )
        self._target_acceptance = target_acceptance
        self._min_step = min_step

    def _as_dict(self, state: np.ndarray) -> Dict[str, float]:
        return {name: float(state[i]) for i, name in enumerate(self.variables)}

    def run(
        self,
        n_samples: int,
        *,
        burn_in: int = 200,
        thin: int = 1,
        adapt: bool = True,
    ) -> MCMCResult:
        """Run the chain and return post-burn-in, thinned samples."""
        if n_samples <= 0:
            raise ValueError("n_samples must be positive")
        if thin <= 0:
            raise ValueError("thin must be positive")
        total_steps = burn_in + n_samples * thin
        dim = len(self.variables)
        samples = np.empty((n_samples, dim))
        current = self._state.copy()
        current_logp = self._log_density(self._as_dict(current))
        accepted = 0
        collected = 0
        adapt_window = max(50, dim * 10)
        window_accepts = 0

        for step in range(total_steps):
            proposal = current + self._rng.normal(0.0, self._steps, size=dim)
            proposal_logp = self._log_density(self._as_dict(proposal))
            log_ratio = proposal_logp - current_logp
            if log_ratio >= 0 or np.log(self._rng.random()) < log_ratio:
                current = proposal
                current_logp = proposal_logp
                accepted += 1
                window_accepts += 1

            if adapt and step < burn_in and (step + 1) % adapt_window == 0:
                rate = window_accepts / adapt_window
                if rate < self._target_acceptance * 0.8:
                    self._steps *= 0.6
                elif rate > self._target_acceptance * 1.2:
                    self._steps *= 1.7
                self._steps = np.maximum(self._steps, self._min_step)
                window_accepts = 0

            if step >= burn_in and (step - burn_in) % thin == 0 and collected < n_samples:
                samples[collected] = current
                collected += 1

        self._state = current
        return MCMCResult(
            variables=self.variables,
            samples=samples[:collected],
            acceptance_rate=accepted / total_steps,
            n_steps=total_steps,
        )
