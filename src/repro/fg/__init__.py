"""Probabilistic graphical-model substrate.

This package implements the machinery behind the BayesPerf ML model (§4):

* scalar and multivariate Gaussian densities in information form,
* a Student-t observation model for noisy counter samples (§4.2),
* a bipartite factor graph over event variables with Markov-blanket queries,
* random-walk Metropolis MCMC for sampling factor subsets,
* Expectation Propagation (Alg. 1) with either analytic or MCMC moment
  estimation per site,
* a compiled, vectorized EP kernel (index-compiled graph structures,
  Cholesky-based updates, batched multi-record solves),
* cross-signature mega-batching and multicore kernel execution
  (:mod:`repro.fg.megabatch`: canonical padded shapes whose padded lanes
  are exact no-ops, plus deterministic lane/signature thread partitions),
* a moment-estimator registry (:mod:`repro.fg.registry`) the samplers and
  their reference twins self-register into — every front door
  (engine, sessions, fleet CLI, :mod:`repro.api`) resolves estimator names
  through it, and
* maximum-likelihood extraction of point estimates from posteriors.
"""

from repro.fg.distributions import (
    Gaussian1D,
    StudentT,
    student_t_log_pdf,
    student_t_moment_variance,
)
from repro.fg.gaussian import GaussianDensity
from repro.fg.factors import (
    Factor,
    GaussianObservation,
    GaussianPriorFactor,
    LinearConstraintFactor,
    StudentTObservation,
)
from repro.fg.graph import FactorGraph
from repro.fg.markov import markov_blanket, markov_blanket_of_set
from repro.fg.mcmc import (
    BatchedMCMC,
    BatchedMCMCResult,
    BatchedSiteMCMC,
    BatchedSiteMCMCResult,
    ChainSiteVisit,
    ChainTrace,
    MCMCMoments,
    MCMCResult,
    RandomWalkMetropolis,
    ReferenceMCMC,
    SiteMCMCMoments,
    StudentTTail,
)
from repro.fg.ep import EPResult, ExpectationPropagation, ReferenceSiteMCMC
from repro.fg.registry import (
    EstimatorEntry,
    estimator_names,
    get_estimator,
    register_estimator,
    register_reference,
)
from repro.fg.compiled import (
    CompiledBinder,
    CompiledEPKernel,
    CompiledEPResult,
    CompiledGraph,
    ConstraintSiteBinder,
    ObservationSiteBinder,
    compile_factor_graph,
    site_factor_lists,
)
from repro.fg.megabatch import (
    KernelExecSpec,
    bind_bucketed_observation,
    concat_results,
    kernel_exec_from_env,
    lane_chunks,
    observation_certified,
    padding_slots,
    run_lane_partitioned,
)
from repro.fg.mle import credible_interval, map_estimate

__all__ = [
    "BatchedMCMC",
    "BatchedMCMCResult",
    "BatchedSiteMCMC",
    "BatchedSiteMCMCResult",
    "ChainSiteVisit",
    "ChainTrace",
    "ReferenceSiteMCMC",
    "SiteMCMCMoments",
    "CompiledBinder",
    "CompiledEPKernel",
    "CompiledEPResult",
    "CompiledGraph",
    "ConstraintSiteBinder",
    "KernelExecSpec",
    "bind_bucketed_observation",
    "concat_results",
    "kernel_exec_from_env",
    "lane_chunks",
    "observation_certified",
    "padding_slots",
    "run_lane_partitioned",
    "MCMCMoments",
    "ObservationSiteBinder",
    "ReferenceMCMC",
    "StudentTTail",
    "compile_factor_graph",
    "site_factor_lists",
    "student_t_log_pdf",
    "student_t_moment_variance",
    "Gaussian1D",
    "StudentT",
    "GaussianDensity",
    "Factor",
    "GaussianObservation",
    "StudentTObservation",
    "LinearConstraintFactor",
    "GaussianPriorFactor",
    "FactorGraph",
    "markov_blanket",
    "markov_blanket_of_set",
    "RandomWalkMetropolis",
    "MCMCResult",
    "ExpectationPropagation",
    "EPResult",
    "EstimatorEntry",
    "estimator_names",
    "get_estimator",
    "register_estimator",
    "register_reference",
    "map_estimate",
    "credible_interval",
]
