"""Counter register file.

A light hardware model of the per-thread counter registers: fixed counters
always accumulate their architectural event; programmable counters accumulate
whatever event the active configuration programmed into them.  The register
file is what the multiplexing sampler programs and reads on every quantum.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Tuple

from repro.events.catalog import EventCatalog
from repro.events.event import EventKind
from repro.pmu.configuration import CounterConfiguration


@dataclass
class CounterRegister:
    """One counter register: either fixed (hard-wired event) or programmable."""

    index: int
    kind: EventKind
    event: Optional[str] = None
    value: float = 0.0
    enabled_ticks: int = 0

    def program(self, event: Optional[str]) -> None:
        """Program the register to count *event* (programmable registers only)."""
        if self.kind is EventKind.FIXED:
            raise ValueError(f"fixed counter {self.index} cannot be reprogrammed")
        self.event = event

    def accumulate(self, amount: float) -> None:
        """Add an increment observed during one tick."""
        if self.event is None:
            return
        self.value += amount
        self.enabled_ticks += 1

    def read(self) -> float:
        """Current accumulated value."""
        return self.value

    def reset(self) -> None:
        """Clear the accumulated value and enabled time."""
        self.value = 0.0
        self.enabled_ticks = 0


class PMURegisterFile:
    """The set of counter registers visible to one hardware thread."""

    def __init__(self, catalog: EventCatalog, *, counters: Optional[int] = None) -> None:
        self.catalog = catalog
        n_programmable = (
            counters if counters is not None else catalog.counter_file.usable_programmable
        )
        if n_programmable <= 0:
            raise ValueError("the register file needs at least one programmable counter")
        self.fixed: Tuple[CounterRegister, ...] = tuple(
            CounterRegister(index=i, kind=EventKind.FIXED, event=spec.name)
            for i, spec in enumerate(catalog.fixed_events)
        )
        self.programmable: Tuple[CounterRegister, ...] = tuple(
            CounterRegister(index=i, kind=EventKind.PROGRAMMABLE) for i in range(n_programmable)
        )

    @property
    def n_programmable(self) -> int:
        return len(self.programmable)

    def program(self, configuration: CounterConfiguration) -> None:
        """Program the programmable registers according to a configuration."""
        assignment = configuration.assignment
        if not assignment:
            assignment = {event: i for i, event in enumerate(configuration.events)}
        if len(assignment) > self.n_programmable:
            raise ValueError(
                f"configuration needs {len(assignment)} counters, register file has {self.n_programmable}"
            )
        for register in self.programmable:
            register.program(None)
        for event, index in assignment.items():
            if not 0 <= index < self.n_programmable:
                raise ValueError(f"counter index {index} out of range")
            self.programmable[index].program(event)

    def accumulate_tick(self, true_values: Mapping[str, float]) -> None:
        """Accumulate one tick's true event counts into the active registers."""
        for register in self.fixed:
            if register.event in true_values:
                register.value += float(true_values[register.event])
                register.enabled_ticks += 1
        for register in self.programmable:
            if register.event is not None and register.event in true_values:
                register.accumulate(float(true_values[register.event]))

    def read_all(self) -> Dict[str, float]:
        """Read every currently-programmed counter (fixed and programmable)."""
        out: Dict[str, float] = {}
        for register in self.fixed:
            if register.event is not None:
                out[register.event] = register.read()
        for register in self.programmable:
            if register.event is not None:
                out[register.event] = register.read()
        return out

    def reset(self) -> None:
        """Reset every register."""
        for register in self.fixed:
            register.reset()
        for register in self.programmable:
            register.reset()
