"""Counter reading: PMI-driven sampling with multiplexing, and polling.

Two reading modes mirror §2 of the paper:

* **Polling** reads a small set of counters continuously — the paper's
  baseline ("ground truth" up to natural run-to-run variation).
* **Sampling** multiplexes many events over few registers: each scheduler
  quantum only the active configuration's events produce samples, and the
  kernel's ``t_enabled/t_running`` bookkeeping is recorded so that correction
  methods can apply Linux-style scaling.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.events.catalog import EventCatalog
from repro.pmu.configuration import CounterConfiguration
from repro.pmu.counters import PMURegisterFile
from repro.pmu.noise import NoiseModel
from repro.uarch.machine import MachineTrace


@dataclass
class SamplingRecord:
    """Samples collected during one scheduler quantum (one tick)."""

    tick: int
    configuration: CounterConfiguration
    samples: Dict[str, np.ndarray] = field(default_factory=dict)
    #: Fraction of the quantum each event actually spent counting (perf's
    #: ``t_running / t_enabled`` bookkeeping), for events that were
    #: multiplexed *within* the quantum — real-trace ingestion fills this.
    #: Absent entries mean fully counted; the simulator's quantum-level
    #: multiplexing never partially counts, so it leaves the dict empty and
    #: the engine's arithmetic is unchanged for synthetic streams.
    mux_fraction: Dict[str, float] = field(default_factory=dict)

    @property
    def measured_events(self) -> Tuple[str, ...]:
        return tuple(self.samples)

    def total(self, event: str) -> float:
        """Sum of the sub-samples for one event in this quantum."""
        return float(np.sum(self.samples[event]))


@dataclass
class SampledTrace:
    """The full output of a multiplexed sampling run."""

    catalog_name: str
    events: Tuple[str, ...]
    records: List[SamplingRecord] = field(default_factory=list)
    #: Per-event count of quanta in which the event was measured.
    enabled_ticks: Dict[str, int] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.records)

    def record(self, tick: int) -> SamplingRecord:
        return self.records[tick]

    def enabled_fraction(self, event: str) -> float:
        """Fraction of quanta during which *event* was scheduled on a counter."""
        if not self.records:
            return 0.0
        return self.enabled_ticks.get(event, 0) / len(self.records)

    def measured_ticks(self, event: str) -> Tuple[int, ...]:
        """Tick indices at which *event* produced samples."""
        return tuple(
            record.tick for record in self.records if event in record.samples
        )


@dataclass
class PolledTrace:
    """Per-tick polled readings for a set of events."""

    catalog_name: str
    events: Tuple[str, ...]
    values: List[Dict[str, float]] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.values)

    def series(self, event: str) -> np.ndarray:
        return np.array([tick_values[event] for tick_values in self.values], dtype=float)

    def at(self, tick: int) -> Dict[str, float]:
        return dict(self.values[tick])


class PollingReader:
    """Reads the true per-tick counts of a set of events with polling noise.

    The paper's error baseline polls four events at a time over many runs;
    the simulator can poll the full set in one run, which plays the same role
    (a reference trace unaffected by multiplexing).
    """

    def __init__(
        self,
        catalog: EventCatalog,
        events: Sequence[str],
        *,
        noise: Optional[NoiseModel] = None,
        seed: int = 0,
    ) -> None:
        self.catalog = catalog
        self.events = tuple(events)
        if not self.events:
            raise ValueError("polling requires at least one event")
        self.noise = noise if noise is not None else NoiseModel()
        self._rng = np.random.default_rng(seed)

    def read(self, trace: MachineTrace) -> PolledTrace:
        """Produce the polled trace for a machine run."""
        polled = PolledTrace(catalog_name=self.catalog.name, events=self.events)
        for tick_values in trace.ticks:
            truth = self.catalog.ground_truth_for(self.events, tick_values)
            polled.values.append(
                {
                    name: self.noise.perturb_polled(value, self._rng)
                    for name, value in truth.items()
                }
            )
        return polled


class MultiplexedSampler:
    """Samples events through a rotating schedule of counter configurations.

    Parameters
    ----------
    catalog:
        Event catalog (provides ground-truth translation and fixed events).
    schedule:
        Any object exposing ``config_at(tick) -> CounterConfiguration`` and an
        ``events`` attribute listing every monitored event
        (:class:`repro.scheduling.Schedule` satisfies this).
    noise:
        Per-sample noise model.
    samples_per_tick:
        Number of PMI-driven sub-samples collected for each measured event in
        one quantum.
    include_fixed:
        Whether the catalog's fixed events are (as on real hardware) measured
        in every quantum regardless of the configuration.
    """

    def __init__(
        self,
        catalog: EventCatalog,
        schedule,
        *,
        noise: Optional[NoiseModel] = None,
        samples_per_tick: int = 4,
        include_fixed: bool = True,
        seed: int = 0,
    ) -> None:
        if samples_per_tick <= 0:
            raise ValueError("samples_per_tick must be positive")
        self.catalog = catalog
        self.schedule = schedule
        self.noise = noise if noise is not None else NoiseModel()
        self.samples_per_tick = samples_per_tick
        self.include_fixed = include_fixed
        self._rng = np.random.default_rng(seed)
        self.register_file = PMURegisterFile(catalog)

    def _sample_event(self, true_value: float) -> np.ndarray:
        """Split a quantum's true count into noisy PMI sub-samples."""
        n = self.samples_per_tick
        # PMI thresholds divide the quantum roughly evenly; jitter the split.
        weights = self._rng.dirichlet(np.full(n, 50.0))
        sub_true = true_value * weights
        return np.array(
            [self.noise.perturb_sample(value, self._rng) for value in sub_true], dtype=float
        )

    def sample(self, trace: MachineTrace) -> SampledTrace:
        """Run the multiplexed sampling process over a machine trace."""
        monitored = tuple(self.schedule.events)
        fixed_names = tuple(spec.name for spec in self.catalog.fixed_events)
        all_events = monitored + tuple(n for n in fixed_names if n not in monitored)
        sampled = SampledTrace(catalog_name=self.catalog.name, events=all_events)
        for tick, tick_values in enumerate(trace.ticks):
            configuration = self.schedule.config_at(tick)
            self.register_file.program(configuration)
            measured = list(configuration.events)
            if self.include_fixed:
                measured.extend(n for n in fixed_names if n not in measured)
            truth = self.catalog.ground_truth_for(measured, tick_values)
            record = SamplingRecord(tick=tick, configuration=configuration)
            for event in measured:
                record.samples[event] = self._sample_event(truth[event])
                sampled.enabled_ticks[event] = sampled.enabled_ticks.get(event, 0) + 1
            sampled.records.append(record)
        return sampled
