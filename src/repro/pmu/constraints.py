"""Configuration validity checking.

Reproduces the role of Linux's perf_event validity checker (§4.1, "Checking
Validity of the Configuration"): a configuration is valid only if every event
can be placed on a programmable counter it is allowed to use, the per-thread
counter budget is respected, and the auxiliary-MSR budget for off-core
response style events is not exceeded.  Placement mirrors Linux's strategy of
assigning the most constrained events first.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.events.catalog import EventCatalog
from repro.events.event import EventKind
from repro.pmu.configuration import CounterConfiguration


class ConfigurationError(ValueError):
    """Raised when a set of events cannot form a valid configuration."""


class ValidityChecker:
    """Checks and constructs valid counter configurations for one catalog.

    Parameters
    ----------
    catalog:
        The event catalog describing events and the counter file.
    max_msr_events:
        How many MSR-consuming (off-core response) events may be collected
        simultaneously; real CPUs expose a very small number of such MSRs.
    counters:
        Override of the per-thread programmable counter budget.  Defaults to
        the catalog's ``usable_programmable`` count.
    """

    def __init__(
        self,
        catalog: EventCatalog,
        *,
        max_msr_events: int = 2,
        counters: Optional[int] = None,
    ) -> None:
        if max_msr_events < 0:
            raise ValueError("max_msr_events must be non-negative")
        self.catalog = catalog
        self.max_msr_events = max_msr_events
        self.n_counters = counters if counters is not None else catalog.counter_file.usable_programmable
        if self.n_counters <= 0:
            raise ValueError("the counter budget must be positive")

    # -- assignment ------------------------------------------------------

    def assign(self, events: Sequence[str]) -> Dict[str, int]:
        """Assign programmable events to counter indices or raise.

        Follows the Linux strategy of placing the most constrained events
        first (events restricted to specific counters, then MSR events, then
        unconstrained events).
        """
        specs = [self.catalog.get(name) for name in events]
        for spec in specs:
            if spec.kind is EventKind.FIXED:
                raise ConfigurationError(
                    f"fixed event {spec.name!r} cannot be placed on a programmable counter"
                )
        if len(specs) > self.n_counters:
            raise ConfigurationError(
                f"{len(specs)} events exceed the budget of {self.n_counters} programmable counters"
            )
        msr_events = [spec for spec in specs if spec.requires_msr]
        if len(msr_events) > self.max_msr_events:
            raise ConfigurationError(
                f"{len(msr_events)} MSR events exceed the budget of {self.max_msr_events}"
            )

        def constraint_rank(spec) -> Tuple[int, int]:
            mask_size = len(spec.counter_mask) if spec.counter_mask is not None else self.n_counters
            return (mask_size, 0 if spec.requires_msr else 1)

        ordered = sorted(specs, key=constraint_rank)
        assignment: Dict[str, int] = {}
        used: Set[int] = set()
        for spec in ordered:
            candidates = [
                index
                for index in range(self.n_counters)
                if index not in used and spec.can_use_counter(index)
            ]
            if not candidates:
                raise ConfigurationError(
                    f"event {spec.name!r} cannot be placed on any free counter "
                    f"(used: {sorted(used)})"
                )
            index = candidates[0]
            assignment[spec.name] = index
            used.add(index)
        return assignment

    def build_configuration(self, events: Sequence[str]) -> CounterConfiguration:
        """Build a validated :class:`CounterConfiguration` for *events*."""
        assignment = self.assign(events)
        ordered = tuple(sorted(assignment, key=assignment.get))
        return CounterConfiguration(events=ordered, assignment=assignment)

    # -- validation ------------------------------------------------------

    def violations(self, configuration: CounterConfiguration) -> List[str]:
        """Human-readable list of validity violations (empty when valid)."""
        problems: List[str] = []
        if len(configuration) > self.n_counters:
            problems.append(
                f"configuration uses {len(configuration)} counters, budget is {self.n_counters}"
            )
        msr_count = 0
        for event in configuration:
            try:
                spec = self.catalog.get(event)
            except KeyError:
                problems.append(f"unknown event {event!r}")
                continue
            if spec.kind is EventKind.FIXED:
                problems.append(f"fixed event {event!r} listed as programmable")
                continue
            if spec.requires_msr:
                msr_count += 1
            index = configuration.counter_of(event)
            if index is not None:
                if not 0 <= index < self.n_counters:
                    problems.append(f"event {event!r} assigned to out-of-range counter {index}")
                elif not spec.can_use_counter(index):
                    problems.append(f"event {event!r} cannot be counted on counter {index}")
        if msr_count > self.max_msr_events:
            problems.append(
                f"{msr_count} MSR events exceed the budget of {self.max_msr_events}"
            )
        if not configuration.assignment:
            try:
                self.assign(list(configuration.events))
            except ConfigurationError as exc:
                problems.append(str(exc))
        return problems

    def is_valid(self, configuration: CounterConfiguration) -> bool:
        """Whether the configuration satisfies every constraint."""
        return not self.violations(configuration)

    def can_schedule(self, events: Sequence[str]) -> bool:
        """Whether the events can form a single valid configuration."""
        try:
            self.assign(list(events))
        except ConfigurationError:
            return False
        return True

    def split_events(self, events: Sequence[str]) -> Tuple[Tuple[str, ...], Tuple[str, ...]]:
        """Split *events* into (fixed, programmable) according to the catalog."""
        fixed: List[str] = []
        programmable: List[str] = []
        for name in events:
            spec = self.catalog.get(name)
            if spec.kind is EventKind.FIXED:
                fixed.append(name)
            else:
                programmable.append(name)
        return tuple(fixed), tuple(programmable)
