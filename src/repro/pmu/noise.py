"""Measurement noise models.

§2 of the paper lists the nondeterminism sources that corrupt individual
counter reads even before multiplexing error enters: PMI skid, OS interrupt
handling, scheduling of other processes, and tool-level differences.  The
noise model below applies these as multiplicative perturbations on a single
sampled value; the much larger multiplexing error emerges mechanically from
the sampler's extrapolation, not from this model.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class NoiseModel:
    """Per-sample measurement noise.

    Parameters
    ----------
    read_noise:
        Log-normal sigma of the basic per-sample read noise (PMI skid,
        sampling-threshold quantisation).
    os_spike_probability:
        Probability that a sample is perturbed by OS activity (interrupt
        storms, migrations).
    os_spike_magnitude:
        Log-normal sigma of the OS perturbation when it occurs.
    overcount_bias:
        Deterministic relative over-count applied to every sample; models the
        systematic over-counting reported for some processors.
    polling_noise:
        Log-normal sigma of a polled (non-multiplexed) read; polling is less
        intrusive than sampling so this is typically smaller.
    """

    read_noise: float = 0.02
    os_spike_probability: float = 0.10
    os_spike_magnitude: float = 0.7
    overcount_bias: float = 0.0
    polling_noise: float = 0.01

    def __post_init__(self) -> None:
        for name in ("read_noise", "os_spike_magnitude", "polling_noise"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")
        if not 0.0 <= self.os_spike_probability <= 1.0:
            raise ValueError("os_spike_probability must lie in [0, 1]")

    def perturb_sample(self, value: float, rng: np.random.Generator) -> float:
        """Apply sampling-mode noise to a single true value."""
        noisy = value * (1.0 + self.overcount_bias)
        if self.read_noise > 0:
            noisy *= float(np.exp(rng.normal(0.0, self.read_noise)))
        if self.os_spike_probability > 0 and rng.random() < self.os_spike_probability:
            noisy *= float(np.exp(rng.normal(0.0, self.os_spike_magnitude)))
        return max(noisy, 0.0)

    def perturb_polled(self, value: float, rng: np.random.Generator) -> float:
        """Apply polling-mode noise to a single true value."""
        noisy = value
        if self.polling_noise > 0:
            noisy *= float(np.exp(rng.normal(0.0, self.polling_noise)))
        return max(noisy, 0.0)

    @classmethod
    def noiseless(cls) -> "NoiseModel":
        """A noise model that leaves samples untouched (for unit tests)."""
        return cls(read_noise=0.0, os_spike_probability=0.0, os_spike_magnitude=0.0, polling_noise=0.0)
