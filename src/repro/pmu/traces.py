"""Trace containers shared by the PMU, the baselines and the BayesPerf engine."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

import numpy as np


@dataclass
class EstimateTrace:
    """Per-tick estimates of event values produced by a correction method.

    ``estimates[t][event]`` is the method's estimate of the event's count in
    tick ``t``; ``uncertainties[t][event]``, when present, is the method's
    own 1-sigma uncertainty for that estimate (only BayesPerf produces one).
    """

    method: str
    estimates: List[Dict[str, float]] = field(default_factory=list)
    uncertainties: List[Dict[str, float]] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.estimates)

    def append(
        self, values: Mapping[str, float], uncertainty: Optional[Mapping[str, float]] = None
    ) -> None:
        """Append one tick's estimates (and optional uncertainties)."""
        self.estimates.append({k: float(v) for k, v in values.items()})
        self.uncertainties.append(
            {k: float(v) for k, v in uncertainty.items()} if uncertainty else {}
        )

    def events(self) -> Tuple[str, ...]:
        """Every event appearing in at least one tick."""
        seen: Dict[str, None] = {}
        for values in self.estimates:
            for name in values:
                seen.setdefault(name, None)
        return tuple(seen)

    def series(self, event: str) -> np.ndarray:
        """Time series of estimates for one event (NaN where absent)."""
        return np.array(
            [values.get(event, np.nan) for values in self.estimates], dtype=float
        )

    def uncertainty_series(self, event: str) -> np.ndarray:
        """Time series of 1-sigma uncertainties for one event (NaN where absent)."""
        return np.array(
            [values.get(event, np.nan) for values in self.uncertainties], dtype=float
        )

    def at(self, tick: int) -> Dict[str, float]:
        """Estimates for one tick."""
        return dict(self.estimates[tick])

    # -- serialization ------------------------------------------------------

    def to_records(self) -> List[Dict]:
        """One JSON-serialisable dict per tick (the trace-file line format)."""
        records: List[Dict] = []
        for tick, values in enumerate(self.estimates):
            record: Dict = {"tick": tick, "values": dict(values)}
            if self.uncertainties[tick]:
                record["sigma"] = dict(self.uncertainties[tick])
            records.append(record)
        return records

    @classmethod
    def from_records(cls, method: str, records: List[Mapping]) -> "EstimateTrace":
        """Rebuild a trace from :meth:`to_records` output (sorted by tick).

        Tick indices must be consecutive: the trace is index-addressed, so a
        gap or duplicate would silently shift every later tick.  Externally
        produced files with holes are rejected instead.
        """
        trace = cls(method=method)
        ordered = sorted(records, key=lambda r: r["tick"])
        for position, record in enumerate(ordered):
            expected = ordered[0]["tick"] + position
            if record["tick"] != expected:
                raise ValueError(
                    f"estimate ticks must be consecutive: expected tick {expected}, "
                    f"got {record['tick']} (gap or duplicate in the record stream)"
                )
            trace.append(record["values"], record.get("sigma"))
        return trace

    def values_equal(self, other: "EstimateTrace") -> bool:
        """Exact per-tick equality of estimates and uncertainties."""
        return (
            self.estimates == other.estimates and self.uncertainties == other.uncertainties
        )
