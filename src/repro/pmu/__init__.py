"""Performance Monitoring Unit (PMU) substrate.

Models the hardware/OS layer the paper builds on: counter registers,
configuration validity rules, PMI-driven sampling, event multiplexing with
Linux-style ``t_enabled/t_running`` scaling, and the measurement noise that
multiplexing and OS nondeterminism introduce (§2).
"""

from repro.pmu.configuration import CounterConfiguration
from repro.pmu.constraints import ConfigurationError, ValidityChecker
from repro.pmu.counters import CounterRegister, PMURegisterFile
from repro.pmu.noise import NoiseModel
from repro.pmu.sampling import (
    MultiplexedSampler,
    PolledTrace,
    PollingReader,
    SampledTrace,
    SamplingRecord,
)
from repro.pmu.traces import EstimateTrace

__all__ = [
    "CounterConfiguration",
    "ConfigurationError",
    "ValidityChecker",
    "CounterRegister",
    "PMURegisterFile",
    "NoiseModel",
    "MultiplexedSampler",
    "PollingReader",
    "SampledTrace",
    "PolledTrace",
    "SamplingRecord",
    "EstimateTrace",
]
