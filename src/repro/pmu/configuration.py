"""Counter configurations: the instantaneous mapping of events onto counters.

A *configuration* (paper §4, "Formalism") assigns each selected programmable
event to one programmable counter register for the duration of one scheduler
quantum.  Fixed events are always collected and never appear in the
assignment.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Mapping, Optional, Set, Tuple


@dataclass(frozen=True)
class CounterConfiguration:
    """One scheduling quantum's counter-to-event mapping.

    Parameters
    ----------
    events:
        Programmable events collected in this configuration, in counter order.
    assignment:
        Mapping of event name to programmable counter index.
    """

    events: Tuple[str, ...]
    assignment: Mapping[str, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.events:
            raise ValueError("a configuration must contain at least one event")
        if len(set(self.events)) != len(self.events):
            raise ValueError("a configuration cannot repeat an event")
        assignment = dict(self.assignment)
        if assignment:
            if set(assignment) != set(self.events):
                raise ValueError("assignment must cover exactly the configuration's events")
            indices = list(assignment.values())
            if len(set(indices)) != len(indices):
                raise ValueError("two events are assigned to the same counter")
        object.__setattr__(self, "assignment", assignment)

    def __len__(self) -> int:
        return len(self.events)

    def __contains__(self, event: str) -> bool:
        return event in self.events

    def __iter__(self):
        return iter(self.events)

    def counter_of(self, event: str) -> Optional[int]:
        """Counter index assigned to *event*, if an assignment is present."""
        return self.assignment.get(event)

    def overlap(self, other: "CounterConfiguration") -> Tuple[str, ...]:
        """Events shared with another configuration, in this config's order."""
        other_set = set(other.events)
        return tuple(event for event in self.events if event in other_set)

    def with_events(self, events: Iterable[str]) -> "CounterConfiguration":
        """A new configuration over *events* with no explicit assignment."""
        return CounterConfiguration(events=tuple(events))
