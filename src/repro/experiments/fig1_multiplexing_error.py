"""Fig. 1: measurement error versus the number of multiplexed events.

The paper multiplexes 10-35 on-core events over the available registers and
reports the average error of Linux's scaled sampling against a polled
baseline, observing error growing from ~30% to ~58%.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.session import PerfSession
from repro.events.profiles import standard_profiling_events
from repro.events.registry import catalog_for
from repro.experiments.common import format_table

#: Counter counts swept by the paper's Fig. 1.
DEFAULT_COUNTER_COUNTS: Tuple[int, ...] = (10, 15, 20, 25, 30, 35)


@dataclass
class Fig1Result:
    """Average error per multiplexed-event count."""

    arch: str
    workload: str
    error_percent: Dict[int, float] = field(default_factory=dict)
    error_std_percent: Dict[int, float] = field(default_factory=dict)

    def to_table(self) -> str:
        rows = [
            (count, self.error_percent[count], self.error_std_percent.get(count, 0.0))
            for count in sorted(self.error_percent)
        ]
        return format_table(["# multiplexed events", "avg error (%)", "std (%)"], rows)

    def is_monotonically_increasing(self, slack: float = 3.0) -> bool:
        """Whether the error grows with the number of events (within *slack* points)."""
        counts = sorted(self.error_percent)
        values = [self.error_percent[count] for count in counts]
        return all(b >= a - slack for a, b in zip(values, values[1:]))


def run(
    *,
    arch: str = "x86",
    workload: str = "mux-stress",
    counter_counts: Sequence[int] = DEFAULT_COUNTER_COUNTS,
    n_ticks: int = 120,
    n_runs: int = 3,
    seed: int = 0,
) -> Fig1Result:
    """Sweep the number of multiplexed events and measure the Linux error."""
    catalog = catalog_for(arch)
    result = Fig1Result(arch=arch, workload=workload)
    for count in counter_counts:
        events = standard_profiling_events(catalog, n_events=count)
        errors: List[float] = []
        for run_index in range(n_runs):
            session = PerfSession(arch, method="linux", events=events)
            outcome = session.run(workload, n_ticks=n_ticks, seed=seed + run_index)
            errors.append(outcome.mean_error_percent)
        result.error_percent[count] = float(np.mean(errors))
        result.error_std_percent[count] = float(np.std(errors))
    return result


def main() -> Fig1Result:  # pragma: no cover - convenience entry point
    result = run()
    print("Fig. 1 — errors due to event multiplexing")
    print(result.to_table())
    return result


if __name__ == "__main__":  # pragma: no cover
    main()
