"""Fig. 10: decrease in scheduler training time due to BayesPerf.

The actor-critic IO scheduler is trained with HPC features supplied by four
monitoring configurations (Linux, CounterMiner, BayesPerf on the CPU and
BayesPerf on the accelerator).  The paper observes that better and more
timely inputs reduce the number of iterations to convergence: ~37% fewer for
accelerated BayesPerf versus Linux, ~28.5% for the CPU implementation and
~12.5% for CounterMiner.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.experiments.common import format_table
from repro.mlsched.reinforcement import TrainingCurve
from repro.mlsched.training import (
    MONITORING_PROFILES,
    MonitoringProfile,
    convergence_summary,
    training_time_comparison,
)


@dataclass
class Fig10Result:
    """Training curves and convergence statistics per monitoring profile."""

    curves: Dict[str, TrainingCurve] = field(default_factory=dict)
    summary: Dict[str, Dict[str, float]] = field(default_factory=dict)

    def loss_series(self, profile: str, *, window: int = 50) -> np.ndarray:
        return self.curves[profile].smoothed(window)

    def reduction_vs_linux(self, profile: str) -> float:
        return self.summary[profile]["reduction_vs_baseline"]

    def to_table(self) -> str:
        rows = []
        for profile, stats in self.summary.items():
            rows.append(
                (
                    profile,
                    int(stats["convergence_iteration"]),
                    100.0 * stats["reduction_vs_baseline"],
                    stats["final_loss"],
                )
            )
        return format_table(
            ["profile", "convergence iteration", "reduction vs Linux (%)", "final loss"], rows
        )


def run(
    *,
    profiles: Sequence[MonitoringProfile] = MONITORING_PROFILES,
    iterations: int = 2500,
    seed: int = 0,
) -> Fig10Result:
    """Train the scheduler under each monitoring profile and summarise."""
    curves = training_time_comparison(profiles, iterations=iterations, seed=seed)
    result = Fig10Result(curves=curves)
    result.summary = convergence_summary(curves, baseline="linux")
    return result


def main() -> Fig10Result:  # pragma: no cover - convenience entry point
    result = run()
    print("Fig. 10 — decrease in training time due to BayesPerf")
    print(result.to_table())
    return result


if __name__ == "__main__":  # pragma: no cover
    main()
