"""Fig. 8: error scaling with the number of sampled events (KMeans workload).

The paper sweeps 10-35 multiplexed events on the KMeans workload for Linux,
CounterMiner, BayesPerf and the WM+Pin baseline on both microarchitectures;
BayesPerf stays flat (reducing error by up to ~34%) while the baselines grow
with the number of events, and WM+Pin performs worse than CounterMiner.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.core.session import PerfSession
from repro.events.profiles import standard_profiling_events
from repro.events.registry import catalog_for
from repro.experiments.common import format_table

DEFAULT_COUNTER_COUNTS: Tuple[int, ...] = (10, 15, 20, 25, 30, 35)
DEFAULT_METHODS: Tuple[str, ...] = ("linux", "counterminer", "bayesperf", "wm+pin")


@dataclass
class Fig8Result:
    """error_percent[arch][method][n_events]."""

    workload: str
    error_percent: Dict[str, Dict[str, Dict[int, float]]] = field(default_factory=dict)

    def to_table(self) -> str:
        headers = ["# events"]
        for arch in sorted(self.error_percent):
            for method in self.error_percent[arch]:
                headers.append(f"{method} ({arch})")
        counts = sorted(
            {
                count
                for arch in self.error_percent.values()
                for method in arch.values()
                for count in method
            }
        )
        rows = []
        for count in counts:
            row = [count]
            for arch in sorted(self.error_percent):
                for method in self.error_percent[arch]:
                    row.append(self.error_percent[arch][method].get(count, float("nan")))
            rows.append(row)
        return format_table(headers, rows)

    def error_growth(self, arch: str, method: str) -> float:
        """Error at the largest sweep point minus error at the smallest."""
        series = self.error_percent[arch][method]
        counts = sorted(series)
        return series[counts[-1]] - series[counts[0]]


def run(
    *,
    workload: str = "KMeans",
    arches: Sequence[str] = ("x86", "ppc64"),
    methods: Sequence[str] = DEFAULT_METHODS,
    counter_counts: Sequence[int] = DEFAULT_COUNTER_COUNTS,
    n_ticks: int = 110,
    seed: int = 0,
) -> Fig8Result:
    """Sweep the number of monitored events for every method and architecture."""
    result = Fig8Result(workload=workload)
    for arch in arches:
        catalog = catalog_for(arch)
        result.error_percent[arch] = {method: {} for method in methods}
        for count in counter_counts:
            events = standard_profiling_events(catalog, n_events=count)
            for method in methods:
                session = PerfSession(arch, method=method, events=events)
                outcome = session.run(workload, n_ticks=n_ticks, seed=seed)
                result.error_percent[arch][method][count] = outcome.mean_error_percent
    return result


def main() -> Fig8Result:  # pragma: no cover - convenience entry point
    result = run(arches=("x86",))
    print(f"Fig. 8 — scaling errors with the number of events ({result.workload})")
    print(result.to_table())
    return result


if __name__ == "__main__":  # pragma: no cover
    main()
