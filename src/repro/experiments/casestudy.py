"""§6.3 decision-quality results.

The paper reports that making the Spark shuffle PCIe-aware with an ML
scheduler improves average shuffle completion time by 15.1±2.2% (collaborative
filtering) and 22.3±7.9% (reinforcement learning), and that feeding the
schedulers BayesPerf-corrected counters instead of Linux-scaled ones yields a
further 8.7±0.9% and 19±3.4% reduction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Sequence

from repro.experiments.common import format_table
from repro.mlsched.training import (
    MONITORING_PROFILES,
    DecisionQualityResult,
    MonitoringProfile,
    decision_quality_comparison,
)


@dataclass
class CaseStudyResult:
    """Decision-quality comparison across scheduler families and monitoring profiles."""

    results: Dict[str, DecisionQualityResult] = field(default_factory=dict)

    def to_table(self) -> str:
        rows = []
        for family, outcome in self.results.items():
            for profile, regret in outcome.mean_regret.items():
                rows.append(
                    (
                        family,
                        profile,
                        100.0 * regret,
                        100.0 * outcome.improvement_vs_random[profile],
                        100.0 * outcome.improvement_vs_linux[profile],
                    )
                )
        return format_table(
            [
                "scheduler",
                "monitoring",
                "mean regret (%)",
                "improvement vs no scheduler (%)",
                "improvement vs Linux inputs (%)",
            ],
            rows,
        )

    def scheduler_improvement(self, family: str, profile: str = "bayesperf-acc") -> float:
        """Completion-time improvement of a scheduler family over random placement."""
        return self.results[family].improvement_vs_random[profile]

    def bayesperf_improvement(self, family: str, profile: str = "bayesperf-acc") -> float:
        """Further improvement from BayesPerf inputs over Linux inputs."""
        return self.results[family].improvement_vs_linux[profile]


def run(
    *,
    profiles: Sequence[MonitoringProfile] = MONITORING_PROFILES,
    train_iterations: int = 800,
    cf_observations: int = 400,
    episodes: int = 200,
    seed: int = 0,
) -> CaseStudyResult:
    """Evaluate both scheduler families under every monitoring profile."""
    comparison = decision_quality_comparison(
        profiles,
        train_iterations=train_iterations,
        cf_observations=cf_observations,
        episodes=episodes,
        seed=seed,
    )
    return CaseStudyResult(results=comparison)


def main() -> CaseStudyResult:  # pragma: no cover - convenience entry point
    result = run()
    print("§6.3 — decision quality of the ML-based IO schedulers")
    print(result.to_table())
    return result


if __name__ == "__main__":  # pragma: no cover
    main()
