"""Shared helpers for the experiment modules."""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Sequence


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Render a simple fixed-width text table."""
    rows = [[_format_cell(cell) for cell in row] for row in rows]
    headers = [str(h) for h in headers]
    widths = [len(h) for h in headers]
    for row in rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = [
        "  ".join(header.ljust(widths[index]) for index, header in enumerate(headers)),
        "  ".join("-" * widths[index] for index in range(len(headers))),
    ]
    for row in rows:
        lines.append("  ".join(cell.ljust(widths[index]) for index, cell in enumerate(row)))
    return "\n".join(lines)


def _format_cell(cell: object) -> str:
    if isinstance(cell, float):
        return f"{cell:.2f}"
    return str(cell)


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean of positive values."""
    import numpy as np

    array = np.asarray(list(values), dtype=float)
    if array.size == 0:
        raise ValueError("geometric_mean requires at least one value")
    if np.any(array <= 0):
        raise ValueError("geometric_mean requires positive values")
    return float(np.exp(np.mean(np.log(array))))
