"""Run every experiment and print the paper-style tables.

``python -m repro.experiments.runner`` regenerates the full evaluation; pass
``--quick`` (or set ``REPRO_QUICK=1``) for a faster, representative run.
"""

from __future__ import annotations

import argparse
import time
from typing import Callable, Dict, List, Tuple

from repro.experiments import (
    casestudy,
    fig1_multiplexing_error,
    fig3_read_latency,
    fig6_hibench_error,
    fig7_improvement,
    fig8_scaling,
    fig9_pcie_contention,
    fig10_training,
    table1_area_power,
)


def run_all(*, quick: bool = False, seed: int = 0) -> Dict[str, object]:
    """Run every experiment; returns the per-experiment result objects."""
    results: Dict[str, object] = {}
    results["fig1"] = fig1_multiplexing_error.run(
        n_runs=1 if quick else 3, n_ticks=100 if quick else 120, seed=seed
    )
    results["fig3"] = fig3_read_latency.run()
    results["table1"] = table1_area_power.run()
    fig6 = fig6_hibench_error.run(quick=quick, n_ticks=100 if quick else 120, seed=seed)
    results["fig6"] = fig6
    results["fig7"] = fig7_improvement.from_fig6(fig6)
    results["fig8"] = fig8_scaling.run(
        arches=("x86",) if quick else ("x86", "ppc64"),
        counter_counts=(10, 20, 35) if quick else (10, 15, 20, 25, 30, 35),
        n_ticks=90 if quick else 110,
        seed=seed,
    )
    results["fig9"] = fig9_pcie_contention.run()
    results["fig10"] = fig10_training.run(iterations=1200 if quick else 2500, seed=seed)
    results["casestudy"] = casestudy.run(
        train_iterations=400 if quick else 800,
        episodes=100 if quick else 200,
        seed=seed,
    )
    return results


def main() -> None:  # pragma: no cover - CLI entry point
    parser = argparse.ArgumentParser(description="Reproduce the BayesPerf evaluation")
    parser.add_argument("--quick", action="store_true", help="run a reduced, faster sweep")
    parser.add_argument("--seed", type=int, default=0)
    arguments = parser.parse_args()

    start = time.time()
    results = run_all(quick=arguments.quick, seed=arguments.seed)
    for name, result in results.items():
        print(f"\n=== {name} ===")
        to_table = getattr(result, "to_table", None)
        if callable(to_table):
            print(to_table())
    print(f"\ncompleted in {time.time() - start:.1f}s")


if __name__ == "__main__":  # pragma: no cover
    main()
