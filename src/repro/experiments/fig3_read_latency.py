"""Fig. 3: latency overhead of reading counters under each mechanism."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.accelerator.device import AcceleratorConfig, AcceleratorModel
from repro.accelerator.latency import ReadLatencyModel, ReadPath
from repro.experiments.common import format_table


@dataclass
class Fig3Result:
    """Average read latency (host cycles) per mechanism and architecture."""

    cycles: Dict[str, Dict[str, float]] = field(default_factory=dict)

    def to_table(self) -> str:
        mechanisms = sorted({name for arch in self.cycles.values() for name in arch})
        rows = []
        for mechanism in mechanisms:
            row = [mechanism]
            for arch in sorted(self.cycles):
                row.append(self.cycles[arch].get(mechanism, float("nan")))
            rows.append(row)
        return format_table(["mechanism", *sorted(self.cycles)], rows)

    def overhead_vs_linux(self, arch: str, mechanism: str) -> float:
        """Relative overhead of a mechanism over the native Linux read."""
        return self.cycles[arch][mechanism] / self.cycles[arch]["linux"] - 1.0


def run(*, model_factors: int = 44, model_sites: int = 4) -> Fig3Result:
    """Evaluate the read-latency model for the x86-PCIe and ppc64-CAPI builds."""
    result = Fig3Result()
    for arch, transport in (("x86", "pcie"), ("ppc64", "capi")):
        accelerator = AcceleratorModel(AcceleratorConfig(transport=transport))
        model = ReadLatencyModel(
            accelerator=accelerator, model_factors=model_factors, model_sites=model_sites
        )
        result.cycles[arch] = model.all_paths()
    return result


def main() -> Fig3Result:  # pragma: no cover - convenience entry point
    result = run()
    print("Fig. 3 — counter read latency (host cycles)")
    print(result.to_table())
    for arch in result.cycles:
        print(
            f"{arch}: BayesPerf(Acc) overhead vs Linux = "
            f"{100 * result.overhead_vs_linux(arch, 'bayesperf-accelerator'):.1f}%, "
            f"BayesPerf(CPU) = {result.cycles[arch]['bayesperf-cpu'] / result.cycles[arch]['linux']:.1f}x"
        )
    return result


if __name__ == "__main__":  # pragma: no cover
    main()
