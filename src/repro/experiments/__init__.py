"""Experiment harness: one module per table/figure in the paper's evaluation.

Every module exposes a ``run(...)`` function returning a result object with
the figure's data series and a ``to_table()`` method that prints the rows the
paper reports.  ``repro.experiments.runner`` regenerates everything in one
call.  The benchmarks under ``benchmarks/`` wrap these functions so that
``pytest benchmarks/ --benchmark-only`` reproduces the full evaluation.
"""

from repro.experiments import (
    casestudy,
    fig1_multiplexing_error,
    fig3_read_latency,
    fig6_hibench_error,
    fig7_improvement,
    fig8_scaling,
    fig9_pcie_contention,
    fig10_training,
    table1_area_power,
)

__all__ = [
    "fig1_multiplexing_error",
    "fig3_read_latency",
    "table1_area_power",
    "fig6_hibench_error",
    "fig7_improvement",
    "fig8_scaling",
    "fig9_pcie_contention",
    "fig10_training",
    "casestudy",
]
