"""Table 1: FPGA area and power for the x86-PCIe and ppc64-CAPI builds."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.accelerator.device import AcceleratorConfig
from repro.accelerator.power import FPGAResourceModel, ResourceReport
from repro.experiments.common import format_table

#: Host CPU TDPs the paper compares against (Intel Xeon E5-2695 and Power9).
CPU_TDP_WATTS: Dict[str, float] = {"x86-PCIe": 100.0, "ppc64-CAPI": 190.0}


@dataclass
class Table1Result:
    """Resource utilisation and power per accelerator build."""

    reports: Dict[str, ResourceReport] = field(default_factory=dict)

    def to_table(self) -> str:
        resources = ("BRAM", "DSP", "FF", "LUT", "URAM")
        rows = []
        for name, report in self.reports.items():
            rows.append(
                [
                    name,
                    *[report.utilization_percent[r] for r in resources],
                    report.vivado_power_w,
                    report.measured_power_w,
                ]
            )
        return format_table(
            ["component", *[f"{r} (%)" for r in resources], "Vivado (W)", "Measured (W)"], rows
        )

    def power_efficiency(self) -> Dict[str, float]:
        """Measured power advantage over the host CPU TDP (paper: 5.8x / 11.8x)."""
        return {
            name: report.power_efficiency_vs(CPU_TDP_WATTS.get(name, 100.0))
            for name, report in self.reports.items()
        }


def run() -> Table1Result:
    """Build the area/power reports for both accelerator configurations."""
    result = Table1Result()
    for name, transport in (("x86-PCIe", "pcie"), ("ppc64-CAPI", "capi")):
        model = FPGAResourceModel(AcceleratorConfig(transport=transport))
        result.reports[name] = model.report(name)
    return result


def main() -> Table1Result:  # pragma: no cover - convenience entry point
    result = run()
    print("Table 1 — area & power of the BayesPerf FPGA")
    print(result.to_table())
    for name, efficiency in result.power_efficiency().items():
        print(f"{name}: {efficiency:.1f}x less power than the host CPU TDP")
    return result


if __name__ == "__main__":  # pragma: no cover
    main()
