"""Fig. 6 (and the §6.2 headline numbers): per-workload measurement error.

For every HiBench workload, on both microarchitectures, the experiment runs
the multiplexed monitoring pipeline and reports the average error of Linux
scaling, CounterMiner and BayesPerf against the polled reference.  The paper
reports averages of 39.25%/40.1% (Linux x86/ppc64), ~29% (CounterMiner) and
8.06%/7.6% (BayesPerf), i.e. a 4.87x/5.28x reduction.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.session import PerfSession
from repro.experiments.common import format_table
from repro.workloads.hibench import HIBENCH_WORKLOADS

#: Methods compared in Fig. 6, in plot order.
DEFAULT_METHODS: Tuple[str, ...] = ("linux", "counterminer", "bayesperf")

#: Representative subset used when a quick run is requested (one workload per
#: HiBench category).
QUICK_WORKLOADS: Tuple[str, ...] = (
    "Sort",
    "TeraSort",
    "KMeans",
    "LR",
    "Join",
    "PageRank",
    "NWeight",
    "FixWindow",
)


@dataclass
class Fig6Result:
    """error_percent[arch][method][workload] plus aggregate statistics."""

    error_percent: Dict[str, Dict[str, Dict[str, float]]] = field(default_factory=dict)

    def workloads(self) -> Tuple[str, ...]:
        for arch_results in self.error_percent.values():
            for method_results in arch_results.values():
                return tuple(method_results)
        return ()

    def average(self, arch: str, method: str) -> float:
        """Average error (percent) across workloads for one configuration."""
        values = list(self.error_percent[arch][method].values())
        return float(np.mean(values)) if values else float("nan")

    def reduction_factor(self, arch: str, *, baseline: str = "linux", improved: str = "bayesperf") -> float:
        """How many times smaller the improved method's average error is."""
        improved_error = self.average(arch, improved)
        if improved_error <= 0:
            return float("inf")
        return self.average(arch, baseline) / improved_error

    def to_table(self) -> str:
        headers = ["workload"]
        for arch in sorted(self.error_percent):
            for method in self.error_percent[arch]:
                headers.append(f"{method} ({arch})")
        rows = []
        for workload in self.workloads():
            row: List[object] = [workload]
            for arch in sorted(self.error_percent):
                for method in self.error_percent[arch]:
                    row.append(self.error_percent[arch][method].get(workload, float("nan")))
            rows.append(row)
        summary: List[object] = ["AVERAGE"]
        for arch in sorted(self.error_percent):
            for method in self.error_percent[arch]:
                summary.append(self.average(arch, method))
        rows.append(summary)
        return format_table(headers, rows)


def _selected_workloads(workloads: Optional[Sequence[str]], quick: bool) -> Tuple[str, ...]:
    if workloads is not None:
        return tuple(workloads)
    if quick or os.environ.get("REPRO_QUICK", ""):
        return QUICK_WORKLOADS
    return tuple(HIBENCH_WORKLOADS)


def run(
    *,
    arches: Sequence[str] = ("x86", "ppc64"),
    methods: Sequence[str] = DEFAULT_METHODS,
    workloads: Optional[Sequence[str]] = None,
    quick: bool = False,
    n_ticks: int = 120,
    seed: int = 0,
) -> Fig6Result:
    """Run the Fig. 6 sweep.

    Parameters
    ----------
    arches, methods, workloads:
        Sweep dimensions; ``workloads=None`` uses the full HiBench suite
        unless ``quick`` (or the ``REPRO_QUICK`` environment variable) asks
        for the representative per-category subset.
    n_ticks:
        Length of each monitored run in scheduler ticks.
    seed:
        Seed shared by every configuration so methods see identical runs.
    """
    selected = _selected_workloads(workloads, quick)
    result = Fig6Result()
    for arch in arches:
        result.error_percent[arch] = {}
        for method in methods:
            session = PerfSession(arch, method=method)
            per_workload: Dict[str, float] = {}
            for workload in selected:
                outcome = session.run(workload, n_ticks=n_ticks, seed=seed)
                per_workload[workload] = outcome.mean_error_percent
            result.error_percent[arch][method] = per_workload
    return result


def main() -> Fig6Result:  # pragma: no cover - convenience entry point
    result = run(quick=bool(os.environ.get("REPRO_QUICK", "")))
    print("Fig. 6 — error in performance counter measurements across HiBench")
    print(result.to_table())
    for arch in result.error_percent:
        print(
            f"{arch}: Linux {result.average(arch, 'linux'):.1f}% -> BayesPerf "
            f"{result.average(arch, 'bayesperf'):.1f}%  "
            f"({result.reduction_factor(arch):.2f}x reduction)"
        )
    return result


if __name__ == "__main__":  # pragma: no cover
    main()
