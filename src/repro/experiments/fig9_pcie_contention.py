"""Fig. 9: PCIe bandwidth under isolation versus contention.

The right half of Fig. 9 plots the achieved bandwidth of a GPU-to-GPU
exchange (or equivalently the shuffle path) against the message size, with
and without a competing flow, showing up to a ~1.8x slowdown for large
transfers and negligible impact for small (latency-bound) ones.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Sequence, Tuple

from repro.experiments.common import format_table
from repro.interconnect.topology import build_case_study_topology
from repro.interconnect.transfer import ContentionModel, Transfer

#: Message sizes swept by the figure (2^8 .. 2^22 bytes).
DEFAULT_MESSAGE_SIZES: Tuple[int, ...] = tuple(2**k for k in range(8, 23))


@dataclass
class Fig9Result:
    """Achieved bandwidth (GB/s) by message size, isolated and contended."""

    isolated_gbps: Dict[int, float] = field(default_factory=dict)
    contended_gbps: Dict[int, float] = field(default_factory=dict)

    def slowdown(self, size: int) -> float:
        """Bandwidth slowdown factor at one message size (>= 0)."""
        contended = self.contended_gbps[size]
        if contended <= 0:
            return float("inf")
        return self.isolated_gbps[size] / contended - 1.0

    def max_slowdown(self) -> float:
        return max(self.slowdown(size) for size in self.isolated_gbps)

    def to_table(self) -> str:
        rows = [
            (size, self.isolated_gbps[size], self.contended_gbps[size], self.slowdown(size))
            for size in sorted(self.isolated_gbps)
        ]
        return format_table(
            ["message size (B)", "isolated (GB/s)", "contention (GB/s)", "slowdown (x)"], rows
        )


def run(
    *,
    message_sizes: Sequence[int] = DEFAULT_MESSAGE_SIZES,
    source: str = "gpu0",
    destination: str = "gpu2",
    background_bytes: float = 512e6,
) -> Fig9Result:
    """Sweep message sizes for the GPU-to-GPU path with and without contention.

    The background flow is a shuffle leaving socket 1 through NIC1, which
    shares the switch uplink with the GPU exchange — the contention scenario
    the case study's scheduler is supposed to avoid.
    """
    topology = build_case_study_topology()
    model = ContentionModel(topology)
    background = [
        Transfer(name="shuffle", source="mem1", destination="nic1", size_bytes=background_bytes),
        Transfer(name="shuffle2", source="mem1", destination="nic1", size_bytes=background_bytes),
    ]
    result = Fig9Result()
    result.isolated_gbps = model.bandwidth_sweep(source, destination, message_sizes)
    result.contended_gbps = model.bandwidth_sweep(
        source, destination, message_sizes, background=background
    )
    return result


def main() -> Fig9Result:  # pragma: no cover - convenience entry point
    result = run()
    print("Fig. 9 — PCIe bandwidth: isolated vs contention")
    print(result.to_table())
    print(f"maximum slowdown: {result.max_slowdown():.2f}x")
    return result


if __name__ == "__main__":  # pragma: no cover
    main()
