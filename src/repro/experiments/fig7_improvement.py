"""Fig. 7: normalized improvement of BayesPerf over Linux and CounterMiner."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.experiments.common import format_table
from repro.experiments.fig6_hibench_error import Fig6Result, run as run_fig6


@dataclass
class Fig7Result:
    """improvement[arch][baseline][workload] = baseline error / BayesPerf error."""

    improvement: Dict[str, Dict[str, Dict[str, float]]] = field(default_factory=dict)

    def average(self, arch: str, baseline: str) -> float:
        values = list(self.improvement[arch][baseline].values())
        return float(np.mean(values)) if values else float("nan")

    def to_table(self) -> str:
        headers = ["workload"]
        for arch in sorted(self.improvement):
            for baseline in self.improvement[arch]:
                headers.append(f"vs {baseline} ({arch})")
        workloads: Tuple[str, ...] = ()
        for arch_results in self.improvement.values():
            for baseline_results in arch_results.values():
                workloads = tuple(baseline_results)
                break
            break
        rows = []
        for workload in workloads:
            row = [workload]
            for arch in sorted(self.improvement):
                for baseline in self.improvement[arch]:
                    row.append(self.improvement[arch][baseline].get(workload, float("nan")))
            rows.append(row)
        return format_table(headers, rows)


def from_fig6(fig6: Fig6Result, *, improved: str = "bayesperf") -> Fig7Result:
    """Derive the normalized improvement from a Fig. 6 result."""
    result = Fig7Result()
    for arch, methods in fig6.error_percent.items():
        result.improvement[arch] = {}
        improved_errors = methods[improved]
        for baseline, baseline_errors in methods.items():
            if baseline == improved:
                continue
            result.improvement[arch][baseline] = {
                workload: baseline_errors[workload] / max(improved_errors[workload], 1e-9)
                for workload in baseline_errors
            }
    return result


def run(
    *,
    fig6: Optional[Fig6Result] = None,
    quick: bool = False,
    n_ticks: int = 120,
    seed: int = 0,
) -> Fig7Result:
    """Compute Fig. 7, re-running Fig. 6 if a result is not supplied."""
    if fig6 is None:
        fig6 = run_fig6(quick=quick, n_ticks=n_ticks, seed=seed)
    return from_fig6(fig6)


def main() -> Fig7Result:  # pragma: no cover - convenience entry point
    result = run(quick=True)
    print("Fig. 7 — normalized improvement of BayesPerf")
    print(result.to_table())
    for arch in result.improvement:
        for baseline in result.improvement[arch]:
            print(f"{arch}: average improvement vs {baseline}: {result.average(arch, baseline):.2f}x")
    return result


if __name__ == "__main__":  # pragma: no cover
    main()
