"""BayesPerf reproduction library.

This package reproduces the system described in *BayesPerf: Minimizing
Performance Monitoring Errors Using Bayesian Statistics* (ASPLOS 2021).

The public API is intentionally small; most users only need:

* :mod:`repro.api` — the unified estimation pipeline: declare a run with
  frozen specs (``RunSpec``/``EstimatorSpec``/``RecorderSpec``) and execute
  it with ``Pipeline.from_spec(spec).run()`` or ``.stream()``.
* :class:`repro.core.PerfSession` — a perf-like monitoring session that ties
  a workload, a PMU and a correction method together.
* :func:`repro.events.catalog_for` — per-microarchitecture event catalogs.
* :mod:`repro.experiments` — one module per table/figure in the paper.
"""

from repro._version import __version__

__all__ = ["__version__"]
