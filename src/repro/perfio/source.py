"""The ingestion host source: a perf capture as a fleet record stream.

:class:`PerfTraceSource` satisfies the same source protocol as
``SyntheticHostSource``/``ReplayHostSource`` (``host_id``/``arch``/
``events``/``records()`` plus the ``skipped_lines``/``torn_tail``
accounting surface), so a real machine's PMU samples register next to
synthetic and replay hosts and flow through the worker pool, WAL
checkpointing and chain capture unchanged.

The capture is parsed once, eagerly, at construction: a misconfigured host
(unreadable file, unknown event under ``on_unknown="raise"``) fails at
registration, not mid-run, and the cached record list makes ``records()``
deterministically re-iterable — which is exactly what the WAL's
fast-forward restore (``HostChannel.restore``) requires for crash-resume
over real traces.  :meth:`byte_offset` maps the channel's pulled-record
ingest position back to a file offset, so a checkpoint pins where in the
capture the run stood.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterator, List, Optional, Sequence, Tuple, Union

from repro.events.registry import canonical_arch, catalog_for
from repro.perfio.lower import lower_capture
from repro.perfio.mapping import SchemaMapper
from repro.perfio.model import IngestStats
from repro.perfio.parsers import detect_format, parser_for
from repro.pmu.sampling import SampledTrace, SamplingRecord

__all__ = ["PerfTraceSource"]

#: Default ``perf script`` grouping window: 10ms of samples form one
#: scheduler quantum (matching the kernel's default rotation cadence).
DEFAULT_TICK_SECONDS = 0.01


class PerfTraceSource:
    """Record stream for one host backed by a real perf capture."""

    def __init__(
        self,
        host_id: str,
        path: Union[str, Path],
        *,
        format: str = "auto",
        arch: str = "x86",
        events: Optional[Sequence[str]] = None,
        on_unknown: str = "raise",
        tick_seconds: float = DEFAULT_TICK_SECONDS,
    ) -> None:
        self.host_id = host_id
        self.path = str(path)
        self.arch = canonical_arch(arch)
        catalog = catalog_for(self.arch)
        if events is not None:
            for name in events:
                catalog.get(name)  # raises KeyError naming the offending event
        raw = Path(path).read_bytes().decode("utf-8", errors="replace")
        pieces = raw.splitlines(keepends=True)
        #: Byte offset *after* each source line (1-based lineno -> offset).
        self._line_ends: List[int] = []
        position = 0
        for piece in pieces:
            position += len(piece.encode("utf-8"))
            self._line_ends.append(position)
        lines = [piece.rstrip("\r\n") for piece in pieces]
        fmt = detect_format(lines) if format in (None, "auto") else format
        parser = parser_for(fmt)
        self.stats = IngestStats(path=self.path, format=fmt)
        mapper = SchemaMapper(catalog, on_unknown=on_unknown)
        samples = list(parser(lines, self.stats))
        if raw and not raw.endswith("\n"):
            # No trailing newline: the final line may be a torn mid-write
            # tail.  It is torn (not merely short) when it parsed to nothing.
            last_lineno = len(lines)
            if not any(sample.lineno == last_lineno for sample in samples):
                self.stats.torn_tail = True
        lowered = lower_capture(
            samples,
            mapper,
            self.stats,
            tick_seconds=tick_seconds if fmt == "script" else None,
            monitored=tuple(events) if events is not None else None,
        )
        self._records: List[SamplingRecord] = lowered.records
        self._record_linenos = lowered.record_linenos
        self.events: Tuple[str, ...] = lowered.events
        if not self._records:
            raise ValueError(
                f"{self.path}: no usable counter samples for host {host_id!r} "
                f"(format {fmt!r}; {self.stats.skipped_lines} malformed line(s), "
                f"{self.stats.unknown_total} unknown-event reading(s))"
            )
        #: raw perf name -> canonical catalog name, for the whole capture.
        self.mapping = dict(mapper.mapped)
        self.format = fmt
        self.workload_name = f"perf:{fmt}"
        self.seed = 0
        self.n_ticks = len(self._records)
        self.samples_per_tick = max(
            (max(len(v) for v in record.samples.values()) for record in self._records),
            default=1,
        )
        #: The replay-host accounting surface: the channel announces these
        #: with one MalformedRecordSkipped event when the stream opens.
        self.skipped_lines = self.stats.accounted_skips
        self.torn_tail = self.stats.torn_tail

    def records(self) -> Iterator[SamplingRecord]:
        """The deterministic record stream (re-iterable; WAL-restorable)."""
        yield from self._records

    def byte_offset(self, pulled: int) -> int:
        """File offset the first *pulled* records reach into the capture.

        ``pulled`` is the channel's ingest position (records drawn from the
        stream so far); the returned offset is the end of the last source
        line that record consumed — the resume point a WAL checkpoint pins.
        """
        if pulled <= 0 or not self._record_linenos:
            return 0
        index = min(pulled, len(self._record_linenos)) - 1
        lineno = self._record_linenos[index]
        if lineno <= 0:
            return 0
        return self._line_ends[min(lineno, len(self._line_ends)) - 1]

    def sampled_trace(self) -> SampledTrace:
        """The capture as a :class:`~repro.pmu.sampling.SampledTrace`.

        This is the shape baseline correction methods (``linux`` scaling,
        CounterMiner, ...) consume, so a real capture can be fanned through
        ``RunSpec.baselines`` alongside the engine.
        """
        trace = SampledTrace(
            catalog_name=catalog_for(self.arch).name, events=self.events
        )
        for record in self._records:
            trace.records.append(record)
            for event in record.samples:
                trace.enabled_ticks[event] = trace.enabled_ticks.get(event, 0) + 1
        return trace
