"""Schema mapping: raw perf event names onto the repository's catalogs.

perf spells events three ways — generic aliases (``cycles``,
``cache-misses``), vendor names (``INST_RETIRED.ANY``) and raw descriptors
(``cpu/umask=0x1,event=0xc0/``) — and decorates all of them with privilege
modifiers (``:u``, ``:kHG``).  :class:`SchemaMapper` canonicalises each
raw name onto one :class:`~repro.events.catalog.EventCatalog` entry:

1. modifiers and ``cpu/.../`` wrappers are stripped;
2. an exact (case-insensitive) catalog name wins;
3. otherwise the generic-alias table maps the name to a canonical
   *semantic* (:mod:`repro.events.semantics`) and the catalog's preferred
   event for that semantic is used — which is what makes the same capture
   ingest against any architecture's catalog.

Unknown names follow the ``on_unknown`` policy: ``"raise"`` (the default)
fails with the catalog's nearest aliases listed, ``"skip"`` accounts the
reading like a malformed line and drops it.
"""

from __future__ import annotations

import difflib
import re
from typing import Dict, Optional, Tuple

import repro.events.semantics as sem
from repro.events.catalog import EventCatalog

__all__ = ["ALIAS_SEMANTICS", "SchemaMapper", "UnknownEventError", "UNKNOWN_POLICIES"]

UNKNOWN_POLICIES = ("raise", "skip")

#: Generic perf event aliases -> canonical semantic quantities.  Keys are
#: normalised (casefolded, ``_`` -> ``-``); the catalog's preferred event
#: for the semantic is the mapping target, so the table is vendor-neutral.
ALIAS_SEMANTICS: Dict[str, str] = {
    "cycles": sem.CYCLES,
    "cpu-cycles": sem.CYCLES,
    "ref-cycles": sem.CYCLES,
    "instructions": sem.INSTRUCTIONS,
    "inst-retired": sem.INSTRUCTIONS,
    "branches": sem.BRANCHES,
    "branch-instructions": sem.BRANCHES,
    "branch-misses": sem.BRANCH_MISSES,
    "cache-references": sem.LLC_ACCESS,
    "cache-misses": sem.LLC_MISS,
    "llc-loads": sem.LLC_ACCESS,
    "llc-load-misses": sem.LLC_MISS,
    "l1-dcache-loads": sem.L1D_ACCESS,
    "l1-dcache-load-misses": sem.L1D_MISS,
    "l1-icache-loads": sem.L1I_ACCESS,
    "l1-icache-load-misses": sem.L1I_MISS,
    "dtlb-load-misses": sem.DTLB_MISS,
    "itlb-load-misses": sem.ITLB_MISS,
    "mem-loads": sem.LOADS_RETIRED,
    "mem-stores": sem.STORES_RETIRED,
    "stalled-cycles-frontend": sem.STALL_FRONTEND,
    "stalled-cycles-backend": sem.STALL_BACKEND,
    "context-switches": sem.CONTEXT_SWITCHES,
    "cs": sem.CONTEXT_SWITCHES,
    "uops-issued": sem.UOPS_ISSUED,
    "uops-retired": sem.UOPS_RETIRED,
}

#: perf privilege/precision modifier suffix (":u", ":kHG", ":upp", ...).
_MODIFIER_RE = re.compile(r":[ukhIHGSDWePp]+$")


class UnknownEventError(KeyError):
    """A raw perf event name resolved onto nothing in the catalog."""

    def __init__(self, raw: str, catalog: str, suggestions: Tuple[str, ...]) -> None:
        self.raw = raw
        self.catalog = catalog
        self.suggestions = suggestions
        hint = (
            f"nearest aliases: {', '.join(suggestions)}"
            if suggestions
            else "no close alias"
        )
        super().__init__(
            f"unknown perf event {raw!r} for catalog {catalog!r} ({hint}); "
            f"map it onto a catalog event name, or ingest with "
            f"on_unknown='skip' to account and drop it"
        )

    def __str__(self) -> str:  # KeyError quotes its payload; keep it readable
        return self.args[0]


def normalize_event_name(raw: str) -> str:
    """Strip perf decorations: modifiers, PMU wrappers, surrounding noise."""
    name = raw.strip()
    if name.startswith("cpu/") and name.endswith("/"):
        name = name[len("cpu/") : -1]
    elif name.endswith("/") and "/" in name[:-1]:
        # Other PMU prefixes ("uncore_imc/cas_count_read/").
        name = name.split("/", 1)[1][:-1]
    name = _MODIFIER_RE.sub("", name)
    return name


class SchemaMapper:
    """Resolve raw perf event names onto one catalog's canonical names."""

    def __init__(self, catalog: EventCatalog, *, on_unknown: str = "raise") -> None:
        if on_unknown not in UNKNOWN_POLICIES:
            raise ValueError(
                f"unknown on_unknown policy {on_unknown!r}; expected one of "
                f"{UNKNOWN_POLICIES}"
            )
        self.catalog = catalog
        self.on_unknown = on_unknown
        self._by_folded = {name.casefold(): name for name in catalog.names()}
        self._cache: Dict[str, Optional[str]] = {}
        #: raw name -> canonical name, for every successful resolution.
        self.mapped: Dict[str, str] = {}

    def _aliases(self) -> Tuple[str, ...]:
        """Everything a raw name may legally spell (for suggestions)."""
        return tuple(ALIAS_SEMANTICS) + self.catalog.names()

    def suggestions(self, raw: str) -> Tuple[str, ...]:
        """The catalog's nearest aliases for an unknown raw name."""
        folded = normalize_event_name(raw).casefold().replace("_", "-")
        return tuple(
            difflib.get_close_matches(folded, self._aliases(), n=3, cutoff=0.4)
        )

    def _lookup(self, raw: str) -> Optional[str]:
        name = normalize_event_name(raw)
        exact = self._by_folded.get(name.casefold())
        if exact is not None:
            return exact
        semantic = ALIAS_SEMANTICS.get(name.casefold().replace("_", "-"))
        if semantic is not None:
            try:
                return self.catalog.event_for_semantic(semantic).name
            except KeyError:
                return None
        return None

    def resolve(self, raw: str) -> Optional[str]:
        """Canonical catalog name for *raw*.

        Returns ``None`` (caller accounts the drop) under
        ``on_unknown="skip"``; raises :class:`UnknownEventError` with the
        nearest aliases under ``on_unknown="raise"``.
        """
        if raw in self._cache:
            return self._cache[raw]
        canonical = self._lookup(raw)
        if canonical is None and self.on_unknown == "raise":
            raise UnknownEventError(raw, self.catalog.name, self.suggestions(raw))
        self._cache[raw] = canonical
        if canonical is not None:
            self.mapped[raw] = canonical
        return canonical
