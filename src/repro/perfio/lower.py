"""Lower a :class:`CounterSample` stream into engine-ready sampling records.

The correction engine consumes :class:`~repro.pmu.sampling.SamplingRecord`s:
one scheduler quantum, the counter configuration active during it, and the
PMI sub-samples each measured event produced.  This module groups a parsed
capture into those quanta:

* ``perf stat -I`` intervals and JSONL dumps group by *exact* timestamp —
  every row of one interval block carries the same ``ts``;
* ``perf script`` sample lines group into fixed ``tick_seconds`` windows
  (each line is one PMI sub-sample, so a window naturally accumulates
  several sub-samples per event).

Per tick, the multiplexing fraction each reading carried (perf's
``(scaled from X%)`` / enabled-vs-running bookkeeping) lands in
``SamplingRecord.mux_fraction`` — the engine widens that event's
observation noise by ``1/sqrt(fraction)``, so the correction sees the true
sub-sampling instead of trusting perf's linearly-scaled value at full
weight.  Events reported ``<not counted>`` (or with a zero running
fraction) are excluded from the tick's configuration entirely: to the
factor graph they are unmeasured that quantum, exactly like an event
scheduled off the counters, and the correction infers them from the
invariant constraints and the temporal prior.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from repro.perfio.mapping import SchemaMapper
from repro.perfio.model import CounterSample, IngestStats
from repro.pmu.configuration import CounterConfiguration
from repro.pmu.sampling import SamplingRecord

__all__ = ["LoweredCapture", "lower_capture"]


class LoweredCapture:
    """The engine-ready form of one parsed capture."""

    def __init__(
        self,
        records: List[SamplingRecord],
        events: Tuple[str, ...],
        linenos: List[int],
    ) -> None:
        #: Deterministic record stream (tick-renumbered, 0-based).
        self.records = records
        #: Every canonical event observed, in first-seen order.
        self.events = events
        #: Last source line each record consumed (ingest-position mapping).
        self.record_linenos = linenos


def _group_samples(
    samples: Iterable[CounterSample], tick_seconds: Optional[float]
) -> Iterable[List[CounterSample]]:
    """Split the sample stream into per-tick groups.

    With ``tick_seconds`` set, samples bucket into fixed windows anchored
    at the first timestamp; otherwise consecutive equal timestamps form one
    group (the interval-block shape).  Input order is preserved — captures
    are time-ordered, and determinism matters more than resilience to
    out-of-order tails (which real perf output does not produce).
    """
    group: List[CounterSample] = []
    key: Optional[float] = None
    origin: Optional[float] = None
    for sample in samples:
        if tick_seconds is not None:
            if origin is None:
                origin = sample.timestamp
            sample_key = float(int((sample.timestamp - origin) / tick_seconds))
        else:
            sample_key = sample.timestamp
        if key is not None and sample_key != key and group:
            yield group
            group = []
        key = sample_key
        group.append(sample)
    if group:
        yield group


def lower_capture(
    samples: Iterable[CounterSample],
    mapper: SchemaMapper,
    stats: IngestStats,
    *,
    tick_seconds: Optional[float] = None,
    monitored: Optional[Tuple[str, ...]] = None,
) -> LoweredCapture:
    """Group, map and renumber a capture into sampling records.

    *monitored* optionally restricts the stream to a canonical event subset
    (readings outside it are silently irrelevant, not errors — a capture
    may carry more events than a run wants to monitor).  Ticks left with no
    measured event are skipped and accounted (``stats.empty_ticks``).
    """
    records: List[SamplingRecord] = []
    linenos: List[int] = []
    order: List[str] = []
    seen = set(monitored or ())
    order.extend(monitored or ())
    for group in _group_samples(samples, tick_seconds):
        values: Dict[str, List[float]] = {}
        fractions: Dict[str, List[float]] = {}
        last_lineno = 0
        for sample in group:
            last_lineno = max(last_lineno, sample.lineno)
            canonical = mapper.resolve(sample.event)
            if canonical is None:
                stats.note_unknown(sample.event)
                continue
            if monitored is not None and canonical not in monitored:
                continue
            fraction = sample.fraction()
            if sample.value is None or (fraction is not None and fraction <= 0.0):
                # Never scheduled onto a counter this quantum: genuinely
                # unmeasured, so it must not appear in the configuration.
                if sample.value is not None:
                    stats.not_counted += 1
                continue
            if canonical not in seen:
                seen.add(canonical)
                order.append(canonical)
            values.setdefault(canonical, []).append(float(sample.value))
            if fraction is not None:
                fractions.setdefault(canonical, []).append(fraction)
        if not values:
            stats.empty_ticks += 1
            continue
        present = tuple(event for event in order if event in values)
        record = SamplingRecord(
            tick=len(records),
            configuration=CounterConfiguration(events=present),
        )
        for event in present:
            record.samples[event] = np.asarray(values[event], dtype=float)
            event_fractions = fractions.get(event)
            if event_fractions:
                fraction = float(np.mean(event_fractions))
                if fraction < 1.0:
                    record.mux_fraction[event] = fraction
        records.append(record)
        linenos.append(last_lineno)
    stats.n_ticks = len(records)
    events = tuple(order) if monitored is None else tuple(monitored)
    return LoweredCapture(records, events, linenos)
